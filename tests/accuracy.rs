//! Table II integration: clustering accuracy across the 11 applications.

use ocasta::{evaluate_all, evaluate_model, model_by_name, AccuracySummary, ClusterParams};

const DAYS: u64 = 45;

#[test]
fn overall_accuracy_reproduces_the_headline_number() {
    let apps = evaluate_all(DAYS);
    let summary = AccuracySummary::from_apps(&apps);
    let overall = summary.overall_accuracy();
    assert!(
        (80.0..=95.0).contains(&overall),
        "overall accuracy {overall:.1}% should be near the paper's 88.6%"
    );
    assert!(
        (60.0..=85.0).contains(&summary.mean_accuracy),
        "mean accuracy {:.1}% should be near the paper's 72.3%",
        summary.mean_accuracy
    );
    assert!(
        (230..=280).contains(&summary.multi_clusters),
        "multi-cluster total {} should be near the paper's 255",
        summary.multi_clusters
    );
}

#[test]
fn per_app_accuracy_matches_table2_within_tolerance() {
    for app in evaluate_all(DAYS) {
        match (app.accuracy(), app.paper_accuracy) {
            (Some(measured), Some(paper)) => {
                assert!(
                    (measured - paper).abs() <= 15.0,
                    "{}: measured {measured:.1}% vs paper {paper:.1}%",
                    app.app
                );
            }
            (None, None) => {} // Eye of GNOME: N/A in both
            (measured, paper) => {
                panic!("{}: N/A mismatch ({measured:?} vs {paper:?})", app.app)
            }
        }
    }
}

#[test]
fn key_counts_track_table2() {
    for app in evaluate_all(DAYS) {
        let model_keys = ocasta::all_models()
            .into_iter()
            .find(|m| m.display_name == app.app)
            .unwrap()
            .paper_keys;
        let tolerance = (model_keys as f64 * 0.05).ceil() as usize + 2;
        assert!(
            app.keys.abs_diff(model_keys) <= tolerance,
            "{}: observed {} keys vs Table II's {}",
            app.app,
            app.keys,
            model_keys
        );
    }
}

#[test]
fn oversized_clusters_dominate_the_errors() {
    // §VI-A: "the majority of the incorrectly identified clusters are
    // oversized clusters".
    let apps = evaluate_all(DAYS);
    let oversized: usize = apps.iter().map(|a| a.oversized).sum();
    let incorrect: usize = apps
        .iter()
        .map(|a| a.multi_clusters - a.correct_multi)
        .sum();
    assert_eq!(
        oversized, incorrect,
        "every incorrect cluster is oversized here"
    );
    assert!(
        oversized >= 20,
        "the designed oversize couplings appear: {oversized}"
    );
}

#[test]
fn lowering_the_threshold_cannot_reduce_cluster_sizes() {
    let model = model_by_name("acrobat").unwrap();
    let strict = evaluate_model(&model, DAYS, 42, &ClusterParams::default());
    let relaxed = evaluate_model(
        &model,
        DAYS,
        42,
        &ClusterParams {
            correlation_threshold: 1.0,
            ..ClusterParams::default()
        },
    );
    assert!(
        relaxed.total_clusters <= strict.total_clusters,
        "a lower threshold merges clusters: {} vs {}",
        relaxed.total_clusters,
        strict.total_clusters
    );
}
