//! Sensitivity integration (Figure 3): cluster size vs window size and
//! threshold, plus the timestamp-precision ablation.

use ocasta::{model_by_name, ClusterParams, Ocasta, TimePrecision};

fn mean_multi_size(window_ms: u64, threshold: f64) -> f64 {
    let model = model_by_name("evolution").unwrap();
    let store = model.generate_trace(45, 31).replay(TimePrecision::Seconds);
    let params = ClusterParams {
        window_ms,
        correlation_threshold: threshold,
        ..ClusterParams::default()
    };
    Ocasta::new(params)
        .cluster_store(&store)
        .stats()
        .mean_multi_cluster_size()
}

#[test]
fn window_zero_shows_the_left_edge_artifact() {
    // Figure 3a: a sharp drop from window 1s to window 0s, because the
    // trace infrastructure records whole seconds.
    let at_zero = mean_multi_size(0, 2.0);
    let at_one = mean_multi_size(1_000, 2.0);
    assert!(
        at_zero <= at_one,
        "window 0 ({at_zero:.2}) should not beat window 1s ({at_one:.2})"
    );
}

#[test]
fn cluster_size_is_insensitive_to_window_beyond_one_second() {
    // Figure 3a's plateau: between 1s and 600s the mean size moves little.
    let sizes: Vec<f64> = [1_000u64, 10_000, 60_000, 300_000, 600_000]
        .iter()
        .map(|&w| mean_multi_size(w, 2.0))
        .collect();
    let min = sizes.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = sizes.iter().cloned().fold(0.0, f64::max);
    assert!(
        max / min < 1.6,
        "size range {min:.2}..{max:.2} should stay within ~±25% (paper: 3.5..4.5)"
    );
}

#[test]
fn cluster_count_monotone_in_threshold() {
    let model = model_by_name("acrobat").unwrap();
    let store = model.generate_trace(45, 32).replay(TimePrecision::Seconds);
    let mut last = usize::MAX;
    for threshold in [2.0, 1.5, 1.0, 0.5] {
        let params = ClusterParams {
            correlation_threshold: threshold,
            ..ClusterParams::default()
        };
        let clusters = Ocasta::new(params).cluster_store(&store).len();
        assert!(
            clusters <= last,
            "threshold {threshold}: {clusters} clusters, previous {last}"
        );
        last = clusters;
    }
}

#[test]
fn millisecond_precision_shrinks_oversized_merges() {
    // §VI-A: most oversized clusters "could potentially have been
    // eliminated if our trace collection infrastructure had recorded key
    // modification times at a finer granularity". With millisecond
    // timestamps the same trace cannot produce *more* multi-clusters
    // spanning unrelated groups.
    let model = model_by_name("evolution").unwrap();
    let trace = model.generate_trace(45, 33);
    let coarse_store = trace.replay(TimePrecision::Seconds);
    let fine_store = trace.replay(TimePrecision::Milliseconds);
    let coarse = Ocasta::default().cluster_store(&coarse_store);
    let fine = Ocasta::default()
        .with_precision(TimePrecision::Milliseconds)
        .cluster_store(&fine_store);
    let incorrect = |clustering: &ocasta::Clustering| {
        clustering
            .multi_clusters()
            .filter(|c| !model.cluster_is_correct(c))
            .count()
    };
    assert!(
        incorrect(&fine) <= incorrect(&coarse),
        "finer timestamps should not create more oversized clusters"
    );
}

#[test]
fn linkage_ablation_complete_is_most_conservative() {
    use ocasta::Linkage;
    let model = model_by_name("outlook").unwrap();
    let store = model.generate_trace(45, 34).replay(TimePrecision::Seconds);
    let count_for = |linkage| {
        let params = ClusterParams {
            linkage,
            correlation_threshold: 1.0,
            ..ClusterParams::default()
        };
        Ocasta::new(params).cluster_store(&store).len()
    };
    let complete = count_for(Linkage::Complete);
    let single = count_for(Linkage::Single);
    assert!(
        complete >= single,
        "complete linkage merges less aggressively than single ({complete} vs {single})"
    );
}
