//! Tier-1 retention equivalence: the bench's retained-vs-unbounded checks,
//! promoted into `cargo test -q` so a retention regression fails the build
//! without anyone running the bench bin.
//!
//! Two layers are covered, both against the same fixed fleet feed:
//!
//! * **store + WAL**: chunked ingestion into a retained `ShardedTtkv`
//!   (incremental in-place sweeps, layered WAL compaction) must equal the
//!   unbounded side pruned *once* at the current horizon — exactly, not
//!   just on sampled queries — and the layered WAL must replay to the
//!   same store at every checkpoint;
//! * **engine**: a full `ingest` run with a `RetentionPolicy` must land on
//!   exactly `prune(horizon)` of the retention-off run, while every
//!   post-horizon query and lifetime counter agrees.

use ocasta::{
    fleet_ingest, FleetConfig, KeyPlacement, MachineSpec, RetentionPolicy, ShardedTtkv, TimeDelta,
    TimePrecision, TraceOp, Wal, WorkloadSpec,
};

/// A small deterministic fleet (seeded workload generator).
fn machines(count: usize, days: u64) -> Vec<MachineSpec> {
    (0..count)
        .map(|i| {
            let mut spec = WorkloadSpec::new(format!("app{}", i % 2));
            spec.sessions_per_day = 1.5;
            spec.reads_per_session = 4;
            spec.static_keys = 5;
            spec.churn_keys = 8;
            spec.churn_writes_per_day = 4.0;
            MachineSpec::new(format!("m{i:02}"), days, 4_200 + i as u64, vec![spec])
        })
        .collect()
}

/// The fleet's mutation ops as one time-ordered feed.
fn feed(count: usize, days: u64) -> Vec<TraceOp> {
    let mut ops: Vec<TraceOp> = machines(count, days)
        .iter()
        .flat_map(|m| m.stream().filter(|op| matches!(op, TraceOp::Mutation(_))))
        .collect();
    ops.sort_by_key(|op| match op {
        TraceOp::Mutation(event) => event.timestamp,
        TraceOp::Reads(..) => ocasta::Timestamp::EPOCH,
    });
    ops
}

#[test]
fn retained_store_and_layered_wal_equal_unbounded_pruned_once() {
    let ops = feed(3, 20);
    assert!(ops.len() > 200, "feed is non-trivial: {}", ops.len());
    let retain = TimeDelta::from_days(4);
    let precision = TimePrecision::Milliseconds;

    let off = ShardedTtkv::new(4);
    let on = ShardedTtkv::new(4);
    let dir = std::env::temp_dir().join(format!("ocasta-t1-retention-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut wal = Wal::open(&dir).expect("scratch dir writable");

    let checkpoints = 5;
    for checkpoint in 1..=checkpoints {
        let done = ops.len() * checkpoint / checkpoints;
        let start = ops.len() * (checkpoint - 1) / checkpoints;
        let chunk = &ops[start..done];
        off.append_routed(chunk.to_vec());
        on.append_routed(chunk.to_vec());
        wal.append(chunk).expect("wal append");

        let frontier = on.last_mutation_time().expect("non-empty chunks");
        let horizon = frontier.saturating_sub(retain);
        on.prune_before(horizon);
        wal.compact_pruned(precision, horizon).expect("wal compact");

        // Staged incremental sweeps == one direct prune, exactly.
        let mut direct = off.snapshot_store();
        let on_snap = on.snapshot_store();
        direct.prune_before(horizon);
        assert_eq!(on_snap, direct, "checkpoint {checkpoint}");
        // The layered WAL chain replays to the same store.
        assert_eq!(
            wal.replay(precision).expect("wal replay"),
            on_snap,
            "checkpoint {checkpoint}"
        );

        // Post-horizon queries and lifetime counters are preserved.
        let off_snap = off.snapshot_store();
        assert_eq!(on_snap.stats().writes, off_snap.stats().writes);
        assert_eq!(on_snap.stats().deletes, off_snap.stats().deletes);
        for key in off_snap.keys() {
            for probe in [horizon, frontier] {
                assert_eq!(
                    on_snap.value_at(key.as_str(), probe),
                    off_snap.value_at(key.as_str(), probe),
                    "{key} at {probe} (checkpoint {checkpoint})"
                );
            }
        }
        assert!(on_snap.approx_bytes() <= off_snap.approx_bytes());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn engine_retention_run_equals_unbounded_run_pruned_at_final_horizon() {
    let machines = machines(3, 16);
    let base = FleetConfig {
        shards: 4,
        ingest_threads: 2,
        batch_size: 32,
        placement: KeyPlacement::PerMachine,
        ..FleetConfig::default()
    };
    let (reference, _) = fleet_ingest(&machines, &base);
    let (pruned, report) = fleet_ingest(
        &machines,
        &FleetConfig {
            retention: Some(RetentionPolicy {
                retain: TimeDelta::from_days(4),
                min_interval: TimeDelta::from_days(2),
            }),
            ..base
        },
    );
    let retention = report.retention.expect("policy was set");
    assert!(retention.sweeps > 0);
    let horizon = retention.horizon.expect("swept");

    // Exact equality with the rebuild path: prune the unbounded reference
    // once at the final horizon, then collect dead shells — the final
    // sweep GCs counter-only shells (and only the final sweep does).
    let mut expected = reference.clone();
    expected.prune_before(horizon);
    let shells = expected.gc_dead_shells();
    assert_eq!(pruned, expected);
    assert_eq!(retention.shells, shells, "sweeper reported its GC tally");

    // And the headline guarantees, spelled out.
    assert!(pruned.approx_bytes() < reference.approx_bytes());
    assert_eq!(pruned.stats().writes, expected.stats().writes);
    let frontier = reference.last_mutation_time().expect("events exist");
    for key in reference.keys() {
        assert_eq!(
            pruned.value_at(key.as_str(), horizon),
            reference.value_at(key.as_str(), horizon),
            "{key} at the horizon"
        );
        assert_eq!(
            pruned.value_at(key.as_str(), frontier),
            reference.value_at(key.as_str(), frontier),
            "{key} at the frontier"
        );
    }
}
