//! Table IV integration: all 16 real-world errors end to end.

use ocasta::{run_noclust, run_scenario, scenarios, ClusterParams, ScenarioConfig, SearchStrategy};

fn config_for(scenario: &ocasta::ErrorScenario) -> ScenarioConfig {
    let params = if scenario.needs_tuning {
        ScenarioConfig::tuned_for(scenario)
    } else {
        ClusterParams::default()
    };
    ScenarioConfig {
        params,
        ..ScenarioConfig::default()
    }
}

#[test]
fn ocasta_fixes_all_16_errors() {
    for scenario in scenarios() {
        let outcome = run_scenario(&scenario, &config_for(&scenario));
        assert!(
            outcome.is_fixed(),
            "error #{} should be fixed: {:?}",
            scenario.id,
            outcome.search
        );
        assert_eq!(
            outcome.fixed_cluster_size,
            Some(scenario.paper_cluster_size),
            "error #{}: fixed-cluster size should match Table IV",
            scenario.id
        );
        assert!(
            outcome.search.screenshots_to_fix <= 11,
            "error #{}: user effort stays modest (paper max: 11)",
            scenario.id
        );
    }
}

#[test]
fn noclust_fails_exactly_the_five_multi_key_errors() {
    let mut failed = Vec::new();
    for scenario in scenarios() {
        let outcome = run_noclust(&scenario, &config_for(&scenario));
        if !outcome.is_fixed() {
            failed.push(scenario.id);
        }
        assert_eq!(
            outcome.is_fixed(),
            scenario.paper_noclust_fixes,
            "error #{}: NoClust outcome should match Table IV",
            scenario.id
        );
    }
    failed.sort_unstable();
    assert_eq!(failed, vec![2, 4, 6, 7, 9]);
}

#[test]
fn errors_2_and_4_defeat_default_parameters() {
    for id in [2usize, 4] {
        let scenario = scenarios().into_iter().find(|s| s.id == id).unwrap();
        let default_outcome = run_scenario(&scenario, &ScenarioConfig::default());
        assert!(
            !default_outcome.is_fixed(),
            "error #{id} should require tuning (§VI-B)"
        );
    }
}

#[test]
fn bfs_also_fixes_a_sample_of_errors() {
    for id in [1usize, 7, 13] {
        let scenario = scenarios().into_iter().find(|s| s.id == id).unwrap();
        let config = ScenarioConfig {
            strategy: SearchStrategy::Bfs,
            ..config_for(&scenario)
        };
        let outcome = run_scenario(&scenario, &config);
        assert!(outcome.is_fixed(), "error #{id} under BFS");
    }
}

#[test]
fn sort_beats_exhaustive_search_on_average() {
    // The paper: the modification-count sort finds the offending cluster
    // ~78% faster than searching everything.
    let mut savings = Vec::new();
    for scenario in scenarios() {
        let outcome = run_scenario(&scenario, &config_for(&scenario));
        if let Some(found) = outcome.search.trials_to_fix {
            let total = outcome.search.total_trials.max(1);
            savings.push(1.0 - found as f64 / total as f64);
        }
    }
    let mean = savings.iter().sum::<f64>() / savings.len() as f64;
    assert!(
        mean > 0.5,
        "mean saving {mean:.2} should be well above half (paper: 0.78)"
    );
}

#[test]
fn injection_age_affects_search_depth() {
    // Figure 2a's trend is a mean over the 16 errors: older errors are
    // buried under more newer versions. Individual cases may move either
    // way, so compare the population means.
    let mean_trials = |age: u64| -> f64 {
        let mut trials = Vec::new();
        for scenario in scenarios() {
            let outcome = run_scenario(
                &scenario,
                &ScenarioConfig {
                    injection_age_days: age,
                    ..config_for(&scenario)
                },
            );
            assert!(outcome.is_fixed(), "error #{} at age {age}", scenario.id);
            trials.push(outcome.search.trials_to_fix.unwrap() as f64);
        }
        trials.iter().sum::<f64>() / trials.len() as f64
    };
    let fresh = mean_trials(2);
    let old = mean_trials(14);
    assert!(
        old >= fresh,
        "mean trials should grow with injection age: {old:.1} vs {fresh:.1}"
    );
}
