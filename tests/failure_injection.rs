//! Failure injection: malformed inputs, degenerate histories and clock
//! anomalies must degrade gracefully, never panic.

use ocasta::{
    search, singleton_clusters, FixOracle, Ocasta, Screenshot, SearchConfig, Timestamp, Trace,
    Trial, Ttkv, TtkvError, Value,
};

#[test]
fn corrupted_trace_files_are_rejected_with_positions() {
    let mut trace = Trace::new("t", 1);
    trace.push(ocasta::AccessEvent::write(
        Timestamp::from_secs(1),
        "a/k",
        1,
    ));
    let good = trace.save_to_string();

    // Flip individual lines into garbage: every corruption must surface as
    // a parse error naming the right line, not a panic or silent skip.
    for (lineno, line) in good.lines().enumerate() {
        let mut corrupted: Vec<String> = good.lines().map(str::to_owned).collect();
        corrupted[lineno] = format!("@@corrupt@@ {line}");
        let text = corrupted.join("\n");
        match Trace::load_from_str(&text) {
            Err(TtkvError::Parse { line, .. }) => assert_eq!(line, lineno + 1),
            other => panic!("line {lineno}: expected parse error, got {other:?}"),
        }
    }
}

#[test]
fn truncated_ttkv_files_are_rejected() {
    let mut store = Ttkv::new();
    store.write(
        Timestamp::from_secs(1),
        "k",
        Value::List(vec![Value::from(1), Value::from(2)]),
    );
    let text = store.save_to_string();
    // Chop characters off the end; outcomes must be Ok (when the cut falls
    // on a record boundary) or a parse error — never a panic.
    for cut in 0..text.len() {
        let _ = Ttkv::load_from_str(&text[..cut]);
    }
}

#[test]
fn out_of_order_events_replay_consistently() {
    let mut trace = Trace::new("skew", 1);
    // A merged multi-machine trace with interleaved, unsorted timestamps.
    for (t, v) in [(50u64, 5i64), (10, 1), (30, 3), (20, 2), (40, 4)] {
        trace.push(ocasta::AccessEvent::write(
            Timestamp::from_secs(t),
            "a/k",
            v,
        ));
    }
    let store = trace.replay(ocasta::TimePrecision::Seconds);
    for (t, v) in [(10u64, 1i64), (20, 2), (30, 3), (40, 4), (50, 5)] {
        assert_eq!(
            store.value_at("a/k", Timestamp::from_secs(t)),
            Some(&Value::from(v))
        );
    }
}

#[test]
fn clustering_empty_and_read_only_stores() {
    let engine = Ocasta::default();
    assert!(engine.cluster_store(&Ttkv::new()).is_empty());

    let mut read_only = Ttkv::new();
    read_only.read("a");
    read_only.read("b");
    let clustering = engine.cluster_store(&read_only);
    assert!(clustering.is_empty(), "never-modified keys are excluded");
}

#[test]
fn search_with_no_versions_reports_unfixed() {
    let store = Ttkv::new();
    let trial = Trial::new("noop", |_| Screenshot::new());
    let outcome = search(
        &store,
        &singleton_clusters(&store),
        &trial,
        &FixOracle::new(|_| true),
        &SearchConfig::default(),
    );
    assert!(!outcome.is_fixed());
    assert_eq!(outcome.total_trials, 0);
    assert_eq!(outcome.total_screenshots, 0);
}

#[test]
fn search_bounds_outside_history_are_harmless() {
    let mut store = Ttkv::new();
    store.write(Timestamp::from_secs(100), "a/k", Value::from(true));
    store.write(Timestamp::from_secs(200), "a/k", Value::from(false));
    let trial = Trial::new("probe", |config| {
        let mut shot = Screenshot::new();
        shot.add_if(config.get_bool("a/k").unwrap_or(false), "on");
        shot
    });
    // Start bound after the whole history: nothing to search.
    let config = SearchConfig {
        start_time: Some(Timestamp::from_days(99)),
        ..SearchConfig::default()
    };
    let outcome = search(
        &store,
        &singleton_clusters(&store),
        &trial,
        &FixOracle::element_visible("on"),
        &config,
    );
    assert_eq!(outcome.total_trials, 0);
    // End bound before the whole history: likewise.
    let config = SearchConfig {
        end_time: Some(Timestamp::from_secs(1)),
        ..SearchConfig::default()
    };
    let outcome = search(
        &store,
        &singleton_clusters(&store),
        &trial,
        &FixOracle::element_visible("on"),
        &config,
    );
    assert_eq!(outcome.total_trials, 0);
}

#[test]
fn deletion_only_history_is_searchable() {
    // A key whose entire recorded history is tombstones (e.g. an app that
    // cleared a setting repeatedly): rollback patches must not panic and
    // the search must simply fail to fix.
    let mut store = Ttkv::new();
    store.delete(Timestamp::from_secs(10), "a/ghost");
    store.delete(Timestamp::from_secs(99), "a/ghost");
    let trial = Trial::new("probe", |config| {
        let mut shot = Screenshot::new();
        shot.add_if(config.contains("a/ghost"), "ghost");
        shot
    });
    let outcome = search(
        &store,
        &singleton_clusters(&store),
        &trial,
        &FixOracle::element_visible("ghost"),
        &SearchConfig::default(),
    );
    assert!(!outcome.is_fixed());
    assert!(outcome.total_trials >= 1);
}

#[test]
fn parser_garbage_does_not_panic() {
    for garbage in [
        "",
        "\u{0}\u{1}\u{2}",
        "{{{{{{",
        "<a><b></b>",
        "[=",
        "((((",
        "/ / /",
        &"x".repeat(10_000),
    ] {
        for format in ocasta::Format::ALL {
            let _ = ocasta::parse(format, garbage);
        }
        let _ = ocasta::detect_format(garbage);
    }
}
