//! Tier-1 VOPR gate: every fault scenario must pass on pinned seeds, the
//! verdict report must be byte-deterministic, and every reproducer the
//! `failing_seeds/` corpus has ever recorded must replay clean forever.

use std::fs;
use std::path::Path;

use ocasta::{run_vopr, vopr_scenario_names};

/// The pinned seed pair every scenario runs under in tier-1 (and in the
/// CI smoke matrix — keep `.github/workflows/ci.yml` in sync).
const SEEDS: [u64; 2] = [7, 1042];

#[test]
fn every_scenario_passes_on_pinned_seeds() {
    for scenario in vopr_scenario_names() {
        for seed in SEEDS {
            let outcome = run_vopr(scenario, seed)
                .unwrap_or_else(|e| panic!("{scenario} seed {seed} failed to run: {e}"));
            assert!(
                outcome.passed(),
                "{scenario} seed {seed} violated an invariant:\n{}",
                outcome.report()
            );
            assert!(
                outcome.checks.len() >= 4,
                "{scenario}: every scenario checks all four standing invariants"
            );
        }
    }
}

/// Same scenario + same seed ⇒ byte-identical verdict report. This is
/// the property that makes a `failing_seeds/` entry a *reproducer* rather
/// than an anecdote, so it is checked on a mix of feed-driven scenarios
/// (including the shuffling one) and real-threads engine scenarios.
#[test]
fn verdict_reports_are_byte_deterministic() {
    for scenario in [
        "baseline",
        "reorder-feed",
        "dead-shell-churn",
        "sweep-vs-pin",
        "pin-churn",
        "kill-ingest-worker",
        "killed-worker-amid-pin-churn",
    ] {
        let first = run_vopr(scenario, 7).unwrap().report();
        let second = run_vopr(scenario, 7).unwrap().report();
        assert_eq!(first, second, "{scenario}: reports must be byte-identical");
    }
}

/// Scans `failing_seeds/*.md` for `replay: vopr --scenario <name> --seed
/// <n>` lines and replays every one. Entries are never deleted, so every
/// bug the matrix ever flushed out stays pinned as a regression test.
#[test]
fn failing_seeds_corpus_replays_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("failing_seeds");
    let mut replayed = 0usize;
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .expect("failing_seeds/ exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| {
            p.extension().is_some_and(|x| x == "md")
                && p.file_name().is_some_and(|n| n != "README.md")
        })
        .collect();
    entries.sort();
    for path in entries {
        let text = fs::read_to_string(&path).expect("readable entry");
        for line in text.lines() {
            let Some(rest) = line.trim().strip_prefix("replay: vopr --scenario ") else {
                continue;
            };
            let mut parts = rest.split_whitespace();
            let scenario = parts.next().expect("scenario name");
            assert_eq!(
                parts.next(),
                Some("--seed"),
                "{}: malformed replay line",
                path.display()
            );
            let seed: u64 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("{}: bad seed", path.display()));
            let outcome =
                run_vopr(scenario, seed).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            assert!(
                outcome.passed(),
                "{} regressed:\n{}",
                path.display(),
                outcome.report()
            );
            replayed += 1;
        }
    }
    assert!(
        replayed >= 3,
        "the corpus pins at least the three PR 7 bugfix reproducers, found {replayed}"
    );
}
