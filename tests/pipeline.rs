//! End-to-end pipeline integration: workload generation → trace files →
//! TTKV replay → clustering → ground-truth recovery.

use ocasta::{generate, model_by_name, GeneratorConfig, Key, Ocasta, TimePrecision, Trace, Ttkv};

#[test]
fn generated_trace_roundtrips_through_file_format() {
    let model = model_by_name("evolution").unwrap();
    let mut trace = model.generate_trace(20, 5);
    let text = trace.save_to_string();
    let mut loaded = Trace::load_from_str(&text).unwrap();
    assert_eq!(trace.name(), loaded.name());
    assert_eq!(trace.days(), loaded.days());
    assert_eq!(trace.events(), loaded.events());
    assert_eq!(trace.read_counts(), loaded.read_counts());
    // And the replayed stores agree exactly.
    assert_eq!(
        trace.replay(TimePrecision::Seconds),
        loaded.replay(TimePrecision::Seconds)
    );
}

#[test]
fn ttkv_roundtrips_after_replay() {
    let model = model_by_name("gedit").unwrap();
    let store = model.generate_trace(30, 9).replay(TimePrecision::Seconds);
    let loaded = Ttkv::load_from_str(&store.save_to_string()).unwrap();
    assert_eq!(store, loaded);
}

#[test]
fn clustering_recovers_planted_groups() {
    // Evolution's three error-scenario pairs are always written together;
    // the pipeline must recover each of them as one cluster.
    let model = model_by_name("evolution").unwrap();
    let store = model
        .generate_trace(45, 1001)
        .replay(TimePrecision::Seconds);
    let clustering = Ocasta::default().cluster_store(&store);
    for (a, b) in [
        (
            "evolution/offline/start_offline",
            "evolution/offline/sync_folders",
        ),
        (
            "evolution/mail/mark_seen",
            "evolution/mail/mark_seen_timeout",
        ),
        (
            "evolution/composer/reply_start",
            "evolution/composer/signature_top",
        ),
    ] {
        let cluster = clustering
            .cluster_of(a)
            .unwrap_or_else(|| panic!("{a} clustered"));
        assert!(
            cluster.iter().any(|k| k.as_str() == b),
            "{a} and {b} should share a cluster; got {cluster:?}"
        );
        assert_eq!(cluster.len(), 2, "{a}'s cluster should be exactly the pair");
    }
}

#[test]
fn coupled_dialogs_produce_oversized_clusters() {
    // gedit's two unrelated settings are flushed together by its dialog;
    // black-box clustering cannot tell and must merge them (the paper's
    // oversized-cluster failure mode).
    let model = model_by_name("gedit").unwrap();
    let store = model
        .generate_trace(45, 1005)
        .replay(TimePrecision::Seconds);
    let clustering = Ocasta::default().cluster_store(&store);
    let cluster = clustering
        .cluster_of("gedit/view/wrap_mode")
        .expect("wrap_mode was modified");
    assert_eq!(cluster.len(), 2);
    assert!(cluster
        .iter()
        .any(|k| k.as_str() == "gedit/editor/tab_width"));
    assert!(
        !model.cluster_is_correct(cluster),
        "the merged pair is not truly related"
    );
}

#[test]
fn multi_machine_merge_aggregates_per_user() {
    // The paper merges the same user's traces from several lab machines.
    let model = model_by_name("eog").unwrap();
    let store_a = model.generate_trace(10, 1).replay(TimePrecision::Seconds);
    let store_b = model.generate_trace(10, 2).replay(TimePrecision::Seconds);
    let mut merged = store_a.clone();
    merged.merge(&store_b);
    let sa = store_a.stats();
    let sb = store_b.stats();
    let sm = merged.stats();
    assert_eq!(sm.writes, sa.writes + sb.writes);
    assert_eq!(sm.reads, sa.reads + sb.reads);
    assert!(sm.keys >= sa.keys.max(sb.keys));
}

#[test]
fn cluster_app_matches_full_store_for_single_app_traces() {
    let model = model_by_name("chrome").unwrap();
    let store = model.generate_trace(40, 77).replay(TimePrecision::Seconds);
    let engine = Ocasta::default();
    let whole = engine.cluster_store(&store);
    let scoped = engine.cluster_app(&store, &Key::new("chrome"));
    assert_eq!(whole.clusters(), scoped.clusters());
}

#[test]
fn trace_generator_is_deterministic_across_calls() {
    let model = model_by_name("wmp").unwrap();
    let config = GeneratorConfig::new("det", 25, 4);
    let a = generate(&config, std::slice::from_ref(&model.spec));
    let b = generate(&config, std::slice::from_ref(&model.spec));
    assert_eq!(a, b);
}
