//! `ocasta-suite` — workspace-level integration surface.
//!
//! This package exists to anchor the end-to-end integration tests in
//! `tests/` and the walkthroughs in `examples/`; the actual functionality
//! lives in the `crates/` workspace members, re-exported here through the
//! [`ocasta`] facade.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use ocasta;
