//! # ocasta-cluster — clustering configuration settings
//!
//! The core algorithm of the [Ocasta](https://arxiv.org/abs/1711.04030)
//! reproduction: statistical clustering of configuration settings from
//! black-box write observations.
//!
//! The pipeline has three stages, each usable on its own:
//!
//! 1. [`transactions`] groups timestamped [`WriteEvent`]s into
//!    *co-modification transactions* with a sliding time window (paper
//!    default: 1 second).
//! 2. [`Correlations`] computes the paper's correlation metric
//!    `|A∩B|/|A| + |A∩B|/|B|` per key pair and converts it into distances
//!    (`distance = 1/correlation`).
//! 3. [`hac`] runs hierarchical agglomerative clustering (nearest-neighbor
//!    chain, `O(n²)`) with the *maximum linkage criterion* by default,
//!    producing a [`Dendrogram`] that [`Dendrogram::cut`] prunes at a
//!    distance threshold (paper default: correlation 2 ⇔ distance 0.5).
//!
//! [`cluster_events`] wires the three stages together.
//!
//! ```
//! use ocasta_cluster::{cluster_events, ClusterParams, WriteEvent};
//!
//! // Keys 0 and 1 always change together; key 2 changes alone.
//! let events = vec![
//!     WriteEvent::new(0, 1_000), WriteEvent::new(1, 1_200),
//!     WriteEvent::new(2, 50_000),
//!     WriteEvent::new(0, 90_000), WriteEvent::new(1, 90_400),
//! ];
//! let clusters = cluster_events(3, &events, &ClusterParams::default());
//! assert_eq!(clusters, vec![vec![0, 1], vec![2]]);
//! ```
//!
//! This crate is deliberately free of key names, values and clocks: items are
//! dense indices and times are `u64` milliseconds, so the algorithm is
//! reusable for any co-occurrence clustering problem.
//!
//! ## Feature flags
//!
//! * `serde` — derive `Serialize`/`Deserialize` on the public data types.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod correlation;
mod dendrogram;
mod event;
mod hac;
mod incremental;
mod linkage;
mod matrix;
mod window;

pub use correlation::Correlations;
pub use dendrogram::{Dendrogram, Merge, PartitionStats};
pub use event::{transactions, WriteEvent};
pub use hac::hac;
pub use incremental::IncrementalCorrelations;
pub use linkage::Linkage;
pub use matrix::DistanceMatrix;
pub use window::TransactionWindow;

/// Tunable parameters for the end-to-end clustering pipeline.
///
/// The defaults are the paper's: a 1-second sliding window and a correlation
/// threshold of 2 (cluster only keys that are *always* modified together),
/// with complete linkage.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClusterParams {
    /// Sliding co-modification window, in milliseconds.
    pub window_ms: u64,
    /// Minimum pairwise correlation (in `(0, 2]`) for keys to cluster.
    pub correlation_threshold: f64,
    /// Cluster-distance criterion.
    pub linkage: Linkage,
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams {
            window_ms: 1_000,
            correlation_threshold: 2.0,
            linkage: Linkage::Complete,
        }
    }
}

impl ClusterParams {
    /// The distance threshold equivalent to the correlation threshold.
    pub fn distance_threshold(&self) -> f64 {
        1.0 / self.correlation_threshold
    }
}

/// Runs the full clustering pipeline: transactions → correlations → HAC →
/// threshold cut.
///
/// Returns a partition of `0..n_items`: sorted clusters of item indices,
/// ordered by smallest member, singletons included.
///
/// # Panics
///
/// Panics if an event references an item `>= n_items`, or if
/// `params.correlation_threshold` is not positive.
pub fn cluster_events(
    n_items: usize,
    events: &[WriteEvent],
    params: &ClusterParams,
) -> Vec<Vec<usize>> {
    let txns = transactions(events, params.window_ms);
    let correlations = Correlations::from_transactions(n_items, &txns);
    cluster_correlations(&correlations, params)
}

/// The clustering tail shared by the batch and streaming pipelines: HAC over
/// the correlation distances, cut at the correlation threshold.
///
/// Batch ([`cluster_events`]) and streaming
/// ([`IncrementalCorrelations::snapshot`]) both exit through this function,
/// so identical correlations are guaranteed identical partitions.
///
/// # Panics
///
/// Panics if `params.correlation_threshold` is not positive.
pub fn cluster_correlations(
    correlations: &Correlations,
    params: &ClusterParams,
) -> Vec<Vec<usize>> {
    let dendrogram = hac(&correlations.to_distance_matrix(), params.linkage);
    dendrogram.cut_correlation(params.correlation_threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_match_paper() {
        let p = ClusterParams::default();
        assert_eq!(p.window_ms, 1_000);
        assert_eq!(p.correlation_threshold, 2.0);
        assert_eq!(p.distance_threshold(), 0.5);
        assert_eq!(p.linkage, Linkage::Complete);
    }

    #[test]
    fn pipeline_clusters_always_together_keys() {
        // Three related keys written together 4 times, one noisy key that
        // once lands in the same window but also changes alone.
        let mut events = Vec::new();
        for burst in 0..4u64 {
            let t = burst * 100_000;
            events.push(WriteEvent::new(0, t));
            events.push(WriteEvent::new(1, t + 300));
            events.push(WriteEvent::new(2, t + 600));
        }
        events.push(WriteEvent::new(3, 300));
        events.push(WriteEvent::new(3, 40_000));
        events.push(WriteEvent::new(3, 50_000));

        let clusters = cluster_events(4, &events, &ClusterParams::default());
        assert_eq!(clusters, vec![vec![0, 1, 2], vec![3]]);
    }

    #[test]
    fn lowering_threshold_merges_mostly_together_keys() {
        // Key 1 joins key 0 in 2 of 3 of key 0's transactions.
        let events = vec![
            WriteEvent::new(0, 0),
            WriteEvent::new(1, 100),
            WriteEvent::new(0, 10_000),
            WriteEvent::new(1, 10_100),
            WriteEvent::new(0, 20_000),
        ];
        // corr = 2/3 + 2/2 ≈ 1.67 < 2: default threshold keeps them apart...
        let strict = cluster_events(2, &events, &ClusterParams::default());
        assert_eq!(strict, vec![vec![0], vec![1]]);
        // ...threshold 1 clusters them (the paper's error #2/#4 tuning).
        let relaxed = ClusterParams {
            correlation_threshold: 1.0,
            ..ClusterParams::default()
        };
        assert_eq!(cluster_events(2, &events, &relaxed), vec![vec![0, 1]]);
    }

    #[test]
    fn widening_window_merges_slow_bursts() {
        // Related keys written 5 seconds apart (like error #2's Word MRU
        // rewrite): invisible at 1 s, clustered at 30 s.
        let events = vec![
            WriteEvent::new(0, 0),
            WriteEvent::new(1, 5_000),
            WriteEvent::new(0, 100_000),
            WriteEvent::new(1, 105_000),
        ];
        let narrow = cluster_events(2, &events, &ClusterParams::default());
        assert_eq!(narrow, vec![vec![0], vec![1]]);
        let wide = ClusterParams {
            window_ms: 30_000,
            ..ClusterParams::default()
        };
        assert_eq!(cluster_events(2, &events, &wide), vec![vec![0, 1]]);
    }

    #[test]
    fn items_with_no_events_stay_singletons() {
        let events = vec![WriteEvent::new(0, 0), WriteEvent::new(1, 10)];
        let clusters = cluster_events(4, &events, &ClusterParams::default());
        assert_eq!(clusters, vec![vec![0, 1], vec![2], vec![3]]);
    }
}
