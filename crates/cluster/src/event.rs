//! Write events: the clustering engine's only input.
//!
//! Ocasta is black-box — the clustering never sees key names, values or
//! application semantics, only *which* item was written *when*. Items are
//! dense `usize` indices assigned by the caller (the `ocasta` facade maps
//! TTKV keys to indices).

/// One write to one item at one instant.
///
/// Times are plain `u64` milliseconds so the engine stays decoupled from any
/// particular clock; callers pass timestamps from whatever trace they have.
///
/// # Examples
///
/// ```
/// use ocasta_cluster::WriteEvent;
///
/// let e = WriteEvent::new(3, 1_000);
/// assert_eq!(e.item, 3);
/// assert_eq!(e.time_ms, 1_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WriteEvent {
    /// Milliseconds since the trace epoch. Field order makes the derived
    /// `Ord` sort by time first, which the transaction grouper relies on.
    pub time_ms: u64,
    /// Dense item index (assigned by the caller).
    pub item: usize,
}

impl WriteEvent {
    /// Creates a write event.
    pub fn new(item: usize, time_ms: u64) -> Self {
        WriteEvent { time_ms, item }
    }
}

/// Groups writes into *co-modification transactions* with a sliding time
/// window.
///
/// Writes are sorted by time; a transaction keeps absorbing writes while the
/// gap to the transaction's most recent write is at most `window_ms`. A
/// window of `0` groups only writes with identical timestamps (the leftmost
/// point of the paper's Figure 3a).
///
/// Each returned transaction is the sorted, deduplicated set of items written
/// in it. Transactions are ordered by time.
///
/// # Examples
///
/// ```
/// use ocasta_cluster::{transactions, WriteEvent};
///
/// let events = vec![
///     WriteEvent::new(0, 1_000),
///     WriteEvent::new(1, 1_400),   // within 1s of the previous write
///     WriteEvent::new(2, 10_000),  // far away: new transaction
/// ];
/// let txns = transactions(&events, 1_000);
/// assert_eq!(txns, vec![vec![0, 1], vec![2]]);
/// ```
pub fn transactions(events: &[WriteEvent], window_ms: u64) -> Vec<Vec<usize>> {
    let mut sorted: Vec<WriteEvent> = events.to_vec();
    sorted.sort_unstable();

    let mut window = crate::TransactionWindow::new(window_ms);
    let mut txns: Vec<Vec<usize>> = Vec::new();
    for event in sorted {
        txns.extend(window.push(event));
    }
    txns.extend(window.flush());
    txns
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(item: usize, ms: u64) -> WriteEvent {
        WriteEvent::new(item, ms)
    }

    #[test]
    fn empty_input_yields_no_transactions() {
        assert!(transactions(&[], 1000).is_empty());
    }

    #[test]
    fn window_zero_groups_identical_timestamps_only() {
        let events = vec![ev(0, 5), ev(1, 5), ev(2, 6)];
        assert_eq!(transactions(&events, 0), vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn sliding_window_chains_nearby_writes() {
        // 0 at t=0, 1 at t=900, 2 at t=1800: each gap ≤ 1000 so all three
        // chain into one transaction even though 0→2 spans 1.8s.
        let events = vec![ev(0, 0), ev(1, 900), ev(2, 1800)];
        assert_eq!(transactions(&events, 1000), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn gap_larger_than_window_splits() {
        // A gap of exactly the window chains; one past it splits.
        let events = vec![ev(0, 0), ev(1, 1000), ev(2, 2001)];
        assert_eq!(transactions(&events, 1000), vec![vec![0, 1], vec![2]]);
        let events = vec![ev(0, 0), ev(1, 1001)];
        assert_eq!(transactions(&events, 1000), vec![vec![0], vec![1]]);
    }

    #[test]
    fn repeated_items_are_deduplicated_within_a_transaction() {
        let events = vec![ev(7, 0), ev(7, 100), ev(3, 200)];
        assert_eq!(transactions(&events, 1000), vec![vec![3, 7]]);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let events = vec![ev(2, 9000), ev(0, 0), ev(1, 500)];
        assert_eq!(transactions(&events, 1000), vec![vec![0, 1], vec![2]]);
    }
}
