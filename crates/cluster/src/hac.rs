//! Hierarchical agglomerative clustering (nearest-neighbor-chain algorithm).

use crate::dendrogram::{Dendrogram, Merge};
use crate::linkage::Linkage;
use crate::matrix::DistanceMatrix;

/// Runs hierarchical agglomerative clustering over a distance matrix.
///
/// Uses the nearest-neighbor-chain algorithm, which runs in `O(n²)` time and
/// is exact for the *reducible* linkage criteria this crate offers (complete,
/// single, average). Pairs at infinite distance still merge — at distance
/// `∞` — so the result is always a full hierarchy; [`Dendrogram::cut`] at any
/// finite threshold keeps unrelated items apart.
///
/// The input matrix is consumed by copy (it is mutated during clustering);
/// pass a clone if you need it afterwards.
///
/// # Examples
///
/// ```
/// use ocasta_cluster::{hac, DistanceMatrix, Linkage};
///
/// // Two tight pairs, loosely related to each other.
/// let mut m = DistanceMatrix::new_filled(4, 10.0);
/// m.set(0, 1, 0.5);
/// m.set(2, 3, 0.6);
/// let dendro = hac(&m, Linkage::Complete);
/// assert_eq!(dendro.cut(1.0), vec![vec![0, 1], vec![2, 3]]);
/// assert_eq!(dendro.cut(10.0).len(), 1);
/// ```
#[allow(clippy::needless_range_loop)] // slot indices are compared and reused across arrays
pub fn hac(matrix: &DistanceMatrix, linkage: Linkage) -> Dendrogram {
    let n = matrix.len();
    if n < 2 {
        return Dendrogram::new(n, Vec::new());
    }

    let mut dist = matrix.clone();
    let mut active = vec![true; n];
    let mut size = vec![1usize; n];
    // `label[slot]` is the dendrogram node id currently living in `slot`.
    let mut label: Vec<usize> = (0..n).collect();
    let mut merges: Vec<Merge> = Vec::with_capacity(n - 1);
    let mut chain: Vec<usize> = Vec::with_capacity(n);
    let mut next_id = n;

    for _ in 0..(n - 1) {
        if chain.len() < 2 {
            let start = (0..n).find(|&i| active[i]).expect("an active slot remains");
            chain.clear();
            chain.push(start);
        }
        loop {
            let a = *chain.last().expect("chain is non-empty");
            let prev = chain.len().checked_sub(2).map(|i| chain[i]);
            // Nearest active neighbour of `a`, preferring the previous chain
            // element on ties (required for termination).
            let mut best: Option<usize> = None;
            let mut best_d = f64::INFINITY;
            for j in 0..n {
                if j == a || !active[j] {
                    continue;
                }
                let d = dist.get(a, j);
                let better = match best {
                    None => true,
                    Some(b) => d < best_d || (d == best_d && Some(j) == prev && Some(b) != prev),
                };
                if better {
                    best = Some(j);
                    best_d = d;
                }
            }
            let b = best.expect("at least two active slots remain");
            if Some(b) == prev {
                // Reciprocal nearest neighbours: merge slots a and b.
                chain.pop();
                chain.pop();
                let keep = a.min(b);
                let drop = a.max(b);
                let merged_size = size[a] + size[b];
                merges.push(Merge {
                    left: label[keep],
                    right: label[drop],
                    distance: best_d,
                    size: merged_size,
                });
                for k in 0..n {
                    if k == keep || k == drop || !active[k] {
                        continue;
                    }
                    let d = linkage.merge_distance(
                        dist.get(keep, k),
                        dist.get(drop, k),
                        size[keep],
                        size[drop],
                    );
                    dist.set(keep, k, d);
                }
                active[drop] = false;
                size[keep] = merged_size;
                label[keep] = next_id;
                next_id += 1;
                break;
            }
            chain.push(b);
        }
    }

    // NN-chain can emit merges out of global distance order while still
    // producing the correct hierarchy; sort stably so the dendrogram is
    // monotone, remapping node ids to the new merge order.
    sort_merges(n, &mut merges);
    Dendrogram::new(n, merges)
}

/// Stable-sorts merges by distance and rewrites internal node ids to match
/// the new order.
fn sort_merges(n_items: usize, merges: &mut Vec<Merge>) {
    let m = merges.len();
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| {
        merges[a]
            .distance
            .partial_cmp(&merges[b].distance)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    // old merge index -> new node id
    let mut remap = vec![0usize; m];
    for (new_pos, &old_pos) in order.iter().enumerate() {
        remap[old_pos] = n_items + new_pos;
    }
    let relabel = |id: usize| {
        if id < n_items {
            id
        } else {
            remap[id - n_items]
        }
    };
    let mut sorted = Vec::with_capacity(m);
    for &old_pos in &order {
        let merge = merges[old_pos];
        sorted.push(Merge {
            left: relabel(merge.left),
            right: relabel(merge.right),
            distance: merge.distance,
            size: merge.size,
        });
    }
    *merges = sorted;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(n: usize, entries: &[(usize, usize, f64)]) -> DistanceMatrix {
        let mut m = DistanceMatrix::new_filled(n, f64::INFINITY);
        for &(i, j, d) in entries {
            m.set(i, j, d);
        }
        m
    }

    #[test]
    fn trivial_sizes() {
        assert_eq!(
            hac(&DistanceMatrix::new_filled(0, 0.0), Linkage::Complete)
                .merges()
                .len(),
            0
        );
        assert_eq!(
            hac(&DistanceMatrix::new_filled(1, 0.0), Linkage::Complete)
                .merges()
                .len(),
            0
        );
        let d = hac(&matrix(2, &[(0, 1, 0.4)]), Linkage::Complete);
        assert_eq!(d.merges().len(), 1);
        assert_eq!(d.cut(0.4), vec![vec![0, 1]]);
    }

    #[test]
    fn complete_linkage_separates_loose_chains() {
        // 0-1 close, 1-2 close, but 0-2 far: complete linkage must not put
        // all three together below 0.9.
        let m = matrix(3, &[(0, 1, 0.1), (1, 2, 0.2), (0, 2, 0.9)]);
        let dendro = hac(&m, Linkage::Complete);
        assert_eq!(dendro.cut(0.5), vec![vec![0, 1], vec![2]]);
        // Single linkage chains them.
        let dendro_single = hac(&m, Linkage::Single);
        assert_eq!(dendro_single.cut(0.5), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn dendrogram_is_monotone_for_all_linkages() {
        let m = matrix(
            5,
            &[
                (0, 1, 0.3),
                (0, 2, 0.7),
                (1, 2, 0.4),
                (2, 3, 0.2),
                (3, 4, 0.9),
                (0, 4, 1.5),
            ],
        );
        for linkage in Linkage::ALL {
            let d = hac(&m, linkage);
            assert!(d.is_monotone(), "{linkage:?} produced non-monotone merges");
            assert_eq!(d.merges().len(), 4);
        }
    }

    #[test]
    fn infinite_distances_never_cluster_below_finite_threshold() {
        let m = matrix(4, &[(0, 1, 0.5), (2, 3, 0.5)]);
        let dendro = hac(&m, Linkage::Complete);
        let clusters = dendro.cut(1_000.0);
        assert_eq!(clusters, vec![vec![0, 1], vec![2, 3]]);
        // The full hierarchy still exists (merged at infinity).
        assert_eq!(dendro.merges().len(), 3);
        assert!(dendro.merges()[2].distance.is_infinite());
    }

    #[test]
    fn matches_bruteforce_on_small_inputs() {
        // Exhaustive check against a naive O(n³) implementation.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..50 {
            let n = 2 + (trial % 7);
            let mut m = DistanceMatrix::new_filled(n, 0.0);
            for i in 0..n {
                for j in (i + 1)..n {
                    // Distinct distances avoid tie ambiguity between the two
                    // algorithms.
                    m.set(i, j, rng.random_range(1..100_000) as f64 / 100.0);
                }
            }
            let fast = hac(&m, Linkage::Complete);
            let slow = naive_hac(&m, Linkage::Complete);
            let cuts = [0.5, 5.0, 50.0, 500.0];
            for &t in &cuts {
                assert_eq!(fast.cut(t), slow.cut(t), "n={n} threshold={t}");
            }
        }
    }

    /// Naive HAC: repeatedly merge the globally closest pair.
    #[allow(clippy::needless_range_loop)]
    fn naive_hac(matrix: &DistanceMatrix, linkage: Linkage) -> Dendrogram {
        let n = matrix.len();
        let mut dist = matrix.clone();
        let mut active: Vec<bool> = vec![true; n];
        let mut size = vec![1usize; n];
        let mut label: Vec<usize> = (0..n).collect();
        let mut merges = Vec::new();
        let mut next_id = n;
        for _ in 0..n.saturating_sub(1) {
            let mut best = (0, 0, f64::INFINITY);
            for i in 0..n {
                if !active[i] {
                    continue;
                }
                for j in (i + 1)..n {
                    if !active[j] {
                        continue;
                    }
                    if dist.get(i, j) < best.2 {
                        best = (i, j, dist.get(i, j));
                    }
                }
            }
            let (a, b, d) = best;
            merges.push(Merge {
                left: label[a],
                right: label[b],
                distance: d,
                size: size[a] + size[b],
            });
            for k in 0..n {
                if k == a || k == b || !active[k] {
                    continue;
                }
                let nd = linkage.merge_distance(dist.get(a, k), dist.get(b, k), size[a], size[b]);
                dist.set(a, k, nd);
            }
            active[b] = false;
            size[a] += size[b];
            label[a] = next_id;
            next_id += 1;
        }
        Dendrogram::new(n, merges)
    }
}
