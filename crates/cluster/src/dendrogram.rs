//! Cluster-merge hierarchies and threshold cuts.
//!
//! The open-source clustering library the paper builds on returns a full
//! hierarchy; the authors "added functionality to prune the results ...
//! according to a specified threshold" (§IV-C). [`Dendrogram::cut`] is that
//! pruning step.

/// One agglomerative merge in a dendrogram.
///
/// Node ids: `0..n` are the original items (leaves); the `k`-th recorded
/// merge creates node `n + k`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Merge {
    /// Node id of one merged child.
    pub left: usize,
    /// Node id of the other merged child.
    pub right: usize,
    /// Cluster distance at which the merge happened (by the chosen linkage).
    pub distance: f64,
    /// Number of leaves under the new node.
    pub size: usize,
}

/// The full merge hierarchy produced by agglomerative clustering over `n`
/// items.
///
/// Merges are recorded in the order the algorithm performed them; for the
/// monotone linkages this crate implements (complete, single, average), every
/// merge's distance is at least that of both its children, so cutting at a
/// threshold yields a well-defined flat partition.
///
/// # Examples
///
/// ```
/// use ocasta_cluster::{hac, DistanceMatrix, Linkage};
///
/// let mut m = DistanceMatrix::new_filled(3, f64::INFINITY);
/// m.set(0, 1, 0.5);
/// let dendro = hac(&m, Linkage::Complete);
/// let clusters = dendro.cut(0.5);
/// assert_eq!(clusters, vec![vec![0, 1], vec![2]]);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dendrogram {
    n_items: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Creates a dendrogram from recorded merges.
    ///
    /// # Panics
    ///
    /// Panics if more than `n_items - 1` merges are supplied.
    pub fn new(n_items: usize, merges: Vec<Merge>) -> Self {
        assert!(
            merges.len() < n_items.max(1),
            "a dendrogram over {n_items} items admits at most {} merges",
            n_items.saturating_sub(1),
        );
        Dendrogram { n_items, merges }
    }

    /// Number of original items (leaves).
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// The recorded merges, in execution order.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cuts the hierarchy at `max_distance`: applies every merge whose
    /// distance is `<= max_distance` and returns the resulting flat
    /// partition.
    ///
    /// Each cluster is a sorted list of item indices; clusters are ordered by
    /// their smallest member. Items that never merged below the threshold
    /// appear as singletons, so the result is always a partition of
    /// `0..n_items`.
    pub fn cut(&self, max_distance: f64) -> Vec<Vec<usize>> {
        let mut uf = UnionFind::new(self.n_items + self.merges.len());
        for (k, merge) in self.merges.iter().enumerate() {
            let node = self.n_items + k;
            // Always link the tree structure so later merges can reference
            // this node; only *accepted* merges link their leaf sets.
            if merge.distance <= max_distance {
                uf.union(merge.left, merge.right);
                uf.union(merge.left, node);
            } else {
                // Point the internal node at one child so ancestors that
                // somehow pass the threshold (impossible for monotone
                // linkages, but kept safe) don't panic.
                uf.attach(node, merge.left);
            }
        }
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for item in 0..self.n_items {
            groups.entry(uf.find(item)).or_default().push(item);
        }
        let mut clusters: Vec<Vec<usize>> = groups.into_values().collect();
        for c in &mut clusters {
            c.sort_unstable();
        }
        clusters.sort_by_key(|c| c[0]);
        clusters
    }

    /// Cuts at a *correlation* threshold (the paper's user-facing knob):
    /// correlation `c` corresponds to distance `1/c`.
    ///
    /// The paper's default threshold of 2 (only keys always modified
    /// together) is `cut_correlation(2.0)`; lowering it to 1 merges keys
    /// modified together at least "most of the time".
    ///
    /// # Panics
    ///
    /// Panics if `min_correlation` is not positive.
    pub fn cut_correlation(&self, min_correlation: f64) -> Vec<Vec<usize>> {
        assert!(
            min_correlation > 0.0,
            "correlation threshold must be positive, got {min_correlation}"
        );
        self.cut(1.0 / min_correlation)
    }

    /// Serialises the hierarchy in Newick tree format (with merge distances
    /// as branch annotations), for inspection in standard dendrogram
    /// viewers. Leaf `i` is labelled with `labels[i]` when provided, else
    /// its index.
    ///
    /// # Examples
    ///
    /// ```
    /// use ocasta_cluster::{hac, DistanceMatrix, Linkage};
    ///
    /// let mut m = DistanceMatrix::new_filled(3, 2.0);
    /// m.set(0, 1, 0.5);
    /// let dendro = hac(&m, Linkage::Complete);
    /// let newick = dendro.to_newick(Some(&["a", "b", "c"]));
    /// assert!(newick.starts_with('(') && newick.ends_with(';'));
    /// assert!(newick.contains("a") && newick.contains("c"));
    /// ```
    pub fn to_newick(&self, labels: Option<&[&str]>) -> String {
        fn node(id: usize, n: usize, merges: &[Merge], labels: Option<&[&str]>, out: &mut String) {
            if id < n {
                match labels.and_then(|ls| ls.get(id)) {
                    Some(label) => out.push_str(&label.replace([',', '(', ')', ';', ':'], "_")),
                    None => out.push_str(&id.to_string()),
                }
            } else {
                let merge = &merges[id - n];
                out.push('(');
                node(merge.left, n, merges, labels, out);
                out.push(',');
                node(merge.right, n, merges, labels, out);
                out.push(')');
                if merge.distance.is_finite() {
                    out.push_str(&format!(":{:.4}", merge.distance));
                }
            }
        }
        let mut out = String::new();
        match self.merges.len() {
            0 => {
                // A forest of leaves (or nothing): emit a flat tree.
                out.push('(');
                for i in 0..self.n_items {
                    if i > 0 {
                        out.push(',');
                    }
                    node(i, self.n_items, &self.merges, labels, &mut out);
                }
                out.push(')');
            }
            m => node(
                self.n_items + m - 1,
                self.n_items,
                &self.merges,
                labels,
                &mut out,
            ),
        }
        out.push(';');
        out
    }

    /// `true` if merge distances never decrease from child to parent
    /// (the monotonicity property threshold cutting relies on).
    pub fn is_monotone(&self) -> bool {
        let mut node_distance = vec![0.0f64; self.n_items + self.merges.len()];
        for (k, merge) in self.merges.iter().enumerate() {
            let child_max = node_distance[merge.left].max(node_distance[merge.right]);
            // NaN-safe: any NaN fails monotonicity.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(merge.distance >= child_max) {
                return false;
            }
            node_distance[self.n_items + k] = merge.distance;
        }
        true
    }
}

/// Minimal union-find with path halving.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }

    /// Makes `node`'s root point at `target`'s root without merging any
    /// other set into it (used for rejected merges' internal nodes).
    fn attach(&mut self, node: usize, target: usize) {
        let rn = self.find(node);
        let rt = self.find(target);
        if rn != rt {
            self.parent[rn] = rt;
        }
    }
}

/// Summary statistics over a flat partition (used by Figure 3's sweeps).
///
/// # Examples
///
/// ```
/// use ocasta_cluster::PartitionStats;
///
/// let clusters = vec![vec![0, 1, 2], vec![3], vec![4, 5]];
/// let stats = PartitionStats::from_partition(&clusters);
/// assert_eq!(stats.clusters, 3);
/// assert_eq!(stats.multi_clusters, 2);
/// assert_eq!(stats.mean_multi_cluster_size(), 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PartitionStats {
    /// Total clusters, including singletons.
    pub clusters: usize,
    /// Clusters with more than one item (the paper's `#Clusters` numerator
    /// population in Table II).
    pub multi_clusters: usize,
    /// Total items covered.
    pub items: usize,
    /// Items inside multi-item clusters.
    pub items_in_multi: usize,
    /// Size of the largest cluster.
    pub max_cluster_size: usize,
}

impl PartitionStats {
    /// Computes statistics for a partition.
    pub fn from_partition(partition: &[Vec<usize>]) -> Self {
        let mut stats = PartitionStats::default();
        for cluster in partition {
            stats.clusters += 1;
            stats.items += cluster.len();
            stats.max_cluster_size = stats.max_cluster_size.max(cluster.len());
            if cluster.len() > 1 {
                stats.multi_clusters += 1;
                stats.items_in_multi += cluster.len();
            }
        }
        stats
    }

    /// Mean size of multi-item clusters (Figure 3's y-axis), or 0 if there
    /// are none.
    pub fn mean_multi_cluster_size(&self) -> f64 {
        if self.multi_clusters == 0 {
            0.0
        } else {
            self.items_in_multi as f64 / self.multi_clusters as f64
        }
    }

    /// Mean size over all clusters, singletons included.
    pub fn mean_cluster_size(&self) -> f64 {
        if self.clusters == 0 {
            0.0
        } else {
            self.items as f64 / self.clusters as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_dendrogram() -> Dendrogram {
        // Items 0..4; merge (0,1)@0.2 -> node 4; (4,2)@0.5 -> node 5;
        // (5,3)@1.0 -> node 6.
        Dendrogram::new(
            4,
            vec![
                Merge {
                    left: 0,
                    right: 1,
                    distance: 0.2,
                    size: 2,
                },
                Merge {
                    left: 4,
                    right: 2,
                    distance: 0.5,
                    size: 3,
                },
                Merge {
                    left: 5,
                    right: 3,
                    distance: 1.0,
                    size: 4,
                },
            ],
        )
    }

    #[test]
    fn cut_produces_partitions_at_each_level() {
        let d = chain_dendrogram();
        assert_eq!(d.cut(0.1), vec![vec![0], vec![1], vec![2], vec![3]]);
        assert_eq!(d.cut(0.2), vec![vec![0, 1], vec![2], vec![3]]);
        assert_eq!(d.cut(0.5), vec![vec![0, 1, 2], vec![3]]);
        assert_eq!(d.cut(2.0), vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn cut_correlation_inverts_threshold() {
        let d = chain_dendrogram();
        // correlation 2 ⇒ distance 0.5
        assert_eq!(d.cut_correlation(2.0), d.cut(0.5));
        assert_eq!(d.cut_correlation(1.0), d.cut(1.0));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn cut_correlation_rejects_zero() {
        chain_dendrogram().cut_correlation(0.0);
    }

    #[test]
    fn monotonicity_detection() {
        assert!(chain_dendrogram().is_monotone());
        let bad = Dendrogram::new(
            3,
            vec![
                Merge {
                    left: 0,
                    right: 1,
                    distance: 1.0,
                    size: 2,
                },
                Merge {
                    left: 3,
                    right: 2,
                    distance: 0.5,
                    size: 3,
                },
            ],
        );
        assert!(!bad.is_monotone());
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_merges_rejected() {
        Dendrogram::new(
            2,
            vec![
                Merge {
                    left: 0,
                    right: 1,
                    distance: 0.1,
                    size: 2,
                },
                Merge {
                    left: 2,
                    right: 0,
                    distance: 0.2,
                    size: 2,
                },
            ],
        );
    }

    #[test]
    fn newick_export_shape() {
        let d = chain_dendrogram();
        let newick = d.to_newick(None);
        assert_eq!(newick, "(((0,1):0.2000,2):0.5000,3):1.0000;");
        let labelled = d.to_newick(Some(&["max", "item,1", "item2", "noise"]));
        assert!(
            labelled.contains("item_1"),
            "separators sanitised: {labelled}"
        );
        // No merges: flat forest form.
        let flat = Dendrogram::new(3, vec![]);
        assert_eq!(flat.to_newick(None), "(0,1,2);");
    }

    #[test]
    fn partition_stats() {
        let stats = PartitionStats::from_partition(&[vec![0, 1], vec![2], vec![3, 4, 5]]);
        assert_eq!(stats.clusters, 3);
        assert_eq!(stats.multi_clusters, 2);
        assert_eq!(stats.items, 6);
        assert_eq!(stats.items_in_multi, 5);
        assert_eq!(stats.max_cluster_size, 3);
        assert_eq!(stats.mean_multi_cluster_size(), 2.5);
        assert_eq!(stats.mean_cluster_size(), 2.0);
        assert_eq!(PartitionStats::default().mean_multi_cluster_size(), 0.0);
    }
}
