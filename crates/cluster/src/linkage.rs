//! Linkage criteria for hierarchical agglomerative clustering.

/// How the distance between two clusters is derived from item distances.
///
/// Ocasta uses [`Linkage::Complete`] (the paper's "maximum linkage
/// criterion", which prior work found to outperform the alternatives for
/// software clustering). [`Linkage::Single`] and [`Linkage::Average`] are
/// provided for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Linkage {
    /// Maximum distance between any two items across the clusters
    /// (the paper's default).
    #[default]
    Complete,
    /// Minimum distance between any two items across the clusters.
    Single,
    /// Unweighted average of pairwise distances (UPGMA).
    Average,
}

impl Linkage {
    /// Lance–Williams update: the distance from cluster `k` to the merge of
    /// clusters `i` and `j`, given `d(i,k)`, `d(j,k)` and the cluster sizes.
    #[inline]
    pub fn merge_distance(self, d_ik: f64, d_jk: f64, size_i: usize, size_j: usize) -> f64 {
        match self {
            Linkage::Complete => d_ik.max(d_jk),
            Linkage::Single => d_ik.min(d_jk),
            Linkage::Average => {
                let (ni, nj) = (size_i as f64, size_j as f64);
                // Both arms infinite ⇒ infinite; one infinite arm keeps the
                // average infinite, which is the correct "still unrelated to
                // that side" semantics for sparse correlation graphs.
                (ni * d_ik + nj * d_jk) / (ni + nj)
            }
        }
    }

    /// Human-readable name used in bench output.
    pub fn name(self) -> &'static str {
        match self {
            Linkage::Complete => "complete",
            Linkage::Single => "single",
            Linkage::Average => "average",
        }
    }

    /// All supported criteria (for sweeps).
    pub const ALL: [Linkage; 3] = [Linkage::Complete, Linkage::Single, Linkage::Average];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_takes_max() {
        assert_eq!(Linkage::Complete.merge_distance(1.0, 3.0, 1, 1), 3.0);
        assert!(Linkage::Complete
            .merge_distance(1.0, f64::INFINITY, 1, 1)
            .is_infinite());
    }

    #[test]
    fn single_takes_min() {
        assert_eq!(Linkage::Single.merge_distance(1.0, 3.0, 1, 1), 1.0);
        assert_eq!(
            Linkage::Single.merge_distance(1.0, f64::INFINITY, 1, 1),
            1.0
        );
    }

    #[test]
    fn average_weights_by_size() {
        // sizes 1 and 3: (1*2 + 3*6) / 4 = 5
        assert_eq!(Linkage::Average.merge_distance(2.0, 6.0, 1, 3), 5.0);
        assert!(Linkage::Average
            .merge_distance(2.0, f64::INFINITY, 1, 1)
            .is_infinite());
    }

    #[test]
    fn default_is_complete() {
        assert_eq!(Linkage::default(), Linkage::Complete);
        assert_eq!(Linkage::default().name(), "complete");
    }
}
