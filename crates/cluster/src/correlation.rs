//! The paper's correlation metric over co-modification transactions.

use std::collections::HashMap;

use crate::matrix::DistanceMatrix;

/// Pairwise co-modification statistics for a set of items.
///
/// For items `A` and `B`, with `|A|` the number of transactions in which `A`
/// was written and `|A∩B|` the number of transactions in which both were
/// written, the paper defines (§III-A):
///
/// ```text
/// correlation(A, B) = |A∩B| / |A|  +  |A∩B| / |B|
/// ```
///
/// The metric is 2 when both keys are always modified together and 0 when
/// they never are. The clustering distance is its inverse, so the paper's
/// default correlation threshold of 2 is a distance threshold of 0.5.
///
/// `Correlations` stores only pairs that co-occur at least once, so it stays
/// sparse even for large key populations.
///
/// # Examples
///
/// ```
/// use ocasta_cluster::{transactions, Correlations, WriteEvent};
///
/// let events = vec![
///     WriteEvent::new(0, 0), WriteEvent::new(1, 10),      // txn 1: {0, 1}
///     WriteEvent::new(0, 60_000), WriteEvent::new(1, 60_010), // txn 2: {0, 1}
///     WriteEvent::new(2, 120_000),                        // txn 3: {2}
/// ];
/// let corr = Correlations::from_transactions(3, &transactions(&events, 1_000));
/// assert_eq!(corr.correlation(0, 1), 2.0);  // always together
/// assert_eq!(corr.correlation(0, 2), 0.0);  // never together
/// assert_eq!(corr.distance(0, 1), 0.5);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Correlations {
    n_items: usize,
    /// Per-item transaction membership count (`|A|`).
    txn_counts: Vec<u32>,
    /// Per-pair joint count (`|A∩B|`), keyed by `(min, max)` item index.
    pair_counts: HashMap<(u32, u32), u32>,
}

impl Correlations {
    /// Builds correlation statistics from co-modification transactions (as
    /// produced by [`crate::transactions`]).
    ///
    /// # Panics
    ///
    /// Panics if a transaction mentions an item index `>= n_items`.
    pub fn from_transactions(n_items: usize, txns: &[Vec<usize>]) -> Self {
        let mut txn_counts = vec![0u32; n_items];
        let mut pair_counts: HashMap<(u32, u32), u32> = HashMap::new();
        for txn in txns {
            for (pos, &a) in txn.iter().enumerate() {
                assert!(a < n_items, "item {a} out of range ({n_items} items)");
                txn_counts[a] += 1;
                for &b in &txn[pos + 1..] {
                    let pair = (a.min(b) as u32, a.max(b) as u32);
                    *pair_counts.entry(pair).or_insert(0) += 1;
                }
            }
        }
        Correlations {
            n_items,
            txn_counts,
            pair_counts,
        }
    }

    /// Builds correlation statistics directly from maintained counts (the
    /// streaming path's exit point).
    pub(crate) fn from_counts(
        n_items: usize,
        txn_counts: Vec<u32>,
        pair_counts: HashMap<(u32, u32), u32>,
    ) -> Self {
        debug_assert_eq!(txn_counts.len(), n_items);
        Correlations {
            n_items,
            txn_counts,
            pair_counts,
        }
    }

    /// Relabels items through a permutation: item `i` becomes `perm[i]`.
    ///
    /// Streaming discovers items in arrival order while the batch pipeline
    /// numbers keys in sorted-name order; relabeling lets the two paths meet
    /// on one canonical index space before clustering (index order matters
    /// for HAC tie-breaking, so equality of the final partitions requires
    /// it).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..len()`.
    pub fn relabeled(&self, perm: &[usize]) -> Correlations {
        assert_eq!(perm.len(), self.n_items, "permutation covers every item");
        let mut txn_counts = vec![0u32; self.n_items];
        let mut seen = vec![false; self.n_items];
        for (old, &new) in perm.iter().enumerate() {
            assert!(
                new < self.n_items && !seen[new],
                "perm is a bijection onto 0..{}",
                self.n_items
            );
            seen[new] = true;
            txn_counts[new] = self.txn_counts[old];
        }
        let pair_counts = self
            .pair_counts
            .iter()
            .map(|(&(a, b), &count)| {
                let (pa, pb) = (perm[a as usize] as u32, perm[b as usize] as u32);
                ((pa.min(pb), pa.max(pb)), count)
            })
            .collect();
        Correlations {
            n_items: self.n_items,
            txn_counts,
            pair_counts,
        }
    }

    /// Number of items covered.
    pub fn len(&self) -> usize {
        self.n_items
    }

    /// `true` if no items are covered.
    pub fn is_empty(&self) -> bool {
        self.n_items == 0
    }

    /// `|A|`: the number of transactions that wrote item `a`.
    pub fn txn_count(&self, a: usize) -> u32 {
        self.txn_counts[a]
    }

    /// `|A∩B|`: the number of transactions that wrote both items.
    pub fn joint_count(&self, a: usize, b: usize) -> u32 {
        if a == b {
            return self.txn_counts[a];
        }
        let pair = (a.min(b) as u32, a.max(b) as u32);
        self.pair_counts.get(&pair).copied().unwrap_or(0)
    }

    /// The paper's correlation metric, in `[0, 2]`.
    ///
    /// Returns 0 when either item has no writes (the paper's metric is
    /// undefined there; such items never cluster).
    pub fn correlation(&self, a: usize, b: usize) -> f64 {
        let (ca, cb) = (self.txn_counts[a], self.txn_counts[b]);
        if ca == 0 || cb == 0 {
            return 0.0;
        }
        let joint = f64::from(self.joint_count(a, b));
        joint / f64::from(ca) + joint / f64::from(cb)
    }

    /// The clustering distance: the inverse of [`Self::correlation`]
    /// (`f64::INFINITY` for correlation 0).
    pub fn distance(&self, a: usize, b: usize) -> f64 {
        let c = self.correlation(a, b);
        if c == 0.0 {
            f64::INFINITY
        } else {
            1.0 / c
        }
    }

    /// Pairs with non-zero correlation, as `(a, b, correlation)` with
    /// `a < b`, in unspecified order.
    pub fn correlated_pairs(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.pair_counts
            .keys()
            .map(|&(a, b)| (a as usize, b as usize))
            .map(|(a, b)| (a, b, self.correlation(a, b)))
    }

    /// Materialises the full condensed distance matrix (unrelated pairs get
    /// `f64::INFINITY`).
    ///
    /// The matrix is dense — `n(n-1)/2` entries — which is fine for per-
    /// application key populations (hundreds of written keys); callers
    /// clustering tens of thousands of keys should partition by application
    /// first, as Ocasta does.
    pub fn to_distance_matrix(&self) -> DistanceMatrix {
        let mut m = DistanceMatrix::new_filled(self.n_items, f64::INFINITY);
        for &(a, b) in self.pair_counts.keys() {
            let (a, b) = (a as usize, b as usize);
            m.set(a, b, self.distance(a, b));
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// txns: {0,1}, {0,1}, {0,2}, {0}
    fn sample() -> Correlations {
        let txns = vec![vec![0, 1], vec![0, 1], vec![0, 2], vec![0]];
        Correlations::from_transactions(3, &txns)
    }

    #[test]
    fn counts_match_definition() {
        let c = sample();
        assert_eq!(c.txn_count(0), 4);
        assert_eq!(c.txn_count(1), 2);
        assert_eq!(c.txn_count(2), 1);
        assert_eq!(c.joint_count(0, 1), 2);
        assert_eq!(c.joint_count(1, 2), 0);
        assert_eq!(c.joint_count(1, 1), 2);
    }

    #[test]
    fn correlation_matches_formula() {
        let c = sample();
        // |0∩1|/|0| + |0∩1|/|1| = 2/4 + 2/2 = 1.5
        assert_eq!(c.correlation(0, 1), 1.5);
        assert_eq!(c.correlation(1, 0), 1.5);
        assert_eq!(c.correlation(1, 2), 0.0);
        // 1/4 + 1/1 = 1.25
        assert_eq!(c.correlation(0, 2), 1.25);
    }

    #[test]
    fn distance_is_inverse_correlation() {
        let c = sample();
        assert_eq!(c.distance(0, 1), 1.0 / 1.5);
        assert!(c.distance(1, 2).is_infinite());
    }

    #[test]
    fn always_together_is_correlation_two() {
        let txns = vec![vec![0, 1]; 5];
        let c = Correlations::from_transactions(2, &txns);
        assert_eq!(c.correlation(0, 1), 2.0);
        assert_eq!(c.distance(0, 1), 0.5);
    }

    #[test]
    fn unwritten_items_have_zero_correlation() {
        let txns = vec![vec![0]];
        let c = Correlations::from_transactions(2, &txns);
        assert_eq!(c.correlation(0, 1), 0.0);
        assert!(c.distance(0, 1).is_infinite());
    }

    #[test]
    fn matrix_agrees_with_pointwise_distance() {
        let c = sample();
        let m = c.to_distance_matrix();
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert_eq!(m.get(i, j), c.distance(i, j));
            }
        }
    }

    #[test]
    fn relabeling_permutes_counts_and_pairs() {
        let c = sample();
        // Reverse the items: 0→2, 1→1, 2→0.
        let r = c.relabeled(&[2, 1, 0]);
        for a in 0..3 {
            for b in 0..3 {
                assert_eq!(r.correlation(2 - a, 2 - b), c.correlation(a, b));
            }
        }
        // The identity relabeling is a no-op.
        assert_eq!(c.relabeled(&[0, 1, 2]), c);
    }

    #[test]
    #[should_panic(expected = "bijection")]
    fn relabeling_rejects_non_permutations() {
        sample().relabeled(&[0, 0, 1]);
    }

    #[test]
    fn correlated_pairs_lists_cooccurring_only() {
        let c = sample();
        let mut pairs: Vec<_> = c.correlated_pairs().map(|(a, b, _)| (a, b)).collect();
        pairs.sort();
        assert_eq!(pairs, vec![(0, 1), (0, 2)]);
    }
}
