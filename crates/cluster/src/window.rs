//! The sliding-window transaction core shared by batch and streaming
//! grouping.
//!
//! Both [`crate::transactions`] (sort the whole history, group once) and
//! [`crate::IncrementalCorrelations`] (absorb events as they arrive) need
//! the same rule: a transaction keeps absorbing writes while the gap to its
//! most recent write is at most the window. Keeping that rule in one place
//! is what makes the streaming path *provably* equal to the batch path —
//! the equivalence property tests exercise both through this type.

use crate::event::WriteEvent;

/// Online transaction grouper over a time-sorted event feed.
///
/// Feed events in non-decreasing time order; each [`TransactionWindow::push`]
/// returns the transaction it *closed* (if the new event's gap exceeded the
/// window), and [`TransactionWindow::flush`] closes the final open
/// transaction at end of stream. Closed transactions are sorted, deduplicated
/// item sets — exactly what [`crate::Correlations::from_transactions`]
/// consumes.
///
/// # Examples
///
/// ```
/// use ocasta_cluster::{TransactionWindow, WriteEvent};
///
/// let mut w = TransactionWindow::new(1_000);
/// assert_eq!(w.push(WriteEvent::new(0, 0)), None);
/// assert_eq!(w.push(WriteEvent::new(1, 400)), None);
/// // 10s later: the open transaction {0, 1} closes.
/// assert_eq!(w.push(WriteEvent::new(2, 10_000)), Some(vec![0, 1]));
/// assert_eq!(w.flush(), Some(vec![2]));
/// assert_eq!(w.flush(), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransactionWindow {
    window_ms: u64,
    items: Vec<usize>,
    last_time: Option<u64>,
    start_time: Option<u64>,
}

impl TransactionWindow {
    /// Creates a grouper with the given sliding window (milliseconds).
    pub fn new(window_ms: u64) -> Self {
        TransactionWindow {
            window_ms,
            items: Vec::new(),
            last_time: None,
            start_time: None,
        }
    }

    /// The sliding window, in milliseconds.
    pub fn window_ms(&self) -> u64 {
        self.window_ms
    }

    /// Time of the most recent event absorbed into the open transaction.
    pub fn last_time(&self) -> Option<u64> {
        self.last_time
    }

    /// Time of the *first* event of the open transaction — the transaction's
    /// start time, which is how the repair search names rollback versions
    /// (roll back "the transaction that started at `t`").
    pub fn open_since(&self) -> Option<u64> {
        self.start_time
    }

    /// `true` if a transaction is currently open.
    pub fn is_open(&self) -> bool {
        self.last_time.is_some()
    }

    /// `true` if an event at `time_ms` would close the open transaction
    /// (it is more than one window past the most recent write).
    pub fn would_close(&self, time_ms: u64) -> bool {
        self.last_time
            .is_some_and(|prev| time_ms.saturating_sub(prev) > self.window_ms)
    }

    /// Absorbs one event; returns the transaction it closed, if any.
    ///
    /// Events must arrive in non-decreasing time order (earlier times are
    /// treated as a zero gap, matching the batch grouper's behavior on its
    /// pre-sorted input).
    pub fn push(&mut self, event: WriteEvent) -> Option<Vec<usize>> {
        let closed = if self.would_close(event.time_ms) {
            self.start_time = None;
            Some(Self::seal(std::mem::take(&mut self.items)))
        } else {
            None
        };
        self.items.push(event.item);
        if self.start_time.is_none() {
            self.start_time = Some(event.time_ms);
        }
        self.last_time = Some(event.time_ms);
        closed
    }

    /// Closes the open transaction at end of stream (or at a watermark far
    /// enough past it), returning it if one was open.
    pub fn flush(&mut self) -> Option<Vec<usize>> {
        self.last_time.take()?;
        self.start_time = None;
        Some(Self::seal(std::mem::take(&mut self.items)))
    }

    /// Normalises a closed transaction: sorted, deduplicated items.
    fn seal(mut items: Vec<usize>) -> Vec<usize> {
        items.sort_unstable();
        items.dedup();
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(item: usize, ms: u64) -> WriteEvent {
        WriteEvent::new(item, ms)
    }

    #[test]
    fn empty_window_flushes_nothing() {
        let mut w = TransactionWindow::new(1_000);
        assert!(!w.is_open());
        assert_eq!(w.flush(), None);
    }

    #[test]
    fn chains_within_window_and_closes_past_it() {
        let mut w = TransactionWindow::new(1_000);
        assert_eq!(w.push(ev(0, 0)), None);
        assert_eq!(w.push(ev(1, 900)), None);
        assert_eq!(w.push(ev(2, 1_800)), None, "gap 900 chains");
        assert_eq!(w.push(ev(3, 3_000)), Some(vec![0, 1, 2]));
        assert_eq!(w.flush(), Some(vec![3]));
    }

    #[test]
    fn gap_of_exactly_the_window_chains() {
        let mut w = TransactionWindow::new(1_000);
        w.push(ev(0, 0));
        assert!(!w.would_close(1_000));
        assert!(w.would_close(1_001));
    }

    #[test]
    fn closed_transactions_are_sorted_and_deduped() {
        let mut w = TransactionWindow::new(100);
        w.push(ev(7, 0));
        w.push(ev(3, 10));
        w.push(ev(7, 20));
        assert_eq!(w.flush(), Some(vec![3, 7]));
    }

    #[test]
    fn open_since_names_the_transaction_start() {
        let mut w = TransactionWindow::new(1_000);
        assert_eq!(w.open_since(), None);
        w.push(ev(0, 500));
        assert_eq!(w.open_since(), Some(500));
        w.push(ev(1, 1_200)); // chains: start unchanged
        assert_eq!(w.open_since(), Some(500));
        w.push(ev(2, 9_000)); // closes {0,1}; 9000 starts the next
        assert_eq!(w.open_since(), Some(9_000));
        w.flush();
        assert_eq!(w.open_since(), None);
    }

    #[test]
    fn flush_resets_for_reuse() {
        let mut w = TransactionWindow::new(100);
        w.push(ev(1, 0));
        assert_eq!(w.flush(), Some(vec![1]));
        assert!(!w.is_open());
        w.push(ev(2, 5_000));
        assert_eq!(w.flush(), Some(vec![2]));
    }
}
