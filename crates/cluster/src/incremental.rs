//! Streaming correlation maintenance: the batch pipeline's statistics,
//! computed one event at a time.
//!
//! The batch path records a full history, then runs
//! [`crate::transactions`] → [`crate::Correlations::from_transactions`]
//! once — an O(history) rescan per query. [`IncrementalCorrelations`]
//! maintains the same statistics *online*: events are buffered in a small
//! reorder window, a **watermark** seals the prefix that can no longer
//! change, sealed events flow through the shared [`TransactionWindow`]
//! core, and every transaction that closes updates the sparse pair counts
//! in place. A query is then O(current state), not O(all events ever seen)
//! — and by construction (one windowing core, one counting rule) the
//! result is *exactly* the batch result on the same input, which the
//! equivalence property tests assert.

use std::collections::{BTreeSet, HashMap};

use crate::correlation::Correlations;
use crate::event::WriteEvent;
use crate::window::TransactionWindow;

/// Online co-modification statistics with watermark-based sealing.
///
/// ## Protocol
///
/// * [`observe`](Self::observe) buffers an event. Events may arrive in any
///   order as long as they are not older than the current watermark.
/// * [`advance_watermark`](Self::advance_watermark)`(w)` promises that no
///   later event will have a time below `w`; everything at or below `w` is
///   committed through the shared windowing core and folded into the pair
///   counts. With a time-ordered feed, advancing the watermark to each
///   event's time keeps the reorder buffer bounded by one window of events
///   — O(window) state, O(log window) per event.
/// * [`snapshot`](Self::snapshot) answers a query *now*: it combines the
///   committed counts with an optimistic drain of the buffer, as if the
///   stream ended at this instant.
/// * [`finalize`](Self::finalize) consumes the stream end: the result is
///   equal to the batch computation over every event ever observed.
///
/// Items are dense indices discovered on the fly; the item space grows to
/// `max item + 1` (pre-size it with [`with_items`](Self::with_items) to
/// compare against a batch run over a fixed universe).
///
/// # Examples
///
/// ```
/// use ocasta_cluster::{transactions, Correlations, IncrementalCorrelations, WriteEvent};
///
/// let events = vec![
///     WriteEvent::new(0, 0), WriteEvent::new(1, 10),
///     WriteEvent::new(0, 60_000), WriteEvent::new(1, 60_010),
///     WriteEvent::new(2, 120_000),
/// ];
/// let mut incr = IncrementalCorrelations::new(1_000);
/// for &e in &events {
///     incr.observe(e);
///     incr.advance_watermark(e.time_ms); // time-ordered feed: seal as we go
/// }
/// let batch = Correlations::from_transactions(3, &transactions(&events, 1_000));
/// assert_eq!(incr.finalize(), batch);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IncrementalCorrelations {
    /// Reorder buffer: events newer than the watermark, in (time, item)
    /// order — the order the batch path's sort would visit them in.
    /// Duplicate (time, item) pairs are collapsed; a transaction
    /// deduplicates its items anyway, and two events with identical time
    /// and item can never land in different transactions.
    pending: BTreeSet<(u64, usize)>,
    /// The open-transaction state over the sealed prefix.
    window: TransactionWindow,
    /// Everything at or below this time is sealed.
    watermark_ms: u64,
    /// Per-item transaction membership counts (committed transactions).
    txn_counts: Vec<u32>,
    /// Per-pair joint counts (committed transactions).
    pair_counts: HashMap<(u32, u32), u32>,
    /// Dense item space size: `max observed item + 1`.
    n_items: usize,
    /// Total events observed (before deduplication).
    events: u64,
    /// Latest event time observed.
    max_time_ms: Option<u64>,
}

impl IncrementalCorrelations {
    /// Creates an empty accumulator with the given co-modification window
    /// (milliseconds). The item space grows as events arrive.
    pub fn new(window_ms: u64) -> Self {
        IncrementalCorrelations {
            window: TransactionWindow::new(window_ms),
            ..IncrementalCorrelations::default()
        }
    }

    /// Like [`new`](Self::new), pre-sizing the item space so the result
    /// covers `0..n_items` even for items that never receive an event.
    pub fn with_items(n_items: usize, window_ms: u64) -> Self {
        let mut incr = Self::new(window_ms);
        incr.n_items = n_items;
        incr.txn_counts = vec![0; n_items];
        incr
    }

    /// The sliding co-modification window, in milliseconds.
    pub fn window_ms(&self) -> u64 {
        self.window.window_ms()
    }

    /// Current item-space size (`max observed item + 1`, or the pre-sized
    /// floor).
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Total events observed so far.
    pub fn events_observed(&self) -> u64 {
        self.events
    }

    /// Events buffered above the watermark (the reorder window).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The sealed horizon: every event at or below this time is final.
    pub fn watermark_ms(&self) -> u64 {
        self.watermark_ms
    }

    /// Latest event time observed, if any.
    pub fn max_time_ms(&self) -> Option<u64> {
        self.max_time_ms
    }

    /// Buffers one event.
    ///
    /// # Panics
    ///
    /// Panics if the event is older than the watermark — the caller
    /// promised (via [`advance_watermark`](Self::advance_watermark)) that
    /// such events no longer arrive, and silently accepting one would break
    /// the streaming == batch equivalence this type guarantees.
    pub fn observe(&mut self, event: WriteEvent) {
        assert!(
            event.time_ms >= self.watermark_ms,
            "event at {}ms arrived behind the watermark ({}ms)",
            event.time_ms,
            self.watermark_ms,
        );
        if event.item >= self.n_items {
            self.n_items = event.item + 1;
            self.txn_counts.resize(self.n_items, 0);
        }
        self.events += 1;
        self.max_time_ms = Some(
            self.max_time_ms
                .map_or(event.time_ms, |t| t.max(event.time_ms)),
        );
        self.pending.insert((event.time_ms, event.item));
    }

    /// Buffers a batch of events (any order within the batch).
    pub fn observe_batch(&mut self, events: impl IntoIterator<Item = WriteEvent>) {
        for event in events {
            self.observe(event);
        }
    }

    /// Seals every event at or below `watermark_ms`: commits them through
    /// the windowing core and folds closed transactions into the counts.
    ///
    /// The caller promises that no event observed later has
    /// `time_ms < watermark_ms`. Watermarks are monotone: an older value
    /// does not rewind, but the drain still runs — events are allowed to
    /// arrive *at* the watermark, so re-sealing at the same time must
    /// commit anything that landed there since the last call.
    pub fn advance_watermark(&mut self, watermark_ms: u64) {
        self.watermark_ms = self.watermark_ms.max(watermark_ms);
        // Drain the sealed prefix of the reorder buffer in (time, item)
        // order — the exact order the batch sort visits.
        while let Some(&(time, item)) = self.pending.first() {
            if time > self.watermark_ms {
                break;
            }
            self.pending.remove(&(time, item));
            let closed = self.window.push(WriteEvent::new(item, time));
            if let Some(txn) = closed {
                commit_txn(&txn, &mut self.txn_counts, &mut self.pair_counts);
            }
        }
        // If the watermark is already more than one window past the open
        // transaction's last write, no future event can extend it.
        if self.window.would_close(self.watermark_ms) {
            if let Some(txn) = self.window.flush() {
                commit_txn(&txn, &mut self.txn_counts, &mut self.pair_counts);
            }
        }
    }

    /// The correlation statistics as of *right now*: committed counts plus
    /// an optimistic drain of the reorder buffer, as if the stream ended at
    /// this instant. O(pending + pairs), independent of history length.
    pub fn snapshot(&self) -> Correlations {
        let mut txn_counts = self.txn_counts.clone();
        let mut pair_counts = self.pair_counts.clone();
        let mut window = self.window.clone();
        for &(time, item) in &self.pending {
            if let Some(txn) = window.push(WriteEvent::new(item, time)) {
                commit_txn(&txn, &mut txn_counts, &mut pair_counts);
            }
        }
        if let Some(txn) = window.flush() {
            commit_txn(&txn, &mut txn_counts, &mut pair_counts);
        }
        Correlations::from_counts(self.n_items, txn_counts, pair_counts)
    }

    /// Ends the stream: seals everything and returns the final statistics —
    /// equal to the batch computation over every observed event.
    pub fn finalize(mut self) -> Correlations {
        self.advance_watermark(u64::MAX);
        Correlations::from_counts(self.n_items, self.txn_counts, self.pair_counts)
    }
}

/// Folds one closed transaction into the count tables.
fn commit_txn(txn: &[usize], txn_counts: &mut [u32], pair_counts: &mut HashMap<(u32, u32), u32>) {
    for (pos, &a) in txn.iter().enumerate() {
        txn_counts[a] += 1;
        for &b in &txn[pos + 1..] {
            // Closed transactions are sorted, so a < b already.
            *pair_counts.entry((a as u32, b as u32)).or_insert(0) += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::transactions;

    fn ev(item: usize, ms: u64) -> WriteEvent {
        WriteEvent::new(item, ms)
    }

    fn batch(n: usize, events: &[WriteEvent], window: u64) -> Correlations {
        Correlations::from_transactions(n, &transactions(events, window))
    }

    #[test]
    fn empty_stream_finalizes_empty() {
        let incr = IncrementalCorrelations::new(1_000);
        let corr = incr.finalize();
        assert!(corr.is_empty());
    }

    #[test]
    fn ordered_feed_with_watermarks_equals_batch() {
        let events = vec![
            ev(0, 0),
            ev(1, 100),
            ev(0, 5_000),
            ev(2, 5_500),
            ev(1, 5_900),
            ev(0, 60_000),
        ];
        let mut incr = IncrementalCorrelations::with_items(3, 1_000);
        for &e in &events {
            incr.observe(e);
            incr.advance_watermark(e.time_ms);
        }
        assert_eq!(incr.finalize(), batch(3, &events, 1_000));
    }

    #[test]
    fn out_of_order_within_the_unsealed_suffix_equals_batch() {
        // Events arrive shuffled; no watermark is advanced until the end.
        let events = vec![
            ev(2, 5_500),
            ev(0, 0),
            ev(1, 5_900),
            ev(1, 100),
            ev(0, 5_000),
        ];
        let mut incr = IncrementalCorrelations::with_items(3, 1_000);
        incr.observe_batch(events.iter().copied());
        assert_eq!(incr.finalize(), batch(3, &events, 1_000));
    }

    #[test]
    fn snapshot_matches_finalize_at_stream_end() {
        let events = [ev(0, 0), ev(1, 10), ev(2, 9_000), ev(0, 9_100)];
        let mut incr = IncrementalCorrelations::with_items(3, 1_000);
        incr.observe_batch(events.iter().copied());
        let snap = incr.snapshot();
        assert_eq!(snap, incr.finalize());
    }

    #[test]
    fn snapshot_reflects_the_open_transaction() {
        let mut incr = IncrementalCorrelations::new(1_000);
        incr.observe(ev(0, 0));
        incr.observe(ev(1, 100));
        // Still one open transaction; a snapshot counts it as if closed.
        let snap = incr.snapshot();
        assert_eq!(snap.joint_count(0, 1), 1);
        assert_eq!(snap.correlation(0, 1), 2.0);
        // The live state is untouched by the snapshot.
        assert_eq!(incr.pending_len(), 2);
    }

    #[test]
    fn watermark_seals_and_bounds_the_buffer() {
        let mut incr = IncrementalCorrelations::new(1_000);
        for burst in 0..50u64 {
            let t = burst * 10_000;
            incr.observe(ev(0, t));
            incr.observe(ev(1, t + 10));
            assert_eq!(incr.pending_len(), 2, "both events buffered");
            // Sealing at the latest time drains the buffer completely —
            // everything at or below the watermark commits.
            incr.advance_watermark(t + 10);
            assert_eq!(incr.pending_len(), 0, "burst {burst} fully sealed");
        }
        assert_eq!(incr.watermark_ms(), 49 * 10_000 + 10);
        let corr = incr.finalize();
        assert_eq!(corr.joint_count(0, 1), 50);
        assert_eq!(corr.correlation(0, 1), 2.0);
    }

    #[test]
    fn lagged_watermark_keeps_only_the_unsealed_suffix_buffered() {
        // A realistic allowed-lateness regime: seal one window behind the
        // newest event. Only events above the lagged watermark may remain
        // buffered, and the lag must not change any answer.
        let window = 1_000u64;
        let events: Vec<WriteEvent> = (0..60u64)
            .flat_map(|burst| {
                let t = burst * 3_000;
                [ev(0, t), ev(1, t + 10)]
            })
            .collect();
        let mut incr = IncrementalCorrelations::with_items(2, window);
        for &e in &events {
            incr.observe(e);
            let lagged = e.time_ms.saturating_sub(window);
            incr.advance_watermark(lagged);
            let above = events
                .iter()
                .take_while(|o| o.time_ms <= e.time_ms)
                .filter(|o| o.time_ms > lagged)
                .count();
            assert!(
                incr.pending_len() <= above,
                "pending {} > {} unsealed at {}ms",
                incr.pending_len(),
                above,
                e.time_ms
            );
        }
        assert!(incr.pending_len() > 0, "the lag leaves a live suffix");
        assert_eq!(incr.finalize(), batch(2, &events, window));
    }

    #[test]
    fn watermark_is_monotone() {
        let mut incr = IncrementalCorrelations::new(1_000);
        incr.observe(ev(0, 5_000));
        incr.advance_watermark(10_000);
        incr.advance_watermark(3_000); // no-op, not a rewind
        assert_eq!(incr.watermark_ms(), 10_000);
    }

    #[test]
    fn resealing_at_the_same_watermark_commits_at_watermark_arrivals() {
        // Events may legally arrive *at* the watermark; a repeated seal at
        // the same time must drain them rather than strand them.
        let events = [ev(0, 1_000), ev(1, 1_000), ev(2, 1_500)];
        let mut incr = IncrementalCorrelations::with_items(3, 1_000);
        incr.observe(events[0]);
        incr.advance_watermark(1_000);
        assert_eq!(incr.pending_len(), 0);
        incr.observe(events[1]);
        incr.advance_watermark(1_000);
        assert_eq!(incr.pending_len(), 0, "same-watermark arrival sealed");
        incr.observe(events[2]);
        incr.advance_watermark(1_500);
        assert_eq!(incr.pending_len(), 0);
        assert_eq!(incr.finalize(), batch(3, &events, 1_000));
    }

    #[test]
    #[should_panic(expected = "behind the watermark")]
    fn late_event_behind_the_watermark_panics() {
        let mut incr = IncrementalCorrelations::new(1_000);
        incr.observe(ev(0, 10_000));
        incr.advance_watermark(10_000);
        incr.observe(ev(1, 500));
    }

    #[test]
    fn duplicate_time_item_pairs_collapse_like_batch() {
        let events = vec![ev(0, 100), ev(0, 100), ev(1, 150), ev(0, 100)];
        let mut incr = IncrementalCorrelations::with_items(2, 1_000);
        incr.observe_batch(events.iter().copied());
        assert_eq!(incr.events_observed(), 4);
        assert_eq!(incr.finalize(), batch(2, &events, 1_000));
    }

    #[test]
    fn item_space_grows_with_observations() {
        let mut incr = IncrementalCorrelations::new(1_000);
        assert_eq!(incr.n_items(), 0);
        incr.observe(ev(7, 0));
        assert_eq!(incr.n_items(), 8);
        let corr = incr.finalize();
        assert_eq!(corr.len(), 8);
        assert_eq!(corr.txn_count(7), 1);
        assert_eq!(corr.txn_count(0), 0);
    }

    #[test]
    fn zero_window_groups_identical_timestamps_only() {
        let events = vec![ev(0, 5), ev(1, 5), ev(2, 6)];
        let mut incr = IncrementalCorrelations::with_items(3, 0);
        incr.observe_batch(events.iter().copied());
        assert_eq!(incr.finalize(), batch(3, &events, 0));
    }
}
