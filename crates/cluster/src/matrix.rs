//! Condensed pairwise distance matrix.

use std::fmt;

/// A symmetric pairwise distance matrix over `n` items, stored in condensed
/// (upper-triangle) form: `n * (n - 1) / 2` entries.
///
/// Distances may be `f64::INFINITY` for unrelated pairs (correlation zero);
/// the clustering treats such pairs as never-mergeable below any finite
/// threshold.
///
/// # Examples
///
/// ```
/// use ocasta_cluster::DistanceMatrix;
///
/// let mut m = DistanceMatrix::new_filled(3, f64::INFINITY);
/// m.set(0, 2, 0.5);
/// assert_eq!(m.get(2, 0), 0.5);
/// assert!(m.get(0, 1).is_infinite());
/// ```
#[derive(Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Creates an `n × n` matrix with every off-diagonal distance set to
    /// `fill`.
    ///
    /// # Panics
    ///
    /// Panics if the condensed size `n * (n - 1) / 2` would overflow `usize`.
    pub fn new_filled(n: usize, fill: f64) -> Self {
        let len = n
            .checked_mul(n.saturating_sub(1))
            .map(|x| x / 2)
            .expect("distance matrix size overflows usize");
        DistanceMatrix {
            n,
            data: vec![fill; len],
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the matrix covers no items.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i != j, "diagonal is not stored");
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        debug_assert!(j < self.n, "index out of bounds");
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// The distance between items `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `i == j` or either index is out of range.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[self.index(i, j)]
    }

    /// Sets the distance between items `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `i == j` or either index is out of range.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        let idx = self.index(i, j);
        self.data[idx] = value;
    }

    /// The smallest off-diagonal distance, with its pair, or `None` for
    /// matrices over fewer than two items.
    pub fn min_pair(&self) -> Option<(usize, usize, f64)> {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let d = self.get(i, j);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        best
    }
}

impl fmt::Debug for DistanceMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DistanceMatrix(n={}, {} entries)",
            self.n,
            self.data.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn condensed_indexing_is_symmetric() {
        let mut m = DistanceMatrix::new_filled(4, 0.0);
        let mut v = 1.0;
        for i in 0..4 {
            for j in (i + 1)..4 {
                m.set(i, j, v);
                v += 1.0;
            }
        }
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(2, 3), 6.0);
    }

    #[test]
    fn min_pair_finds_global_minimum() {
        let mut m = DistanceMatrix::new_filled(3, f64::INFINITY);
        m.set(1, 2, 0.75);
        m.set(0, 1, 2.0);
        assert_eq!(m.min_pair(), Some((1, 2, 0.75)));
    }

    #[test]
    fn degenerate_sizes() {
        assert!(DistanceMatrix::new_filled(0, 0.0).min_pair().is_none());
        assert!(DistanceMatrix::new_filled(1, 0.0).min_pair().is_none());
        assert!(DistanceMatrix::new_filled(0, 0.0).is_empty());
    }
}
