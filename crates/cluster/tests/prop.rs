//! Property-based tests for the clustering engine.

use proptest::prelude::*;

use ocasta_cluster::{
    cluster_correlations, cluster_events, hac, transactions, ClusterParams, Correlations,
    DistanceMatrix, IncrementalCorrelations, Linkage, WriteEvent,
};

fn events(n_items: usize, max_events: usize) -> impl Strategy<Value = Vec<WriteEvent>> {
    prop::collection::vec(
        (0..n_items, 0u64..200_000u64).prop_map(|(item, t)| WriteEvent::new(item, t)),
        0..max_events,
    )
}

proptest! {
    /// Transactions partition the set of written items: every written item
    /// appears in at least one transaction, and transactions are sorted and
    /// deduplicated.
    #[test]
    fn transactions_cover_written_items(
        evs in events(10, 80),
        window in 0u64..5_000,
    ) {
        let txns = transactions(&evs, window);
        let written: std::collections::BTreeSet<usize> =
            evs.iter().map(|e| e.item).collect();
        let in_txns: std::collections::BTreeSet<usize> =
            txns.iter().flatten().copied().collect();
        prop_assert_eq!(written, in_txns);
        for txn in &txns {
            prop_assert!(!txn.is_empty());
            prop_assert!(txn.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
        }
    }

    /// Widening the window can only reduce (or keep) the number of
    /// transactions: windows merge, never split.
    #[test]
    fn wider_window_never_splits_transactions(
        evs in events(10, 80),
        w1 in 0u64..2_000,
        extra in 0u64..5_000,
    ) {
        let narrow = transactions(&evs, w1).len();
        let wide = transactions(&evs, w1 + extra).len();
        prop_assert!(wide <= narrow);
    }

    /// Correlation is symmetric and bounded by [0, 2].
    #[test]
    fn correlation_symmetric_and_bounded(evs in events(8, 80), window in 0u64..3_000) {
        let txns = transactions(&evs, window);
        let corr = Correlations::from_transactions(8, &txns);
        for a in 0..8 {
            for b in 0..8 {
                let c = corr.correlation(a, b);
                prop_assert!((0.0..=2.0).contains(&c), "corr({a},{b}) = {c}");
                prop_assert_eq!(c, corr.correlation(b, a));
            }
        }
    }

    /// An item's correlation with itself is 2 whenever it has any writes.
    #[test]
    fn self_correlation_is_two(evs in events(8, 80)) {
        let txns = transactions(&evs, 1_000);
        let corr = Correlations::from_transactions(8, &txns);
        for a in 0..8 {
            if corr.txn_count(a) > 0 {
                prop_assert_eq!(corr.correlation(a, a), 2.0);
            }
        }
    }

    /// HAC dendrograms are monotone for every linkage, and every cut is a
    /// partition of the items.
    #[test]
    fn dendrogram_monotone_and_cuts_partition(
        dists in prop::collection::vec(0.01f64..100.0, 45), // 10 items condensed
        threshold in 0.01f64..100.0,
    ) {
        let n = 10;
        let mut m = DistanceMatrix::new_filled(n, 0.0);
        let mut it = dists.into_iter();
        for i in 0..n {
            for j in (i + 1)..n {
                m.set(i, j, it.next().unwrap());
            }
        }
        for linkage in Linkage::ALL {
            let d = hac(&m, linkage);
            prop_assert!(d.is_monotone(), "{:?}", linkage);
            let cut = d.cut(threshold);
            let mut seen: Vec<usize> = cut.iter().flatten().copied().collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..n).collect::<Vec<_>>());
        }
    }

    /// Cut granularity is monotone in the threshold: raising the threshold
    /// never increases the number of clusters.
    #[test]
    fn cut_count_monotone_in_threshold(
        dists in prop::collection::vec(0.01f64..100.0, 45),
        t1 in 0.01f64..100.0,
        extra in 0.0f64..50.0,
    ) {
        let n = 10;
        let mut m = DistanceMatrix::new_filled(n, 0.0);
        let mut it = dists.into_iter();
        for i in 0..n {
            for j in (i + 1)..n {
                m.set(i, j, it.next().unwrap());
            }
        }
        let d = hac(&m, Linkage::Complete);
        prop_assert!(d.cut(t1 + extra).len() <= d.cut(t1).len());
    }

    /// With the paper's strictest threshold (correlation 2), every pair in a
    /// multi-item cluster must be perfectly correlated under complete
    /// linkage.
    #[test]
    fn strict_threshold_only_groups_perfect_pairs(evs in events(8, 100)) {
        let params = ClusterParams::default();
        let clusters = cluster_events(8, &evs, &params);
        let txns = transactions(&evs, params.window_ms);
        let corr = Correlations::from_transactions(8, &txns);
        for cluster in clusters.iter().filter(|c| c.len() > 1) {
            for (i, &a) in cluster.iter().enumerate() {
                for &b in &cluster[i + 1..] {
                    prop_assert_eq!(corr.correlation(a, b), 2.0);
                }
            }
        }
    }

    /// Streaming equivalence: feeding a time-ordered event stream into
    /// `IncrementalCorrelations` in *any* batch split — advancing the
    /// watermark after every batch, taking throwaway snapshots along the
    /// way — produces exactly the batch correlations and exactly the batch
    /// clustering.
    #[test]
    fn incremental_feed_in_any_batch_split_equals_batch(
        evs in events(10, 120),
        window in 0u64..3_000,
        batch_size in 1usize..12,
        threshold in 0.2f64..2.0,
    ) {
        let batch_corr =
            Correlations::from_transactions(10, &transactions(&evs, window));

        let mut sorted = evs.clone();
        sorted.sort_unstable();
        let mut incr = IncrementalCorrelations::with_items(10, window);
        for chunk in sorted.chunks(batch_size) {
            incr.observe_batch(chunk.iter().copied());
            // Sorted feed: everything up to the chunk's last event is final.
            incr.advance_watermark(chunk.last().unwrap().time_ms);
            // Mid-stream queries must not perturb the live state.
            let _ = incr.snapshot();
        }
        let stream_corr = incr.snapshot();
        prop_assert_eq!(&stream_corr, &batch_corr);
        prop_assert_eq!(incr.finalize(), batch_corr.clone());

        let params = ClusterParams {
            window_ms: window,
            correlation_threshold: threshold,
            ..ClusterParams::default()
        };
        prop_assert_eq!(
            cluster_correlations(&stream_corr, &params),
            cluster_events(10, &evs, &params)
        );
    }

    /// Streaming equivalence under disorder: events arriving in arbitrary
    /// order (no watermark until the end) still finalize to the batch
    /// result.
    #[test]
    fn incremental_out_of_order_feed_equals_batch(
        evs in events(10, 120),
        window in 0u64..3_000,
    ) {
        let mut incr = IncrementalCorrelations::with_items(10, window);
        incr.observe_batch(evs.iter().copied());
        prop_assert_eq!(
            incr.finalize(),
            Correlations::from_transactions(10, &transactions(&evs, window))
        );
    }

    /// The O(window)-state guarantee, made falsifiable: a time-ordered
    /// feed sealed with a lagged watermark (`newest - lag`) keeps exactly
    /// the unsealed suffix buffered — sealing at the newest time drains
    /// the buffer to zero, any lag keeps at most the events above the
    /// lagged watermark, and neither regime changes the final answer.
    #[test]
    fn incremental_buffer_holds_exactly_the_unsealed_suffix(
        evs in events(10, 120),
        window in 0u64..3_000,
        lag in 0u64..5_000,
    ) {
        let mut sorted = evs.clone();
        sorted.sort_unstable();
        let mut incr = IncrementalCorrelations::with_items(10, window);
        for (fed, &e) in sorted.iter().enumerate() {
            incr.observe(e);
            let watermark = e.time_ms.saturating_sub(lag);
            incr.advance_watermark(watermark);
            if lag == 0 {
                prop_assert_eq!(
                    incr.pending_len(), 0,
                    "sealing at the newest time must drain everything"
                );
            } else {
                // Distinct (time, item) pairs above the watermark among
                // events fed so far: the only thing allowed to remain.
                let unsealed: std::collections::BTreeSet<(u64, usize)> = sorted[..=fed]
                    .iter()
                    .filter(|o| o.time_ms > watermark)
                    .map(|o| (o.time_ms, o.item))
                    .collect();
                prop_assert_eq!(
                    incr.pending_len(), unsealed.len(),
                    "pending vs unsealed after {}ms (lag {})", e.time_ms, lag
                );
            }
        }
        prop_assert_eq!(
            incr.finalize(),
            Correlations::from_transactions(10, &transactions(&evs, window))
        );
    }

    /// The pipeline's output is always a partition of the item space.
    #[test]
    fn pipeline_output_is_partition(
        evs in events(12, 120),
        window in 0u64..3_000,
        threshold in 0.2f64..2.0,
    ) {
        let params = ClusterParams {
            window_ms: window,
            correlation_threshold: threshold,
            ..ClusterParams::default()
        };
        let clusters = cluster_events(12, &evs, &params);
        let mut all: Vec<usize> = clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..12).collect::<Vec<_>>());
    }
}
