//! Property-based tests for the clustering engine.

use proptest::prelude::*;

use ocasta_cluster::{
    cluster_events, hac, transactions, ClusterParams, Correlations, DistanceMatrix, Linkage,
    WriteEvent,
};

fn events(n_items: usize, max_events: usize) -> impl Strategy<Value = Vec<WriteEvent>> {
    prop::collection::vec(
        (0..n_items, 0u64..200_000u64).prop_map(|(item, t)| WriteEvent::new(item, t)),
        0..max_events,
    )
}

proptest! {
    /// Transactions partition the set of written items: every written item
    /// appears in at least one transaction, and transactions are sorted and
    /// deduplicated.
    #[test]
    fn transactions_cover_written_items(
        evs in events(10, 80),
        window in 0u64..5_000,
    ) {
        let txns = transactions(&evs, window);
        let written: std::collections::BTreeSet<usize> =
            evs.iter().map(|e| e.item).collect();
        let in_txns: std::collections::BTreeSet<usize> =
            txns.iter().flatten().copied().collect();
        prop_assert_eq!(written, in_txns);
        for txn in &txns {
            prop_assert!(!txn.is_empty());
            prop_assert!(txn.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
        }
    }

    /// Widening the window can only reduce (or keep) the number of
    /// transactions: windows merge, never split.
    #[test]
    fn wider_window_never_splits_transactions(
        evs in events(10, 80),
        w1 in 0u64..2_000,
        extra in 0u64..5_000,
    ) {
        let narrow = transactions(&evs, w1).len();
        let wide = transactions(&evs, w1 + extra).len();
        prop_assert!(wide <= narrow);
    }

    /// Correlation is symmetric and bounded by [0, 2].
    #[test]
    fn correlation_symmetric_and_bounded(evs in events(8, 80), window in 0u64..3_000) {
        let txns = transactions(&evs, window);
        let corr = Correlations::from_transactions(8, &txns);
        for a in 0..8 {
            for b in 0..8 {
                let c = corr.correlation(a, b);
                prop_assert!((0.0..=2.0).contains(&c), "corr({a},{b}) = {c}");
                prop_assert_eq!(c, corr.correlation(b, a));
            }
        }
    }

    /// An item's correlation with itself is 2 whenever it has any writes.
    #[test]
    fn self_correlation_is_two(evs in events(8, 80)) {
        let txns = transactions(&evs, 1_000);
        let corr = Correlations::from_transactions(8, &txns);
        for a in 0..8 {
            if corr.txn_count(a) > 0 {
                prop_assert_eq!(corr.correlation(a, a), 2.0);
            }
        }
    }

    /// HAC dendrograms are monotone for every linkage, and every cut is a
    /// partition of the items.
    #[test]
    fn dendrogram_monotone_and_cuts_partition(
        dists in prop::collection::vec(0.01f64..100.0, 45), // 10 items condensed
        threshold in 0.01f64..100.0,
    ) {
        let n = 10;
        let mut m = DistanceMatrix::new_filled(n, 0.0);
        let mut it = dists.into_iter();
        for i in 0..n {
            for j in (i + 1)..n {
                m.set(i, j, it.next().unwrap());
            }
        }
        for linkage in Linkage::ALL {
            let d = hac(&m, linkage);
            prop_assert!(d.is_monotone(), "{:?}", linkage);
            let cut = d.cut(threshold);
            let mut seen: Vec<usize> = cut.iter().flatten().copied().collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..n).collect::<Vec<_>>());
        }
    }

    /// Cut granularity is monotone in the threshold: raising the threshold
    /// never increases the number of clusters.
    #[test]
    fn cut_count_monotone_in_threshold(
        dists in prop::collection::vec(0.01f64..100.0, 45),
        t1 in 0.01f64..100.0,
        extra in 0.0f64..50.0,
    ) {
        let n = 10;
        let mut m = DistanceMatrix::new_filled(n, 0.0);
        let mut it = dists.into_iter();
        for i in 0..n {
            for j in (i + 1)..n {
                m.set(i, j, it.next().unwrap());
            }
        }
        let d = hac(&m, Linkage::Complete);
        prop_assert!(d.cut(t1 + extra).len() <= d.cut(t1).len());
    }

    /// With the paper's strictest threshold (correlation 2), every pair in a
    /// multi-item cluster must be perfectly correlated under complete
    /// linkage.
    #[test]
    fn strict_threshold_only_groups_perfect_pairs(evs in events(8, 100)) {
        let params = ClusterParams::default();
        let clusters = cluster_events(8, &evs, &params);
        let txns = transactions(&evs, params.window_ms);
        let corr = Correlations::from_transactions(8, &txns);
        for cluster in clusters.iter().filter(|c| c.len() > 1) {
            for (i, &a) in cluster.iter().enumerate() {
                for &b in &cluster[i + 1..] {
                    prop_assert_eq!(corr.correlation(a, b), 2.0);
                }
            }
        }
    }

    /// The pipeline's output is always a partition of the item space.
    #[test]
    fn pipeline_output_is_partition(
        evs in events(12, 120),
        window in 0u64..3_000,
        threshold in 0.2f64..2.0,
    ) {
        let params = ClusterParams {
            window_ms: window,
            correlation_threshold: threshold,
            ..ClusterParams::default()
        };
        let clusters = cluster_events(12, &evs, &params);
        let mut all: Vec<usize> = clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..12).collect::<Vec<_>>());
    }
}
