//! Snapshot-equivalence battery for epoch-pinned snapshots.
//!
//! The tentpole claim of the sealed-segments refactor is that an epoch
//! pin ([`ShardedTtkv::pin_epoch`]) is *exactly* the store the legacy
//! clone-under-lock snapshot would have produced at the same moment, at
//! every interleaving of appends, seals, staged prunes and shell
//! collection this suite can generate. The clone path
//! ([`ShardedTtkv::snapshot_store_cloned`]) is kept alive purely as the
//! oracle here (and as the bench yardstick).

use ocasta_fleet::ShardedTtkv;
use ocasta_trace::{AccessEvent, TraceOp};
use ocasta_ttkv::{Timestamp, Ttkv, Value};

/// Deterministic xorshift64* PRNG, same recipe as the VOPR harness.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn write_op(key: &str, t: u64, v: i64) -> TraceOp {
    TraceOp::Mutation(AccessEvent::write(
        Timestamp::from_millis(t),
        key,
        Value::from(v),
    ))
}

/// A random history chunk: timestamps wander (within-shard ties and
/// out-of-order arrivals included), keys collide across chunks.
fn random_chunk(rng: &mut Rng, clock: &mut u64, ops: usize) -> Vec<TraceOp> {
    (0..ops)
        .map(|_| {
            // Mostly advancing, sometimes repeating, timestamps.
            *clock += rng.below(20);
            let key = format!("app/k{}", rng.below(23));
            write_op(&key, *clock, rng.next() as i64 % 1000)
        })
        .collect()
}

/// Satellite 1: random histories × staged prunes (with occasional shell
/// collection) — after every stage, the epoch-pinned view is
/// field-for-field equal to the clone-under-lock snapshot AND to an
/// independent sequential store that experienced the identical op and
/// prune sequence. Exact `Ttkv` equality covers every field: history,
/// baselines, per-key counters, aggregates.
#[test]
fn epoch_snapshot_equals_clone_snapshot() {
    for seed in 1..=12u64 {
        let mut rng = Rng::new(seed * 0x9E37_79B9);
        let shards = 1 + rng.below(5) as usize;
        let seal_threshold = 1 + rng.below(40) as usize;
        let sharded = ShardedTtkv::with_seal_threshold(shards, seal_threshold);
        let mut oracle = Ttkv::new();
        let mut clock = 0u64;

        for stage in 0..8 {
            let ops = 40 + rng.below(60) as usize;
            let chunk = random_chunk(&mut rng, &mut clock, ops);
            for op in &chunk {
                op.clone()
                    .apply(&mut oracle, ocasta_ttkv::TimePrecision::Milliseconds);
            }
            sharded.append_routed(chunk);

            // Staged prunes: usually advancing, sometimes retreating (a
            // retreat must be a no-op on both sides).
            if stage % 2 == 1 {
                let horizon = Timestamp::from_millis(rng.below(clock + 1));
                sharded.prune_before(horizon);
                oracle.prune_before(horizon);
            }
            if stage == 5 {
                let swept = sharded.gc_dead_shells();
                let direct = oracle.gc_dead_shells();
                assert_eq!(swept, direct, "seed {seed} stage {stage}: shells");
            }

            let pinned = sharded.pin_epoch();
            let epoch = pinned.materialize();
            let clone = sharded.snapshot_store_cloned();
            assert_eq!(
                epoch, clone,
                "seed {seed} stage {stage}: epoch pin != clone-under-lock oracle"
            );
            assert_eq!(
                epoch, oracle,
                "seed {seed} stage {stage}: snapshot != sequential oracle"
            );
        }
        assert_eq!(sharded.into_ttkv(), oracle, "seed {seed}: final fold");
    }
}

/// Concurrent appends race pins and sweeps. With writers in flight the
/// "same moment" is defined by the pin itself: its immediate
/// materialization is the oracle, and re-materializing after all churn
/// settles must reproduce it exactly. At quiescence the epoch pin, the
/// clone path and the consuming fold all agree.
#[test]
fn epoch_pins_under_concurrent_appends_and_sweeps_are_exact() {
    for seed in [3u64, 17, 99] {
        let sharded = ShardedTtkv::with_seal_threshold(4, 24);
        let pins = std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let sharded = &sharded;
                scope.spawn(move || {
                    let mut rng = Rng::new(seed ^ (worker + 1));
                    let mut clock = 0u64;
                    for _ in 0..30 {
                        // Disjoint key spaces keep the final store
                        // deterministic; batches are whole per-key rounds.
                        let ops: Vec<TraceOp> = (0..4)
                            .map(|i| {
                                clock += rng.below(50);
                                write_op(&format!("w{worker}/k{}", rng.below(7)), clock, i)
                            })
                            .collect();
                        sharded.append_routed(ops);
                    }
                });
            }
            let sweeper = scope.spawn(|| {
                for sweep in 1..=6u64 {
                    sharded.prune_before(Timestamp::from_millis(sweep * 100));
                }
            });
            let mut pins = Vec::new();
            for _ in 0..8 {
                let pin = sharded.pin_epoch();
                let oracle = pin.materialize();
                pins.push((pin, oracle));
            }
            sweeper.join().expect("sweeper panicked");
            pins
        });
        for (i, (pin, oracle)) in pins.iter().enumerate() {
            assert_eq!(
                &pin.materialize(),
                oracle,
                "seed {seed} pin {i}: drifted after the run settled"
            );
        }
        let epoch = sharded.snapshot_store();
        assert_eq!(epoch, sharded.snapshot_store_cloned(), "seed {seed}");
        assert_eq!(epoch, sharded.into_ttkv(), "seed {seed}");
    }
}

/// Seal-boundary regression: a prune horizon landing exactly on a
/// sealed-segment boundary, with a pin held across the sweep, must leave
/// both the pin (pre-sweep state) and the post-sweep snapshot equal to
/// their sequential-oracle counterparts.
#[test]
fn pin_across_a_boundary_sweep_sees_pre_sweep_state_exactly() {
    let sharded = ShardedTtkv::with_seal_threshold(1, 5);
    let ops: Vec<TraceOp> = (0..15)
        .map(|i| write_op("app/k", i * 10, i as i64))
        .collect();
    sharded.append_routed(ops.clone());

    let mut oracle_before = Ttkv::new();
    for op in &ops {
        op.clone()
            .apply(&mut oracle_before, ocasta_ttkv::TimePrecision::Milliseconds);
    }

    let pin = sharded.pin_epoch();
    // Horizon exactly at the second segment's first timestamp (ops seal
    // in fives: segments start at 0ms, 50ms, 100ms).
    let boundary = Timestamp::from_millis(50);
    sharded.prune_before(boundary);

    let mut oracle_after = oracle_before.clone();
    oracle_after.prune_before(boundary);

    assert_eq!(
        pin.materialize(),
        oracle_before,
        "the pin held across the sweep still shows pre-sweep history"
    );
    assert_eq!(
        sharded.snapshot_store(),
        oracle_after,
        "the live store shows the swept history"
    );
    assert_eq!(sharded.snapshot_store(), sharded.snapshot_store_cloned());
}
