//! Concurrency equivalence: N-thread sharded ingestion merges to the same
//! store as sequential single-threaded ingestion.

use ocasta_fleet::{
    ingest, ingest_sequential, ingest_with_wal, FleetConfig, KeyPlacement, MachineSpec, Wal,
    WalReader,
};
use ocasta_trace::{KeySpec, NoiseKey, SettingGroup, TraceOp, ValueKind, WorkloadSpec};
use ocasta_ttkv::TimePrecision;

fn app_spec(app: &str) -> WorkloadSpec {
    let mut spec = WorkloadSpec::new(app);
    spec.sessions_per_day = 2.0;
    spec.reads_per_session = 32;
    spec.static_keys = 12;
    spec.churn_keys = 4;
    spec.churn_writes_per_day = 0.6;
    spec.groups.push(SettingGroup::new(
        "pair",
        vec![
            KeySpec::new("flag", ValueKind::Toggle { initial: false }),
            KeySpec::new("level", ValueKind::IntRange { min: 1, max: 9 }),
        ],
        0.4,
    ));
    spec.noise.push(NoiseKey::new(
        KeySpec::new(
            "geometry",
            ValueKind::IntRange {
                min: 100,
                max: 2000,
            },
        ),
        2.0,
    ));
    spec
}

/// The paper's topology: 29 machines, a few apps each.
fn fleet(machines: usize, days: u64) -> Vec<MachineSpec> {
    (0..machines)
        .map(|i| {
            let apps = vec![app_spec(&format!("app{}", i % 4)), app_spec("shared")];
            MachineSpec::new(format!("m{i:02}"), days, 40_000 + i as u64 * 7, apps)
        })
        .collect()
}

/// Per-machine placement keeps key spaces disjoint, so parallel ingestion
/// must be *exactly* equal to sequential ingestion — regardless of thread
/// interleavings.
#[test]
fn threaded_ingestion_equals_sequential_disjoint_keys() {
    let machines = fleet(8, 12);
    for threads in [2, 4, 8] {
        for shards in [1, 4, 16] {
            let config = FleetConfig {
                shards,
                ingest_threads: threads,
                batch_size: 64,
                precision: TimePrecision::Seconds,
                placement: KeyPlacement::PerMachine,
                retention: None,
                // Small enough that shards seal mid-run: the equality
                // below also covers the segment fold.
                seal_threshold: 256,
            };
            let sequential = ingest_sequential(&machines, &config);
            let (parallel, report) = ingest(&machines, &config);
            assert_eq!(
                parallel, sequential,
                "threads={threads} shards={shards} must match sequential"
            );
            assert_eq!(report.threads, threads);
            assert_eq!(
                report.mutations,
                sequential.stats().writes + sequential.stats().deletes
            );
        }
    }
}

/// Merged placement: machines share the `shared/...` key subtree. The
/// seeded workload below has no cross-machine (key, quantised-timestamp)
/// collision — asserted explicitly — so the merge is still deterministic
/// and must equal sequential ingestion exactly.
#[test]
fn threaded_ingestion_equals_sequential_merged_keys() {
    let machines = fleet(6, 10);
    let config = FleetConfig {
        shards: 8,
        ingest_threads: 4,
        batch_size: 32,
        precision: TimePrecision::Milliseconds,
        placement: KeyPlacement::Merged,
        retention: None,
        seal_threshold: 128,
    };

    // Guard: verify the fixture has no cross-machine (key, ts) collisions.
    // If it ever does (e.g. after generator changes), pick different seeds
    // rather than weakening the equality below.
    let mut seen: std::collections::HashMap<(String, u64), usize> =
        std::collections::HashMap::new();
    for (idx, machine) in machines.iter().enumerate() {
        for op in machine.stream() {
            if let TraceOp::Mutation(event) = op {
                let slot = (event.key.as_str().to_owned(), event.timestamp.as_millis());
                if let Some(&owner) = seen.get(&slot) {
                    assert_eq!(owner, idx, "cross-machine collision on {slot:?}");
                } else {
                    seen.insert(slot, idx);
                }
            }
        }
    }

    let sequential = ingest_sequential(&machines, &config);
    let (parallel, _) = ingest(&machines, &config);
    assert_eq!(parallel, sequential);
    // Machines genuinely share keys: the shared subtree exists once.
    let shared_prefix = ocasta_ttkv::Key::new("shared");
    let shared: Vec<_> = parallel.keys_under(&shared_prefix).collect();
    assert!(!shared.is_empty(), "fixture must exercise shared keys");
}

/// The WAL lane observes every op the store applies: replaying the WAL
/// reproduces the ingested store exactly, even with many workers racing.
#[test]
fn wal_replay_matches_concurrent_ingestion() {
    let dir = std::env::temp_dir().join(format!("ocasta-fleet-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let machines = fleet(5, 8);
    let config = FleetConfig {
        shards: 8,
        ingest_threads: 4,
        batch_size: 48,
        precision: TimePrecision::Seconds,
        placement: KeyPlacement::PerMachine,
        retention: None,
        seal_threshold: 192,
    };
    let mut wal = Wal::open(&dir).unwrap();
    let (store, report) = ingest_with_wal(&machines, &config, &mut wal).unwrap();
    assert!(report.mutations > 0);

    // Precision was already applied at ingestion time, so replay at full
    // precision reproduces the store bit-for-bit.
    let replayed = wal.replay(TimePrecision::Milliseconds).unwrap();
    assert_eq!(replayed, store);

    // Compaction preserves the state and empties the log.
    let compacted = wal.compact(TimePrecision::Milliseconds).unwrap();
    assert_eq!(compacted, store);
    assert_eq!(wal.log_bytes(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// A WAL written through the engine is a valid frame stream end to end.
#[test]
fn engine_wal_is_a_clean_frame_stream() {
    let dir = std::env::temp_dir().join(format!("ocasta-fleet-frames-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let machines = fleet(3, 5);
    let mut wal = Wal::open(&dir).unwrap();
    let (_, report) = ingest_with_wal(&machines, &FleetConfig::default(), &mut wal).unwrap();
    drop(wal);

    let file = std::fs::File::open(dir.join("wal.log")).unwrap();
    let mut reader = WalReader::new(std::io::BufReader::new(file)).unwrap();
    let ops = reader.read_all().unwrap();
    assert!(!reader.torn_tail());
    let mutations = ops.iter().filter(|op| op.is_mutation()).count() as u64;
    assert_eq!(mutations, report.mutations);
    std::fs::remove_dir_all(&dir).ok();
}
