//! Injection corpus for the offline doctor: every damage class the WAL
//! layer defends against must be *flagged* by [`diagnose`], and every
//! healthy directory — legacy or layered, mid-epoch or freshly compacted —
//! must come back with **zero** warnings and errors. The corpus mirrors
//! `tests/torn_tail.rs`: exhaustive byte-offset log truncation, mid-write
//! delta truncation, manifest-temp cuts, stale logs, plus manifest-level
//! damage (bad magic, epoch/horizon inversions, non-bare names, missing
//! layers) the recovery tests cannot reach because `Wal::open` refuses
//! such directories outright.

use std::path::PathBuf;

use ocasta_fleet::{diagnose, Severity, Wal, WalWriter, WAL_MAGIC};
use ocasta_trace::{AccessEvent, TraceOp};
use ocasta_ttkv::{TimePrecision, Timestamp, Ttkv, Value};

/// Three batches exercising every op kind (mirrors `torn_tail.rs`).
fn batches() -> Vec<Vec<TraceOp>> {
    vec![
        vec![
            TraceOp::Mutation(AccessEvent::write(
                Timestamp::from_millis(1_000),
                "app/alpha",
                Value::from(42),
            )),
            TraceOp::Reads(ocasta_ttkv::Key::new("app/alpha"), 17),
        ],
        vec![
            TraceOp::Mutation(AccessEvent::write(
                Timestamp::from_millis(2_500),
                "app/beta",
                Value::from("doctor torture"),
            )),
            TraceOp::Mutation(AccessEvent::delete(
                Timestamp::from_millis(3_000),
                "app/alpha",
            )),
        ],
        vec![TraceOp::Mutation(AccessEvent::write(
            Timestamp::from_millis(4_000),
            "app/gamma",
            Value::List(vec![Value::from(true), Value::from(2.5)]),
        ))],
    ]
}

/// A complete healthy framed log as raw bytes.
fn encoded() -> Vec<u8> {
    let mut bytes = Vec::new();
    let mut writer = WalWriter::new(&mut bytes).unwrap();
    for batch in batches() {
        writer.append(&batch).unwrap();
    }
    writer.flush().unwrap();
    bytes
}

/// Frame end offsets of the complete log.
fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut reader = ocasta_fleet::WalReader::new(bytes).unwrap();
    let mut ends = Vec::new();
    while reader.next_batch().unwrap().is_some() {
        ends.push(reader.clean_bytes() as usize);
    }
    ends
}

/// Fresh scratch directory named after the test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ocasta-doctor-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A layered directory: one pruned compaction behind it, fresh frames in
/// the current epoch log (same construction as `torn_tail.rs`).
fn layered_dir(name: &str) -> PathBuf {
    let dir = scratch(name);
    let mut wal = Wal::open(&dir).unwrap();
    wal.append(&batches()[0]).unwrap();
    wal.compact_pruned(TimePrecision::Milliseconds, Timestamp::from_millis(1_500))
        .unwrap();
    wal.append(&batches()[1]).unwrap();
    wal.append(&batches()[2]).unwrap();
    wal.flush().unwrap();
    dir
}

fn checks(report: &ocasta_fleet::DoctorReport, severity: Severity) -> Vec<&'static str> {
    report
        .findings
        .iter()
        .filter(|f| f.severity == severity)
        .map(|f| f.check)
        .collect()
}

#[test]
fn healthy_layered_directory_has_zero_findings() {
    let dir = layered_dir("healthy-layered");
    let report = diagnose(&dir);
    assert!(report.findings.is_empty(), "{report}");
    assert!(report.is_healthy() && !report.has_errors());
    assert!(report.frames_verified >= 2, "{report}");
    assert!(report.layers_verified >= 1, "{report}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn healthy_multi_delta_chain_has_zero_findings() {
    let dir = scratch("healthy-chain");
    let mut wal = Wal::open(&dir).unwrap();
    for (i, batch) in batches().into_iter().enumerate() {
        wal.append(&batch).unwrap();
        wal.compact_pruned(
            TimePrecision::Milliseconds,
            Timestamp::from_millis(500 + i as u64 * 1_000),
        )
        .unwrap();
    }
    let report = diagnose(&dir);
    assert!(report.findings.is_empty(), "{report}");
    assert!(report.layers_verified >= 2, "{report}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn healthy_legacy_directory_reports_only_layout_info() {
    let dir = scratch("healthy-legacy");
    let mut store = Ttkv::new();
    for op in batches().concat() {
        op.apply(&mut store, TimePrecision::Milliseconds);
    }
    let mut bytes = Vec::new();
    store.save(&mut bytes).unwrap();
    std::fs::write(dir.join("snapshot.ttkv"), bytes).unwrap();
    std::fs::write(dir.join("wal.log"), encoded()).unwrap();

    let report = diagnose(&dir);
    assert!(report.is_healthy(), "{report}");
    assert_eq!(checks(&report, Severity::Info), vec!["legacy-layout"]);
    assert_eq!(report.layers_verified, 1);
    assert_eq!(report.frames_verified, 3);
    std::fs::remove_dir_all(&dir).ok();
}

/// Every byte-offset truncation of the current log: frame-boundary cuts are
/// healthy, all other cuts are exactly one `log-torn` warning — never an
/// error, never a second finding.
#[test]
fn every_log_truncation_is_flagged_as_torn_and_nothing_else() {
    let bytes = encoded();
    let boundaries = frame_boundaries(&bytes);
    let dir = scratch("log-cuts");
    let log = dir.join("wal.log");

    for cut in 0..=bytes.len() {
        std::fs::write(&log, &bytes[..cut]).unwrap();
        let report = diagnose(&dir);
        assert!(!report.has_errors(), "cut {cut}: {report}");
        let clean = cut >= WAL_MAGIC.len() && (cut == WAL_MAGIC.len() || boundaries.contains(&cut));
        if clean {
            // A bare log is the legacy layout: an Info finding, nothing
            // above it.
            assert!(report.is_healthy(), "cut {cut}: {report}");
            assert!(checks(&report, Severity::Warning).is_empty(), "cut {cut}");
        } else {
            assert_eq!(
                checks(&report, Severity::Warning),
                vec!["log-torn"],
                "cut {cut}: {report}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A flipped byte inside a *complete* frame is corruption, not a torn
/// tail: checksum verification must catch it as an error.
#[test]
fn checksum_flip_in_a_complete_frame_is_a_corruption_error() {
    let mut bytes = encoded();
    // A payload byte of frame 0: past the magic and the 8-byte header.
    let offset = WAL_MAGIC.len() + 8 + 2;
    bytes[offset] ^= 0xFF;
    let dir = scratch("checksum-flip");
    std::fs::write(dir.join("wal.log"), &bytes).unwrap();

    let report = diagnose(&dir);
    assert!(report.has_errors(), "{report}");
    assert_eq!(checks(&report, Severity::Error), vec!["log-corrupt"]);
    std::fs::remove_dir_all(&dir).ok();
}

/// The mid-write-delta corpus from `torn_tail.rs`: a torn (or complete but
/// uncommitted) delta next to an intact manifest is an orphan — a warning,
/// never an error, at *every* truncation offset.
#[test]
fn every_mid_write_delta_truncation_is_an_orphan_warning() {
    let pre = layered_dir("orphan-pre");
    let post = scratch("orphan-post");
    for entry in std::fs::read_dir(&pre).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), post.join(entry.file_name())).unwrap();
    }
    let delta_name = {
        let mut wal = Wal::open(&post).unwrap();
        wal.compact_pruned(TimePrecision::Milliseconds, Timestamp::from_millis(3_200))
            .unwrap();
        std::fs::read_dir(&post)
            .unwrap()
            .filter_map(|e| e.unwrap().file_name().into_string().ok())
            .find(|n| n.starts_with("delta-") && !pre.join(n).exists())
            .expect("the compaction wrote a new delta layer")
    };
    let delta_bytes = std::fs::read(post.join(&delta_name)).unwrap();

    for cut in 0..=delta_bytes.len() {
        std::fs::write(pre.join(&delta_name), &delta_bytes[..cut]).unwrap();
        let report = diagnose(&pre);
        assert!(!report.has_errors(), "delta cut {cut}: {report}");
        assert!(
            checks(&report, Severity::Warning).contains(&"layer-orphan"),
            "delta cut {cut}: {report}"
        );
    }
    std::fs::remove_dir_all(&pre).ok();
    std::fs::remove_dir_all(&post).ok();
}

/// Manifest temp-file cuts (an interrupted commit): a warning that names
/// the pending commit, nothing else.
#[test]
fn manifest_tmp_cuts_warn_about_the_interrupted_commit() {
    let dir = layered_dir("manifest-tmp");
    let manifest = std::fs::read(dir.join("wal.manifest")).unwrap();
    for cut in [0, 1, manifest.len() / 2, manifest.len()] {
        std::fs::write(dir.join("wal.manifest.tmp"), &manifest[..cut]).unwrap();
        let report = diagnose(&dir);
        assert!(!report.has_errors(), "tmp cut {cut}: {report}");
        assert_eq!(
            checks(&report, Severity::Warning),
            vec!["tmp"],
            "tmp cut {cut}: {report}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A log superseded by a committed compaction (the post-commit crash
/// window of `torn_tail.rs`) is stale — swept on open, warned on doctor.
#[test]
fn stale_superseded_log_is_a_warning() {
    let dir = layered_dir("stale-log");
    // The layered dir is at epoch 1 with wal-1.log; plant a pre-compaction
    // leftover.
    std::fs::write(dir.join("wal.log"), encoded()).unwrap();
    let report = diagnose(&dir);
    assert!(!report.has_errors(), "{report}");
    assert_eq!(checks(&report, Severity::Warning), vec!["log-stale"]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_referenced_layer_is_an_error() {
    let dir = layered_dir("missing-layer");
    let layer = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.unwrap().file_name().into_string().ok())
        .find(|n| n.ends_with(".ttkv"))
        .expect("the layered dir has a snapshot layer");
    std::fs::remove_file(dir.join(&layer)).unwrap();
    let report = diagnose(&dir);
    assert!(report.has_errors(), "{report}");
    assert_eq!(checks(&report, Severity::Error), vec!["layer-missing"]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_referenced_layer_is_an_error() {
    let dir = layered_dir("corrupt-layer");
    let layer = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.unwrap().file_name().into_string().ok())
        .find(|n| n.ends_with(".ttkv"))
        .expect("the layered dir has a snapshot layer");
    std::fs::write(dir.join(&layer), b"not a ttkv snapshot\n").unwrap();
    let report = diagnose(&dir);
    assert!(report.has_errors(), "{report}");
    assert_eq!(checks(&report, Severity::Error), vec!["layer-corrupt"]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_manifest_magic_is_an_error() {
    let dir = layered_dir("bad-magic");
    std::fs::write(dir.join("wal.manifest"), "not-a-manifest v9\n").unwrap();
    let report = diagnose(&dir);
    assert!(report.has_errors(), "{report}");
    assert_eq!(checks(&report, Severity::Error), vec!["manifest-magic"]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn manifest_record_and_name_damage_is_localised() {
    let dir = layered_dir("bad-records");
    let manifest = std::fs::read_to_string(dir.join("wal.manifest")).unwrap();

    // An unparsable record and a path-traversal layer name, injected into
    // an otherwise valid manifest: one finding each, both errors.
    let hacked = format!("{manifest}frobnicate 12\ndelta ../evil.ttkv 99\n");
    std::fs::write(dir.join("wal.manifest"), hacked).unwrap();
    let report = diagnose(&dir);
    assert!(report.has_errors(), "{report}");
    let errors = checks(&report, Severity::Error);
    assert!(errors.contains(&"manifest-record"), "{report}");
    assert!(errors.contains(&"manifest-layer-name"), "{report}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn epoch_and_horizon_inversions_are_errors() {
    // A hand-written manifest whose delta chain runs backwards in both
    // epoch and horizon, and references a layer from a future epoch.
    let dir = scratch("inversions");
    std::fs::write(
        dir.join("wal.manifest"),
        "ocasta-wal-manifest v1\nepoch 3\nhorizon 5000\n\
         delta delta-9.ttkv 4000\ndelta delta-2.ttkv 9000\n",
    )
    .unwrap();
    let report = diagnose(&dir);
    assert!(report.has_errors(), "{report}");
    let errors = checks(&report, Severity::Error);
    // delta-9 is newer than epoch 3; the chain 9 -> 2 decreases; the
    // horizons 4000 -> 9000 are fine per-pair but 9000 exceeds the
    // manifest horizon 5000; both layers are missing on disk.
    assert!(errors.contains(&"manifest-epoch"), "{report}");
    assert!(errors.contains(&"manifest-horizon"), "{report}");
    assert!(errors.contains(&"layer-missing"), "{report}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Segment-generation monotonicity: a manifest whose base layer sits at
/// or above a delta's epoch is folding generations out of seal order.
#[test]
fn base_epoch_at_or_above_a_delta_epoch_is_a_segment_generation_error() {
    let dir = scratch("segment-generation");
    std::fs::write(
        dir.join("wal.manifest"),
        "ocasta-wal-manifest v1\nepoch 5\nhorizon 5000\n\
         base base-3.ttkv\ndelta delta-3.ttkv 4000\ndelta delta-4.ttkv 5000\n",
    )
    .unwrap();
    let report = diagnose(&dir);
    assert!(report.has_errors(), "{report}");
    assert!(
        checks(&report, Severity::Error).contains(&"segment-generation"),
        "{report}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// An unreferenced sealed layer two generations past the manifest cannot
/// be a single-crash orphan: a committed rebase failed to sweep it.
#[test]
fn orphan_two_generations_past_the_manifest_is_an_error() {
    // The layered dir's manifest is at epoch 1; epoch 2 is the one
    // generation a lone crash can orphan, epoch 3 is beyond it.
    let dir = layered_dir("segment-orphan");
    std::fs::write(dir.join("delta-3.ttkv"), b"whatever").unwrap();
    let report = diagnose(&dir);
    assert!(report.has_errors(), "{report}");
    assert_eq!(checks(&report, Severity::Error), vec!["segment-orphan"]);
    std::fs::remove_dir_all(&dir).ok();
}

/// The single-crash window (manifest epoch + 1) stays a warning — the
/// next `Wal::open` sweeps it, exactly as before.
#[test]
fn orphan_one_generation_past_the_manifest_stays_a_warning() {
    let dir = layered_dir("crash-orphan");
    std::fs::write(dir.join("delta-2.ttkv"), b"whatever").unwrap();
    let report = diagnose(&dir);
    assert!(!report.has_errors(), "{report}");
    assert_eq!(checks(&report, Severity::Warning), vec!["layer-orphan"]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn legacy_directory_with_epoch_named_leftovers_warns() {
    let dir = scratch("legacy-leftovers");
    std::fs::write(dir.join("wal.log"), encoded()).unwrap();
    std::fs::write(dir.join("delta-4.ttkv"), b"whatever").unwrap();
    std::fs::write(dir.join("wal-4.log"), b"whatever").unwrap();
    let report = diagnose(&dir);
    assert!(!report.has_errors(), "{report}");
    let mut warnings = checks(&report, Severity::Warning);
    warnings.sort_unstable();
    assert_eq!(warnings, vec!["layer-orphan", "log-stale"], "{report}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn healthy_v2_layers_verify_sections() {
    // Fresh layered directories write binary v2 layers; the doctor's
    // independent structural scan must verify their sections (magic, frame
    // walk, checksums, intern table, end marker) without a single finding.
    let dir = layered_dir("v2-sections");
    let layer = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.unwrap().file_name().into_string().ok())
        .find(|n| n.ends_with(".ttkv"))
        .expect("the layered dir has a snapshot layer");
    let bytes = std::fs::read(dir.join(&layer)).unwrap();
    assert!(
        bytes.starts_with(ocasta_ttkv::BINARY_MAGIC),
        "layers are binary v2 segments"
    );
    let report = diagnose(&dir);
    assert!(report.findings.is_empty(), "{report}");
    // 'K' + 'R' + 'E' per layer.
    assert_eq!(report.sections_verified, 3 * report.layers_verified as u64);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flipped_byte_in_v2_layer_is_a_checksum_error() {
    let dir = layered_dir("v2-flip");
    let layer = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.unwrap().file_name().into_string().ok())
        .find(|n| n.ends_with(".ttkv"))
        .expect("the layered dir has a snapshot layer");
    let mut bytes = std::fs::read(dir.join(&layer)).unwrap();
    // Flip one payload byte past the magic and the first section header:
    // the section checksum must catch it.
    let at = ocasta_ttkv::BINARY_MAGIC.len() + 9;
    bytes[at] ^= 0x40;
    std::fs::write(dir.join(&layer), bytes).unwrap();
    let report = diagnose(&dir);
    assert!(report.has_errors(), "{report}");
    assert_eq!(checks(&report, Severity::Error), vec!["layer-corrupt"]);
    let finding = report.with_check("layer-corrupt").next().unwrap();
    assert!(
        finding.detail.contains("checksum mismatch"),
        "{}",
        finding.detail
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn text_v1_referenced_layer_is_a_format_info() {
    // A manifest chain carrying a pre-v2 text layer still loads (read-only
    // import path) but the doctor points it out as `layer-format`.
    let dir = layered_dir("v1-layer");
    let layer = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.unwrap().file_name().into_string().ok())
        .find(|n| n.ends_with(".ttkv"))
        .expect("the layered dir has a snapshot layer");
    let store = Ttkv::load(std::fs::read(dir.join(&layer)).unwrap().as_slice()).unwrap();
    std::fs::write(dir.join(&layer), store.save_to_string()).unwrap();
    let report = diagnose(&dir);
    assert!(report.is_healthy(), "a v1 layer is not damage: {report}");
    assert_eq!(checks(&report, Severity::Info), vec!["layer-format"]);
    std::fs::remove_dir_all(&dir).ok();
}
