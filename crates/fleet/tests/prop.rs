//! Property tests for the fleet WAL: encode → decode → replay reproduces
//! the exact TTKV state, under arbitrary op sequences and batch splits.

use proptest::prelude::*;

use ocasta_fleet::{WalReader, WalWriter};
use ocasta_trace::{AccessEvent, TraceOp};
use ocasta_ttkv::{Key, TimePrecision, Timestamp, Ttkv, Value};

fn scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[ -~]{0,20}".prop_map(Value::from),
    ]
}

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        4 => scalar(),
        1 => prop::collection::vec(scalar(), 0..4).prop_map(Value::List),
    ]
}

fn op() -> impl Strategy<Value = TraceOp> {
    prop_oneof![
        (0u8..12, 0u64..1_000_000, value()).prop_map(|(k, t, v)| {
            TraceOp::Mutation(AccessEvent::write(
                Timestamp::from_millis(t),
                Key::new(format!("app/key{k}")),
                v,
            ))
        }),
        (0u8..12, 0u64..1_000_000).prop_map(|(k, t)| {
            TraceOp::Mutation(AccessEvent::delete(
                Timestamp::from_millis(t),
                Key::new(format!("app/key{k}")),
            ))
        }),
        (0u8..12, 0u64..10_000)
            .prop_map(|(k, count)| { TraceOp::Reads(Key::new(format!("app/key{k}")), count) }),
    ]
}

/// Writes `ops` into an in-memory WAL split into batches of `batch` ops.
fn write_wal(ops: &[TraceOp], batch: usize) -> Vec<u8> {
    let mut bytes = Vec::new();
    let mut writer = WalWriter::new(&mut bytes).unwrap();
    for chunk in ops.chunks(batch.max(1)) {
        writer.append(chunk).unwrap();
    }
    writer.flush().unwrap();
    bytes
}

fn direct_store(ops: &[TraceOp], precision: TimePrecision) -> Ttkv {
    let mut store = Ttkv::new();
    for op in ops {
        op.clone().apply(&mut store, precision);
    }
    store
}

proptest! {
    /// The op stream read back from a WAL is byte-for-byte the op stream
    /// written, for every batch split.
    #[test]
    fn wal_preserves_op_streams(
        ops in prop::collection::vec(op(), 0..80),
        batch in 1usize..17,
    ) {
        let bytes = write_wal(&ops, batch);
        let mut reader = WalReader::new(bytes.as_slice()).unwrap();
        let decoded = reader.read_all().unwrap();
        prop_assert_eq!(decoded, ops);
        prop_assert!(!reader.torn_tail());
    }

    /// WAL replay reproduces the exact store a direct sequential apply
    /// builds — at both timestamp precisions.
    #[test]
    fn wal_replay_reproduces_exact_state(
        ops in prop::collection::vec(op(), 1..80),
        batch in 1usize..17,
    ) {
        let bytes = write_wal(&ops, batch);
        for precision in [TimePrecision::Milliseconds, TimePrecision::Seconds] {
            let replayed = WalReader::new(bytes.as_slice())
                .unwrap()
                .replay(precision)
                .unwrap();
            prop_assert_eq!(replayed, direct_store(&ops, precision));
        }
    }

    /// Truncating a WAL anywhere yields a clean prefix: every complete
    /// frame survives, nothing errors, and the replayed prefix state equals
    /// the direct build over the surviving ops.
    #[test]
    fn truncated_wal_replays_a_clean_prefix(
        ops in prop::collection::vec(op(), 1..60),
        batch in 1usize..9,
        cut_fraction in 0.0f64..1.0,
    ) {
        let bytes = write_wal(&ops, batch);
        let cut = (bytes.len() as f64 * cut_fraction) as usize;
        let truncated = &bytes[..cut.clamp(ocasta_fleet::WAL_MAGIC.len(), bytes.len())];
        let mut reader = WalReader::new(truncated).unwrap();
        let surviving = reader.read_all().unwrap();
        let frames = reader.frames_read();
        // The survivors are exactly the first `frames` whole batches.
        let expected: Vec<TraceOp> = ops.chunks(batch).take(frames).flatten().cloned().collect();
        prop_assert_eq!(surviving, expected);
    }
}
