//! Exhaustive torn-write injection: a WAL truncated at *every* byte offset
//! of its tail must recover the exact longest valid prefix — never panic,
//! never surface phantom ops, and replay to precisely the prefix store.
//!
//! The sampled truncation property test (`tests/prop.rs`) cuts at random
//! fractions; this suite walks every single offset, so every position
//! inside the tail frame's length field, checksum field and payload is
//! covered, including the boundaries between them.

use std::io::BufReader;

use ocasta_fleet::{Wal, WalError, WalReader, WalWriter, WAL_MAGIC};
use ocasta_trace::{AccessEvent, TraceOp};
use ocasta_ttkv::{TimePrecision, Timestamp, Ttkv, Value};

/// Three batches with every op kind: writes, a delete, aggregated reads,
/// string/list values — so every codec branch crosses the torn boundary at
/// some offset.
fn batches() -> Vec<Vec<TraceOp>> {
    vec![
        vec![
            TraceOp::Mutation(AccessEvent::write(
                Timestamp::from_millis(1_000),
                "app/alpha",
                Value::from(42),
            )),
            TraceOp::Reads(ocasta_ttkv::Key::new("app/alpha"), 17),
        ],
        vec![
            TraceOp::Mutation(AccessEvent::write(
                Timestamp::from_millis(2_500),
                "app/beta",
                Value::from("torn tail torture"),
            )),
            TraceOp::Mutation(AccessEvent::delete(
                Timestamp::from_millis(3_000),
                "app/alpha",
            )),
        ],
        vec![TraceOp::Mutation(AccessEvent::write(
            Timestamp::from_millis(4_000),
            "app/gamma",
            Value::List(vec![Value::from(true), Value::from(2.5)]),
        ))],
    ]
}

/// The complete, healthy log.
fn encoded() -> Vec<u8> {
    let mut bytes = Vec::new();
    let mut writer = WalWriter::new(&mut bytes).unwrap();
    for batch in batches() {
        writer.append(&batch).unwrap();
    }
    writer.flush().unwrap();
    drop(writer);
    bytes
}

/// Frame end offsets, from scanning the complete log.
fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut reader = WalReader::new(bytes).unwrap();
    let mut ends = Vec::new();
    while reader.next_batch().unwrap().is_some() {
        ends.push(reader.clean_bytes() as usize);
    }
    ends
}

fn direct_store(ops: &[TraceOp]) -> Ttkv {
    let mut store = Ttkv::new();
    for op in ops {
        op.clone().apply(&mut store, TimePrecision::Milliseconds);
    }
    store
}

/// The ops expected to survive a truncation at `cut`: every batch whose
/// frame ends at or before the cut.
fn surviving_ops(boundaries: &[usize], cut: usize) -> Vec<TraceOp> {
    batches()
        .iter()
        .zip(boundaries)
        .filter(|(_, &end)| end <= cut)
        .flat_map(|(batch, _)| batch.clone())
        .collect()
}

#[test]
fn every_truncation_offset_recovers_the_longest_valid_prefix() {
    let bytes = encoded();
    let boundaries = frame_boundaries(&bytes);
    assert_eq!(boundaries.len(), 3, "three frames written");
    assert_eq!(*boundaries.last().unwrap(), bytes.len());

    for cut in 0..=bytes.len() {
        let truncated = &bytes[..cut];
        if cut < WAL_MAGIC.len() {
            // Torn inside the magic: not a WAL stream at all.
            assert!(
                matches!(WalReader::new(truncated), Err(WalError::BadMagic)),
                "cut {cut}: expected BadMagic"
            );
            continue;
        }
        let mut reader = WalReader::new(truncated).unwrap();
        let recovered = reader
            .read_all()
            .unwrap_or_else(|e| panic!("cut {cut}: torn tail must never error, got {e}"));
        let expected = surviving_ops(&boundaries, cut);
        assert_eq!(recovered, expected, "cut {cut}: exact longest prefix");
        // The clean prefix is the last surviving frame boundary (or just
        // the magic), never past the cut.
        let clean_end = boundaries
            .iter()
            .copied()
            .rfind(|&end| end <= cut)
            .unwrap_or(WAL_MAGIC.len());
        assert_eq!(reader.clean_bytes() as usize, clean_end, "cut {cut}");
        // A mid-frame cut is reported as torn; a frame-boundary cut is not.
        assert_eq!(reader.torn_tail(), cut != clean_end, "cut {cut}");

        // Replay over the truncated stream equals the direct build over the
        // surviving ops.
        let replayed = WalReader::new(truncated)
            .unwrap()
            .replay(TimePrecision::Milliseconds)
            .unwrap();
        assert_eq!(replayed, direct_store(&expected), "cut {cut}");
    }
}

#[test]
fn every_tail_frame_truncation_reopens_appends_and_replays() {
    let bytes = encoded();
    let boundaries = frame_boundaries(&bytes);
    let tail_start = boundaries[boundaries.len() - 2];
    let dir = std::env::temp_dir().join(format!("ocasta-wal-exhaustive-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Every offset strictly inside the tail frame (a cut at the frame's own
    // end is a clean log, covered by the resume tests).
    for cut in tail_start..bytes.len() {
        std::fs::create_dir_all(&dir).unwrap();
        let log = dir.join("wal.log");
        std::fs::write(&log, &bytes[..cut]).unwrap();

        // Reopening must truncate the torn tail, then append reachably.
        let mut wal = Wal::open(&dir).unwrap();
        let extra = TraceOp::Mutation(AccessEvent::write(
            Timestamp::from_millis(9_999),
            "app/recovered",
            Value::from(cut as i64),
        ));
        wal.append(std::slice::from_ref(&extra)).unwrap();
        wal.flush().unwrap();

        let file = std::fs::File::open(&log).unwrap();
        let mut reader = WalReader::new(BufReader::new(file)).unwrap();
        let recovered = reader.read_all().unwrap();
        assert!(!reader.torn_tail(), "cut {cut}: torn bytes must be gone");
        let mut expected = surviving_ops(&boundaries, cut);
        expected.push(extra);
        assert_eq!(recovered, expected, "cut {cut}");

        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Copies every regular file of `src` into a freshly re-created `dst`.
fn copy_dir(src: &std::path::Path, dst: &std::path::Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// Crash injection during *layered compaction*: a pruned compaction writes
/// a delta snapshot and commits it with a manifest rename. Interrupting it
/// at every byte offset of the mid-write delta (and of the manifest temp
/// file, and between the commit and the old log's deletion) must reopen to
/// exactly the pre-compaction or the post-compaction state — never a torn
/// hybrid, never an error.
#[test]
fn every_truncation_of_a_mid_write_delta_recovers_pre_or_post_state() {
    let scratch =
        std::env::temp_dir().join(format!("ocasta-wal-torn-layer-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let pre = scratch.join("pre");
    let post = scratch.join("post");
    let trial = scratch.join("trial");

    // A directory that is already layered (one pruned compaction behind
    // it) with fresh frames in the current epoch log.
    std::fs::create_dir_all(&pre).unwrap();
    {
        let mut wal = Wal::open(&pre).unwrap();
        wal.append(&batches()[0]).unwrap();
        wal.compact_pruned(TimePrecision::Milliseconds, Timestamp::from_millis(1_500))
            .unwrap();
        wal.append(&batches()[1]).unwrap();
        wal.append(&batches()[2]).unwrap();
        wal.flush().unwrap();
    }
    let pre_state = Wal::open(&pre)
        .unwrap()
        .replay(TimePrecision::Milliseconds)
        .unwrap();

    // Run the next compaction on a copy to learn the exact bytes it
    // writes: the new delta layer and the new manifest.
    copy_dir(&pre, &post);
    let (delta_name, post_state, post_manifest) = {
        let mut wal = Wal::open(&post).unwrap();
        wal.compact_pruned(TimePrecision::Milliseconds, Timestamp::from_millis(3_200))
            .unwrap();
        let delta = std::fs::read_dir(&post)
            .unwrap()
            .filter_map(|e| e.unwrap().file_name().into_string().ok())
            .find(|n| n.starts_with("delta-") && !pre.join(n).exists())
            .expect("the compaction wrote a new delta layer");
        let state = wal.replay(TimePrecision::Milliseconds).unwrap();
        (
            delta,
            state,
            std::fs::read(post.join("wal.manifest")).unwrap(),
        )
    };
    let delta_bytes = std::fs::read(post.join(&delta_name)).unwrap();
    assert_ne!(pre_state, post_state, "the compaction must change state");
    // Layers are `ocasta-ttkv binary v2` segments, so the byte-offset
    // injection below is the tentpole crash-safety proof for that format.
    assert!(
        delta_bytes.starts_with(ocasta_ttkv::BINARY_MAGIC),
        "delta layers must be binary v2 segments"
    );

    let reopen = |dir: &std::path::Path| {
        Wal::open(dir)
            .unwrap()
            .replay(TimePrecision::Milliseconds)
            .unwrap()
    };

    // Crash while the delta layer itself is mid-write: at every prefix the
    // manifest still names the old chain, so the torn delta is an orphan
    // and the state is exactly pre-compaction.
    for cut in 0..=delta_bytes.len() {
        copy_dir(&pre, &trial);
        std::fs::write(trial.join(&delta_name), &delta_bytes[..cut]).unwrap();
        assert_eq!(reopen(&trial), pre_state, "delta cut {cut}");
        assert!(
            !trial.join(&delta_name).exists(),
            "delta cut {cut}: the orphan must be swept on open"
        );
    }

    // Crash while the manifest temp file is mid-write: the rename never
    // happened, so every prefix still reopens to the pre state.
    for cut in [0, 1, post_manifest.len() / 2, post_manifest.len()] {
        copy_dir(&pre, &trial);
        std::fs::write(trial.join(&delta_name), &delta_bytes).unwrap();
        std::fs::write(trial.join("wal.manifest.tmp"), &post_manifest[..cut]).unwrap();
        assert_eq!(reopen(&trial), pre_state, "manifest tmp cut {cut}");
    }

    // Crash after the manifest rename but before the superseded log was
    // deleted: the commit point has passed, so the stale log must be
    // ignored (and swept) and the state is exactly post-compaction.
    {
        copy_dir(&pre, &trial);
        std::fs::write(trial.join(&delta_name), &delta_bytes).unwrap();
        std::fs::write(trial.join("wal.manifest"), &post_manifest).unwrap();
        assert_eq!(reopen(&trial), post_state, "post-commit, stale log kept");
    }

    // And appending after any recovery keeps working (the recovered
    // directory is a fully functional WAL).
    {
        copy_dir(&pre, &trial);
        std::fs::write(
            trial.join(&delta_name),
            &delta_bytes[..delta_bytes.len() / 2],
        )
        .unwrap();
        let mut wal = Wal::open(&trial).unwrap();
        let extra = TraceOp::Mutation(AccessEvent::write(
            Timestamp::from_millis(9_999),
            "app/recovered",
            Value::from(true),
        ));
        wal.append(std::slice::from_ref(&extra)).unwrap();
        wal.flush().unwrap();
        let store = wal.replay(TimePrecision::Milliseconds).unwrap();
        assert_eq!(store.current("app/recovered"), Some(&Value::from(true)));
    }
    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn truncation_inside_the_magic_resets_the_file_on_reopen() {
    let bytes = encoded();
    let dir = std::env::temp_dir().join(format!("ocasta-wal-magic-torn-{}", std::process::id()));
    for cut in 1..WAL_MAGIC.len() {
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("wal.log"), &bytes[..cut]).unwrap();
        let mut wal = Wal::open(&dir).unwrap();
        let op = TraceOp::Mutation(AccessEvent::write(
            Timestamp::from_millis(1),
            "app/fresh",
            Value::from(true),
        ));
        wal.append(std::slice::from_ref(&op)).unwrap();
        wal.flush().unwrap();
        let store = wal.replay(TimePrecision::Milliseconds).unwrap();
        assert_eq!(store.stats().writes, 1, "cut {cut}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
