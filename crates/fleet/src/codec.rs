//! Binary codec for write-ahead-log records.
//!
//! The WAL is written on the hot path, millions of records per run, so it
//! uses a compact, allocation-light binary encoding. Snapshots used to be
//! the odd one out (line-oriented text, `ocasta_ttkv::codec`); since
//! `ocasta-ttkv binary v2` they use the same value-tag space (0x00–0x06)
//! and the same FNV-1a checksum family as these frames — text survives
//! only as the read-only import / explicit-export path:
//!
//! ```text
//! op    := 0x01 u64:timestamp_ms key value      -- write
//!        | 0x02 u64:timestamp_ms key            -- delete (tombstone)
//!        | 0x03 key u64:count                   -- aggregated reads
//! key   := u32:len bytes (UTF-8)
//! value := 0x00                                 -- null
//!        | 0x01 | 0x02                          -- bool false / true
//!        | 0x03 i64                             -- int
//!        | 0x04 u64:bits                        -- float (bit-exact)
//!        | 0x05 u32:len bytes                   -- string
//!        | 0x06 u32:count value*                -- list
//! ```
//!
//! All integers are little-endian. Floats round-trip bit-exactly (NaN
//! payloads included), matching the text codec's `f<hex bits>` guarantee.

use ocasta_trace::{AccessEvent, Mutation, TraceOp};
use ocasta_ttkv::{Key, Timestamp, Value};

/// Op tag: write.
const OP_WRITE: u8 = 0x01;
/// Op tag: delete.
const OP_DELETE: u8 = 0x02;
/// Op tag: aggregated reads.
const OP_READS: u8 = 0x03;

const VAL_NULL: u8 = 0x00;
const VAL_FALSE: u8 = 0x01;
const VAL_TRUE: u8 = 0x02;
const VAL_INT: u8 = 0x03;
const VAL_FLOAT: u8 = 0x04;
const VAL_STR: u8 = 0x05;
const VAL_LIST: u8 = 0x06;

/// A malformed byte sequence, with a human-readable cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wal codec: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn err<T>(message: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError(message.into()))
}

/// Appends the encoding of one op to `out`.
pub fn encode_op(op: &TraceOp, out: &mut Vec<u8>) {
    match op {
        TraceOp::Mutation(event) => match &event.mutation {
            Mutation::Write(value) => {
                out.push(OP_WRITE);
                out.extend_from_slice(&event.timestamp.as_millis().to_le_bytes());
                encode_key(&event.key, out);
                encode_value(value, out);
            }
            Mutation::Delete => {
                out.push(OP_DELETE);
                out.extend_from_slice(&event.timestamp.as_millis().to_le_bytes());
                encode_key(&event.key, out);
            }
        },
        TraceOp::Reads(key, count) => {
            out.push(OP_READS);
            encode_key(key, out);
            out.extend_from_slice(&count.to_le_bytes());
        }
    }
}

/// Decodes one op from the front of `input`, advancing it.
///
/// # Errors
///
/// Returns [`CodecError`] on truncated or malformed input.
pub fn decode_op(input: &mut &[u8]) -> Result<TraceOp, CodecError> {
    match take_u8(input)? {
        OP_WRITE => {
            let t = Timestamp::from_millis(take_u64(input)?);
            let key = decode_key(input)?;
            let value = decode_value(input, 0)?;
            Ok(TraceOp::Mutation(AccessEvent::write(t, key, value)))
        }
        OP_DELETE => {
            let t = Timestamp::from_millis(take_u64(input)?);
            let key = decode_key(input)?;
            Ok(TraceOp::Mutation(AccessEvent::delete(t, key)))
        }
        OP_READS => {
            let key = decode_key(input)?;
            let count = take_u64(input)?;
            Ok(TraceOp::Reads(key, count))
        }
        other => err(format!("unknown op tag {other:#04x}")),
    }
}

fn encode_key(key: &Key, out: &mut Vec<u8>) {
    let bytes = key.as_str().as_bytes();
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn decode_key(input: &mut &[u8]) -> Result<Key, CodecError> {
    let len = take_u32(input)? as usize;
    let bytes = take_bytes(input, len)?;
    match std::str::from_utf8(bytes) {
        Ok(s) => Ok(Key::new(s)),
        Err(e) => err(format!("key is not UTF-8: {e}")),
    }
}

/// Maximum list nesting the decoder accepts (the trace vocabulary uses
/// shallow lists; a bound keeps corrupt input from recursing unboundedly).
const MAX_VALUE_DEPTH: u32 = 32;

/// Appends the encoding of `value` to `out`.
pub fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(VAL_NULL),
        Value::Bool(false) => out.push(VAL_FALSE),
        Value::Bool(true) => out.push(VAL_TRUE),
        Value::Int(i) => {
            out.push(VAL_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(VAL_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(VAL_STR);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::List(items) => {
            out.push(VAL_LIST);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items {
                encode_value(item, out);
            }
        }
    }
}

fn decode_value(input: &mut &[u8], depth: u32) -> Result<Value, CodecError> {
    if depth > MAX_VALUE_DEPTH {
        return err("value nesting too deep");
    }
    match take_u8(input)? {
        VAL_NULL => Ok(Value::Null),
        VAL_FALSE => Ok(Value::Bool(false)),
        VAL_TRUE => Ok(Value::Bool(true)),
        VAL_INT => Ok(Value::Int(i64::from_le_bytes(take_array(input)?))),
        VAL_FLOAT => Ok(Value::Float(f64::from_bits(take_u64(input)?))),
        VAL_STR => {
            let len = take_u32(input)? as usize;
            let bytes = take_bytes(input, len)?;
            match std::str::from_utf8(bytes) {
                Ok(s) => Ok(Value::Str(s.to_owned())),
                Err(e) => err(format!("string is not UTF-8: {e}")),
            }
        }
        VAL_LIST => {
            let count = take_u32(input)? as usize;
            // Bound pre-allocation by the bytes actually available.
            let mut items = Vec::with_capacity(count.min(input.len()));
            for _ in 0..count {
                items.push(decode_value(input, depth + 1)?);
            }
            Ok(Value::List(items))
        }
        other => err(format!("unknown value tag {other:#04x}")),
    }
}

fn take_u8(input: &mut &[u8]) -> Result<u8, CodecError> {
    let (&first, rest) = match input.split_first() {
        Some(split) => split,
        None => return err("unexpected end of input"),
    };
    *input = rest;
    Ok(first)
}

fn take_bytes<'a>(input: &mut &'a [u8], len: usize) -> Result<&'a [u8], CodecError> {
    if input.len() < len {
        return err(format!("need {len} bytes, have {}", input.len()));
    }
    let (taken, rest) = input.split_at(len);
    *input = rest;
    Ok(taken)
}

fn take_array<const N: usize>(input: &mut &[u8]) -> Result<[u8; N], CodecError> {
    let bytes = take_bytes(input, N)?;
    bytes
        .try_into()
        .map_err(|_| CodecError(format!("need {N} bytes, have {}", bytes.len())))
}

fn take_u32(input: &mut &[u8]) -> Result<u32, CodecError> {
    Ok(u32::from_le_bytes(take_array(input)?))
}

fn take_u64(input: &mut &[u8]) -> Result<u64, CodecError> {
    Ok(u64::from_le_bytes(take_array(input)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(op: TraceOp) {
        let mut buf = Vec::new();
        encode_op(&op, &mut buf);
        let mut slice = buf.as_slice();
        assert_eq!(decode_op(&mut slice).unwrap(), op);
        assert!(slice.is_empty(), "decoder must consume the whole op");
    }

    #[test]
    fn ops_roundtrip() {
        roundtrip(TraceOp::Mutation(AccessEvent::write(
            Timestamp::from_millis(123_456),
            "word/mru/item1",
            Value::from("c:\\docs\\report.doc"),
        )));
        roundtrip(TraceOp::Mutation(AccessEvent::delete(
            Timestamp::from_secs(99),
            "word/mru/item9",
        )));
        roundtrip(TraceOp::Reads(Key::new("gedit/view/wrap"), u64::MAX));
        roundtrip(TraceOp::Mutation(AccessEvent::write(
            Timestamp::EPOCH,
            "k",
            Value::List(vec![
                Value::Null,
                Value::Bool(true),
                Value::Float(f64::NAN),
                Value::List(vec![Value::Int(i64::MIN)]),
            ]),
        )));
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for f in [f64::NAN, -0.0, f64::INFINITY, f64::MIN_POSITIVE, 1.5e300] {
            let mut buf = Vec::new();
            encode_value(&Value::Float(f), &mut buf);
            let mut slice = buf.as_slice();
            match decode_value(&mut slice, 0).unwrap() {
                Value::Float(g) => assert_eq!(f.to_bits(), g.to_bits()),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn decoder_rejects_garbage() {
        for bad in [
            &[0xFFu8][..],                 // unknown op tag
            &[],                           // empty
            &[OP_WRITE, 1, 2],             // truncated timestamp
            &[OP_READS, 4, 0, 0, 0, b'a'], // truncated key
        ] {
            let mut slice = bad;
            assert!(decode_op(&mut slice).is_err(), "{bad:?}");
        }
        // Non-UTF-8 key bytes.
        let mut buf = vec![OP_READS, 2, 0, 0, 0, 0xC0, 0xC1];
        buf.extend_from_slice(&0u64.to_le_bytes());
        let mut slice = buf.as_slice();
        assert!(decode_op(&mut slice).is_err());
    }

    #[test]
    fn every_truncation_of_a_valid_op_errors_without_panicking() {
        // Regression for the decode path's worker-safety contract: any
        // prefix of a valid encoding must come back as a structured
        // CodecError — never a panic — since the WAL reader runs these
        // bytes on the appender/replay path.
        let op = TraceOp::Mutation(AccessEvent::write(
            Timestamp::from_millis(42),
            "app/key",
            Value::from(7),
        ));
        let mut buf = Vec::new();
        encode_op(&op, &mut buf);
        for cut in 0..buf.len() {
            let mut slice = &buf[..cut];
            assert!(decode_op(&mut slice).is_err(), "prefix of {cut} bytes");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let mut buf = Vec::new();
        for _ in 0..(MAX_VALUE_DEPTH + 2) {
            buf.push(VAL_LIST);
            buf.extend_from_slice(&1u32.to_le_bytes());
        }
        buf.push(VAL_NULL);
        let mut slice = buf.as_slice();
        assert!(decode_value(&mut slice, 0).is_err());
    }
}
