//! FNV-1a, the crate's one hash function, at both widths.
//!
//! Two subsystems need a fast, stable, dependency-free hash: the WAL frames
//! checksum their payloads with the 32-bit variant, and the sharded store
//! stripes keys with the 64-bit variant. Since the `ocasta-ttkv binary v2`
//! segment format landed, snapshots checksum with the same 32-bit FNV-1a as
//! the WAL frames, so the implementation lives at the bottom of the
//! dependency stack in [`ocasta_ttkv::hash`] and this module re-exports it —
//! one hash, one implementation, one set of reference-vector pins.

/// 32-bit FNV-1a over a byte slice (the WAL frame checksum).
///
/// # Examples
///
/// ```
/// assert_eq!(ocasta_fleet::hash::fnv1a_32(b""), 0x811C_9DC5);
/// assert_eq!(ocasta_fleet::hash::fnv1a_32(b"a"), 0xE40C_292C);
/// ```
pub use ocasta_ttkv::hash::fnv1a_32;

/// 64-bit FNV-1a over a byte slice (the key→shard stripe hash).
///
/// # Examples
///
/// ```
/// assert_eq!(ocasta_fleet::hash::fnv1a_64(b""), 0xCBF2_9CE4_8422_2325);
/// assert_eq!(ocasta_fleet::hash::fnv1a_64(b"a"), 0xAF63_DC4C_8601_EC8C);
/// ```
pub use ocasta_ttkv::hash::fnv1a_64;

#[cfg(test)]
mod tests {
    use super::*;

    /// The WAL frame format depends on these exact parameters; keep a pin
    /// here too so a change in the shared implementation fails fleet tests
    /// directly.
    #[test]
    fn re_export_matches_reference_vectors() {
        assert_eq!(fnv1a_32(b"foobar"), 0xBF9C_F968);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_F739_67E8);
    }
}
