//! # ocasta-fleet — concurrent multi-machine trace ingestion
//!
//! The [Ocasta](https://arxiv.org/abs/1711.04030) study deployed loggers on
//! 29 user machines whose configuration-access traces fed a central
//! Redis-backed time-travel store. This crate is that deployment's
//! ingestion tier at simulation scale — and beyond it, to fleets of
//! hundreds of machines:
//!
//! * [`ShardedTtkv`] — the store side: TTKV shards striped by key hash,
//!   each an immutable-sealed-segments + mutable-tail stack behind its own
//!   lock, merged into one consistent [`ocasta_ttkv::Ttkv`] when ingestion
//!   completes;
//! * [`WalWriter`]/[`WalReader`]/[`Wal`] — an append-only write-ahead log
//!   with a checksummed binary frame format (see [`codec`]), torn-tail
//!   recovery and snapshot compaction;
//! * [`ingest`]/[`ingest_with_wal`] — the engine: a work queue of
//!   machines, N ingest workers driving lazy
//!   [`ocasta_trace::EventStream`]s, per-shard batching, and an optional
//!   WAL appender lane;
//! * [`ingest_into`]/[`ingest_live`]/[`ShardedTtkv::pin_epoch`] — the
//!   live-store path: ingestion into a caller-owned sharded store that
//!   stays readable, through O(shards) per-shard-atomic epoch pins
//!   ([`EpochSnapshot`]), while workers keep appending — what the repair
//!   service tier pins its sessions to;
//! * [`RetentionPolicy`]/[`ShardedTtkv::prune_before`] — the bounded-memory
//!   path: a retention sweeper prunes live shards and compacts the WAL to
//!   a rolling horizon, clamped to [`ocasta_ttkv::HorizonGuard`] pins so
//!   pinned repair sessions keep every version they registered for;
//! * [`FleetMetrics`] — the observability hooks: pass a bundle through
//!   [`IngestOptions::metrics`] and the engine records batch counts,
//!   stripe-lock waits, WAL append/flush/compact timings and sweep stalls
//!   into lock-free [`ocasta_obs`] primitives, without perturbing the
//!   run;
//! * [`diagnose`] — the offline `doctor` surface: inspects a WAL
//!   directory's manifest chain, layers and framed log for corruption,
//!   orphans and torn tails, reporting severity-ranked [`Finding`]s.
//!
//! ## Quick start
//!
//! ```
//! use ocasta_fleet::{ingest, FleetConfig, KeyPlacement, MachineSpec};
//! use ocasta_trace::{KeySpec, SettingGroup, ValueKind, WorkloadSpec};
//!
//! // Two simulated machines running the same app.
//! let mut spec = WorkloadSpec::new("mailer");
//! spec.groups.push(SettingGroup::new(
//!     "mark_seen",
//!     vec![
//!         KeySpec::new("mark_seen", ValueKind::Toggle { initial: true }),
//!         KeySpec::new("timeout", ValueKind::IntRange { min: 500, max: 3000 }),
//!     ],
//!     0.2,
//! ));
//! let machines: Vec<MachineSpec> = (0..2)
//!     .map(|i| MachineSpec::new(format!("m{i}"), 15, 7 + i, vec![spec.clone()]))
//!     .collect();
//!
//! let (store, report) = ingest(&machines, &FleetConfig {
//!     shards: 4,
//!     ingest_threads: 2,
//!     placement: KeyPlacement::Merged,
//!     ..FleetConfig::default()
//! });
//! assert_eq!(report.machines, 2);
//! assert!(store.stats().writes > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod hash;

mod doctor;
mod engine;
mod fault;
mod metrics;
mod shard;
mod tap;
mod wal;

pub use doctor::{diagnose, DoctorReport, Finding, Severity};
pub use engine::{
    ingest, ingest_into, ingest_live, ingest_observed, ingest_sequential, ingest_tapped,
    ingest_with_wal, ingest_with_wal_and_tap, FleetConfig, FleetReport, IngestOptions,
    KeyPlacement, MachineSpec, RetentionPolicy, RetentionReport,
};
pub use fault::{FaultPlan, IngestError};
pub use metrics::FleetMetrics;
pub use shard::{key_hash, EpochSnapshot, ShardedTtkv, DEFAULT_SEAL_THRESHOLD};
pub use tap::{IngestTap, LaneEvent, WriteLanes};
pub use wal::{Wal, WalError, WalReader, WalWriter, WAL_MAGIC};
