//! The concurrent fleet ingestion engine.
//!
//! Reproduces — at simulation scale — the paper's deployment topology:
//! N machines (29 in the study) each stream their configuration-access
//! trace into a central time-travel store. The engine runs three kinds of
//! actors under one thread scope:
//!
//! * **ingest workers** (`ingest_threads` of them) pull whole machines off
//!   a work queue, drive each machine's lazy [`EventStream`], route ops
//!   into per-shard batches, and append full batches to the
//!   [`ShardedTtkv`] under that shard's stripe lock;
//! * an optional **WAL appender** receives every batch over a channel and
//!   appends it to the [`Wal`] before... strictly speaking *while* it is
//!   applied — batches are sent to the WAL channel before the shard apply,
//!   and the single appender serialises them into frames;
//! * the **caller**, which on completion merges the shards into one
//!   consistent [`Ttkv`] and hands it to clustering/repair.
//!
//! Ingestion is machine-granular: one machine's ops are produced and
//! applied in stream order by one worker, so per-key history order is
//! deterministic whenever distinct machines do not write the same key at
//! the same (quantised) timestamp — and [`ingest`] with one thread equals
//! [`ingest`] with sixteen, which the concurrency tests assert.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use ocasta_obs::Stopwatch;
use ocasta_trace::{EventStream, GeneratorConfig, TraceOp, WorkloadSpec};
use ocasta_ttkv::{HorizonGuard, Key, PruneStats, TimeDelta, TimePrecision, Timestamp, Ttkv};

use crate::fault::{panic_message, FaultPlan, IngestError};
use crate::metrics::FleetMetrics;
use crate::shard::ShardedTtkv;
use crate::tap::IngestTap;
use crate::wal::{quantized, Wal, WalError};

/// One simulated machine in the fleet: a named seed-deterministic workload.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Machine name (becomes the key prefix under
    /// [`KeyPlacement::PerMachine`]).
    pub name: String,
    /// Deployment length in days.
    pub days: u64,
    /// RNG seed for this machine's stream.
    pub seed: u64,
    /// Per-application workloads running on the machine.
    pub specs: Vec<WorkloadSpec>,
}

impl MachineSpec {
    /// Creates a machine spec.
    pub fn new(name: impl Into<String>, days: u64, seed: u64, specs: Vec<WorkloadSpec>) -> Self {
        MachineSpec {
            name: name.into(),
            days,
            seed,
            specs,
        }
    }

    /// Opens this machine's lazy event stream.
    pub fn stream(&self) -> EventStream {
        EventStream::new(
            &GeneratorConfig::new(self.name.clone(), self.days, self.seed),
            self.specs.clone(),
        )
    }
}

/// How machine key spaces combine in the merged store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KeyPlacement {
    /// All machines share one key space — the paper's per-user aggregation
    /// of traces from several lab machines (§V).
    #[default]
    Merged,
    /// Keys are prefixed `machine-name/...`, keeping machines disjoint
    /// (useful for per-machine analysis and for deterministic merges).
    PerMachine,
}

/// How much trailing history a long-running ingestion keeps live.
///
/// With a policy set, the engine runs a retention sweeper alongside the
/// ingest workers: whenever the ingest frontier (latest applied mutation
/// timestamp) has advanced far enough, the sweeper prunes every shard to
/// `frontier − retain` ([`ShardedTtkv::prune_before`]) and compacts the
/// WAL lane to the same horizon — both off the ingest workers' hot path.
/// Sweeps clamp to live [`HorizonGuard`] pins, so pinned repair sessions
/// and catalogs never lose history they registered for (`DESIGN.md §5.9`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Simulated trace time kept behind the ingest frontier; older
    /// versions collapse into per-key baselines.
    pub retain: TimeDelta,
    /// Minimum horizon advance between sweeps. Sweeps are incremental —
    /// O(ops since the last sweep + versions reclaimed), both in the
    /// shards and on the WAL lane — so this paces bookkeeping overhead
    /// (layer files, stats traffic), not a rebuild stall as it once did.
    pub min_interval: TimeDelta,
}

impl RetentionPolicy {
    /// A policy retaining the last `days` days of trace time, sweeping at
    /// most once per simulated day.
    pub fn keep_days(days: u64) -> Self {
        RetentionPolicy {
            retain: TimeDelta::from_days(days),
            min_interval: TimeDelta::from_days(1),
        }
    }
}

/// Tuning knobs for one ingestion run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of TTKV stripe locks (shards).
    pub shards: usize,
    /// Number of concurrent ingest workers.
    pub ingest_threads: usize,
    /// Ops buffered per shard before the stripe lock is taken.
    pub batch_size: usize,
    /// Timestamp quantisation applied at ingestion time.
    pub precision: TimePrecision,
    /// Key-space layout.
    pub placement: KeyPlacement,
    /// Bounded-memory retention, or `None` to keep history forever.
    pub retention: Option<RetentionPolicy>,
    /// Mutable-tail size at which a shard seals an immutable segment
    /// (see [`crate::DEFAULT_SEAL_THRESHOLD`]); smaller values seal more
    /// often, making epoch pins cheaper to copy at the cost of more
    /// segment folds.
    pub seal_threshold: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 16,
            ingest_threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            batch_size: 512,
            precision: TimePrecision::Seconds,
            placement: KeyPlacement::Merged,
            retention: None,
            seal_threshold: crate::shard::DEFAULT_SEAL_THRESHOLD,
        }
    }
}

/// What the retention sweeper did over one ingestion run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetentionReport {
    /// Sweeps executed (shard prune + WAL compaction each).
    pub sweeps: u64,
    /// The final prune horizon, if any sweep ran.
    pub horizon: Option<Timestamp>,
    /// Total reclaimed across all sweeps.
    pub reclaimed: PruneStats,
    /// Sweep attempts (paced at the policy's `min_interval`, like sweeps
    /// themselves) whose target horizon was clamped back by a live pin.
    pub clamped: u64,
    /// Dead counter-only key shells collected by the final sweep
    /// ([`ocasta_ttkv::Ttkv::gc_dead_shells`]): keys whose entire history
    /// was pruned away and whose last value was a tombstone. Collected
    /// once, after the final sweep — mid-run sweeps leave shells in place
    /// so a straggler rewrite keeps its lifetime counters.
    pub shells: u64,
}

/// What one ingestion run did, and how fast.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Machines ingested.
    pub machines: usize,
    /// Mutation events applied (writes + deletions).
    pub mutations: u64,
    /// Read accesses applied (sum of aggregated counters).
    pub reads: u64,
    /// Shards used.
    pub shards: usize,
    /// Ingest workers used.
    pub threads: usize,
    /// Wall-clock ingestion time (excludes the final shard merge).
    pub ingest_elapsed: Duration,
    /// Wall-clock shard build + merge time.
    pub merge_elapsed: Duration,
    /// Per-machine mutation counts, in machine order.
    pub per_machine: Vec<(String, u64)>,
    /// The retention sweeper's tally, when a policy was configured.
    pub retention: Option<RetentionReport>,
}

impl FleetReport {
    /// Mutations per second of ingestion wall-clock.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.ingest_elapsed.as_secs_f64();
        if secs > 0.0 {
            self.mutations as f64 / secs
        } else {
            f64::INFINITY
        }
    }
}

impl std::fmt::Display for FleetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} machines, {} mutations, {} reads via {} threads x {} shards \
             in {:.2?} (+{:.2?} merge) = {:.0} events/s",
            self.machines,
            self.mutations,
            self.reads,
            self.threads,
            self.shards,
            self.ingest_elapsed,
            self.merge_elapsed,
            self.events_per_sec(),
        )?;
        if let Some(retention) = &self.retention {
            write!(
                f,
                "; retention: {} sweeps ({} pin-clamped) to {}, {}, {} dead shells collected",
                retention.sweeps,
                retention.clamped,
                retention
                    .horizon
                    .map_or_else(|| "-".into(), |h| h.to_string()),
                retention.reclaimed,
                retention.shells,
            )?;
        }
        Ok(())
    }
}

/// Everything one ingestion run can optionally be instrumented with: a
/// durability lane, a live-analytics tap, and a retention pin registry.
///
/// The struct form keeps the entry-point surface flat: `ingest`,
/// [`ingest_with_wal`], [`ingest_into`] and friends are thin wrappers over
/// [`ingest_live`] with the corresponding option set.
#[derive(Default)]
pub struct IngestOptions<'a> {
    /// Append every accepted batch to this WAL before it is applied.
    pub wal: Option<&'a mut Wal>,
    /// Invoke on every accepted batch (outside the shard locks).
    pub tap: Option<&'a dyn IngestTap>,
    /// Clamp retention sweeps to this registry's live pins. Without a
    /// guard, a configured [`RetentionPolicy`] sweeps unclamped.
    pub guard: Option<&'a HorizonGuard>,
    /// Record ingest/WAL/sweep observations into these handles (see
    /// [`FleetMetrics`]). Purely observational: an instrumented run
    /// applies exactly the ops, in exactly the order, an uninstrumented
    /// one does.
    pub metrics: Option<&'a FleetMetrics>,
    /// Deterministic fault injection for the VOPR harness (see
    /// [`FaultPlan`]). `None` — the default — injects nothing and costs
    /// nothing: every hook is a field check on this option.
    pub faults: Option<&'a FaultPlan>,
}

impl std::fmt::Debug for IngestOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestOptions")
            .field("wal", &self.wal.is_some())
            .field("tap", &self.tap.is_some())
            .field("guard", &self.guard.is_some())
            .field("metrics", &self.metrics.is_some())
            .field("faults", &self.faults.is_some())
            .finish()
    }
}

/// Ingests a whole fleet concurrently; returns the merged store and a
/// throughput report.
pub fn ingest(machines: &[MachineSpec], config: &FleetConfig) -> (Ttkv, FleetReport) {
    match ingest_inner(machines, config, IngestOptions::default()) {
        Ok(result) => result,
        // lint:allow(panic-in-worker-path): caller-facing infallible wrapper — absent a WAL lane or fault plan only an engine bug reaches Err, and surfacing that bug as a caller panic (never on a worker thread) is the intent
        Err(e) => unreachable!("no WAL lane, no fault plan: {e}"),
    }
}

/// Like [`ingest`], additionally invoking `tap` on every accepted batch —
/// the live-analytics hook (see [`IngestTap`] and [`crate::WriteLanes`]).
///
/// The tap runs on the ingest workers' threads, outside the shard locks;
/// batches reach it after placement and timestamp quantisation — as the
/// store sees them — and only *after* the shard has applied them, so
/// everything a tap consumer has observed is already readable through a
/// store snapshot.
pub fn ingest_tapped(
    machines: &[MachineSpec],
    config: &FleetConfig,
    tap: &dyn IngestTap,
) -> (Ttkv, FleetReport) {
    let options = IngestOptions {
        tap: Some(tap),
        ..IngestOptions::default()
    };
    match ingest_inner(machines, config, options) {
        Ok(result) => result,
        // lint:allow(panic-in-worker-path): caller-facing infallible wrapper — absent a WAL lane or fault plan only an engine bug reaches Err, and surfacing that bug as a caller panic (never on a worker thread) is the intent
        Err(e) => unreachable!("no WAL lane, no fault plan: {e}"),
    }
}

/// Like [`ingest`], additionally appending every batch to `wal` before it
/// is applied to the shards.
///
/// # Errors
///
/// Returns the first [`IngestError`] the run hits: a WAL failure on the
/// appender lane (ingestion still runs to completion so the store is
/// usable; the WAL may be truncated), or a panicked ingest worker.
pub fn ingest_with_wal(
    machines: &[MachineSpec],
    config: &FleetConfig,
    wal: &mut Wal,
) -> Result<(Ttkv, FleetReport), IngestError> {
    let options = IngestOptions {
        wal: Some(wal),
        ..IngestOptions::default()
    };
    ingest_inner(machines, config, options)
}

/// The fully-instrumented engine: optional WAL lane *and* optional tap.
///
/// # Errors
///
/// Same conditions as [`ingest_with_wal`].
pub fn ingest_with_wal_and_tap(
    machines: &[MachineSpec],
    config: &FleetConfig,
    wal: &mut Wal,
    tap: &dyn IngestTap,
) -> Result<(Ttkv, FleetReport), IngestError> {
    let options = IngestOptions {
        wal: Some(wal),
        tap: Some(tap),
        ..IngestOptions::default()
    };
    ingest_inner(machines, config, options)
}

/// The general merged-store entry point: bring your own [`IngestOptions`]
/// (WAL lane, tap, horizon guard, metrics bundle — any combination),
/// ingest, and merge the shards into one consistent store. The named
/// convenience wrappers ([`ingest`], [`ingest_with_wal`], …) all route
/// here.
///
/// # Errors
///
/// Same conditions as [`ingest_with_wal`] — only possible when a WAL lane
/// or a fault plan was supplied (absent both, workers can still panic on a
/// genuine engine bug, and that panic surfaces as an error here).
pub fn ingest_observed(
    machines: &[MachineSpec],
    config: &FleetConfig,
    options: IngestOptions<'_>,
) -> Result<(Ttkv, FleetReport), IngestError> {
    ingest_inner(machines, config, options)
}

fn ingest_inner(
    machines: &[MachineSpec],
    config: &FleetConfig,
    options: IngestOptions<'_>,
) -> Result<(Ttkv, FleetReport), IngestError> {
    let sharded = ShardedTtkv::with_seal_threshold(config.shards, config.seal_threshold);
    let mut report = ingest_live(machines, config, &sharded, options)?;

    let merge_started = Stopwatch::start();
    let store = sharded.into_ttkv();
    report.merge_elapsed = merge_started.elapsed();
    Ok((store, report))
}

/// Streams every machine into a **caller-owned** live store, invoking `tap`
/// on every accepted batch; returns when all machines are ingested.
///
/// Unlike [`ingest`], the shards are *not* merged when ingestion completes:
/// the caller keeps the [`ShardedTtkv`] live, reads it through
/// [`ShardedTtkv::snapshot_store`] at any moment — including while this
/// function is still running on another thread — and decides itself when
/// (or whether) to [`ShardedTtkv::into_ttkv`]. This is the entry point the
/// repair service tier uses: ingestion keeps flowing while repair sessions
/// pin snapshots (the returned report's `merge_elapsed` is therefore zero).
///
/// The batch size, placement, precision and worker count come from
/// `config`; the shard count comes from `sharded` itself. Pass `&()` as the
/// tap to observe nothing.
///
/// # Examples
///
/// ```
/// use ocasta_fleet::{ingest_into, FleetConfig, MachineSpec, ShardedTtkv};
/// use ocasta_trace::WorkloadSpec;
///
/// let mut spec = WorkloadSpec::new("app");
/// spec.churn_keys = 2;
/// spec.churn_writes_per_day = 1.0;
/// let machines = vec![MachineSpec::new("m0", 5, 1, vec![spec])];
/// let sharded = ShardedTtkv::new(4);
/// let report = ingest_into(&machines, &FleetConfig::default(), &sharded, &());
/// // The store stays live: snapshot it, keep ingesting, or merge now.
/// assert_eq!(sharded.snapshot_store().stats().writes, report.mutations);
/// ```
pub fn ingest_into(
    machines: &[MachineSpec],
    config: &FleetConfig,
    sharded: &ShardedTtkv,
    tap: &dyn IngestTap,
) -> FleetReport {
    let options = IngestOptions {
        tap: Some(tap),
        ..IngestOptions::default()
    };
    match ingest_live(machines, config, sharded, options) {
        Ok(report) => report,
        // lint:allow(panic-in-worker-path): caller-facing infallible wrapper — absent a WAL lane or fault plan only an engine bug reaches Err, and surfacing that bug as a caller panic (never on a worker thread) is the intent
        Err(e) => unreachable!("no WAL lane, no fault plan: {e}"),
    }
}

/// One message on the WAL lane: a batch to append, or an instruction from
/// the retention sweeper to compact the log pruned to a horizon — either
/// incrementally (`Compact`, a mid-run delta layer, O(delta)) or as a full
/// fold (`Rebase`, the sweeper's final message, leaving one pruned base on
/// disk). All are handled by the single appender, which is what keeps the
/// `Wal` single-owner and the compaction off the ingest workers' hot path.
enum WalMsg {
    Batch(Vec<TraceOp>),
    Compact(Timestamp),
    Rebase(Timestamp),
}

/// The worker-pool engine behind every public ingest entry point: drives
/// all machines into the **caller-owned** `sharded` store, with whatever
/// [`IngestOptions`] instrumentation the caller wants, plus the retention
/// sweeper when `config.retention` is set. The shards are not merged —
/// `merge_elapsed` is zero; the caller snapshots or merges when it
/// pleases.
///
/// # Errors
///
/// Returns the first [`IngestError`] the run hits. A WAL failure on the
/// appender lane leaves the store usable (ingestion still runs to
/// completion; the WAL may be truncated). A panicked worker — injected via
/// [`FaultPlan::kill_worker_at_machine`] or a genuine bug — loses exactly
/// that worker's current machine: the queue keeps draining on the
/// surviving workers, stat locks tolerate the poison, the WAL lane and
/// sweeper shut down in the normal order, and the first failure is
/// returned as [`IngestError::WorkerPanicked`]. The caller-owned `sharded`
/// store holds everything the surviving machines applied.
pub fn ingest_live(
    machines: &[MachineSpec],
    config: &FleetConfig,
    sharded: &ShardedTtkv,
    options: IngestOptions<'_>,
) -> Result<FleetReport, IngestError> {
    let IngestOptions {
        wal,
        tap,
        guard,
        metrics,
        faults,
    } = options;
    let threads = config.ingest_threads.max(1);
    let started = Stopwatch::start();

    // Work queue of machine indices.
    let (work_tx, work_rx) = mpsc::channel::<usize>();
    for idx in 0..machines.len() {
        if work_tx.send(idx).is_err() {
            break;
        }
    }
    drop(work_tx);
    let work_rx = Mutex::new(work_rx);
    // First failure wins; later ones (cascades of the first) are dropped.
    let failure: Mutex<Option<IngestError>> = Mutex::new(None);

    // Optional WAL lane: workers send applied batches, one appender writes.
    let (wal_tx, wal_rx) = mpsc::channel::<WalMsg>();
    let wal_tx = wal.is_some().then_some(wal_tx);

    let per_machine = Mutex::new(vec![0u64; machines.len()]);
    let total_reads = Mutex::new(0u64);
    let ingest_done = AtomicBool::new(false);

    let (wal_result, retention_report): (Result<(), WalError>, Option<RetentionReport>) =
        std::thread::scope(|scope| {
            let precision = config.precision;
            let appender = wal.map(|wal| {
                let crash_after = faults.and_then(|f| f.wal_crash_after_frames);
                scope.spawn(move || -> Result<(), WalError> {
                    // Each lane operation is timed individually (when
                    // instrumented) so the appender's stall profile —
                    // cheap frame appends vs the occasional O(delta)
                    // compaction vs the one O(window) rebase — reads
                    // straight out of the histograms.
                    let mut frames = 0u64;
                    while let Ok(msg) = wal_rx.recv() {
                        if crash_after.is_some_and(|cap| frames >= cap) {
                            // Injected dead lane: what was appended so far
                            // is flushed and durable, everything after —
                            // batches and compactions alike — is silently
                            // dropped, exactly like a lane whose thread
                            // died without anyone noticing.
                            continue;
                        }
                        let started = Stopwatch::start_if(metrics.is_some());
                        match msg {
                            WalMsg::Batch(batch) => {
                                wal.append(&batch)?;
                                frames += 1;
                                if crash_after.is_some_and(|cap| frames >= cap) {
                                    wal.flush()?;
                                }
                                if let (Some(m), Some(sw)) = (metrics, started) {
                                    m.wal_frames.inc();
                                    m.wal_append.record_duration(sw.elapsed());
                                }
                            }
                            WalMsg::Compact(horizon) => {
                                wal.compact_pruned(precision, horizon)?;
                                if let (Some(m), Some(sw)) = (metrics, started) {
                                    m.wal_compact.record_duration(sw.elapsed());
                                }
                            }
                            WalMsg::Rebase(horizon) => {
                                wal.compact_pruned_rebased(precision, horizon)?;
                                if let (Some(m), Some(sw)) = (metrics, started) {
                                    m.wal_rebase.record_duration(sw.elapsed());
                                }
                            }
                        }
                    }
                    if crash_after.is_some_and(|cap| frames >= cap) {
                        // The dead lane never reaches the final flush.
                        return Ok(());
                    }
                    let started = Stopwatch::start_if(metrics.is_some());
                    let flushed = wal.flush();
                    if let (Some(m), Some(sw)) = (metrics, started) {
                        m.wal_flush.record_duration(sw.elapsed());
                    }
                    flushed
                })
            });

            let sweeper = config.retention.map(|policy| {
                let wal_tx = wal_tx.clone();
                let ingest_done = &ingest_done;
                scope.spawn(move || {
                    run_retention_sweeper(
                        policy,
                        sharded,
                        guard,
                        wal_tx,
                        ingest_done,
                        metrics,
                        faults,
                    )
                })
            });

            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    let work_rx = &work_rx;
                    let per_machine = &per_machine;
                    let total_reads = &total_reads;
                    let failure = &failure;
                    let wal_tx = wal_tx.clone();
                    scope.spawn(move || {
                        let shard_count = sharded.shard_count();
                        loop {
                            let machine_idx = {
                                let queue = lock_ignore_poison(work_rx);
                                match queue.recv() {
                                    Ok(idx) => idx,
                                    Err(_) => break,
                                }
                            };
                            let Some(machine) = machines.get(machine_idx) else {
                                record_failure(
                                    failure,
                                    IngestError::InvariantViolated {
                                        message: format!(
                                            "work queue produced machine index {machine_idx}, \
                                             but the fleet has {} machines",
                                            machines.len()
                                        ),
                                    },
                                );
                                continue;
                            };
                            // One machine's span is a unit of failure: a
                            // panic inside it (injected or real) loses that
                            // machine's remaining ops and nothing else —
                            // this worker records the failure and goes back
                            // to the queue, so the rest of the fleet still
                            // ingests and the caller gets a structured
                            // error instead of a poisoned-lock cascade.
                            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                || -> Result<_, IngestError> {
                                    if faults.and_then(|f| f.kill_worker_at_machine)
                                        == Some(machine_idx)
                                    {
                                        // lint:allow(panic-in-worker-path): deliberate fault injection — the VOPR worker-kill fault is a real panic by design
                                        panic!(
                                            "fault injection: worker killed at machine index \
                                             {machine_idx}"
                                        );
                                    }
                                    let mut batches: Vec<Vec<TraceOp>> = (0..shard_count)
                                        .map(|_| Vec::with_capacity(config.batch_size))
                                        .collect();
                                    let mut mutations = 0u64;
                                    let mut reads = 0u64;
                                    for op in machine.stream() {
                                        let op = place(op, machine, config.placement);
                                        let op = quantized(op, config.precision);
                                        match &op {
                                            TraceOp::Mutation(_) => mutations += 1,
                                            TraceOp::Reads(_, count) => reads += count,
                                        }
                                        let shard = sharded.shard_of(op.key().as_str());
                                        let Some(bucket) = batches.get_mut(shard) else {
                                            return Err(IngestError::InvariantViolated {
                                                message: format!(
                                                    "shard_of returned {shard}, but the store \
                                                     has {shard_count} shards"
                                                ),
                                            });
                                        };
                                        bucket.push(op);
                                        if bucket.len() >= config.batch_size {
                                            let batch = std::mem::replace(
                                                bucket,
                                                Vec::with_capacity(config.batch_size),
                                            );
                                            // The tap fires outside the shard lock
                                            // (it can slow this worker, never a
                                            // stripe) and strictly *after* the
                                            // apply: anything a tap consumer has
                                            // observed is already readable in the
                                            // store, so a live snapshot pinned
                                            // after a lane drain always contains
                                            // the drained events (§5.8). The clone
                                            // is tap-path-only.
                                            let tapped = tap.map(|_| batch.clone());
                                            // The WAL send happens under the shard
                                            // lock so the log's per-shard order
                                            // equals apply order.
                                            sharded.append_batch_observed(
                                                shard,
                                                batch,
                                                |b| {
                                                    if let Some(tx) = &wal_tx {
                                                        let _ = tx.send(WalMsg::Batch(b.to_vec()));
                                                    }
                                                },
                                                metrics,
                                            );
                                            if let (Some(tap), Some(batch)) = (tap, tapped) {
                                                tap.on_batch(shard, &batch);
                                            }
                                        }
                                    }
                                    for (shard, batch) in batches.into_iter().enumerate() {
                                        if batch.is_empty() {
                                            continue;
                                        }
                                        let tapped = tap.map(|_| batch.clone());
                                        sharded.append_batch_observed(
                                            shard,
                                            batch,
                                            |b| {
                                                if let Some(tx) = &wal_tx {
                                                    let _ = tx.send(WalMsg::Batch(b.to_vec()));
                                                }
                                            },
                                            metrics,
                                        );
                                        if let (Some(tap), Some(batch)) = (tap, tapped) {
                                            tap.on_batch(shard, &batch);
                                        }
                                    }
                                    Ok((mutations, reads))
                                },
                            ));
                            match outcome {
                                Ok(Ok((mutations, reads))) => {
                                    // Scope the per-machine guard so it is
                                    // released before the failure slot (or
                                    // any other lock) can be taken.
                                    let recorded = {
                                        let mut slots = lock_ignore_poison(per_machine);
                                        match slots.get_mut(machine_idx) {
                                            Some(slot) => {
                                                *slot = mutations;
                                                true
                                            }
                                            None => false,
                                        }
                                    };
                                    if !recorded {
                                        record_failure(
                                            failure,
                                            IngestError::InvariantViolated {
                                                message: format!(
                                                    "per-machine slot {machine_idx} missing \
                                                     ({} machines)",
                                                    machines.len()
                                                ),
                                            },
                                        );
                                    }
                                    *lock_ignore_poison(total_reads) += reads;
                                }
                                Ok(Err(error)) => record_failure(failure, error),
                                Err(payload) => record_failure(
                                    failure,
                                    IngestError::WorkerPanicked {
                                        machine: Some(machine.name.clone()),
                                        message: panic_message(payload),
                                    },
                                ),
                            }
                        }
                    })
                })
                .collect();
            for worker in workers {
                if let Err(payload) = worker.join() {
                    record_failure(
                        &failure,
                        IngestError::WorkerPanicked {
                            machine: None,
                            message: panic_message(payload),
                        },
                    );
                }
            }
            // Ingestion is complete (or as complete as the failures left
            // it): let the sweeper run its final sweep and exit, then
            // close our WAL sender so the appender sees EOF after the last
            // compaction instruction — the same shutdown order whether or
            // not a worker died.
            ingest_done.store(true, Ordering::Release);
            let retention_report = sweeper.and_then(|s| match s.join() {
                Ok(report) => Some(report),
                Err(payload) => {
                    record_failure(
                        &failure,
                        IngestError::WorkerPanicked {
                            machine: None,
                            message: format!("retention sweeper: {}", panic_message(payload)),
                        },
                    );
                    None
                }
            });
            drop(wal_tx);
            let wal_result = match appender {
                Some(handle) => match handle.join() {
                    Ok(result) => result,
                    Err(payload) => {
                        record_failure(
                            &failure,
                            IngestError::WorkerPanicked {
                                machine: None,
                                message: format!("wal appender: {}", panic_message(payload)),
                            },
                        );
                        Ok(())
                    }
                },
                None => Ok(()),
            };
            (wal_result, retention_report)
        });

    let ingest_elapsed = started.elapsed();
    let per_machine_counts = per_machine
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let mutations: u64 = per_machine_counts.iter().sum();
    let reads = total_reads
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());

    let report = FleetReport {
        machines: machines.len(),
        mutations,
        reads,
        shards: sharded.shard_count(),
        threads,
        ingest_elapsed,
        merge_elapsed: Duration::ZERO,
        per_machine: machines
            .iter()
            .map(|m| m.name.clone())
            .zip(per_machine_counts)
            .collect(),
        retention: retention_report,
    };
    if let Some(error) = failure
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
    {
        return Err(error);
    }
    wal_result?;
    Ok(report)
}

/// Locks a mutex, accepting a poisoned one: the panic that poisoned it is
/// reported through the engine's failure slot, so the data (simple
/// counters and an error slot) is still sound to read.
fn lock_ignore_poison<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Stores `error` into the shared failure slot unless an earlier failure
/// already claimed it — later failures are usually cascades of the first.
fn record_failure(slot: &Mutex<Option<IngestError>>, error: IngestError) {
    let mut slot = lock_ignore_poison(slot);
    if slot.is_none() {
        *slot = Some(error);
    }
}

/// The retention sweep loop: while ingestion runs, watch the ingest
/// frontier and prune shards + compact the WAL whenever the horizon has
/// advanced by at least the policy's `min_interval` — always clamped to
/// the guard's live pins. A final sweep runs once ingestion completes, so
/// the post-run store is pruned to exactly `frontier − retain` (modulo
/// pins) regardless of timing. The final sweep also collects dead
/// counter-only shells ([`ShardedTtkv::gc_dead_shells`]) — mid-run sweeps
/// deliberately leave shells in place so a straggler rewriting a pruned
/// key keeps its lifetime counters.
fn run_retention_sweeper(
    policy: RetentionPolicy,
    sharded: &ShardedTtkv,
    guard: Option<&HorizonGuard>,
    wal_tx: Option<mpsc::Sender<WalMsg>>,
    ingest_done: &AtomicBool,
    metrics: Option<&FleetMetrics>,
    faults: Option<&FaultPlan>,
) -> RetentionReport {
    let mut report = RetentionReport::default();
    let mut last_horizon = Timestamp::EPOCH;
    // Attempts (not just executed sweeps) are paced at `min_interval`: a
    // pin can hold the granted horizon still while the frontier advances,
    // and neither the clamp traffic nor the `clamped` tally should scale
    // with the poll rate.
    let mut last_attempt = Timestamp::EPOCH;
    loop {
        // Injected crash: stop before sweep N + 1 would run, skipping the
        // finishing rebase-and-collect too — the store and WAL are left
        // exactly as a sweeper that died mid-retention would leave them.
        if let Some(stop) = faults.and_then(|f| f.sweeper_stop_after) {
            if report.sweeps >= stop {
                return report;
            }
        }
        let finishing = ingest_done.load(Ordering::Acquire);
        let target = sharded
            .last_mutation_time()
            .map(|frontier| frontier.saturating_sub(policy.retain))
            .unwrap_or(Timestamp::EPOCH);
        // Mid-run sweeps respect the pacing interval. The final sweep runs
        // whenever any horizon stands — even an unchanged one: machine-
        // granular scheduling lets a lagging machine apply pre-horizon
        // events *after* a mid-run sweep, and with every worker done, one
        // re-prune at the standing horizon collapses those stragglers and
        // makes the post-run state equal prune(horizon) of the complete
        // history (the prune/absorb commutation property).
        let goal = if finishing {
            target.max(last_horizon)
        } else {
            target
        };
        let due = if finishing {
            goal > Timestamp::EPOCH
        } else {
            goal >= last_attempt + policy.min_interval && goal > Timestamp::EPOCH
        };
        let mut swept_now = false;
        if due {
            last_attempt = goal;
            let horizon = guard.map_or(goal, |g| g.clamp(goal));
            if horizon < goal {
                report.clamped += 1;
                if let Some(m) = metrics {
                    m.pin_clamps.inc();
                }
            }
            if horizon > Timestamp::EPOCH && (horizon > last_horizon || finishing) {
                let sweep_started = Stopwatch::start_if(metrics.is_some());
                let stats = sharded.prune_before_observed(horizon, metrics);
                if let (Some(m), Some(sw)) = (metrics, sweep_started) {
                    m.sweep_stall.record_duration(sw.elapsed());
                    m.sweeps.inc();
                    m.sweep_reclaimed_versions.add(stats.pruned_versions);
                    m.sweep_reclaimed_bytes.add(stats.reclaimed_bytes);
                }
                report.reclaimed.absorb(stats);
                if let Some(tx) = &wal_tx {
                    // Mid-run sweeps layer a delta (O(delta) on the
                    // appender); the final sweep folds the whole chain so
                    // a finished run leaves one pruned base on disk.
                    let _ = tx.send(if finishing {
                        WalMsg::Rebase(horizon)
                    } else {
                        WalMsg::Compact(horizon)
                    });
                    swept_now = true;
                }
                report.sweeps += 1;
                report.horizon = Some(horizon);
                last_horizon = horizon;
            }
        }
        if finishing {
            // If the final iteration did not itself compact (the horizon
            // was pinned still, or nothing was ever due), one last rebase
            // truncates the log tail accumulated since the previous sweep
            // and folds any delta chain, so the post-run disk footprint is
            // the pruned snapshot alone. Skipped when a Rebase was just
            // sent — it would fold the fresh base to no effect.
            if !swept_now {
                if let Some(tx) = &wal_tx {
                    let _ = tx.send(WalMsg::Rebase(last_horizon));
                }
            }
            // The run is over: nothing can rewrite a pruned key anymore,
            // so counter-only shells are dead weight — collect them. The
            // WAL side does the same inside its final forced rebase, which
            // keeps replay == store.
            if last_horizon > Timestamp::EPOCH {
                report.shells = sharded.gc_dead_shells();
            }
            return report;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Applies the key-placement policy to one op.
fn place(op: TraceOp, machine: &MachineSpec, placement: KeyPlacement) -> TraceOp {
    match placement {
        KeyPlacement::Merged => op,
        KeyPlacement::PerMachine => match op {
            TraceOp::Mutation(mut event) => {
                event.key = prefixed(&machine.name, &event.key);
                TraceOp::Mutation(event)
            }
            TraceOp::Reads(key, count) => TraceOp::Reads(prefixed(&machine.name, &key), count),
        },
    }
}

fn prefixed(machine: &str, key: &Key) -> Key {
    Key::new(format!("{machine}/{key}"))
}

/// Ingests sequentially on the calling thread with a single shard —
/// the reference implementation the concurrency tests compare against.
pub fn ingest_sequential(machines: &[MachineSpec], config: &FleetConfig) -> Ttkv {
    let mut store = Ttkv::new();
    for machine in machines {
        for op in machine.stream() {
            let op = place(op, machine, config.placement);
            quantized(op, config.precision).apply(&mut store, TimePrecision::Milliseconds);
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocasta_trace::{KeySpec, SettingGroup, ValueKind};

    pub(crate) fn tiny_fleet(machines: usize, days: u64) -> Vec<MachineSpec> {
        (0..machines)
            .map(|i| {
                let mut spec = WorkloadSpec::new(format!("app{}", i % 3));
                spec.sessions_per_day = 1.5;
                spec.reads_per_session = 8;
                spec.static_keys = 6;
                spec.churn_keys = 2;
                spec.churn_writes_per_day = 0.4;
                spec.groups.push(SettingGroup::new(
                    "pair",
                    vec![
                        KeySpec::new("flag", ValueKind::Toggle { initial: false }),
                        KeySpec::new("level", ValueKind::IntRange { min: 1, max: 9 }),
                    ],
                    0.3,
                ));
                MachineSpec::new(format!("m{i:02}"), days, 1_000 + i as u64, vec![spec])
            })
            .collect()
    }

    #[test]
    fn ingest_produces_a_nonempty_consistent_store() {
        let machines = tiny_fleet(6, 10);
        let config = FleetConfig {
            shards: 4,
            ingest_threads: 3,
            batch_size: 32,
            precision: TimePrecision::Milliseconds,
            placement: KeyPlacement::PerMachine,
            retention: None,
            seal_threshold: 64,
        };
        let (store, report) = ingest(&machines, &config);
        assert_eq!(report.machines, 6);
        assert!(report.mutations > 0);
        assert_eq!(
            store.stats().writes + store.stats().deletes,
            report.mutations
        );
        assert_eq!(store.stats().reads, report.reads);
        assert_eq!(report.per_machine.len(), 6);
        assert!(report.per_machine.iter().all(|(_, n)| *n > 0));
        // Per-machine placement: every machine owns a key subtree.
        for (name, _) in &report.per_machine {
            let prefix = Key::new(name.clone());
            assert!(store.keys_under(&prefix).next().is_some(), "{name}");
        }
    }

    #[test]
    fn tap_sees_every_mutation_the_store_accepts() {
        use crate::tap::WriteLanes;
        let machines = tiny_fleet(4, 8);
        let config = FleetConfig {
            shards: 4,
            ingest_threads: 2,
            batch_size: 16,
            ..FleetConfig::default()
        };
        let lanes = WriteLanes::new(config.shards);
        let (store, report) = ingest_tapped(&machines, &config, &lanes);
        let drained = lanes.drain();
        assert_eq!(drained.len() as u64, report.mutations);
        assert_eq!(
            store.stats().writes + store.stats().deletes,
            drained.len() as u64
        );
        // The tap sees quantised timestamps — what the store sees.
        assert!(drained.iter().all(|(_, t)| t.as_millis() % 1_000 == 0));
    }

    #[test]
    fn ingest_into_keeps_the_store_live_and_matches_ingest() {
        let machines = tiny_fleet(5, 12);
        let config = FleetConfig {
            shards: 4,
            ingest_threads: 2,
            batch_size: 16,
            // Disjoint key spaces keep the cross-run equality assertion
            // free of same-key timestamp-tie ordering races.
            placement: KeyPlacement::PerMachine,
            ..FleetConfig::default()
        };
        let sharded = ShardedTtkv::new(config.shards);
        // Snapshot the live store while ingestion runs on another thread.
        let (report, mid_snapshots) = std::thread::scope(|scope| {
            let handle = scope.spawn(|| ingest_into(&machines, &config, &sharded, &()));
            let mut mid = Vec::new();
            while !handle.is_finished() {
                mid.push(sharded.snapshot_store().stats().writes);
                // A snapshot per iteration is the point; spinning without
                // yielding on a small CI host is not.
                std::thread::sleep(Duration::from_millis(1));
            }
            (handle.join().expect("ingest panicked"), mid)
        });
        assert_eq!(report.merge_elapsed, Duration::ZERO);
        assert!(mid_snapshots.windows(2).all(|w| w[0] <= w[1]), "monotone");
        // The caller-owned store ends up exactly where `ingest` would.
        let live = sharded.snapshot_store();
        assert_eq!(live, sharded.into_ttkv());
        let (batch_store, batch_report) = ingest(&machines, &config);
        assert_eq!(report.mutations, batch_report.mutations);
        assert_eq!(live, batch_store);
    }

    #[test]
    fn report_renders() {
        let machines = tiny_fleet(2, 3);
        let (_, report) = ingest(&machines, &FleetConfig::default());
        let text = report.to_string();
        assert!(text.contains("2 machines"), "{text}");
        assert!(text.contains("events/s"), "{text}");
        assert!(report.retention.is_none());
    }

    #[test]
    fn retention_bounds_the_store_and_preserves_post_horizon_queries() {
        let machines = tiny_fleet(4, 30);
        let base = FleetConfig {
            shards: 4,
            ingest_threads: 2,
            batch_size: 32,
            placement: KeyPlacement::PerMachine,
            ..FleetConfig::default()
        };
        let (reference, _) = ingest(&machines, &base);

        let config = FleetConfig {
            retention: Some(RetentionPolicy {
                retain: TimeDelta::from_days(7),
                min_interval: TimeDelta::from_days(2),
            }),
            ..base
        };
        let (pruned, report) = ingest(&machines, &config);
        let retention = report.retention.expect("policy was set");
        assert!(retention.sweeps > 0, "{retention:?}");
        assert!(retention.reclaimed.pruned_versions > 0);
        // The final sweep lands exactly at frontier − retain.
        let frontier = reference.last_mutation_time().expect("events exist");
        let horizon = retention.horizon.expect("swept");
        assert_eq!(horizon, frontier.saturating_sub(TimeDelta::from_days(7)));
        assert!(pruned.approx_bytes() < reference.approx_bytes());
        // Every post-horizon query is intact. (A GC'd dead shell answers
        // None on both sides: it was dead at the horizon by definition.)
        for key in reference.keys() {
            assert_eq!(
                pruned.value_at(key.as_str(), horizon),
                reference.value_at(key.as_str(), horizon),
                "{key} at the horizon"
            );
            assert_eq!(
                pruned.current(key.as_str()),
                reference.current(key.as_str()),
                "{key} current"
            );
        }
        assert_eq!(
            pruned.snapshot_at(frontier),
            reference.snapshot_at(frontier)
        );
        // Stronger: sweeps compose (prune(h1); prune(h2) == prune(h2)) and
        // commute with late appends, so the retained store is *exactly*
        // the reference pruned at the final horizon — regardless of how
        // many sweeps ran or how they interleaved with ingestion. The
        // final sweep also collects dead counter-only shells.
        let mut expected = reference.clone();
        expected.prune_before(horizon);
        let shells = expected.gc_dead_shells();
        assert_eq!(pruned, expected);
        assert_eq!(retention.shells, shells);
        // Lifetime counters of surviving keys are intact.
        assert_eq!(pruned.stats().writes, expected.stats().writes);
        assert_eq!(pruned.stats().reads, expected.stats().reads);
        let text = report.to_string();
        assert!(text.contains("retention:"), "{text}");
    }

    #[test]
    fn retention_sweeps_clamp_to_live_pins() {
        use ocasta_ttkv::HorizonGuard;
        let machines = tiny_fleet(3, 20);
        let config = FleetConfig {
            shards: 4,
            ingest_threads: 2,
            batch_size: 32,
            // Disjoint key spaces keep the cross-run equality assertion
            // free of same-key timestamp-tie ordering races.
            placement: KeyPlacement::PerMachine,
            retention: Some(RetentionPolicy {
                retain: TimeDelta::from_days(2),
                min_interval: TimeDelta::from_days(1),
            }),
            ..FleetConfig::default()
        };
        let guard = HorizonGuard::new();
        // A reader pinned at the epoch: nothing may ever be pruned.
        let pin = guard.pin(Timestamp::EPOCH);
        let sharded = ShardedTtkv::new(config.shards);
        let options = IngestOptions {
            guard: Some(&guard),
            ..IngestOptions::default()
        };
        let report = ingest_live(&machines, &config, &sharded, options).expect("no wal, no errors");
        let retention = report.retention.expect("policy was set");
        assert_eq!(retention.sweeps, 0, "every sweep clamped to the pin");
        assert!(retention.clamped > 0, "sweeps were attempted");
        // The full history survived under the pin.
        let store = sharded.into_ttkv();
        let (unpruned, _) = ingest(
            &machines,
            &FleetConfig {
                retention: None,
                ..config
            },
        );
        assert_eq!(store, unpruned);
        drop(pin);
    }

    #[test]
    fn retention_with_wal_keeps_log_and_replay_bounded() {
        let machines = tiny_fleet(3, 24);
        let dir = std::env::temp_dir().join(format!("ocasta-retention-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = FleetConfig {
            shards: 4,
            ingest_threads: 2,
            batch_size: 32,
            placement: KeyPlacement::PerMachine,
            retention: Some(RetentionPolicy {
                retain: TimeDelta::from_days(6),
                min_interval: TimeDelta::from_days(2),
            }),
            ..FleetConfig::default()
        };
        let mut wal = Wal::open(&dir).unwrap();
        let (store, report) = ingest_with_wal(&machines, &config, &mut wal).unwrap();
        let retention = report.retention.expect("policy was set");
        assert!(retention.sweeps > 0);
        let horizon = retention.horizon.expect("swept");
        // Mid-run sweeps layer deltas; the sweeper's final rebase folds
        // the chain, so a finished run holds one pruned base + manifest.
        assert_eq!(wal.delta_layers(), 0, "final sweep rebases the chain");
        assert_eq!(wal.log_bytes(), 0, "log truncated by the final sweep");

        // Replay serves the same post-horizon state as the live store.
        let replayed = wal.replay(config.precision).unwrap();
        for key in store.keys() {
            assert_eq!(
                replayed.value_at(key.as_str(), horizon),
                store.value_at(key.as_str(), horizon),
                "{key}"
            );
        }
        assert_eq!(replayed.stats().writes, store.stats().writes);

        // The compacted snapshot is bounded: a no-retention run of the same
        // fleet snapshots strictly larger.
        let precision = config.precision;
        let nr_dir = dir.join("no-retention");
        let mut nr_wal = Wal::open(&nr_dir).unwrap();
        let nr_config = FleetConfig {
            retention: None,
            ..config
        };
        ingest_with_wal(&machines, &nr_config, &mut nr_wal).unwrap();
        nr_wal.compact(precision).unwrap();
        // The retained side needs no extra folding: the sweeper's final
        // rebase already left a single pruned base, so the comparison is
        // snapshot-to-snapshot as-is.
        let bounded = wal.snapshot_bytes() + wal.log_bytes();
        let unbounded = nr_wal.snapshot_bytes() + nr_wal.log_bytes();
        assert!(bounded < unbounded, "{bounded} vs {unbounded}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
