//! The concurrent fleet ingestion engine.
//!
//! Reproduces — at simulation scale — the paper's deployment topology:
//! N machines (29 in the study) each stream their configuration-access
//! trace into a central time-travel store. The engine runs three kinds of
//! actors under one thread scope:
//!
//! * **ingest workers** (`ingest_threads` of them) pull whole machines off
//!   a work queue, drive each machine's lazy [`EventStream`], route ops
//!   into per-shard batches, and append full batches to the
//!   [`ShardedTtkv`] under that shard's stripe lock;
//! * an optional **WAL appender** receives every batch over a channel and
//!   appends it to the [`Wal`] before... strictly speaking *while* it is
//!   applied — batches are sent to the WAL channel before the shard apply,
//!   and the single appender serialises them into frames;
//! * the **caller**, which on completion merges the shards into one
//!   consistent [`Ttkv`] and hands it to clustering/repair.
//!
//! Ingestion is machine-granular: one machine's ops are produced and
//! applied in stream order by one worker, so per-key history order is
//! deterministic whenever distinct machines do not write the same key at
//! the same (quantised) timestamp — and [`ingest`] with one thread equals
//! [`ingest`] with sixteen, which the concurrency tests assert.

use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ocasta_trace::{EventStream, GeneratorConfig, TraceOp, WorkloadSpec};
use ocasta_ttkv::{Key, TimePrecision, Ttkv};

use crate::shard::ShardedTtkv;
use crate::tap::IngestTap;
use crate::wal::{quantized, Wal, WalError};

/// One simulated machine in the fleet: a named seed-deterministic workload.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Machine name (becomes the key prefix under
    /// [`KeyPlacement::PerMachine`]).
    pub name: String,
    /// Deployment length in days.
    pub days: u64,
    /// RNG seed for this machine's stream.
    pub seed: u64,
    /// Per-application workloads running on the machine.
    pub specs: Vec<WorkloadSpec>,
}

impl MachineSpec {
    /// Creates a machine spec.
    pub fn new(name: impl Into<String>, days: u64, seed: u64, specs: Vec<WorkloadSpec>) -> Self {
        MachineSpec {
            name: name.into(),
            days,
            seed,
            specs,
        }
    }

    /// Opens this machine's lazy event stream.
    pub fn stream(&self) -> EventStream {
        EventStream::new(
            &GeneratorConfig::new(self.name.clone(), self.days, self.seed),
            self.specs.clone(),
        )
    }
}

/// How machine key spaces combine in the merged store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KeyPlacement {
    /// All machines share one key space — the paper's per-user aggregation
    /// of traces from several lab machines (§V).
    #[default]
    Merged,
    /// Keys are prefixed `machine-name/...`, keeping machines disjoint
    /// (useful for per-machine analysis and for deterministic merges).
    PerMachine,
}

/// Tuning knobs for one ingestion run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of TTKV stripe locks (shards).
    pub shards: usize,
    /// Number of concurrent ingest workers.
    pub ingest_threads: usize,
    /// Ops buffered per shard before the stripe lock is taken.
    pub batch_size: usize,
    /// Timestamp quantisation applied at ingestion time.
    pub precision: TimePrecision,
    /// Key-space layout.
    pub placement: KeyPlacement,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 16,
            ingest_threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            batch_size: 512,
            precision: TimePrecision::Seconds,
            placement: KeyPlacement::Merged,
        }
    }
}

/// What one ingestion run did, and how fast.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Machines ingested.
    pub machines: usize,
    /// Mutation events applied (writes + deletions).
    pub mutations: u64,
    /// Read accesses applied (sum of aggregated counters).
    pub reads: u64,
    /// Shards used.
    pub shards: usize,
    /// Ingest workers used.
    pub threads: usize,
    /// Wall-clock ingestion time (excludes the final shard merge).
    pub ingest_elapsed: Duration,
    /// Wall-clock shard build + merge time.
    pub merge_elapsed: Duration,
    /// Per-machine mutation counts, in machine order.
    pub per_machine: Vec<(String, u64)>,
}

impl FleetReport {
    /// Mutations per second of ingestion wall-clock.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.ingest_elapsed.as_secs_f64();
        if secs > 0.0 {
            self.mutations as f64 / secs
        } else {
            f64::INFINITY
        }
    }
}

impl std::fmt::Display for FleetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} machines, {} mutations, {} reads via {} threads x {} shards \
             in {:.2?} (+{:.2?} merge) = {:.0} events/s",
            self.machines,
            self.mutations,
            self.reads,
            self.threads,
            self.shards,
            self.ingest_elapsed,
            self.merge_elapsed,
            self.events_per_sec(),
        )
    }
}

/// Ingests a whole fleet concurrently; returns the merged store and a
/// throughput report.
pub fn ingest(machines: &[MachineSpec], config: &FleetConfig) -> (Ttkv, FleetReport) {
    match ingest_inner(machines, config, None, None) {
        Ok(result) => result,
        Err(_) => unreachable!("no WAL, no WAL errors"),
    }
}

/// Like [`ingest`], additionally invoking `tap` on every accepted batch —
/// the live-analytics hook (see [`IngestTap`] and [`crate::WriteLanes`]).
///
/// The tap runs on the ingest workers' threads, outside the shard locks;
/// batches reach it after placement and timestamp quantisation — as the
/// store sees them — and only *after* the shard has applied them, so
/// everything a tap consumer has observed is already readable through a
/// store snapshot.
pub fn ingest_tapped(
    machines: &[MachineSpec],
    config: &FleetConfig,
    tap: &dyn IngestTap,
) -> (Ttkv, FleetReport) {
    match ingest_inner(machines, config, None, Some(tap)) {
        Ok(result) => result,
        Err(_) => unreachable!("no WAL, no WAL errors"),
    }
}

/// Like [`ingest`], additionally appending every batch to `wal` before it
/// is applied to the shards.
///
/// # Errors
///
/// Returns the first [`WalError`] the appender hits (ingestion still runs
/// to completion so the store is usable; the WAL may be truncated).
pub fn ingest_with_wal(
    machines: &[MachineSpec],
    config: &FleetConfig,
    wal: &mut Wal,
) -> Result<(Ttkv, FleetReport), WalError> {
    ingest_inner(machines, config, Some(wal), None)
}

/// The fully-instrumented engine: optional WAL lane *and* optional tap.
///
/// # Errors
///
/// Same conditions as [`ingest_with_wal`].
pub fn ingest_with_wal_and_tap(
    machines: &[MachineSpec],
    config: &FleetConfig,
    wal: &mut Wal,
    tap: &dyn IngestTap,
) -> Result<(Ttkv, FleetReport), WalError> {
    ingest_inner(machines, config, Some(wal), Some(tap))
}

fn ingest_inner(
    machines: &[MachineSpec],
    config: &FleetConfig,
    wal: Option<&mut Wal>,
    tap: Option<&dyn IngestTap>,
) -> Result<(Ttkv, FleetReport), WalError> {
    let sharded = ShardedTtkv::new(config.shards);
    let (mut report, wal_result) = run_ingest(machines, config, &sharded, wal, tap);

    let merge_started = Instant::now();
    let store = sharded.into_ttkv();
    report.merge_elapsed = merge_started.elapsed();

    wal_result?;
    Ok((store, report))
}

/// Streams every machine into a **caller-owned** live store, invoking `tap`
/// on every accepted batch; returns when all machines are ingested.
///
/// Unlike [`ingest`], the shards are *not* merged when ingestion completes:
/// the caller keeps the [`ShardedTtkv`] live, reads it through
/// [`ShardedTtkv::snapshot_store`] at any moment — including while this
/// function is still running on another thread — and decides itself when
/// (or whether) to [`ShardedTtkv::into_ttkv`]. This is the entry point the
/// repair service tier uses: ingestion keeps flowing while repair sessions
/// pin snapshots (the returned report's `merge_elapsed` is therefore zero).
///
/// The batch size, placement, precision and worker count come from
/// `config`; the shard count comes from `sharded` itself. Pass `&()` as the
/// tap to observe nothing.
///
/// # Examples
///
/// ```
/// use ocasta_fleet::{ingest_into, FleetConfig, MachineSpec, ShardedTtkv};
/// use ocasta_trace::WorkloadSpec;
///
/// let mut spec = WorkloadSpec::new("app");
/// spec.churn_keys = 2;
/// spec.churn_writes_per_day = 1.0;
/// let machines = vec![MachineSpec::new("m0", 5, 1, vec![spec])];
/// let sharded = ShardedTtkv::new(4);
/// let report = ingest_into(&machines, &FleetConfig::default(), &sharded, &());
/// // The store stays live: snapshot it, keep ingesting, or merge now.
/// assert_eq!(sharded.snapshot_store().stats().writes, report.mutations);
/// ```
pub fn ingest_into(
    machines: &[MachineSpec],
    config: &FleetConfig,
    sharded: &ShardedTtkv,
    tap: &dyn IngestTap,
) -> FleetReport {
    let (report, wal_result) = run_ingest(machines, config, sharded, None, Some(tap));
    match wal_result {
        Ok(()) => report,
        Err(_) => unreachable!("no WAL, no WAL errors"),
    }
}

/// The worker-pool core shared by every public ingest entry point: drives
/// all machines into `sharded`, with optional WAL lane and optional tap.
/// Returns the report (with `merge_elapsed` zeroed — merging is the
/// caller's business) and the WAL outcome.
fn run_ingest(
    machines: &[MachineSpec],
    config: &FleetConfig,
    sharded: &ShardedTtkv,
    wal: Option<&mut Wal>,
    tap: Option<&dyn IngestTap>,
) -> (FleetReport, Result<(), WalError>) {
    let threads = config.ingest_threads.max(1);
    let started = Instant::now();

    // Work queue of machine indices.
    let (work_tx, work_rx) = mpsc::channel::<usize>();
    for idx in 0..machines.len() {
        work_tx.send(idx).expect("queue open");
    }
    drop(work_tx);
    let work_rx = Mutex::new(work_rx);

    // Optional WAL lane: workers send applied batches, one appender writes.
    let (wal_tx, wal_rx) = mpsc::channel::<Vec<TraceOp>>();
    let wal_tx = wal.is_some().then_some(wal_tx);

    let per_machine = Mutex::new(vec![0u64; machines.len()]);
    let total_reads = Mutex::new(0u64);

    let wal_result: Result<(), WalError> = std::thread::scope(|scope| {
        let appender = wal.map(|wal| {
            scope.spawn(move || -> Result<(), WalError> {
                while let Ok(batch) = wal_rx.recv() {
                    wal.append(&batch)?;
                }
                wal.flush()
            })
        });

        for _ in 0..threads {
            let work_rx = &work_rx;
            let per_machine = &per_machine;
            let total_reads = &total_reads;
            let wal_tx = wal_tx.clone();
            scope.spawn(move || {
                let shard_count = sharded.shard_count();
                loop {
                    let machine_idx = {
                        let queue = work_rx.lock().expect("queue lock poisoned");
                        match queue.recv() {
                            Ok(idx) => idx,
                            Err(_) => break,
                        }
                    };
                    let machine = &machines[machine_idx];
                    let mut batches: Vec<Vec<TraceOp>> = (0..shard_count)
                        .map(|_| Vec::with_capacity(config.batch_size))
                        .collect();
                    let mut mutations = 0u64;
                    let mut reads = 0u64;
                    for op in machine.stream() {
                        let op = place(op, machine, config.placement);
                        let op = quantized(op, config.precision);
                        match &op {
                            TraceOp::Mutation(_) => mutations += 1,
                            TraceOp::Reads(_, count) => reads += count,
                        }
                        let shard = sharded.shard_of(op.key().as_str());
                        batches[shard].push(op);
                        if batches[shard].len() >= config.batch_size {
                            let batch = std::mem::replace(
                                &mut batches[shard],
                                Vec::with_capacity(config.batch_size),
                            );
                            // The tap fires outside the shard lock (it can
                            // slow this worker, never a stripe) and
                            // strictly *after* the apply: anything a tap
                            // consumer has observed is already readable in
                            // the store, so a live snapshot pinned after a
                            // lane drain always contains the drained
                            // events (§5.8). The clone is tap-path-only.
                            let tapped = tap.map(|_| batch.clone());
                            // The WAL send happens under the shard lock so
                            // the log's per-shard order equals apply order.
                            sharded.append_batch_with(shard, batch, |b| {
                                if let Some(tx) = &wal_tx {
                                    let _ = tx.send(b.to_vec());
                                }
                            });
                            if let (Some(tap), Some(batch)) = (tap, tapped) {
                                tap.on_batch(shard, &batch);
                            }
                        }
                    }
                    for (shard, batch) in batches.into_iter().enumerate() {
                        if batch.is_empty() {
                            continue;
                        }
                        let tapped = tap.map(|_| batch.clone());
                        sharded.append_batch_with(shard, batch, |b| {
                            if let Some(tx) = &wal_tx {
                                let _ = tx.send(b.to_vec());
                            }
                        });
                        if let (Some(tap), Some(batch)) = (tap, tapped) {
                            tap.on_batch(shard, &batch);
                        }
                    }
                    per_machine.lock().expect("stats lock")[machine_idx] = mutations;
                    *total_reads.lock().expect("stats lock") += reads;
                }
            });
        }
        // The workers hold clones; drop ours so the appender sees EOF once
        // they finish.
        drop(wal_tx);
        match appender {
            Some(handle) => handle.join().expect("wal appender panicked"),
            None => Ok(()),
        }
    });

    let ingest_elapsed = started.elapsed();
    let per_machine_counts = per_machine.into_inner().expect("stats lock");
    let mutations: u64 = per_machine_counts.iter().sum();
    let reads = total_reads.into_inner().expect("stats lock");

    let report = FleetReport {
        machines: machines.len(),
        mutations,
        reads,
        shards: sharded.shard_count(),
        threads,
        ingest_elapsed,
        merge_elapsed: Duration::ZERO,
        per_machine: machines
            .iter()
            .map(|m| m.name.clone())
            .zip(per_machine_counts)
            .collect(),
    };
    (report, wal_result)
}

/// Applies the key-placement policy to one op.
fn place(op: TraceOp, machine: &MachineSpec, placement: KeyPlacement) -> TraceOp {
    match placement {
        KeyPlacement::Merged => op,
        KeyPlacement::PerMachine => match op {
            TraceOp::Mutation(mut event) => {
                event.key = prefixed(&machine.name, &event.key);
                TraceOp::Mutation(event)
            }
            TraceOp::Reads(key, count) => TraceOp::Reads(prefixed(&machine.name, &key), count),
        },
    }
}

fn prefixed(machine: &str, key: &Key) -> Key {
    Key::new(format!("{machine}/{key}"))
}

/// Ingests sequentially on the calling thread with a single shard —
/// the reference implementation the concurrency tests compare against.
pub fn ingest_sequential(machines: &[MachineSpec], config: &FleetConfig) -> Ttkv {
    let mut store = Ttkv::new();
    for machine in machines {
        for op in machine.stream() {
            let op = place(op, machine, config.placement);
            quantized(op, config.precision).apply(&mut store, TimePrecision::Milliseconds);
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocasta_trace::{KeySpec, SettingGroup, ValueKind};

    pub(crate) fn tiny_fleet(machines: usize, days: u64) -> Vec<MachineSpec> {
        (0..machines)
            .map(|i| {
                let mut spec = WorkloadSpec::new(format!("app{}", i % 3));
                spec.sessions_per_day = 1.5;
                spec.reads_per_session = 8;
                spec.static_keys = 6;
                spec.churn_keys = 2;
                spec.churn_writes_per_day = 0.4;
                spec.groups.push(SettingGroup::new(
                    "pair",
                    vec![
                        KeySpec::new("flag", ValueKind::Toggle { initial: false }),
                        KeySpec::new("level", ValueKind::IntRange { min: 1, max: 9 }),
                    ],
                    0.3,
                ));
                MachineSpec::new(format!("m{i:02}"), days, 1_000 + i as u64, vec![spec])
            })
            .collect()
    }

    #[test]
    fn ingest_produces_a_nonempty_consistent_store() {
        let machines = tiny_fleet(6, 10);
        let config = FleetConfig {
            shards: 4,
            ingest_threads: 3,
            batch_size: 32,
            precision: TimePrecision::Milliseconds,
            placement: KeyPlacement::PerMachine,
        };
        let (store, report) = ingest(&machines, &config);
        assert_eq!(report.machines, 6);
        assert!(report.mutations > 0);
        assert_eq!(
            store.stats().writes + store.stats().deletes,
            report.mutations
        );
        assert_eq!(store.stats().reads, report.reads);
        assert_eq!(report.per_machine.len(), 6);
        assert!(report.per_machine.iter().all(|(_, n)| *n > 0));
        // Per-machine placement: every machine owns a key subtree.
        for (name, _) in &report.per_machine {
            let prefix = Key::new(name.clone());
            assert!(store.keys_under(&prefix).next().is_some(), "{name}");
        }
    }

    #[test]
    fn tap_sees_every_mutation_the_store_accepts() {
        use crate::tap::WriteLanes;
        let machines = tiny_fleet(4, 8);
        let config = FleetConfig {
            shards: 4,
            ingest_threads: 2,
            batch_size: 16,
            ..FleetConfig::default()
        };
        let lanes = WriteLanes::new(config.shards);
        let (store, report) = ingest_tapped(&machines, &config, &lanes);
        let drained = lanes.drain();
        assert_eq!(drained.len() as u64, report.mutations);
        assert_eq!(
            store.stats().writes + store.stats().deletes,
            drained.len() as u64
        );
        // The tap sees quantised timestamps — what the store sees.
        assert!(drained.iter().all(|(_, t)| t.as_millis() % 1_000 == 0));
    }

    #[test]
    fn ingest_into_keeps_the_store_live_and_matches_ingest() {
        let machines = tiny_fleet(5, 12);
        let config = FleetConfig {
            shards: 4,
            ingest_threads: 2,
            batch_size: 16,
            // Disjoint key spaces keep the cross-run equality assertion
            // free of same-key timestamp-tie ordering races.
            placement: KeyPlacement::PerMachine,
            ..FleetConfig::default()
        };
        let sharded = ShardedTtkv::new(config.shards);
        // Snapshot the live store while ingestion runs on another thread.
        let (report, mid_snapshots) = std::thread::scope(|scope| {
            let handle = scope.spawn(|| ingest_into(&machines, &config, &sharded, &()));
            let mut mid = Vec::new();
            while !handle.is_finished() {
                mid.push(sharded.snapshot_store().stats().writes);
                // A snapshot per iteration is the point; spinning without
                // yielding on a small CI host is not.
                std::thread::sleep(Duration::from_millis(1));
            }
            (handle.join().expect("ingest panicked"), mid)
        });
        assert_eq!(report.merge_elapsed, Duration::ZERO);
        assert!(mid_snapshots.windows(2).all(|w| w[0] <= w[1]), "monotone");
        // The caller-owned store ends up exactly where `ingest` would.
        let live = sharded.snapshot_store();
        assert_eq!(live, sharded.into_ttkv());
        let (batch_store, batch_report) = ingest(&machines, &config);
        assert_eq!(report.mutations, batch_report.mutations);
        assert_eq!(live, batch_store);
    }

    #[test]
    fn report_renders() {
        let machines = tiny_fleet(2, 3);
        let (_, report) = ingest(&machines, &FleetConfig::default());
        let text = report.to_string();
        assert!(text.contains("2 machines"), "{text}");
        assert!(text.contains("events/s"), "{text}");
    }
}
