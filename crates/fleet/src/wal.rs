//! The fleet ingestion write-ahead log.
//!
//! Every batch of [`TraceOp`]s accepted by the ingestion engine is appended
//! to the WAL before it is applied to the sharded store, so a run can be
//! replayed — into a fresh [`Ttkv`], onto another machine, or after a crash
//! that tore the final write.
//!
//! ## Framing
//!
//! ```text
//! file     := magic frame*
//! magic    := "OCWAL1\n"
//! frame    := u32:payload_len u32:fnv1a(payload) payload
//! payload  := u32:op_count op*            -- see crate::codec for `op`
//! ```
//!
//! A reader accepts any clean prefix: a frame whose length or payload is cut
//! short (a torn tail write) ends the log without error, while a checksum
//! mismatch on a *complete* frame is reported as corruption. This is the
//! classic WAL recovery contract.
//!
//! ## Snapshot compaction
//!
//! An append-only log grows without bound; [`Wal::compact`] bounds it by
//! writing the current replayed state as a snapshot (the TTKV's own
//! persistence format) and truncating the log. Replay = load snapshot, then
//! apply the remaining frames.

use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::PathBuf;

use ocasta_trace::TraceOp;
use ocasta_ttkv::{PruneStats, TimePrecision, Timestamp, Ttkv, TtkvBuilder};

use crate::codec::{decode_op, encode_op, CodecError};
use crate::hash::fnv1a_32 as fnv1a;

/// File magic for WAL streams.
pub const WAL_MAGIC: &[u8; 7] = b"OCWAL1\n";

/// Errors arising from WAL I/O, framing or decoding.
#[derive(Debug)]
pub enum WalError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with [`WAL_MAGIC`].
    BadMagic,
    /// A complete frame whose checksum does not match its payload.
    Corrupt {
        /// Zero-based index of the corrupt frame.
        frame: usize,
    },
    /// A frame payload that fails op decoding.
    Codec(CodecError),
    /// The snapshot file failed to load.
    Snapshot(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io: {e}"),
            WalError::BadMagic => write!(f, "wal: bad magic (not an OCWAL1 stream)"),
            WalError::Corrupt { frame } => write!(f, "wal: frame {frame} checksum mismatch"),
            WalError::Codec(e) => write!(f, "wal: {e}"),
            WalError::Snapshot(e) => write!(f, "wal snapshot: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<CodecError> for WalError {
    fn from(e: CodecError) -> Self {
        WalError::Codec(e)
    }
}

/// Appends framed op batches to any writer.
#[derive(Debug)]
pub struct WalWriter<W: Write> {
    sink: W,
    scratch: Vec<u8>,
    frames: usize,
}

impl<W: Write> WalWriter<W> {
    /// Starts a fresh WAL stream (writes the magic).
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn new(mut sink: W) -> Result<Self, WalError> {
        sink.write_all(WAL_MAGIC)?;
        Ok(WalWriter {
            sink,
            scratch: Vec::new(),
            frames: 0,
        })
    }

    /// Resumes an existing stream (magic already present).
    pub fn resume(sink: W, existing_frames: usize) -> Self {
        WalWriter {
            sink,
            scratch: Vec::new(),
            frames: existing_frames,
        }
    }

    /// Appends one batch of ops as a single frame.
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn append(&mut self, batch: &[TraceOp]) -> Result<(), WalError> {
        if batch.is_empty() {
            return Ok(());
        }
        self.scratch.clear();
        self.scratch
            .extend_from_slice(&(batch.len() as u32).to_le_bytes());
        for op in batch {
            encode_op(op, &mut self.scratch);
        }
        self.sink
            .write_all(&(self.scratch.len() as u32).to_le_bytes())?;
        self.sink.write_all(&fnv1a(&self.scratch).to_le_bytes())?;
        self.sink.write_all(&self.scratch)?;
        self.frames += 1;
        Ok(())
    }

    /// Number of frames written (including resumed ones).
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn flush(&mut self) -> Result<(), WalError> {
        self.sink.flush()?;
        Ok(())
    }
}

/// Reads framed op batches from any reader, stopping cleanly at a torn
/// tail.
#[derive(Debug)]
pub struct WalReader<R: Read> {
    source: R,
    frames_read: usize,
    torn_tail: bool,
    clean_bytes: u64,
}

impl<R: Read> WalReader<R> {
    /// Opens a WAL stream, validating the magic.
    ///
    /// # Errors
    ///
    /// [`WalError::BadMagic`] if the stream is not a WAL; I/O errors pass
    /// through.
    pub fn new(mut source: R) -> Result<Self, WalError> {
        let mut magic = [0u8; WAL_MAGIC.len()];
        if read_chunk(&mut source, &mut magic)? != ReadStatus::Full || &magic != WAL_MAGIC {
            return Err(WalError::BadMagic);
        }
        Ok(WalReader {
            source,
            frames_read: 0,
            torn_tail: false,
            clean_bytes: WAL_MAGIC.len() as u64,
        })
    }

    /// Reads the next batch, or `None` at end of log (including a torn
    /// tail, which sets [`WalReader::torn_tail`]).
    ///
    /// # Errors
    ///
    /// [`WalError::Corrupt`] for a complete frame with a bad checksum,
    /// [`WalError::Codec`] for undecodable payloads, I/O errors otherwise.
    pub fn next_batch(&mut self) -> Result<Option<Vec<TraceOp>>, WalError> {
        let mut header = [0u8; 8];
        match read_chunk(&mut self.source, &mut header)? {
            ReadStatus::Full => {}
            ReadStatus::Empty => return Ok(None),
            ReadStatus::Partial => {
                self.torn_tail = true;
                return Ok(None);
            }
        }
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        let checksum = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        let mut payload = vec![0u8; len];
        if read_chunk(&mut self.source, &mut payload)? != ReadStatus::Full {
            self.torn_tail = true;
            return Ok(None);
        }
        if fnv1a(&payload) != checksum {
            return Err(WalError::Corrupt {
                frame: self.frames_read,
            });
        }
        let mut slice = payload.as_slice();
        let mut count_bytes = [0u8; 4];
        count_bytes.copy_from_slice(
            slice
                .get(..4)
                .ok_or_else(|| CodecError("frame shorter than op count".into()))?,
        );
        slice = &slice[4..];
        let count = u32::from_le_bytes(count_bytes) as usize;
        let mut ops = Vec::with_capacity(count.min(slice.len()));
        for _ in 0..count {
            ops.push(decode_op(&mut slice)?);
        }
        if !slice.is_empty() {
            return Err(CodecError("trailing bytes in frame".into()).into());
        }
        self.frames_read += 1;
        self.clean_bytes += 8 + payload.len() as u64;
        Ok(Some(ops))
    }

    /// Byte length of the clean prefix consumed so far (magic plus every
    /// complete, checksum-valid frame). A torn tail starts at this offset.
    pub fn clean_bytes(&self) -> u64 {
        self.clean_bytes
    }

    /// `true` if the log ended inside a frame (a torn final write was
    /// discarded).
    pub fn torn_tail(&self) -> bool {
        self.torn_tail
    }

    /// Number of complete frames read so far.
    pub fn frames_read(&self) -> usize {
        self.frames_read
    }

    /// Reads every remaining batch into one vector.
    ///
    /// # Errors
    ///
    /// Same conditions as [`WalReader::next_batch`].
    pub fn read_all(&mut self) -> Result<Vec<TraceOp>, WalError> {
        let mut ops = Vec::new();
        while let Some(batch) = self.next_batch()? {
            ops.extend(batch);
        }
        Ok(ops)
    }

    /// Replays every remaining batch into a fresh store at the given
    /// timestamp precision.
    ///
    /// # Errors
    ///
    /// Same conditions as [`WalReader::next_batch`].
    pub fn replay(&mut self, precision: TimePrecision) -> Result<Ttkv, WalError> {
        let mut store = Ttkv::new();
        self.replay_into(&mut store, precision)?;
        Ok(store)
    }

    /// Replays every remaining batch onto an existing store.
    ///
    /// # Errors
    ///
    /// Same conditions as [`WalReader::next_batch`].
    pub fn replay_into(
        &mut self,
        store: &mut Ttkv,
        precision: TimePrecision,
    ) -> Result<(), WalError> {
        let mut builder = TtkvBuilder::new();
        while let Some(batch) = self.next_batch()? {
            for op in batch {
                quantized(op, precision).buffer(&mut builder);
            }
        }
        builder.build_into(store);
        Ok(())
    }
}

/// Applies `precision` to a mutation's timestamp (reads are unaffected).
pub(crate) fn quantized(op: TraceOp, precision: TimePrecision) -> TraceOp {
    match op {
        TraceOp::Mutation(mut event) => {
            event.timestamp = precision.apply(event.timestamp);
            TraceOp::Mutation(event)
        }
        reads => reads,
    }
}

/// Outcome of trying to fill a fixed-size buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReadStatus {
    /// The buffer was filled completely.
    Full,
    /// EOF before the first byte (a clean boundary).
    Empty,
    /// EOF mid-buffer (a torn write).
    Partial,
}

/// Like `read_exact`, but reports EOF position instead of erroring.
fn read_chunk<R: Read>(source: &mut R, buf: &mut [u8]) -> Result<ReadStatus, WalError> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = source.read(&mut buf[filled..])?;
        if n == 0 {
            return Ok(if filled == 0 {
                ReadStatus::Empty
            } else {
                ReadStatus::Partial
            });
        }
        filled += n;
    }
    Ok(ReadStatus::Full)
}

/// A file-backed WAL with snapshot compaction.
///
/// Layout inside the directory: `wal.log` (framed op stream) and
/// `snapshot.ttkv` (the TTKV text format, present after a compaction).
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    writer: Option<WalWriter<BufWriter<File>>>,
}

impl Wal {
    /// Opens (creating if needed) a WAL directory for appending.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, WalError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Wal { dir, writer: None })
    }

    /// Path of the framed log file.
    pub fn log_path(&self) -> PathBuf {
        self.dir.join("wal.log")
    }

    /// Path of the compaction snapshot.
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.ttkv")
    }

    fn writer(&mut self) -> Result<&mut WalWriter<BufWriter<File>>, WalError> {
        if self.writer.is_none() {
            let path = self.log_path();
            let log_len = match std::fs::metadata(&path) {
                Ok(meta) => meta.len(),
                Err(e) if e.kind() == io::ErrorKind::NotFound => 0,
                Err(e) => return Err(e.into()),
            };
            let mut existing_frames = 0;
            if log_len > 0 && log_len < WAL_MAGIC.len() as u64 {
                // Torn during the very first write: nothing recoverable.
                OpenOptions::new().write(true).open(&path)?.set_len(0)?;
            } else if log_len > 0 {
                // Scan the log so a torn final write from a previous crash
                // is truncated away before new frames go after it —
                // otherwise every post-crash append would sit beyond the
                // torn bytes and be unreachable on replay. A checksum
                // failure on a *complete* frame still errors: that is data
                // corruption, not a torn tail.
                let mut scan = WalReader::new(BufReader::new(File::open(&path)?))?;
                while scan.next_batch()?.is_some() {}
                existing_frames = scan.frames_read();
                if scan.clean_bytes() < log_len {
                    let file = OpenOptions::new().write(true).open(&path)?;
                    file.set_len(scan.clean_bytes())?;
                }
            }
            let file = OpenOptions::new().create(true).append(true).open(&path)?;
            let sink = BufWriter::new(file);
            self.writer = Some(if log_len < WAL_MAGIC.len() as u64 {
                WalWriter::new(sink)?
            } else {
                WalWriter::resume(sink, existing_frames)
            });
        }
        Ok(self.writer.as_mut().expect("just initialised"))
    }

    /// Appends one batch as a frame.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn append(&mut self, batch: &[TraceOp]) -> Result<(), WalError> {
        self.writer()?.append(batch)
    }

    /// Flushes buffered frames to the file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn flush(&mut self) -> Result<(), WalError> {
        if let Some(writer) = self.writer.as_mut() {
            writer.flush()?;
        }
        Ok(())
    }

    /// Replays snapshot + log into a fresh store.
    ///
    /// # Errors
    ///
    /// Snapshot parse failures, log corruption, or I/O failures.
    pub fn replay(&mut self, precision: TimePrecision) -> Result<Ttkv, WalError> {
        self.flush()?;
        let mut store = match File::open(self.snapshot_path()) {
            Ok(file) => {
                Ttkv::load(BufReader::new(file)).map_err(|e| WalError::Snapshot(e.to_string()))?
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ttkv::new(),
            Err(e) => return Err(e.into()),
        };
        match File::open(self.log_path()) {
            Ok(file) => {
                let mut reader = WalReader::new(BufReader::new(file))?;
                reader.replay_into(&mut store, precision)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        Ok(store)
    }

    /// Compacts the WAL: replays the current state, writes it as the new
    /// snapshot, truncates the log. Returns the compacted state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Wal::replay`] plus snapshot write failures.
    pub fn compact(&mut self, precision: TimePrecision) -> Result<Ttkv, WalError> {
        let store = self.replay(precision)?;
        self.install_snapshot(&store)?;
        Ok(store)
    }

    /// Compacts the WAL **and prunes history older than `horizon`** before
    /// writing the snapshot: the disk footprint becomes bounded by the
    /// retention window instead of the deployment's lifetime. Replay after
    /// this yields the pruned state plus any frames appended since — every
    /// query at or after the horizon answers as an unpruned replay would
    /// (the snapshot format round-trips prune baselines and lifetime
    /// counters). Returns the pruned state and what the prune reclaimed.
    ///
    /// This is the WAL half of the fleet retention sweep
    /// (`ocasta-fleet`'s `RetentionPolicy`, `DESIGN.md §5.9`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Wal::compact`].
    pub fn compact_pruned(
        &mut self,
        precision: TimePrecision,
        horizon: Timestamp,
    ) -> Result<(Ttkv, PruneStats), WalError> {
        let mut store = self.replay(precision)?;
        let stats = store.prune_before(horizon);
        self.install_snapshot(&store)?;
        Ok((store, stats))
    }

    /// Atomically replaces the snapshot with `store` and truncates the log.
    fn install_snapshot(&mut self, store: &Ttkv) -> Result<(), WalError> {
        // Write the snapshot to a temp name first so a crash mid-compaction
        // leaves the previous snapshot + full log intact.
        let tmp = self.dir.join("snapshot.ttkv.tmp");
        {
            let file = File::create(&tmp)?;
            store
                .save(BufWriter::new(file))
                .map_err(|e| WalError::Snapshot(e.to_string()))?;
        }
        std::fs::rename(&tmp, self.snapshot_path())?;
        // Drop the writer (closing the old log) and start a fresh one.
        self.writer = None;
        match std::fs::remove_file(self.log_path()) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        Ok(())
    }

    /// Size of the log file in bytes (0 if absent).
    pub fn log_bytes(&self) -> u64 {
        std::fs::metadata(self.log_path()).map_or(0, |m| m.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocasta_trace::AccessEvent;
    use ocasta_ttkv::{Timestamp, Value};

    fn sample_ops() -> Vec<TraceOp> {
        vec![
            TraceOp::Mutation(AccessEvent::write(
                Timestamp::from_millis(1_000),
                "app/a",
                Value::from(1),
            )),
            TraceOp::Reads(ocasta_ttkv::Key::new("app/a"), 12),
            TraceOp::Mutation(AccessEvent::write(
                Timestamp::from_millis(2_500),
                "app/b",
                Value::from("x y z"),
            )),
            TraceOp::Mutation(AccessEvent::delete(Timestamp::from_millis(3_000), "app/a")),
        ]
    }

    #[test]
    fn frames_roundtrip_through_memory() {
        let mut bytes = Vec::new();
        {
            let mut writer = WalWriter::new(&mut bytes).unwrap();
            writer.append(&sample_ops()[..2]).unwrap();
            writer.append(&sample_ops()[2..]).unwrap();
            assert_eq!(writer.frames(), 2);
        }
        let mut reader = WalReader::new(bytes.as_slice()).unwrap();
        let ops = reader.read_all().unwrap();
        assert_eq!(ops, sample_ops());
        assert_eq!(reader.frames_read(), 2);
        assert!(!reader.torn_tail());
    }

    #[test]
    fn replay_equals_direct_build() {
        let mut bytes = Vec::new();
        let mut writer = WalWriter::new(&mut bytes).unwrap();
        writer.append(&sample_ops()).unwrap();
        let replayed = WalReader::new(bytes.as_slice())
            .unwrap()
            .replay(TimePrecision::Milliseconds)
            .unwrap();
        let mut direct = Ttkv::new();
        for op in sample_ops() {
            op.apply(&mut direct, TimePrecision::Milliseconds);
        }
        assert_eq!(replayed, direct);
    }

    #[test]
    fn torn_tail_is_discarded_cleanly() {
        let mut bytes = Vec::new();
        let mut writer = WalWriter::new(&mut bytes).unwrap();
        writer.append(&sample_ops()[..2]).unwrap();
        writer.append(&sample_ops()[2..]).unwrap();
        // Cut the last frame in half.
        let cut = bytes.len() - 5;
        let torn = &bytes[..cut];
        let mut reader = WalReader::new(torn).unwrap();
        let ops = reader.read_all().unwrap();
        assert_eq!(ops, sample_ops()[..2].to_vec());
        assert!(reader.torn_tail());
        assert_eq!(reader.frames_read(), 1);
    }

    #[test]
    fn corrupt_frame_is_an_error() {
        let mut bytes = Vec::new();
        let mut writer = WalWriter::new(&mut bytes).unwrap();
        writer.append(&sample_ops()).unwrap();
        // Flip a payload byte (past magic + frame header).
        let idx = WAL_MAGIC.len() + 8 + 3;
        bytes[idx] ^= 0xFF;
        let mut reader = WalReader::new(bytes.as_slice()).unwrap();
        assert!(matches!(
            reader.next_batch(),
            Err(WalError::Corrupt { frame: 0 })
        ));
    }

    #[test]
    fn rejects_non_wal_streams() {
        assert!(matches!(
            WalReader::new(&b"not a wal"[..]),
            Err(WalError::BadMagic)
        ));
        assert!(matches!(WalReader::new(&b""[..]), Err(WalError::BadMagic)));
    }

    #[test]
    fn file_wal_appends_replays_and_compacts() {
        let dir = std::env::temp_dir().join(format!("ocasta-wal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut wal = Wal::open(&dir).unwrap();
        wal.append(&sample_ops()[..2]).unwrap();
        wal.append(&sample_ops()[2..]).unwrap();
        let before = wal.replay(TimePrecision::Milliseconds).unwrap();
        assert_eq!(before.stats().writes, 2);
        assert_eq!(before.stats().deletes, 1);
        assert!(wal.log_bytes() > 0);

        // Compaction preserves state and truncates the log.
        let compacted = wal.compact(TimePrecision::Milliseconds).unwrap();
        assert_eq!(compacted, before);
        assert_eq!(wal.log_bytes(), 0);

        // Post-compaction appends layer on top of the snapshot.
        wal.append(&[TraceOp::Mutation(AccessEvent::write(
            Timestamp::from_millis(9_000),
            "app/a",
            Value::from(2),
        ))])
        .unwrap();
        let after = wal.replay(TimePrecision::Milliseconds).unwrap();
        assert_eq!(after.stats().writes, 3);
        assert_eq!(
            after.current("app/a"),
            Some(&Value::from(2)),
            "deleted key rewritten after compaction"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopening_after_a_torn_tail_truncates_then_appends() {
        let dir = std::env::temp_dir().join(format!("ocasta-wal-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut wal = Wal::open(&dir).unwrap();
            wal.append(&sample_ops()[..2]).unwrap();
            wal.append(&sample_ops()[2..]).unwrap();
            wal.flush().unwrap();
        }
        // Simulate a crash mid-append: cut the final frame in half.
        let log = dir.join("wal.log");
        let full = std::fs::metadata(&log).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&log)
            .unwrap()
            .set_len(full - 5)
            .unwrap();
        // Reopen and append: the torn tail must be truncated first so the
        // new frame is reachable on replay.
        let mut wal = Wal::open(&dir).unwrap();
        let extra = TraceOp::Mutation(AccessEvent::write(
            Timestamp::from_millis(9_999),
            "app/c",
            Value::from(true),
        ));
        wal.append(std::slice::from_ref(&extra)).unwrap();
        wal.flush().unwrap();
        let file = File::open(&log).unwrap();
        let mut reader = WalReader::new(BufReader::new(file)).unwrap();
        let ops = reader.read_all().unwrap();
        assert!(!reader.torn_tail(), "torn bytes must be gone");
        let mut expected = sample_ops()[..2].to_vec();
        expected.push(extra);
        assert_eq!(ops, expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_pruned_bounds_the_snapshot_and_keeps_post_horizon_state() {
        let dir = std::env::temp_dir().join(format!("ocasta-wal-prune-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut wal = Wal::open(&dir).unwrap();
        let ops: Vec<TraceOp> = (0..200)
            .map(|i| {
                TraceOp::Mutation(AccessEvent::write(
                    Timestamp::from_millis(i * 100),
                    format!("app/k{}", i % 5),
                    Value::from(i as i64),
                ))
            })
            .collect();
        for chunk in ops.chunks(20) {
            wal.append(chunk).unwrap();
        }
        let full = wal.replay(TimePrecision::Milliseconds).unwrap();
        let full_snapshot_bytes = {
            wal.compact(TimePrecision::Milliseconds).unwrap();
            std::fs::metadata(wal.snapshot_path()).unwrap().len()
        };

        let horizon = Timestamp::from_millis(15_000);
        let (pruned, stats) = wal
            .compact_pruned(TimePrecision::Milliseconds, horizon)
            .unwrap();
        assert!(stats.pruned_versions > 0);
        let pruned_snapshot_bytes = std::fs::metadata(wal.snapshot_path()).unwrap().len();
        assert!(
            pruned_snapshot_bytes < full_snapshot_bytes,
            "{pruned_snapshot_bytes} vs {full_snapshot_bytes}"
        );
        // Replay = pruned snapshot; queries at/after the horizon intact,
        // lifetime counters intact.
        let replayed = wal.replay(TimePrecision::Milliseconds).unwrap();
        assert_eq!(replayed, pruned);
        assert_eq!(replayed.stats().writes, full.stats().writes);
        for key in full.keys() {
            assert_eq!(
                replayed.value_at(key.as_str(), horizon),
                full.value_at(key.as_str(), horizon),
                "{key}"
            );
        }
        // Appends after a pruned compaction layer on normally.
        wal.append(&[TraceOp::Mutation(AccessEvent::write(
            Timestamp::from_millis(90_000),
            "app/k0",
            Value::from(-1),
        ))])
        .unwrap();
        let after = wal.replay(TimePrecision::Milliseconds).unwrap();
        assert_eq!(after.current("app/k0"), Some(&Value::from(-1)));
        assert_eq!(after.stats().writes, full.stats().writes + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_is_idempotent() {
        let dir = std::env::temp_dir().join(format!("ocasta-wal-compact2-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut wal = Wal::open(&dir).unwrap();
        wal.append(&sample_ops()).unwrap();
        let once = wal.compact(TimePrecision::Milliseconds).unwrap();
        // A second compaction with no log present must succeed unchanged.
        let twice = wal.compact(TimePrecision::Milliseconds).unwrap();
        assert_eq!(once, twice);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopened_wal_resumes_appending() {
        let dir = std::env::temp_dir().join(format!("ocasta-wal-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut wal = Wal::open(&dir).unwrap();
            wal.append(&sample_ops()[..2]).unwrap();
            wal.flush().unwrap();
        }
        {
            let mut wal = Wal::open(&dir).unwrap();
            wal.append(&sample_ops()[2..]).unwrap();
            let store = wal.replay(TimePrecision::Milliseconds).unwrap();
            assert_eq!(store.stats().writes, 2);
            assert_eq!(store.stats().deletes, 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
