//! The fleet ingestion write-ahead log.
//!
//! Every batch of [`TraceOp`]s accepted by the ingestion engine is appended
//! to the WAL before it is applied to the sharded store, so a run can be
//! replayed — into a fresh [`Ttkv`], onto another machine, or after a crash
//! that tore the final write.
//!
//! ## Framing
//!
//! ```text
//! file     := magic frame*
//! magic    := "OCWAL1\n"
//! frame    := u32:payload_len u32:fnv1a(payload) payload
//! payload  := u32:op_count op*            -- see crate::codec for `op`
//! ```
//!
//! A reader accepts any clean prefix: a frame whose length or payload is cut
//! short (a torn tail write) ends the log without error, while a checksum
//! mismatch on a *complete* frame is reported as corruption. This is the
//! classic WAL recovery contract.
//!
//! ## Layered snapshot compaction
//!
//! An append-only log grows without bound; compaction bounds it. Rather
//! than replaying *everything* into one snapshot on every compaction (an
//! O(retained state) stall on the appender thread), [`Wal::compact_pruned`]
//! is **layered**: each compaction folds only the frames appended since the
//! previous one into a *delta snapshot* — baselines plus counters for the
//! keys touched since the previous layer, pruned to the sweep horizon — and
//! commits it on top of the prior layers through a manifest rename. Replay
//! folds the layers oldest-to-newest (demoting each layer's baselines back
//! into ordinary versions so cross-layer timestamp ties rank by true
//! arrival order), re-prunes once at the newest horizon, and applies the
//! current log; the result is equal by construction to the old
//! replay-everything path (property-tested; `DESIGN.md §5.10`). Every
//! `rebase_layers` compactions the chain is folded into a fresh base so
//! disk stays bounded by the retention window. Directories written before
//! layering existed (a bare `snapshot.ttkv` + `wal.log`) still open and
//! replay unchanged.
//!
//! Base and delta layers are `ocasta-ttkv binary v2` segments — the same
//! length-prefixed, FNV-checksummed framing discipline as the log, one
//! codec seam for everything the fleet persists. Text v1 layers from older
//! directories load through [`Ttkv::load`]'s magic sniffing.

use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::PathBuf;

use ocasta_trace::TraceOp;
use ocasta_ttkv::{PruneStats, TimeDelta, TimePrecision, Timestamp, Ttkv, TtkvBuilder};

use crate::codec::{decode_op, encode_op, CodecError};
use crate::hash::fnv1a_32 as fnv1a;

/// File magic for WAL streams.
pub const WAL_MAGIC: &[u8; 7] = b"OCWAL1\n";

/// Errors arising from WAL I/O, framing or decoding.
#[derive(Debug)]
pub enum WalError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with [`WAL_MAGIC`].
    BadMagic,
    /// A complete frame whose checksum does not match its payload.
    Corrupt {
        /// Zero-based index of the corrupt frame.
        frame: usize,
    },
    /// A frame payload that fails op decoding.
    Codec(CodecError),
    /// The snapshot file failed to load.
    Snapshot(String),
    /// The layer manifest failed to parse.
    Manifest(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io: {e}"),
            WalError::BadMagic => write!(f, "wal: bad magic (not an OCWAL1 stream)"),
            WalError::Corrupt { frame } => write!(f, "wal: frame {frame} checksum mismatch"),
            WalError::Codec(e) => write!(f, "wal: {e}"),
            WalError::Snapshot(e) => write!(f, "wal snapshot: {e}"),
            WalError::Manifest(e) => write!(f, "wal manifest: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<CodecError> for WalError {
    fn from(e: CodecError) -> Self {
        WalError::Codec(e)
    }
}

/// Appends framed op batches to any writer.
#[derive(Debug)]
pub struct WalWriter<W: Write> {
    sink: W,
    scratch: Vec<u8>,
    frames: usize,
}

impl<W: Write> WalWriter<W> {
    /// Starts a fresh WAL stream (writes the magic).
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn new(mut sink: W) -> Result<Self, WalError> {
        sink.write_all(WAL_MAGIC)?;
        Ok(WalWriter {
            sink,
            scratch: Vec::new(),
            frames: 0,
        })
    }

    /// Resumes an existing stream (magic already present).
    pub fn resume(sink: W, existing_frames: usize) -> Self {
        WalWriter {
            sink,
            scratch: Vec::new(),
            frames: existing_frames,
        }
    }

    /// Appends one batch of ops as a single frame.
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn append(&mut self, batch: &[TraceOp]) -> Result<(), WalError> {
        if batch.is_empty() {
            return Ok(());
        }
        self.scratch.clear();
        self.scratch
            .extend_from_slice(&(batch.len() as u32).to_le_bytes());
        for op in batch {
            encode_op(op, &mut self.scratch);
        }
        self.sink
            .write_all(&(self.scratch.len() as u32).to_le_bytes())?;
        self.sink.write_all(&fnv1a(&self.scratch).to_le_bytes())?;
        self.sink.write_all(&self.scratch)?;
        self.frames += 1;
        Ok(())
    }

    /// Number of frames written (including resumed ones).
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn flush(&mut self) -> Result<(), WalError> {
        self.sink.flush()?;
        Ok(())
    }
}

/// Reads framed op batches from any reader, stopping cleanly at a torn
/// tail.
#[derive(Debug)]
pub struct WalReader<R: Read> {
    source: R,
    frames_read: usize,
    torn_tail: bool,
    clean_bytes: u64,
}

impl<R: Read> WalReader<R> {
    /// Opens a WAL stream, validating the magic.
    ///
    /// # Errors
    ///
    /// [`WalError::BadMagic`] if the stream is not a WAL; I/O errors pass
    /// through.
    pub fn new(mut source: R) -> Result<Self, WalError> {
        let mut magic = [0u8; WAL_MAGIC.len()];
        if read_chunk(&mut source, &mut magic)? != ReadStatus::Full || &magic != WAL_MAGIC {
            return Err(WalError::BadMagic);
        }
        Ok(WalReader {
            source,
            frames_read: 0,
            torn_tail: false,
            clean_bytes: WAL_MAGIC.len() as u64,
        })
    }

    /// Reads the next batch, or `None` at end of log (including a torn
    /// tail, which sets [`WalReader::torn_tail`]).
    ///
    /// # Errors
    ///
    /// [`WalError::Corrupt`] for a complete frame with a bad checksum,
    /// [`WalError::Codec`] for undecodable payloads, I/O errors otherwise.
    pub fn next_batch(&mut self) -> Result<Option<Vec<TraceOp>>, WalError> {
        let mut header = [0u8; 8];
        match read_chunk(&mut self.source, &mut header)? {
            ReadStatus::Full => {}
            ReadStatus::Empty => return Ok(None),
            ReadStatus::Partial => {
                self.torn_tail = true;
                return Ok(None);
            }
        }
        let [l0, l1, l2, l3, c0, c1, c2, c3] = header;
        let len = u32::from_le_bytes([l0, l1, l2, l3]) as usize;
        let checksum = u32::from_le_bytes([c0, c1, c2, c3]);
        let mut payload = vec![0u8; len];
        if read_chunk(&mut self.source, &mut payload)? != ReadStatus::Full {
            self.torn_tail = true;
            return Ok(None);
        }
        if fnv1a(&payload) != checksum {
            return Err(WalError::Corrupt {
                frame: self.frames_read,
            });
        }
        let mut slice = payload.as_slice();
        let mut count_bytes = [0u8; 4];
        count_bytes.copy_from_slice(
            slice
                .get(..4)
                .ok_or_else(|| CodecError("frame shorter than op count".into()))?,
        );
        slice = slice.get(4..).unwrap_or(&[]);
        let count = u32::from_le_bytes(count_bytes) as usize;
        let mut ops = Vec::with_capacity(count.min(slice.len()));
        for _ in 0..count {
            ops.push(decode_op(&mut slice)?);
        }
        if !slice.is_empty() {
            return Err(CodecError("trailing bytes in frame".into()).into());
        }
        self.frames_read += 1;
        self.clean_bytes += 8 + payload.len() as u64;
        Ok(Some(ops))
    }

    /// Byte length of the clean prefix consumed so far (magic plus every
    /// complete, checksum-valid frame). A torn tail starts at this offset.
    pub fn clean_bytes(&self) -> u64 {
        self.clean_bytes
    }

    /// `true` if the log ended inside a frame (a torn final write was
    /// discarded).
    pub fn torn_tail(&self) -> bool {
        self.torn_tail
    }

    /// Number of complete frames read so far.
    pub fn frames_read(&self) -> usize {
        self.frames_read
    }

    /// Reads every remaining batch into one vector.
    ///
    /// # Errors
    ///
    /// Same conditions as [`WalReader::next_batch`].
    pub fn read_all(&mut self) -> Result<Vec<TraceOp>, WalError> {
        let mut ops = Vec::new();
        while let Some(batch) = self.next_batch()? {
            ops.extend(batch);
        }
        Ok(ops)
    }

    /// Replays every remaining batch into a fresh store at the given
    /// timestamp precision.
    ///
    /// # Errors
    ///
    /// Same conditions as [`WalReader::next_batch`].
    pub fn replay(&mut self, precision: TimePrecision) -> Result<Ttkv, WalError> {
        let mut store = Ttkv::new();
        self.replay_into(&mut store, precision)?;
        Ok(store)
    }

    /// Replays every remaining batch onto an existing store.
    ///
    /// # Errors
    ///
    /// Same conditions as [`WalReader::next_batch`].
    pub fn replay_into(
        &mut self,
        store: &mut Ttkv,
        precision: TimePrecision,
    ) -> Result<(), WalError> {
        let mut builder = TtkvBuilder::new();
        while let Some(batch) = self.next_batch()? {
            for op in batch {
                quantized(op, precision).buffer(&mut builder);
            }
        }
        builder.build_into(store);
        Ok(())
    }
}

/// Applies `precision` to a mutation's timestamp (reads are unaffected).
pub(crate) fn quantized(op: TraceOp, precision: TimePrecision) -> TraceOp {
    match op {
        TraceOp::Mutation(mut event) => {
            event.timestamp = precision.apply(event.timestamp);
            TraceOp::Mutation(event)
        }
        reads => reads,
    }
}

/// Outcome of trying to fill a fixed-size buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReadStatus {
    /// The buffer was filled completely.
    Full,
    /// EOF before the first byte (a clean boundary).
    Empty,
    /// EOF mid-buffer (a torn write).
    Partial,
}

/// Like `read_exact`, but reports EOF position instead of erroring.
fn read_chunk<R: Read>(source: &mut R, buf: &mut [u8]) -> Result<ReadStatus, WalError> {
    let mut filled = 0;
    while let Some(rest) = buf.get_mut(filled..).filter(|rest| !rest.is_empty()) {
        let n = source.read(rest)?;
        if n == 0 {
            return Ok(if filled == 0 {
                ReadStatus::Empty
            } else {
                ReadStatus::Partial
            });
        }
        filled += n;
    }
    Ok(ReadStatus::Full)
}

/// A file-backed WAL with layered snapshot compaction.
///
/// ## Layout
///
/// Two on-disk layouts are understood:
///
/// * **Legacy** (pre-layering, still written by fresh never-compacted
///   directories): `wal.log` (framed op stream) and optionally
///   `snapshot.ttkv` (one full TTKV snapshot). Replay = snapshot + log.
/// * **Layered** (after the first compaction): a `wal.manifest` naming a
///   base snapshot, an ordered chain of delta layers with their prune
///   horizons, and the current log epoch (`wal-<epoch>.log`). Replay =
///   fold layers oldest→newest, re-prune at the newest horizon, apply the
///   log.
///
/// The manifest rename is the single commit point for every compaction:
/// a crash at *any* byte of a mid-write delta or base leaves the previous
/// manifest (and therefore the previous replayable state) fully intact,
/// and the orphaned files are swept on the next [`Wal::open`]. The torn-
/// compaction suite in `tests/torn_tail.rs` truncates a mid-write delta at
/// every byte offset and asserts exactly pre- or post-compaction state.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    writer: Option<WalWriter<BufWriter<File>>>,
    manifest: Manifest,
    rebase_layers: usize,
}

/// Magic first line of `wal.manifest` (shared with the offline doctor,
/// which parses manifests independently so it can localise damage).
pub(crate) const MANIFEST_MAGIC: &str = "ocasta-wal-manifest v1";

/// Delta layers tolerated before a compaction folds the whole chain into
/// a fresh base (see [`Wal::set_rebase_layers`]).
const DEFAULT_REBASE_LAYERS: usize = 8;

/// The committed layer state of a WAL directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Manifest {
    /// Monotone compaction counter; the current log is `wal-<epoch>.log`
    /// (or the legacy `wal.log` at epoch 0), and every layer file embeds
    /// the epoch that created it, so names never collide with orphans.
    epoch: u64,
    /// The newest prune horizon any compaction recorded; replay re-prunes
    /// the folded layers here. `None` until a pruned compaction runs.
    horizon: Option<Timestamp>,
    /// Base snapshot filename, if any.
    base: Option<String>,
    /// Delta layer filenames with the horizon each was pruned to, oldest
    /// first.
    deltas: Vec<(String, Timestamp)>,
    /// `true` once a `wal.manifest` exists on disk; `false` means the
    /// directory is (still) in the legacy layout.
    committed: bool,
}

impl Manifest {
    fn encode(&self) -> String {
        let mut out = format!("{MANIFEST_MAGIC}\nepoch {}\n", self.epoch);
        if let Some(h) = self.horizon {
            out.push_str(&format!("horizon {}\n", h.as_millis()));
        }
        if let Some(base) = &self.base {
            out.push_str(&format!("base {base}\n"));
        }
        for (name, h) in &self.deltas {
            out.push_str(&format!("delta {name} {}\n", h.as_millis()));
        }
        out
    }

    fn decode(text: &str) -> Result<Manifest, WalError> {
        let bad = |msg: &str| WalError::Manifest(msg.to_string());
        let mut lines = text.lines();
        if lines.next().map(str::trim_end) != Some(MANIFEST_MAGIC) {
            return Err(bad("bad magic"));
        }
        let mut manifest = Manifest {
            committed: true,
            ..Manifest::default()
        };
        let file_name = |token: &str| -> Result<String, WalError> {
            if token.is_empty() || token == "." || token == ".." || token.contains(['/', '\\']) {
                return Err(bad("layer name must be a bare file name"));
            }
            Ok(token.to_string())
        };
        for line in lines {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let mut tokens = line.split(' ');
            match tokens.next() {
                Some("epoch") => {
                    manifest.epoch = tokens
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad epoch"))?;
                }
                Some("horizon") => {
                    let ms = tokens
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad horizon"))?;
                    manifest.horizon = Some(Timestamp::from_millis(ms));
                }
                Some("base") => {
                    manifest.base = Some(file_name(
                        tokens.next().ok_or_else(|| bad("missing base name"))?,
                    )?);
                }
                Some("delta") => {
                    let name = file_name(tokens.next().ok_or_else(|| bad("missing delta name"))?)?;
                    let ms = tokens
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad delta horizon"))?;
                    manifest.deltas.push((name, Timestamp::from_millis(ms)));
                }
                Some(other) => return Err(bad(&format!("unknown record {other:?}"))),
                // `split` always yields at least one token, but a
                // structured error beats asserting that here.
                None => return Err(bad("empty manifest record")),
            }
        }
        if manifest.horizon.is_none() && !manifest.deltas.is_empty() {
            // Only pruned compactions create deltas, and they always
            // record a horizon; folding deltas without one would skip the
            // demote-and-re-prune step and mis-rank cross-layer ties.
            return Err(bad("delta layers require a horizon"));
        }
        Ok(manifest)
    }

    /// Every file this manifest references (log included).
    fn referenced(&self) -> Vec<String> {
        let mut files = vec![self.log_name()];
        files.extend(self.base.clone());
        files.extend(self.deltas.iter().map(|(name, _)| name.clone()));
        files
    }

    fn log_name(&self) -> String {
        if self.epoch == 0 {
            "wal.log".to_string()
        } else {
            format!("wal-{}.log", self.epoch)
        }
    }
}

impl Wal {
    /// Opens (creating if needed) a WAL directory for appending.
    ///
    /// Reads the manifest if one is committed (falling back to the legacy
    /// `snapshot.ttkv` + `wal.log` layout otherwise) and sweeps any
    /// orphaned files a crashed compaction left behind.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures; [`WalError::Manifest`] if a
    /// committed manifest is unreadable.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, WalError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let manifest = match std::fs::read_to_string(dir.join("wal.manifest")) {
            Ok(text) => Manifest::decode(&text)?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Manifest::default(),
            Err(e) => return Err(e.into()),
        };
        let wal = Wal {
            dir,
            writer: None,
            manifest,
            rebase_layers: DEFAULT_REBASE_LAYERS,
        };
        wal.sweep_orphans();
        Ok(wal)
    }

    /// Best-effort removal of files no committed state references: temp
    /// files from any interrupted rename, plus — once a manifest exists —
    /// stale logs and unreferenced layers from a crash between the
    /// manifest commit and the old files' deletion.
    fn sweep_orphans(&self) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        let referenced = self.manifest.referenced();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale = if name.ends_with(".tmp") {
                true
            } else if !self.manifest.committed {
                false
            } else if name == "wal.log" || (name.starts_with("wal-") && name.ends_with(".log")) {
                name != self.manifest.log_name()
            } else if name == "snapshot.ttkv"
                || ((name.starts_with("base-") || name.starts_with("delta-"))
                    && name.ends_with(".ttkv"))
            {
                !referenced.iter().any(|r| r == name)
            } else {
                false
            };
            if stale {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }

    /// Path of the current framed log file (`wal.log` until the first
    /// compaction commits a manifest, `wal-<epoch>.log` afterwards).
    pub fn log_path(&self) -> PathBuf {
        self.dir.join(self.manifest.log_name())
    }

    /// Path of the legacy single-snapshot base (`snapshot.ttkv`). Layered
    /// directories may keep their base under an epoch-stamped name
    /// instead; use [`Wal::snapshot_bytes`] for footprint accounting.
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.ttkv")
    }

    /// Total size of the persisted snapshot state in bytes: the base plus
    /// every committed delta layer (excludes the log; see
    /// [`Wal::log_bytes`]).
    pub fn snapshot_bytes(&self) -> u64 {
        let size = |name: &str| std::fs::metadata(self.dir.join(name)).map_or(0, |m| m.len());
        if !self.manifest.committed {
            return size("snapshot.ttkv");
        }
        self.manifest.base.as_deref().map_or(0, size)
            + self
                .manifest
                .deltas
                .iter()
                .map(|(name, _)| size(name))
                .sum::<u64>()
    }

    /// Number of committed delta layers stacked on the base.
    pub fn delta_layers(&self) -> usize {
        self.manifest.deltas.len()
    }

    /// The newest prune horizon any compaction has recorded, if any.
    pub fn horizon(&self) -> Option<Timestamp> {
        self.manifest.horizon
    }

    /// Overrides how many delta layers accumulate before a pruned
    /// compaction folds the whole chain into a fresh base (default 8).
    ///
    /// Lower values trade more frequent O(retained window) rebase stalls
    /// for fewer layers on disk; a value of `usize::MAX` never rebases
    /// (useful in tests that exercise deep chains).
    pub fn set_rebase_layers(&mut self, layers: usize) {
        self.rebase_layers = layers.max(1);
    }

    fn writer(&mut self) -> Result<&mut WalWriter<BufWriter<File>>, WalError> {
        if self.writer.is_none() {
            self.writer = Some(self.open_writer()?);
        }
        match self.writer.as_mut() {
            Some(writer) => Ok(writer),
            // Unreachable — assigned just above — but a structured error
            // beats asserting it on the appender path.
            None => Err(WalError::Io(io::Error::other(
                "wal writer did not initialise",
            ))),
        }
    }

    /// Opens (and, after a crash, repairs) the current epoch's log file,
    /// returning a writer positioned after the last complete frame.
    fn open_writer(&mut self) -> Result<WalWriter<BufWriter<File>>, WalError> {
        let path = self.log_path();
        let log_len = match std::fs::metadata(&path) {
            Ok(meta) => meta.len(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => 0,
            Err(e) => return Err(e.into()),
        };
        let mut existing_frames = 0;
        if log_len > 0 && log_len < WAL_MAGIC.len() as u64 {
            // Torn during the very first write: nothing recoverable.
            OpenOptions::new().write(true).open(&path)?.set_len(0)?;
        } else if log_len > 0 {
            // Scan the log so a torn final write from a previous crash
            // is truncated away before new frames go after it —
            // otherwise every post-crash append would sit beyond the
            // torn bytes and be unreachable on replay. A checksum
            // failure on a *complete* frame still errors: that is data
            // corruption, not a torn tail.
            let mut scan = WalReader::new(BufReader::new(File::open(&path)?))?;
            while scan.next_batch()?.is_some() {}
            existing_frames = scan.frames_read();
            if scan.clean_bytes() < log_len {
                let file = OpenOptions::new().write(true).open(&path)?;
                file.set_len(scan.clean_bytes())?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let sink = BufWriter::new(file);
        Ok(if log_len < WAL_MAGIC.len() as u64 {
            WalWriter::new(sink)?
        } else {
            WalWriter::resume(sink, existing_frames)
        })
    }

    /// Appends one batch as a frame.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn append(&mut self, batch: &[TraceOp]) -> Result<(), WalError> {
        self.writer()?.append(batch)
    }

    /// Flushes buffered frames to the file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn flush(&mut self) -> Result<(), WalError> {
        if let Some(writer) = self.writer.as_mut() {
            writer.flush()?;
        }
        Ok(())
    }

    /// Loads one committed snapshot layer.
    fn load_layer(&self, name: &str) -> Result<Ttkv, WalError> {
        let file = File::open(self.dir.join(name))?;
        Ttkv::load(BufReader::new(file)).map_err(|e| WalError::Snapshot(e.to_string()))
    }

    /// Folds the committed snapshot layers (everything but the current
    /// log) into one store.
    ///
    /// Legacy directories load `snapshot.ttkv` verbatim. Layered
    /// directories fold base + deltas oldest→newest with baselines demoted
    /// to ordinary versions first — a newer layer's baseline must win
    /// timestamp ties against older layers' history, the opposite of the
    /// in-store tie rule — then re-prune once at the manifest horizon,
    /// re-collapsing every demoted version with ties ranked by true
    /// arrival order ([`Ttkv::demote_baselines`], `DESIGN.md §5.10`).
    fn fold_layers(&self) -> Result<Ttkv, WalError> {
        if !self.manifest.committed {
            return match File::open(self.snapshot_path()) {
                Ok(file) => {
                    Ttkv::load(BufReader::new(file)).map_err(|e| WalError::Snapshot(e.to_string()))
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Ttkv::new()),
                Err(e) => Err(e.into()),
            };
        }
        let Some(horizon) = self.manifest.horizon else {
            // Only pruned compactions create deltas, so a horizon-less
            // manifest has none (Manifest::decode enforces it; this
            // guards manifests constructed in-process) — and its base is
            // baseline-free, so it loads verbatim with nothing to fold.
            if !self.manifest.deltas.is_empty() {
                return Err(WalError::Manifest(
                    "delta layers require a horizon".to_string(),
                ));
            }
            return match &self.manifest.base {
                Some(name) => self.load_layer(name),
                None => Ok(Ttkv::new()),
            };
        };
        let mut layers = Vec::with_capacity(1 + self.manifest.deltas.len());
        if let Some(name) = &self.manifest.base {
            layers.push(self.load_layer(name)?);
        }
        for (name, _) in &self.manifest.deltas {
            layers.push(self.load_layer(name)?);
        }
        Ok(Ttkv::fold_layers(layers, Some(horizon)))
    }

    /// Replays snapshot layers + log into a fresh store.
    ///
    /// # Errors
    ///
    /// Snapshot parse failures, log corruption, or I/O failures.
    pub fn replay(&mut self, precision: TimePrecision) -> Result<Ttkv, WalError> {
        self.flush()?;
        let mut store = self.fold_layers()?;
        match File::open(self.log_path()) {
            Ok(file) => {
                let mut reader = WalReader::new(BufReader::new(file))?;
                reader.replay_into(&mut store, precision)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        Ok(store)
    }

    /// Reads the current log's ops (the delta since the last compaction),
    /// quantised to `precision`.
    fn read_log_ops(&mut self, precision: TimePrecision) -> Result<Vec<TraceOp>, WalError> {
        self.flush()?;
        let mut ops = Vec::new();
        match File::open(self.log_path()) {
            Ok(file) => {
                let mut reader = WalReader::new(BufReader::new(file))?;
                while let Some(batch) = reader.next_batch()? {
                    ops.extend(batch.into_iter().map(|op| quantized(op, precision)));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        Ok(ops)
    }

    /// Commits `manifest` as the directory's new state: temp write +
    /// rename (the single atomic commit point), then drops the old log
    /// writer and sweeps files the new manifest no longer references.
    fn commit_manifest(&mut self, manifest: Manifest) -> Result<(), WalError> {
        let tmp = self.dir.join("wal.manifest.tmp");
        {
            let mut file = File::create(&tmp)?;
            file.write_all(manifest.encode().as_bytes())?;
            // The rename below is the commit point; the bytes it commits
            // must be durable before it, or a power loss can leave a
            // durable rename pointing at undurable content.
            file.sync_all()?;
        }
        std::fs::rename(&tmp, self.dir.join("wal.manifest"))?;
        // Make the rename itself durable (directory metadata). Best
        // effort: not every filesystem supports syncing a directory fd.
        if let Ok(dir) = File::open(&self.dir) {
            let _ = dir.sync_all();
        }
        self.writer = None;
        self.manifest = manifest;
        self.sweep_orphans();
        Ok(())
    }

    /// Writes `store` as a layer file under `name` (directly: the file is
    /// unreferenced until the manifest commit, so a torn write is just an
    /// orphan for [`Wal::open`] to sweep).
    ///
    /// Layers are `ocasta-ttkv binary v2` segments ([`Ttkv::save`]) —
    /// checksummed with the same FNV-1a as the log frames. Pre-v2 text
    /// layers still load ([`Ttkv::load`] sniffs the magic) and are
    /// rewritten in v2 by the next compaction that touches them.
    fn write_layer(&self, name: &str, store: &Ttkv) -> Result<(), WalError> {
        let file = File::create(self.dir.join(name))?;
        let mut writer = BufWriter::new(file);
        store
            .save(&mut writer)
            .map_err(|e| WalError::Snapshot(e.to_string()))?;
        writer.flush()?;
        // Layer data must hit disk before the manifest rename that will
        // reference it (see `commit_manifest`).
        writer.get_ref().sync_all()?;
        Ok(())
    }

    /// Compacts the WAL completely: folds every layer and the log into one
    /// fresh base snapshot (an O(retained state) *rebase*). Returns the
    /// compacted state.
    ///
    /// This is the unpruned, full-rewrite path; long-running retention
    /// deployments use [`Wal::compact_pruned`], which costs O(delta)
    /// per call instead.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Wal::replay`] plus snapshot write failures.
    pub fn compact(&mut self, precision: TimePrecision) -> Result<Ttkv, WalError> {
        let mut store = self.replay(precision)?;
        // The recorded horizon is a floor that must survive every later
        // compaction: dropping it here would let a later shallower
        // `compact_pruned` demote this base's baselines without
        // re-collapsing them. Keep it, and normalise the rebased base to
        // it (collapsing any straggler history below the floor), so
        // replay's demote-and-re-prune of this base is the identity and
        // `compact` stays idempotent.
        if let Some(horizon) = self.manifest.horizon {
            store.prune_before(horizon);
        }
        let epoch = self.manifest.epoch + 1;
        let base = format!("base-{epoch}.ttkv");
        self.write_layer(&base, &store)?;
        self.commit_manifest(Manifest {
            epoch,
            horizon: self.manifest.horizon,
            base: Some(base),
            deltas: Vec::new(),
            committed: true,
        })?;
        Ok(store)
    }

    /// Compacts the WAL incrementally, **pruned to `horizon`**: folds only
    /// the frames appended since the previous compaction into a delta
    /// snapshot (baselines + counters for the keys they touched, pruned to
    /// the horizon), commits it as a new layer, and starts a fresh log
    /// epoch — O(delta), not O(retained state), which is what keeps the
    /// WAL lane's compaction stall proportional to what the sweep
    /// reclaimed (`DESIGN.md §5.10`). Replay after this equals the old
    /// replay-everything-and-prune path on every query (equivalence
    /// property-tested), and the disk footprint stays bounded by the
    /// retention window: once [`Wal::set_rebase_layers`] deltas pile up,
    /// one compaction folds the chain into a fresh base.
    ///
    /// A sweep that reclaims nothing — empty log and no horizon advance —
    /// is a complete no-op on persisted bytes. Returns what pruning the
    /// newly folded delta reclaimed (the whole-store tally lives with the
    /// store-side sweep, `ShardedTtkv::prune_before`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Wal::compact`].
    pub fn compact_pruned(
        &mut self,
        precision: TimePrecision,
        horizon: Timestamp,
    ) -> Result<PruneStats, WalError> {
        self.compact_pruned_inner(precision, horizon, false)
    }

    /// Like [`Wal::compact_pruned`], but always folds the whole chain and
    /// the log into one fresh pruned base — the O(retained window) rebase,
    /// on demand rather than every [`Wal::set_rebase_layers`] sweeps.
    ///
    /// The engine's retention sweeper issues exactly one of these when
    /// ingestion completes, so a finished run's disk footprint is a single
    /// pruned snapshot plus the manifest — the same end state the
    /// pre-layering format left — while every mid-run sweep stays
    /// O(delta).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Wal::compact`].
    pub fn compact_pruned_rebased(
        &mut self,
        precision: TimePrecision,
        horizon: Timestamp,
    ) -> Result<PruneStats, WalError> {
        self.compact_pruned_inner(precision, horizon, true)
    }

    fn compact_pruned_inner(
        &mut self,
        precision: TimePrecision,
        horizon: Timestamp,
        force_rebase: bool,
    ) -> Result<PruneStats, WalError> {
        let ops = self.read_log_ops(precision)?;
        let prior = self.manifest.horizon.unwrap_or(Timestamp::EPOCH);
        let rebase = force_rebase || self.manifest.deltas.len() + 1 > self.rebase_layers;
        if ops.is_empty() && horizon <= prior && self.manifest.committed {
            // Nothing to reclaim: a complete no-op on persisted bytes —
            // unless this is a forced rebase with a chain left to fold.
            if !force_rebase || self.manifest.deltas.is_empty() {
                return Ok(PruneStats::default());
            }
        }
        // Horizons are monotone on disk even if a caller's are not: replay
        // prunes at the recorded maximum, which is what the store-side
        // sweep has already done. A legacy snapshot (no manifest) was
        // pruned to an *unknown* horizon; one tick past its newest
        // baseline is a floor that makes replay's demote step re-collapse
        // every one of its baselines without touching anything else, so a
        // shallower post-migration sweep cannot resurrect them as
        // history.
        let legacy_floor = if !self.manifest.committed && self.snapshot_path().exists() {
            self.load_layer("snapshot.ttkv")?
                .iter()
                .filter_map(|(_, record)| record.baseline().map(|b| b.timestamp))
                .max()
                .map(|t| t + TimeDelta::from_millis(1))
        } else {
            None
        };
        let horizon = horizon
            .max(prior)
            .max(legacy_floor.unwrap_or(Timestamp::EPOCH));

        let mut delta = TtkvBuilder::new();
        for op in ops {
            op.buffer(&mut delta);
        }
        let mut delta = delta.build();
        let stats = delta.prune_before(horizon);

        let mut manifest = self.manifest.clone();
        if !manifest.committed {
            // Legacy-layout migration: the bare snapshot (if any) becomes
            // the chain's base under its existing name.
            manifest.committed = true;
            if self.snapshot_path().exists() {
                manifest.base = Some("snapshot.ttkv".to_string());
            }
        }
        manifest.horizon = Some(horizon);
        if delta.is_empty() && !rebase {
            // Nothing new to fold: record the deeper horizon (replay must
            // re-prune the existing layers to it) without a new layer or
            // epoch.
            self.commit_manifest(manifest)?;
            return Ok(stats);
        }
        manifest.epoch += 1;
        if rebase {
            // Fold the whole chain + this delta into a fresh base.
            let mut store = self.fold_layers()?;
            store.demote_baselines();
            delta.demote_baselines();
            store.absorb(delta);
            store.prune_before(horizon);
            if force_rebase {
                // The run is over (forced rebases are the sweeper's final
                // message): collect dead counter-only shells, mirroring the
                // store-side final sweep so replay == store. A mid-run
                // chain-length rebase must NOT do this — the live store
                // still holds those counters, and a straggler rewrite of a
                // pruned key would diverge from replay.
                store.gc_dead_shells();
            }
            let base = format!("base-{}.ttkv", manifest.epoch);
            self.write_layer(&base, &store)?;
            manifest.base = Some(base);
            manifest.deltas.clear();
        } else {
            let name = format!("delta-{}.ttkv", manifest.epoch);
            self.write_layer(&name, &delta)?;
            manifest.deltas.push((name, horizon));
        }
        self.commit_manifest(manifest)?;
        Ok(stats)
    }

    /// Size of the current log file in bytes (0 if absent).
    pub fn log_bytes(&self) -> u64 {
        std::fs::metadata(self.log_path()).map_or(0, |m| m.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocasta_trace::AccessEvent;
    use ocasta_ttkv::{Timestamp, Value};

    fn sample_ops() -> Vec<TraceOp> {
        vec![
            TraceOp::Mutation(AccessEvent::write(
                Timestamp::from_millis(1_000),
                "app/a",
                Value::from(1),
            )),
            TraceOp::Reads(ocasta_ttkv::Key::new("app/a"), 12),
            TraceOp::Mutation(AccessEvent::write(
                Timestamp::from_millis(2_500),
                "app/b",
                Value::from("x y z"),
            )),
            TraceOp::Mutation(AccessEvent::delete(Timestamp::from_millis(3_000), "app/a")),
        ]
    }

    #[test]
    fn frames_roundtrip_through_memory() {
        let mut bytes = Vec::new();
        {
            let mut writer = WalWriter::new(&mut bytes).unwrap();
            writer.append(&sample_ops()[..2]).unwrap();
            writer.append(&sample_ops()[2..]).unwrap();
            assert_eq!(writer.frames(), 2);
        }
        let mut reader = WalReader::new(bytes.as_slice()).unwrap();
        let ops = reader.read_all().unwrap();
        assert_eq!(ops, sample_ops());
        assert_eq!(reader.frames_read(), 2);
        assert!(!reader.torn_tail());
    }

    #[test]
    fn replay_equals_direct_build() {
        let mut bytes = Vec::new();
        let mut writer = WalWriter::new(&mut bytes).unwrap();
        writer.append(&sample_ops()).unwrap();
        let replayed = WalReader::new(bytes.as_slice())
            .unwrap()
            .replay(TimePrecision::Milliseconds)
            .unwrap();
        let mut direct = Ttkv::new();
        for op in sample_ops() {
            op.apply(&mut direct, TimePrecision::Milliseconds);
        }
        assert_eq!(replayed, direct);
    }

    #[test]
    fn torn_tail_is_discarded_cleanly() {
        let mut bytes = Vec::new();
        let mut writer = WalWriter::new(&mut bytes).unwrap();
        writer.append(&sample_ops()[..2]).unwrap();
        writer.append(&sample_ops()[2..]).unwrap();
        // Cut the last frame in half.
        let cut = bytes.len() - 5;
        let torn = &bytes[..cut];
        let mut reader = WalReader::new(torn).unwrap();
        let ops = reader.read_all().unwrap();
        assert_eq!(ops, sample_ops()[..2].to_vec());
        assert!(reader.torn_tail());
        assert_eq!(reader.frames_read(), 1);
    }

    #[test]
    fn corrupt_frame_is_an_error() {
        let mut bytes = Vec::new();
        let mut writer = WalWriter::new(&mut bytes).unwrap();
        writer.append(&sample_ops()).unwrap();
        // Flip a payload byte (past magic + frame header).
        let idx = WAL_MAGIC.len() + 8 + 3;
        bytes[idx] ^= 0xFF;
        let mut reader = WalReader::new(bytes.as_slice()).unwrap();
        assert!(matches!(
            reader.next_batch(),
            Err(WalError::Corrupt { frame: 0 })
        ));
    }

    #[test]
    fn undersized_frame_payload_is_a_codec_error() {
        // Regression: a checksum-valid frame whose payload is shorter
        // than its own op-count header must surface as a structured
        // error on the replay path, not a slice panic.
        let mut bytes = WAL_MAGIC.to_vec();
        let payload = [0u8; 2]; // too short to hold the 4-byte op count
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let mut reader = WalReader::new(bytes.as_slice()).unwrap();
        assert!(matches!(reader.next_batch(), Err(WalError::Codec(_))));
    }

    #[test]
    fn rejects_non_wal_streams() {
        assert!(matches!(
            WalReader::new(&b"not a wal"[..]),
            Err(WalError::BadMagic)
        ));
        assert!(matches!(WalReader::new(&b""[..]), Err(WalError::BadMagic)));
    }

    #[test]
    fn file_wal_appends_replays_and_compacts() {
        let dir = std::env::temp_dir().join(format!("ocasta-wal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut wal = Wal::open(&dir).unwrap();
        wal.append(&sample_ops()[..2]).unwrap();
        wal.append(&sample_ops()[2..]).unwrap();
        let before = wal.replay(TimePrecision::Milliseconds).unwrap();
        assert_eq!(before.stats().writes, 2);
        assert_eq!(before.stats().deletes, 1);
        assert!(wal.log_bytes() > 0);

        // Compaction preserves state and truncates the log.
        let compacted = wal.compact(TimePrecision::Milliseconds).unwrap();
        assert_eq!(compacted, before);
        assert_eq!(wal.log_bytes(), 0);

        // Post-compaction appends layer on top of the snapshot.
        wal.append(&[TraceOp::Mutation(AccessEvent::write(
            Timestamp::from_millis(9_000),
            "app/a",
            Value::from(2),
        ))])
        .unwrap();
        let after = wal.replay(TimePrecision::Milliseconds).unwrap();
        assert_eq!(after.stats().writes, 3);
        assert_eq!(
            after.current("app/a"),
            Some(&Value::from(2)),
            "deleted key rewritten after compaction"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopening_after_a_torn_tail_truncates_then_appends() {
        let dir = std::env::temp_dir().join(format!("ocasta-wal-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut wal = Wal::open(&dir).unwrap();
            wal.append(&sample_ops()[..2]).unwrap();
            wal.append(&sample_ops()[2..]).unwrap();
            wal.flush().unwrap();
        }
        // Simulate a crash mid-append: cut the final frame in half.
        let log = dir.join("wal.log");
        let full = std::fs::metadata(&log).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&log)
            .unwrap()
            .set_len(full - 5)
            .unwrap();
        // Reopen and append: the torn tail must be truncated first so the
        // new frame is reachable on replay.
        let mut wal = Wal::open(&dir).unwrap();
        let extra = TraceOp::Mutation(AccessEvent::write(
            Timestamp::from_millis(9_999),
            "app/c",
            Value::from(true),
        ));
        wal.append(std::slice::from_ref(&extra)).unwrap();
        wal.flush().unwrap();
        let file = File::open(&log).unwrap();
        let mut reader = WalReader::new(BufReader::new(file)).unwrap();
        let ops = reader.read_all().unwrap();
        assert!(!reader.torn_tail(), "torn bytes must be gone");
        let mut expected = sample_ops()[..2].to_vec();
        expected.push(extra);
        assert_eq!(ops, expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_pruned_bounds_the_snapshot_and_keeps_post_horizon_state() {
        let dir = std::env::temp_dir().join(format!("ocasta-wal-prune-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut full_wal = Wal::open(dir.join("full")).unwrap();
        let mut wal = Wal::open(dir.join("pruned")).unwrap();
        let ops: Vec<TraceOp> = (0..200)
            .map(|i| {
                TraceOp::Mutation(AccessEvent::write(
                    Timestamp::from_millis(i * 100),
                    format!("app/k{}", i % 5),
                    Value::from(i as i64),
                ))
            })
            .collect();
        for chunk in ops.chunks(20) {
            full_wal.append(chunk).unwrap();
            wal.append(chunk).unwrap();
        }
        let full = full_wal.replay(TimePrecision::Milliseconds).unwrap();
        let full_snapshot_bytes = {
            full_wal.compact(TimePrecision::Milliseconds).unwrap();
            full_wal.snapshot_bytes()
        };

        let horizon = Timestamp::from_millis(15_000);
        let stats = wal
            .compact_pruned(TimePrecision::Milliseconds, horizon)
            .unwrap();
        assert!(stats.pruned_versions > 0);
        assert_eq!(wal.log_bytes(), 0, "fresh epoch after compaction");
        let pruned_snapshot_bytes = wal.snapshot_bytes();
        assert!(
            pruned_snapshot_bytes < full_snapshot_bytes,
            "{pruned_snapshot_bytes} vs {full_snapshot_bytes}"
        );
        // Replay equals the rebuild path exactly: replay-everything, prune
        // once at the horizon.
        let replayed = wal.replay(TimePrecision::Milliseconds).unwrap();
        let mut expected = full.clone();
        expected.prune_before(horizon);
        assert_eq!(replayed, expected);
        assert_eq!(replayed.stats().writes, full.stats().writes);
        for key in full.keys() {
            assert_eq!(
                replayed.value_at(key.as_str(), horizon),
                full.value_at(key.as_str(), horizon),
                "{key}"
            );
        }
        // Appends after a pruned compaction layer on normally.
        wal.append(&[TraceOp::Mutation(AccessEvent::write(
            Timestamp::from_millis(90_000),
            "app/k0",
            Value::from(-1),
        ))])
        .unwrap();
        let after = wal.replay(TimePrecision::Milliseconds).unwrap();
        assert_eq!(after.current("app/k0"), Some(&Value::from(-1)));
        assert_eq!(after.stats().writes, full.stats().writes + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn layered_compaction_chain_equals_replay_everything() {
        // Many pruned compactions stack delta layers; at every stage the
        // layered replay must equal the rebuild path (fold the complete op
        // stream, prune once at the newest horizon, apply the tail).
        let dir = std::env::temp_dir().join(format!("ocasta-wal-layers-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut wal = Wal::open(&dir).unwrap();
        wal.set_rebase_layers(usize::MAX); // deep chain, no rebase
        let ops: Vec<TraceOp> = (0..300)
            .map(|i| {
                TraceOp::Mutation(AccessEvent::write(
                    Timestamp::from_millis(i * 50),
                    format!("app/k{}", i % 7),
                    Value::from(i as i64),
                ))
            })
            .collect();
        let mut fed: Vec<TraceOp> = Vec::new();
        for (round, chunk) in ops.chunks(60).enumerate() {
            wal.append(chunk).unwrap();
            fed.extend_from_slice(chunk);
            let horizon = Timestamp::from_millis((round as u64 + 1) * 2_000);
            wal.compact_pruned(TimePrecision::Milliseconds, horizon)
                .unwrap();
            assert_eq!(wal.delta_layers(), round + 1, "one layer per round");

            let mut rebuild = Ttkv::new();
            for op in &fed {
                op.clone().apply(&mut rebuild, TimePrecision::Milliseconds);
            }
            rebuild.prune_before(horizon);
            let replayed = wal.replay(TimePrecision::Milliseconds).unwrap();
            assert_eq!(replayed, rebuild, "round {round}");

            // Reopening reads the same committed chain.
            let replayed = Wal::open(&dir)
                .unwrap()
                .replay(TimePrecision::Milliseconds)
                .unwrap();
            assert_eq!(replayed, rebuild, "round {round} reopened");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rebase_folds_the_chain_and_bounds_disk() {
        let dir = std::env::temp_dir().join(format!("ocasta-wal-rebase-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut wal = Wal::open(&dir).unwrap();
        wal.set_rebase_layers(3);
        for round in 0u64..10 {
            let ops: Vec<TraceOp> = (0..40)
                .map(|i| {
                    TraceOp::Mutation(AccessEvent::write(
                        Timestamp::from_millis(round * 4_000 + i * 100),
                        format!("app/k{}", i % 5),
                        Value::from((round * 100 + i) as i64),
                    ))
                })
                .collect();
            wal.append(&ops).unwrap();
            let horizon = Timestamp::from_millis(round.saturating_sub(1) * 4_000);
            wal.compact_pruned(TimePrecision::Milliseconds, horizon)
                .unwrap();
            assert!(wal.delta_layers() <= 3, "round {round}: chain bounded");
        }
        // After rebases, the whole chain serves exactly the staged-prune
        // state and the disk holds only base + few deltas.
        let replayed = wal.replay(TimePrecision::Milliseconds).unwrap();
        assert_eq!(replayed.stats().writes, 400, "counters survive rebases");
        assert!(wal.snapshot_bytes() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_reclaimed_sweep_is_a_noop_on_persisted_bytes() {
        let dir = std::env::temp_dir().join(format!("ocasta-wal-noop-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut wal = Wal::open(&dir).unwrap();
        wal.append(&sample_ops()).unwrap();
        let horizon = Timestamp::from_millis(2_000);
        wal.compact_pruned(TimePrecision::Milliseconds, horizon)
            .unwrap();
        let bytes_before = wal.snapshot_bytes();
        let manifest_before = std::fs::read_to_string(dir.join("wal.manifest")).unwrap();
        let epoch_log = wal.log_path();
        // Empty log, unchanged horizon: nothing to reclaim, nothing
        // written — byte-for-byte.
        let stats = wal
            .compact_pruned(TimePrecision::Milliseconds, horizon)
            .unwrap();
        assert!(stats.is_noop());
        assert_eq!(wal.snapshot_bytes(), bytes_before);
        assert_eq!(
            std::fs::read_to_string(dir.join("wal.manifest")).unwrap(),
            manifest_before
        );
        assert_eq!(wal.log_path(), epoch_log, "no new epoch");
        // A deeper horizon with an empty log records the horizon (replay
        // must re-prune) but still writes no layer.
        let layers = wal.delta_layers();
        wal.compact_pruned(TimePrecision::Milliseconds, Timestamp::from_millis(3_500))
            .unwrap();
        assert_eq!(wal.delta_layers(), layers);
        assert_eq!(wal.horizon(), Some(Timestamp::from_millis(3_500)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_layout_migrates_on_first_pruned_compaction() {
        // A PR-4-era directory: bare snapshot.ttkv + wal.log, no manifest.
        let dir = std::env::temp_dir().join(format!("ocasta-wal-legacy-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut legacy = Ttkv::new();
        legacy.write(Timestamp::from_millis(500), "app/old", Value::from(1));
        legacy.write(Timestamp::from_millis(1_500), "app/old", Value::from(2));
        std::fs::write(dir.join("snapshot.ttkv"), legacy.save_to_string()).unwrap();
        {
            let mut wal = Wal::open(&dir).unwrap();
            wal.append(&sample_ops()).unwrap();
            wal.flush().unwrap();
        }
        // Pre-migration replay equals snapshot + log, verbatim.
        let mut wal = Wal::open(&dir).unwrap();
        let before = wal.replay(TimePrecision::Milliseconds).unwrap();
        assert_eq!(before.stats().writes, 4);

        let horizon = Timestamp::from_millis(1_000);
        wal.compact_pruned(TimePrecision::Milliseconds, horizon)
            .unwrap();
        assert!(dir.join("wal.manifest").exists(), "migrated to layered");
        let mut expected = before.clone();
        expected.prune_before(horizon);
        let after = wal.replay(TimePrecision::Milliseconds).unwrap();
        assert_eq!(after, expected);
        // The legacy base is still the chain's base file.
        assert!(dir.join("snapshot.ttkv").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn full_compact_keeps_the_horizon_floor_against_shallower_sweeps() {
        // Regression: `compact()` used to clear the manifest horizon, so a
        // later `compact_pruned` at a *shallower* horizon re-clamped
        // against EPOCH and replay demoted the base's baselines without
        // re-collapsing them — resurrecting collapsed mutations as
        // ordinary history.
        let dir = std::env::temp_dir().join(format!("ocasta-wal-floor-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut wal = Wal::open(&dir).unwrap();
        for (t, v) in [(1_000u64, 1i64), (3_000, 3), (6_000, 6)] {
            wal.append(&[TraceOp::Mutation(AccessEvent::write(
                Timestamp::from_millis(t),
                "app/k",
                Value::from(v),
            ))])
            .unwrap();
        }
        wal.compact_pruned(TimePrecision::Milliseconds, Timestamp::from_millis(5_000))
            .unwrap();
        let reference = wal.replay(TimePrecision::Milliseconds).unwrap();
        assert_eq!(
            reference.record("app/k").unwrap().baseline(),
            Some(&ocasta_ttkv::Version::write(
                Timestamp::from_millis(3_000),
                Value::from(3)
            )),
        );
        wal.compact(TimePrecision::Milliseconds).unwrap();
        assert_eq!(wal.horizon(), Some(Timestamp::from_millis(5_000)));
        // The shallower sweep must not un-collapse the ts-3000 baseline.
        wal.compact_pruned(TimePrecision::Milliseconds, Timestamp::from_millis(2_000))
            .unwrap();
        let replayed = wal.replay(TimePrecision::Milliseconds).unwrap();
        assert_eq!(replayed, reference);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_migration_covers_the_old_snapshots_unknown_prune_depth() {
        // Regression: a legacy snapshot pruned to a deep horizon, migrated
        // by a *shallower* sweep, used to have its baselines demoted and
        // left exposed as history on replay.
        let dir =
            std::env::temp_dir().join(format!("ocasta-wal-legacy-floor-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut legacy = Ttkv::new();
        legacy.write(Timestamp::from_millis(1_000), "app/k", Value::from(1));
        legacy.write(Timestamp::from_millis(3_000), "app/k", Value::from(3));
        legacy.write(Timestamp::from_millis(6_000), "app/k", Value::from(6));
        legacy.prune_before(Timestamp::from_millis(5_000));
        std::fs::write(dir.join("snapshot.ttkv"), legacy.save_to_string()).unwrap();

        let mut wal = Wal::open(&dir).unwrap();
        wal.append(&[TraceOp::Mutation(AccessEvent::write(
            Timestamp::from_millis(7_000),
            "app/k",
            Value::from(7),
        ))])
        .unwrap();
        wal.compact_pruned(TimePrecision::Milliseconds, Timestamp::from_millis(2_000))
            .unwrap();
        let replayed = wal.replay(TimePrecision::Milliseconds).unwrap();
        let record = replayed.record("app/k").unwrap();
        assert_eq!(
            record.baseline(),
            Some(&ocasta_ttkv::Version::write(
                Timestamp::from_millis(3_000),
                Value::from(3)
            )),
            "the legacy baseline must stay collapsed"
        );
        let times: Vec<_> = record.mutation_times().collect();
        assert_eq!(
            times,
            vec![Timestamp::from_millis(6_000), Timestamp::from_millis(7_000)],
            "no resurrected legacy mutation"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_roundtrips_and_rejects_garbage() {
        let manifest = Manifest {
            epoch: 7,
            horizon: Some(Timestamp::from_millis(123_456)),
            base: Some("base-3.ttkv".into()),
            deltas: vec![
                ("delta-5.ttkv".into(), Timestamp::from_millis(100_000)),
                ("delta-7.ttkv".into(), Timestamp::from_millis(123_456)),
            ],
            committed: true,
        };
        let decoded = Manifest::decode(&manifest.encode()).unwrap();
        assert_eq!(decoded, manifest);
        assert!(Manifest::decode("not a manifest").is_err());
        assert!(Manifest::decode(&format!("{MANIFEST_MAGIC}\nepoch x\n")).is_err());
        assert!(
            Manifest::decode(&format!("{MANIFEST_MAGIC}\nbase ../escape.ttkv\n")).is_err(),
            "layer names must be bare file names"
        );
        assert!(
            Manifest::decode(&format!("{MANIFEST_MAGIC}\nbase ..\n")).is_err(),
            "dot-dot is not a layer name"
        );
        assert!(
            Manifest::decode(&format!("{MANIFEST_MAGIC}\ndelta d.ttkv 5\n")).is_err(),
            "delta layers without a horizon must be rejected"
        );
    }

    #[test]
    fn compact_is_idempotent() {
        let dir = std::env::temp_dir().join(format!("ocasta-wal-compact2-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut wal = Wal::open(&dir).unwrap();
        wal.append(&sample_ops()).unwrap();
        let once = wal.compact(TimePrecision::Milliseconds).unwrap();
        // A second compaction with no log present must succeed unchanged.
        let twice = wal.compact(TimePrecision::Milliseconds).unwrap();
        assert_eq!(once, twice);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopened_wal_resumes_appending() {
        let dir = std::env::temp_dir().join(format!("ocasta-wal-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut wal = Wal::open(&dir).unwrap();
            wal.append(&sample_ops()[..2]).unwrap();
            wal.flush().unwrap();
        }
        {
            let mut wal = Wal::open(&dir).unwrap();
            wal.append(&sample_ops()[2..]).unwrap();
            let store = wal.replay(TimePrecision::Milliseconds).unwrap();
            assert_eq!(store.stats().writes, 2);
            assert_eq!(store.stats().deletes, 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
