//! Deterministic fault injection for the ingestion engine.
//!
//! The VOPR harness (`ocasta vopr`, `DESIGN.md §5.12`) drives the fleet
//! through named adversarial scenarios. The faults that must fire *inside*
//! the engine — a worker dying mid-queue, the WAL lane going dark, the
//! retention sweeper stopping short of its final rebase — are described by
//! a [`FaultPlan`] attached to [`crate::IngestOptions::faults`].
//!
//! The plan is zero-cost when absent: every hook is an `Option` check on a
//! field that defaults to `None`, there is no background machinery, and an
//! inert plan ([`FaultPlan::default`]) is bit-for-bit the no-plan path.
//!
//! Fault *handling* is part of the production surface, not the test
//! surface: [`IngestError`] is what [`crate::ingest_live`] returns when a
//! worker panics (injected or real) or the WAL fails, instead of the old
//! poisoned-lock cascade where one panicked worker took the whole engine
//! down with it.

use std::fmt;

use crate::wal::WalError;

/// A deterministic fault-injection plan for one ingestion run.
///
/// All fields default to `None`, which injects nothing; the engine treats
/// a missing plan and an inert plan identically.
///
/// # Examples
///
/// ```
/// use ocasta_fleet::FaultPlan;
///
/// let plan = FaultPlan {
///     kill_worker_at_machine: Some(1),
///     ..FaultPlan::default()
/// };
/// assert!(!plan.is_inert());
/// assert!(FaultPlan::default().is_inert());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Panic the ingest worker that picks up this machine index, at pickup
    /// — before it processes a single op. The machine contributes nothing;
    /// the other workers keep draining the queue, and the run returns
    /// [`IngestError::WorkerPanicked`] after a clean shutdown.
    pub kill_worker_at_machine: Option<usize>,
    /// Silently stop the WAL appender lane after this many batch frames
    /// have been appended: the frames so far are flushed, every later
    /// message (batches *and* compactions) is drained and dropped, and no
    /// error is reported — a dead durability lane, which is exactly the
    /// failure a replay-vs-store divergence check must catch.
    pub wal_crash_after_frames: Option<u64>,
    /// Stop the retention sweeper before it would execute sweep `N + 1`
    /// (`Some(0)` stops it before any sweep). The final
    /// rebase-and-collect pass is skipped too — the on-disk WAL is left
    /// mid-chain, as a crash during retention would leave it.
    pub sweeper_stop_after: Option<u64>,
}

impl FaultPlan {
    /// `true` if the plan injects nothing.
    pub fn is_inert(&self) -> bool {
        self == &FaultPlan::default()
    }
}

/// Why an ingestion run failed.
///
/// Pre-dating this type, a panicked worker poisoned the shared stat locks
/// and every other thread — including the caller — died on
/// `expect("... poisoned")`. Now the first failure is captured, the
/// remaining workers finish their queue, the WAL lane and sweeper shut
/// down in the normal order, and the caller gets a value it can match on.
#[derive(Debug)]
pub enum IngestError {
    /// The write-ahead-log lane failed (I/O or corruption).
    Wal(WalError),
    /// An ingest worker panicked.
    WorkerPanicked {
        /// The machine being processed when the worker died, if the panic
        /// happened inside a machine's span (a worker can also die between
        /// machines, e.g. joining a thread that already unwound).
        machine: Option<String>,
        /// The panic payload, stringified.
        message: String,
    },
    /// An internal engine invariant did not hold (out-of-range shard or
    /// machine index, and the like): an engine bug, reported as a value
    /// instead of panicking a worker and poisoning the shared state.
    InvariantViolated {
        /// Which invariant, with the offending values.
        message: String,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Wal(e) => write!(f, "wal lane failed: {e}"),
            IngestError::WorkerPanicked { machine, message } => match machine {
                Some(name) => write!(f, "ingest worker panicked on machine {name}: {message}"),
                None => write!(f, "ingest worker panicked: {message}"),
            },
            IngestError::InvariantViolated { message } => {
                write!(f, "engine invariant violated: {message}")
            }
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Wal(e) => Some(e),
            IngestError::WorkerPanicked { .. } | IngestError::InvariantViolated { .. } => None,
        }
    }
}

impl From<WalError> for IngestError {
    fn from(e: WalError) -> Self {
        IngestError::Wal(e)
    }
}

/// Renders a caught panic payload as text (the two shapes `panic!` emits).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_is_default() {
        assert!(FaultPlan::default().is_inert());
        let plan = FaultPlan {
            sweeper_stop_after: Some(0),
            ..FaultPlan::default()
        };
        assert!(!plan.is_inert());
    }

    #[test]
    fn errors_render_their_context() {
        let err = IngestError::WorkerPanicked {
            machine: Some("m003".into()),
            message: "boom".into(),
        };
        assert_eq!(
            err.to_string(),
            "ingest worker panicked on machine m003: boom"
        );
        let err = IngestError::WorkerPanicked {
            machine: None,
            message: "boom".into(),
        };
        assert_eq!(err.to_string(), "ingest worker panicked: boom");
        let err = IngestError::InvariantViolated {
            message: "shard index 9 out of range (8 shards)".into(),
        };
        assert_eq!(
            err.to_string(),
            "engine invariant violated: shard index 9 out of range (8 shards)"
        );
    }

    #[test]
    fn panic_payloads_stringify() {
        assert_eq!(
            panic_message(Box::new("static text")),
            "static text".to_owned()
        );
        assert_eq!(
            panic_message(Box::new(String::from("owned text"))),
            "owned text".to_owned()
        );
        assert_eq!(
            panic_message(Box::new(17u32)),
            "non-string panic payload".to_owned()
        );
    }
}
