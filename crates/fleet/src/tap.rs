//! The ingestion tap: subscribers that observe batches as they land.
//!
//! Live analytics (streaming clustering, monitoring) must see the event
//! flow *while* ingestion runs, without slowing it down. An [`IngestTap`]
//! is invoked by every ingest worker for every accepted batch, on the
//! worker's own thread and **outside the shard lock** — a tap can therefore
//! never extend a stripe's critical section, only the tapping worker's own
//! wall-clock.
//!
//! [`WriteLanes`] is the tap the streaming clustering facade consumes: one
//! mutex-guarded lane per shard accumulating `(key, timestamp)` mutation
//! pairs. The hot path takes exactly one per-shard lane lock per batch (two
//! workers contend only when they land batches on the same shard at the
//! same moment); the expensive work — key interning, windowing, pair
//! counting — happens at *drain* time, on the analytics thread, amortised
//! over however many events arrived since the last query.

use std::sync::Mutex;

use ocasta_trace::TraceOp;
use ocasta_ttkv::{Key, Timestamp};

/// A subscriber observing every batch the ingestion engine accepts.
///
/// Called from ingest worker threads (hence `Sync`), once per shard batch,
/// after placement and timestamp quantisation — the tap sees exactly what
/// the store sees — and after the shard has applied the batch, so a store
/// snapshot taken after an observation always contains it (the containment
/// the repair tier's catalog/snapshot pin relies on, `DESIGN.md §5.8`).
/// Batches arrive in per-machine stream order but interleave arbitrarily
/// across machines, so order-sensitive consumers must do their own
/// sequencing (the streaming clustering path reorders by timestamp behind
/// a watermark).
pub trait IngestTap: Sync {
    /// Observes one batch routed to `shard`.
    fn on_batch(&self, shard: usize, batch: &[TraceOp]);
}

/// No-op tap (useful as a default and in tests).
impl IngestTap for () {
    fn on_batch(&self, _shard: usize, _batch: &[TraceOp]) {}
}

/// One buffered mutation observation: which key changed, and when.
pub type LaneEvent = (Key, Timestamp);

/// Per-shard mutation accumulators: the analytics-side half of the tap.
///
/// Ingest workers append mutations to the lane of the shard they just
/// wrote (read ops carry no co-modification signal and are skipped); an
/// analytics thread calls [`WriteLanes::drain`] whenever it wants to fold
/// the backlog into its incremental state.
///
/// # Examples
///
/// ```
/// use ocasta_fleet::{IngestTap, WriteLanes};
/// use ocasta_trace::{AccessEvent, TraceOp};
/// use ocasta_ttkv::Timestamp;
///
/// let lanes = WriteLanes::new(4);
/// let op = TraceOp::Mutation(AccessEvent::write(Timestamp::from_secs(1), "app/k", 1));
/// lanes.on_batch(2, std::slice::from_ref(&op));
/// assert_eq!(lanes.buffered(), 1);
/// let drained = lanes.drain();
/// assert_eq!(drained.len(), 1);
/// assert_eq!(drained[0].0.as_str(), "app/k");
/// assert_eq!(lanes.buffered(), 0);
/// ```
#[derive(Debug)]
pub struct WriteLanes {
    lanes: Vec<Mutex<Vec<LaneEvent>>>,
}

impl WriteLanes {
    /// Creates one lane per shard (at least 1).
    pub fn new(shards: usize) -> Self {
        WriteLanes {
            lanes: (0..shards.max(1)).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Number of lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Mutations currently buffered across all lanes (takes each lane lock
    /// briefly; a progress metric, not a synchronisation point).
    pub fn buffered(&self) -> usize {
        self.lanes
            .iter()
            .map(|lane| lane.lock().expect("lane lock poisoned").len())
            .sum()
    }

    /// Takes every buffered mutation, emptying the lanes. Each lane lock is
    /// taken once; ingestion keeps appending to the emptied lanes
    /// concurrently.
    pub fn drain(&self) -> Vec<LaneEvent> {
        let mut out = Vec::new();
        for lane in &self.lanes {
            out.append(&mut lane.lock().expect("lane lock poisoned"));
        }
        out
    }
}

impl IngestTap for WriteLanes {
    fn on_batch(&self, shard: usize, batch: &[TraceOp]) {
        let mut buffered: Vec<LaneEvent> = Vec::new();
        for op in batch {
            if let TraceOp::Mutation(event) = op {
                buffered.push((event.key.clone(), event.timestamp));
            }
        }
        if buffered.is_empty() {
            return;
        }
        let lane = shard % self.lanes.len();
        self.lanes[lane]
            .lock()
            .expect("lane lock poisoned")
            .append(&mut buffered);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocasta_trace::AccessEvent;
    use ocasta_ttkv::Value;

    fn write_op(key: &str, secs: u64) -> TraceOp {
        TraceOp::Mutation(AccessEvent::write(
            Timestamp::from_secs(secs),
            key,
            Value::from(1),
        ))
    }

    #[test]
    fn reads_are_skipped_mutations_accumulate() {
        let lanes = WriteLanes::new(2);
        lanes.on_batch(
            0,
            &[write_op("a/x", 1), TraceOp::Reads(Key::new("a/x"), 99)],
        );
        lanes.on_batch(1, &[write_op("b/y", 2)]);
        assert_eq!(lanes.buffered(), 2);
        let mut keys: Vec<String> = lanes
            .drain()
            .into_iter()
            .map(|(k, _)| k.as_str().to_owned())
            .collect();
        keys.sort();
        assert_eq!(keys, vec!["a/x".to_owned(), "b/y".to_owned()]);
    }

    #[test]
    fn drain_empties_and_ingestion_can_continue() {
        let lanes = WriteLanes::new(1);
        lanes.on_batch(0, &[write_op("a/x", 1)]);
        assert_eq!(lanes.drain().len(), 1);
        assert_eq!(lanes.buffered(), 0);
        lanes.on_batch(0, &[write_op("a/y", 2)]);
        assert_eq!(lanes.drain().len(), 1);
    }

    #[test]
    fn concurrent_taps_lose_nothing() {
        let lanes = WriteLanes::new(4);
        std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let lanes = &lanes;
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let op = write_op(&format!("w{worker}/k{i}"), i);
                        lanes.on_batch((i % 4) as usize, std::slice::from_ref(&op));
                    }
                });
            }
        });
        assert_eq!(lanes.drain().len(), 4 * 200);
    }

    #[test]
    fn out_of_range_shards_wrap_instead_of_panicking() {
        let lanes = WriteLanes::new(2);
        lanes.on_batch(7, &[write_op("a/x", 1)]);
        assert_eq!(lanes.buffered(), 1);
    }
}
