//! Offline fleet-directory inspection: the `ocasta doctor` surface.
//!
//! [`diagnose`] walks a WAL directory **without opening it for writing**
//! (and without sweeping anything — unlike [`crate::Wal::open`], it only
//! reports) and checks everything the layered format promises:
//!
//! * **manifest chain health** — magic line, record syntax, bare-filename
//!   validation, epoch ordering between the manifest and the layer files
//!   it names, horizon monotonicity across the delta chain;
//! * **layer integrity** — every referenced base/delta exists, parses as a
//!   TTKV snapshot, and keeps its collapsed baselines at or below the
//!   recorded horizon (the horizon-consistency invariant replay relies
//!   on). Binary v2 layers additionally get an independent structural
//!   scan — magic, fixed section order, per-section FNV-1a checksums, a
//!   strictly sorted intern table, the mandatory end marker, no trailing
//!   bytes — and a text v1 layer inside a manifest chain is reported as
//!   `layer-format` (informational: it loads read-only and is rewritten
//!   as v2 by the next compaction);
//! * **log integrity** — the framed log's magic and a checksum
//!   verification of every complete frame, distinguishing a *torn tail*
//!   (a crash mid-append; recoverable by design, reported as a warning)
//!   from a checksum mismatch on a complete frame (data corruption, an
//!   error);
//! * **segment lineage** — the base layer's embedded epoch sits strictly
//!   below every delta's (`segment-generation`): generations seal
//!   oldest-first, so an inversion means replay would fold layers out of
//!   order. And an unreferenced layer *two or more* epochs past the
//!   manifest (`segment-orphan`) is an error — a committed rebase failed
//!   to sweep it — while the single-generation orphan a lone crash can
//!   produce stays a warning;
//! * **leftovers** — `*.tmp` files from interrupted commits, stale logs
//!   and unreferenced layers a crashed compaction orphaned (all swept
//!   automatically by the next `Wal::open`; warnings), and the legacy
//!   pre-manifest layout (informational).
//!
//! Findings carry a [`Severity`]: `Error` means replay would fail or
//! serve wrong state (the CLI exits non-zero); `Warning` means something
//! needs (automatic) cleanup or lost a torn tail; `Info` is layout
//! context. A healthy directory produces **no findings at all** — the
//! torn-tail injection corpus in `tests/doctor.rs` asserts both
//! directions: every injected damage class is flagged, and undamaged
//! directories stay silent.

use std::collections::BTreeSet;
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};

use ocasta_ttkv::{Timestamp, Ttkv};

use crate::wal::{WalError, WalReader, MANIFEST_MAGIC, WAL_MAGIC};

/// How bad one finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Layout context worth knowing (e.g. a legacy pre-manifest dir).
    Info,
    /// Recoverable damage or pending cleanup: torn tails, orphans, temp
    /// files. The next `Wal::open` handles these on its own.
    Warning,
    /// Corruption: replay would fail, or serve state the manifest chain
    /// does not vouch for.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "ERROR"),
        }
    }
}

/// One observation about a fleet directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// How bad it is.
    pub severity: Severity,
    /// Stable identifier of the check that fired (e.g. `log-corrupt`).
    pub check: &'static str,
    /// The file (or directory) the finding is about, relative to the
    /// inspected dir.
    pub target: String,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.check, self.target, self.detail
        )
    }
}

/// Everything [`diagnose`] found, plus how much it verified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DoctorReport {
    /// The inspected directory.
    pub dir: PathBuf,
    /// Findings, in discovery order.
    pub findings: Vec<Finding>,
    /// Complete, checksum-verified frames across scanned logs.
    pub frames_verified: u64,
    /// Snapshot layers parsed and validated.
    pub layers_verified: usize,
    /// Checksum-verified binary v2 sections across those layers.
    pub sections_verified: u64,
}

impl DoctorReport {
    /// `true` if any finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Error)
    }

    /// `true` when nothing above [`Severity::Info`] was found.
    pub fn is_healthy(&self) -> bool {
        self.findings.iter().all(|f| f.severity == Severity::Info)
    }

    /// Findings of exactly `severity`.
    pub fn with_severity(&self, severity: Severity) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.severity == severity)
    }

    /// Findings fired by `check`.
    pub fn with_check<'a>(&'a self, check: &'a str) -> impl Iterator<Item = &'a Finding> {
        self.findings.iter().filter(move |f| f.check == check)
    }
}

impl std::fmt::Display for DoctorReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "doctor: {}", self.dir.display())?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        let errors = self.with_severity(Severity::Error).count();
        let warnings = self.with_severity(Severity::Warning).count();
        if self.is_healthy() {
            write!(
                f,
                "healthy: {} frame(s), {} layer(s) and {} section(s) verified",
                self.frames_verified, self.layers_verified, self.sections_verified
            )
        } else {
            write!(
                f,
                "{errors} error(s), {warnings} warning(s); {} frame(s), {} layer(s) and {} \
                 section(s) verified",
                self.frames_verified, self.layers_verified, self.sections_verified
            )
        }
    }
}

/// The manifest as the doctor's independent parser reads it. Unlike the
/// engine's (private) decoder — which rejects the whole file on the first
/// bad record — this one keeps going and reports every problem it can
/// localise, so one corrupt line doesn't hide a missing layer two lines
/// down.
#[derive(Debug, Default)]
struct ParsedManifest {
    epoch: u64,
    horizon: Option<Timestamp>,
    base: Option<String>,
    deltas: Vec<(String, Timestamp)>,
}

/// Inspects a WAL directory offline and reports severity-ranked findings.
///
/// Never writes, never sweeps; safe to run against a directory another
/// process is (not currently) appending to. See the module docs for the
/// full check list.
pub fn diagnose(dir: impl AsRef<Path>) -> DoctorReport {
    let dir = dir.as_ref();
    let mut report = DoctorReport {
        dir: dir.to_path_buf(),
        findings: Vec::new(),
        frames_verified: 0,
        layers_verified: 0,
        sections_verified: 0,
    };

    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .flatten()
            .filter_map(|e| e.file_name().to_str().map(str::to_string))
            .collect::<BTreeSet<String>>(),
        Err(e) => {
            report.findings.push(Finding {
                severity: Severity::Error,
                check: "dir",
                target: dir.display().to_string(),
                detail: format!("not a readable directory: {e}"),
            });
            return report;
        }
    };

    // Temp files first: they exist in exactly one circumstance — a crash
    // between a temp write and its rename — and never invalidate the
    // committed state (the rename *is* the commit point).
    for name in entries.iter().filter(|n| n.ends_with(".tmp")) {
        let detail = if name == "wal.manifest.tmp" {
            "interrupted manifest commit; the committed manifest still governs \
             (swept on next open)"
        } else {
            "interrupted temp write (swept on next open)"
        };
        report.findings.push(Finding {
            severity: Severity::Warning,
            check: "tmp",
            target: name.clone(),
            detail: detail.to_string(),
        });
    }

    let manifest_text = match std::fs::read_to_string(dir.join("wal.manifest")) {
        Ok(text) => Some(text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => {
            report.findings.push(Finding {
                severity: Severity::Error,
                check: "manifest-io",
                target: "wal.manifest".to_string(),
                detail: e.to_string(),
            });
            return report;
        }
    };

    match manifest_text {
        None => diagnose_legacy(dir, &entries, &mut report),
        Some(text) => {
            let manifest = parse_manifest(&text, &mut report);
            if report.has_errors() {
                // A manifest we cannot trust makes every downstream check
                // guesswork; stop at the parse findings.
                return report;
            }
            diagnose_layered(dir, &entries, &manifest, &mut report);
        }
    }
    report
}

/// Parses `wal.manifest` leniently, pushing a finding per problem.
fn parse_manifest(text: &str, report: &mut DoctorReport) -> ParsedManifest {
    let mut manifest = ParsedManifest::default();
    let mut lines = text.lines();
    if lines.next().map(str::trim_end) != Some(MANIFEST_MAGIC) {
        report.findings.push(Finding {
            severity: Severity::Error,
            check: "manifest-magic",
            target: "wal.manifest".to_string(),
            detail: format!("first line is not {MANIFEST_MAGIC:?}"),
        });
        return manifest;
    }
    let mut bad = |check: &'static str, detail: String| {
        report.findings.push(Finding {
            severity: Severity::Error,
            check,
            target: "wal.manifest".to_string(),
            detail,
        });
    };
    let file_name_ok = |token: &str| {
        !(token.is_empty() || token == "." || token == ".." || token.contains(['/', '\\']))
    };
    for (lineno, line) in lines.enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split(' ');
        match tokens.next() {
            Some("epoch") => match tokens.next().and_then(|t| t.parse().ok()) {
                Some(epoch) => manifest.epoch = epoch,
                None => bad("manifest-record", format!("line {}: bad epoch", lineno + 2)),
            },
            Some("horizon") => match tokens.next().and_then(|t| t.parse().ok()) {
                Some(ms) => manifest.horizon = Some(Timestamp::from_millis(ms)),
                None => bad(
                    "manifest-record",
                    format!("line {}: bad horizon", lineno + 2),
                ),
            },
            Some("base") => match tokens.next() {
                Some(name) if file_name_ok(name) => manifest.base = Some(name.to_string()),
                Some(name) => bad(
                    "manifest-layer-name",
                    format!("base {name:?} is not a bare file name"),
                ),
                None => bad(
                    "manifest-record",
                    format!("line {}: missing base name", lineno + 2),
                ),
            },
            Some("delta") => {
                let name = tokens.next();
                let horizon = tokens.next().and_then(|t| t.parse().ok());
                match (name, horizon) {
                    (Some(name), Some(ms)) if file_name_ok(name) => manifest
                        .deltas
                        .push((name.to_string(), Timestamp::from_millis(ms))),
                    (Some(name), Some(_)) => bad(
                        "manifest-layer-name",
                        format!("delta {name:?} is not a bare file name"),
                    ),
                    _ => bad(
                        "manifest-record",
                        format!("line {}: bad delta record", lineno + 2),
                    ),
                }
            }
            Some(other) => bad(
                "manifest-record",
                format!("line {}: unknown record {other:?}", lineno + 2),
            ),
            None => unreachable!("split always yields a token"),
        }
    }
    if manifest.horizon.is_none() && !manifest.deltas.is_empty() {
        bad(
            "manifest-horizon",
            "delta layers require a recorded horizon".to_string(),
        );
    }
    manifest
}

/// The epoch a layer or log filename embeds, if it follows the engine's
/// naming scheme (`base-<e>.ttkv`, `delta-<e>.ttkv`, `wal-<e>.log`).
fn embedded_epoch(name: &str) -> Option<u64> {
    for (prefix, suffix) in [("base-", ".ttkv"), ("delta-", ".ttkv"), ("wal-", ".log")] {
        if let Some(rest) = name.strip_prefix(prefix) {
            if let Some(digits) = rest.strip_suffix(suffix) {
                return digits.parse().ok();
            }
        }
    }
    None
}

/// Checks a committed (layered) directory against its parsed manifest.
fn diagnose_layered(
    dir: &Path,
    entries: &BTreeSet<String>,
    manifest: &ParsedManifest,
    report: &mut DoctorReport,
) {
    let log_name = if manifest.epoch == 0 {
        "wal.log".to_string()
    } else {
        format!("wal-{}.log", manifest.epoch)
    };

    // Epoch ordering: no layer (or log) the manifest references may come
    // from a *later* epoch than the manifest itself — the epoch counter is
    // the commit order — and the delta chain must be oldest-first.
    let mut chain: Vec<&str> = manifest.deltas.iter().map(|(n, _)| n.as_str()).collect();
    chain.extend(manifest.base.as_deref());
    for name in chain {
        if let Some(epoch) = embedded_epoch(name) {
            if epoch > manifest.epoch {
                report.findings.push(Finding {
                    severity: Severity::Error,
                    check: "manifest-epoch",
                    target: name.to_string(),
                    detail: format!(
                        "layer epoch {epoch} is newer than the manifest epoch {}",
                        manifest.epoch
                    ),
                });
            }
        }
    }
    let delta_epochs: Vec<u64> = manifest
        .deltas
        .iter()
        .filter_map(|(n, _)| embedded_epoch(n))
        .collect();
    if delta_epochs.windows(2).any(|w| w[0] >= w[1]) {
        report.findings.push(Finding {
            severity: Severity::Error,
            check: "manifest-epoch",
            target: "wal.manifest".to_string(),
            detail: format!("delta chain epochs are not strictly increasing: {delta_epochs:?}"),
        });
    }

    // Segment-generation monotonicity: the base layer is the *oldest*
    // sealed generation, so its epoch must sit strictly below every
    // delta's. A delta at or below the base means seal order and fold
    // order disagree — replay would absorb layers out of generation.
    if let Some(base_epoch) = manifest.base.as_deref().and_then(embedded_epoch) {
        if let Some(&oldest_delta) = delta_epochs.iter().min() {
            if oldest_delta <= base_epoch {
                report.findings.push(Finding {
                    severity: Severity::Error,
                    check: "segment-generation",
                    target: "wal.manifest".to_string(),
                    detail: format!(
                        "delta epoch {oldest_delta} is not strictly above the base \
                         epoch {base_epoch}"
                    ),
                });
            }
        }
    }

    // Horizon monotonicity: the chain's recorded horizons never decrease,
    // and the manifest horizon is their ceiling (replay re-prunes there).
    let delta_horizons: Vec<Timestamp> = manifest.deltas.iter().map(|(_, h)| *h).collect();
    if delta_horizons.windows(2).any(|w| w[0] > w[1]) {
        report.findings.push(Finding {
            severity: Severity::Error,
            check: "manifest-horizon",
            target: "wal.manifest".to_string(),
            detail: "delta chain horizons decrease along the chain".to_string(),
        });
    }
    if let (Some(ceiling), Some(&deepest)) = (manifest.horizon, delta_horizons.iter().max()) {
        if deepest > ceiling {
            report.findings.push(Finding {
                severity: Severity::Error,
                check: "manifest-horizon",
                target: "wal.manifest".to_string(),
                detail: format!(
                    "a delta records horizon {deepest} beyond the manifest horizon {ceiling}"
                ),
            });
        }
    }

    // Referenced layers: present, parseable, and horizon-consistent.
    let mut referenced: BTreeSet<&str> = BTreeSet::new();
    let layers: Vec<&str> = manifest
        .base
        .as_deref()
        .into_iter()
        .chain(manifest.deltas.iter().map(|(n, _)| n.as_str()))
        .collect();
    for name in layers {
        referenced.insert(name);
        if !entries.contains(name) {
            report.findings.push(Finding {
                severity: Severity::Error,
                check: "layer-missing",
                target: name.to_string(),
                detail: "referenced by the manifest but absent on disk".to_string(),
            });
            continue;
        }
        check_layer(dir, name, manifest.horizon, report);
    }

    // Orphans: layer-like files and logs the committed manifest does not
    // reference. `Wal::open` sweeps all of these; their presence means the
    // last compaction crashed between its commit and its cleanup (or a
    // mid-write layer never got committed).
    for name in entries {
        if name.ends_with(".tmp") || name == "wal.manifest" {
            continue;
        }
        let is_log = name == "wal.log" || (name.starts_with("wal-") && name.ends_with(".log"));
        let is_layer = name == "snapshot.ttkv"
            || ((name.starts_with("base-") || name.starts_with("delta-"))
                && name.ends_with(".ttkv"));
        if is_log && *name != log_name {
            report.findings.push(Finding {
                severity: Severity::Warning,
                check: "log-stale",
                target: name.clone(),
                detail: format!("superseded by {log_name} (swept on next open)"),
            });
        } else if is_layer && !referenced.contains(name.as_str()) {
            // A crash between a compaction's commit and its cleanup
            // orphans at most one generation (manifest epoch + 1). An
            // unreferenced sealed layer two or more generations ahead
            // cannot come from a single crash: a later rebase committed
            // past it without sweeping, so the sweep itself is suspect.
            match embedded_epoch(name) {
                Some(epoch) if epoch >= manifest.epoch + 2 => {
                    report.findings.push(Finding {
                        severity: Severity::Error,
                        check: "segment-orphan",
                        target: name.clone(),
                        detail: format!(
                            "unreferenced layer from epoch {epoch}, two or more \
                             generations past the manifest epoch {}; a committed \
                             rebase failed to sweep it",
                            manifest.epoch
                        ),
                    });
                }
                _ => {
                    report.findings.push(Finding {
                        severity: Severity::Warning,
                        check: "layer-orphan",
                        target: name.clone(),
                        detail: "not referenced by the manifest (swept on next open)".to_string(),
                    });
                }
            }
        }
    }

    // The current log, if it exists (a fresh post-compaction epoch has
    // none until the next append — that is healthy).
    if entries.contains(&log_name) {
        check_log(dir, &log_name, report);
    }
}

/// Checks a pre-manifest (legacy PR-4 layout) directory.
fn diagnose_legacy(dir: &Path, entries: &BTreeSet<String>, report: &mut DoctorReport) {
    let has_snapshot = entries.contains("snapshot.ttkv");
    let has_log = entries.contains("wal.log");
    if has_snapshot || has_log {
        report.findings.push(Finding {
            severity: Severity::Info,
            check: "legacy-layout",
            target: ".".to_string(),
            detail: "pre-manifest layout (bare snapshot + log); migrates on the first \
                     pruned compaction"
                .to_string(),
        });
    }
    if has_snapshot {
        check_layer(dir, "snapshot.ttkv", None, report);
    }
    if has_log {
        check_log(dir, "wal.log", report);
    }
    // Without a manifest, epoch-named files are unreachable by replay.
    for name in entries {
        if name.ends_with(".tmp") {
            continue;
        }
        if (name.starts_with("base-") || name.starts_with("delta-")) && name.ends_with(".ttkv") {
            report.findings.push(Finding {
                severity: Severity::Warning,
                check: "layer-orphan",
                target: name.clone(),
                detail: "no manifest references this layer (swept once one commits)".to_string(),
            });
        } else if name.starts_with("wal-") && name.ends_with(".log") {
            report.findings.push(Finding {
                severity: Severity::Warning,
                check: "log-stale",
                target: name.clone(),
                detail: "epoch-named log without a manifest (swept once one commits)".to_string(),
            });
        }
    }
}

/// Parses one snapshot layer and validates its format and horizon
/// consistency.
fn check_layer(dir: &Path, name: &str, horizon: Option<Timestamp>, report: &mut DoctorReport) {
    let bytes = match std::fs::read(dir.join(name)) {
        Ok(bytes) => bytes,
        Err(e) => {
            report.findings.push(Finding {
                severity: Severity::Error,
                check: "layer-corrupt",
                target: name.to_string(),
                detail: format!("snapshot does not parse: {e}"),
            });
            return;
        }
    };
    if bytes.starts_with(ocasta_ttkv::BINARY_MAGIC) {
        // Independent structural scan (double-entry bookkeeping, like the
        // manifest parser): frame walk, checksums, intern table, end marker.
        match scan_v2_segment(&bytes) {
            Ok(sections) => report.sections_verified += sections,
            Err(detail) => {
                report.findings.push(Finding {
                    severity: Severity::Error,
                    check: "layer-corrupt",
                    target: name.to_string(),
                    detail,
                });
                return;
            }
        }
    } else if name != "snapshot.ttkv" {
        // A text v1 layer inside a manifest chain predates the binary
        // format; it loads read-only and the next compaction rewrites it.
        report.findings.push(Finding {
            severity: Severity::Info,
            check: "layer-format",
            target: name.to_string(),
            detail: "text v1 layer; rewritten as binary v2 by the next compaction".to_string(),
        });
    }
    let store = match Ttkv::load(bytes.as_slice()) {
        Ok(store) => store,
        Err(e) => {
            report.findings.push(Finding {
                severity: Severity::Error,
                check: "layer-corrupt",
                target: name.to_string(),
                detail: format!("snapshot does not parse: {e}"),
            });
            return;
        }
    };
    report.layers_verified += 1;
    // Horizon-vs-baseline consistency: pruning collapses history into a
    // baseline at or below the recorded horizon, so a baseline *above*
    // the manifest horizon means the chain's metadata and data disagree
    // (replay would re-prune at the wrong depth).
    let newest_baseline = store
        .iter()
        .filter_map(|(_, record)| record.baseline().map(|b| b.timestamp))
        .max();
    if let Some(newest) = newest_baseline {
        match horizon {
            Some(ceiling) if newest <= ceiling => {}
            Some(ceiling) => report.findings.push(Finding {
                severity: Severity::Error,
                check: "layer-horizon",
                target: name.to_string(),
                detail: format!("baseline at {newest} is beyond the recorded horizon {ceiling}"),
            }),
            // Legacy snapshots carry no horizon metadata at all; their
            // baselines are covered by the migration floor, not by us.
            None if name == "snapshot.ttkv" => {}
            None => report.findings.push(Finding {
                severity: Severity::Error,
                check: "layer-horizon",
                target: name.to_string(),
                detail: format!("baseline at {newest} but the manifest records no horizon"),
            }),
        }
    }
}

/// Structural scan of an `ocasta-ttkv binary v2` segment, independent of
/// the ttkv decoder: magic, the fixed `'K'`/`'R'`/`'E'` section order,
/// per-section FNV-1a checksums, a well-formed strictly-sorted intern
/// table, an empty end marker, and nothing after it. Returns the number of
/// checksum-verified sections.
fn scan_v2_segment(bytes: &[u8]) -> Result<u64, String> {
    /// Reads one LEB128 varint out of `buf` at `*pos` (bounded at 10 bytes).
    fn varint(buf: &[u8], pos: &mut usize) -> Result<u64, String> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = *buf
                .get(*pos)
                .ok_or_else(|| format!("truncated varint at byte {pos}", pos = *pos))?;
            *pos += 1;
            if shift >= 64 {
                return Err(format!("varint overflow at byte {pos}", pos = *pos));
            }
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    let mut pos = ocasta_ttkv::BINARY_MAGIC.len();
    let mut sections = 0u64;
    for expected in [b'K', b'R', b'E'] {
        let header = bytes
            .get(pos..pos + 9)
            .ok_or_else(|| format!("truncated section header at byte {pos}"))?;
        let tag = header[0];
        if tag != expected {
            return Err(format!(
                "expected section '{}' at byte {pos}, found 0x{tag:02x}",
                expected as char
            ));
        }
        let len = u32::from_le_bytes([header[1], header[2], header[3], header[4]]) as usize;
        let crc = u32::from_le_bytes([header[5], header[6], header[7], header[8]]);
        let payload_at = pos + 9;
        let payload = bytes.get(payload_at..payload_at + len).ok_or_else(|| {
            format!(
                "truncated section '{}' payload at byte {payload_at}",
                tag as char
            )
        })?;
        let actual = crate::hash::fnv1a_32(payload);
        if actual != crc {
            return Err(format!(
                "section '{}' checksum mismatch at byte {payload_at}: stored {crc:08x}, \
                 computed {actual:08x}",
                tag as char
            ));
        }
        match tag {
            b'K' => {
                // Intern-table well-formedness: every id must later resolve,
                // so the table itself has to be complete and sorted.
                let mut at = 0usize;
                let count = varint(payload, &mut at)?;
                let mut prev: Option<&str> = None;
                for _ in 0..count {
                    let len = varint(payload, &mut at)? as usize;
                    let raw = payload
                        .get(at..at + len)
                        .ok_or_else(|| format!("truncated intern key at byte {at}"))?;
                    at += len;
                    let name = std::str::from_utf8(raw)
                        .map_err(|e| format!("intern key at byte {at} not UTF-8: {e}"))?;
                    if prev.is_some_and(|p| name <= p) {
                        return Err(format!("intern table not strictly sorted at byte {at}"));
                    }
                    prev = Some(name);
                }
                if at != payload.len() {
                    return Err(format!(
                        "{} trailing byte(s) in intern table",
                        payload.len() - at
                    ));
                }
            }
            b'E' if len != 0 => return Err("end marker is not empty".to_string()),
            _ => {}
        }
        pos = payload_at + len;
        sections += 1;
    }
    if pos != bytes.len() {
        return Err(format!(
            "{} trailing byte(s) after end marker",
            bytes.len() - pos
        ));
    }
    Ok(sections)
}

/// Scans one framed log end to end, verifying every checksum.
fn check_log(dir: &Path, name: &str, report: &mut DoctorReport) {
    let path = dir.join(name);
    let len = std::fs::metadata(&path).map_or(0, |m| m.len());
    if len < WAL_MAGIC.len() as u64 {
        // Torn during the very first write (or never written): nothing is
        // recoverable, and `Wal::open` resets the file. Not corruption.
        report.findings.push(Finding {
            severity: Severity::Warning,
            check: "log-torn",
            target: name.to_string(),
            detail: format!("log is {len} byte(s), shorter than the magic; reset on next open"),
        });
        return;
    }
    let file = match File::open(&path) {
        Ok(file) => file,
        Err(e) => {
            report.findings.push(Finding {
                severity: Severity::Error,
                check: "log-io",
                target: name.to_string(),
                detail: e.to_string(),
            });
            return;
        }
    };
    let mut reader = match WalReader::new(BufReader::new(file)) {
        Ok(reader) => reader,
        Err(_) => {
            report.findings.push(Finding {
                severity: Severity::Error,
                check: "log-magic",
                target: name.to_string(),
                detail: "not an OCWAL1 stream".to_string(),
            });
            return;
        }
    };
    loop {
        match reader.next_batch() {
            Ok(Some(_)) => {}
            Ok(None) => break,
            Err(WalError::Corrupt { frame }) => {
                report.findings.push(Finding {
                    severity: Severity::Error,
                    check: "log-corrupt",
                    target: name.to_string(),
                    detail: format!("frame {frame} checksum mismatch"),
                });
                report.frames_verified += reader.frames_read() as u64;
                return;
            }
            Err(e) => {
                report.findings.push(Finding {
                    severity: Severity::Error,
                    check: "log-corrupt",
                    target: name.to_string(),
                    detail: e.to_string(),
                });
                report.frames_verified += reader.frames_read() as u64;
                return;
            }
        }
    }
    report.frames_verified += reader.frames_read() as u64;
    if reader.torn_tail() {
        report.findings.push(Finding {
            severity: Severity::Warning,
            check: "log-torn",
            target: name.to_string(),
            detail: format!(
                "torn tail after {} clean byte(s) / {} frame(s); truncated on next open",
                reader.clean_bytes(),
                reader.frames_read()
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_directory_is_an_error() {
        let report = diagnose("/definitely/not/a/real/fleet/dir");
        assert!(report.has_errors());
        assert_eq!(report.findings[0].check, "dir");
    }

    #[test]
    fn empty_directory_is_healthy() {
        let dir = std::env::temp_dir().join(format!("ocasta-doctor-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let report = diagnose(&dir);
        assert!(report.is_healthy(), "{report}");
        assert!(report.findings.is_empty(), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn epoch_names_parse() {
        assert_eq!(embedded_epoch("base-12.ttkv"), Some(12));
        assert_eq!(embedded_epoch("delta-3.ttkv"), Some(3));
        assert_eq!(embedded_epoch("wal-7.log"), Some(7));
        assert_eq!(embedded_epoch("snapshot.ttkv"), None);
        assert_eq!(embedded_epoch("base-x.ttkv"), None);
    }
}
