//! The lock-striped sharded TTKV that concurrent ingestion writes into.
//!
//! Keys are striped across `N` shards by a stable 64-bit FNV-1a hash of the
//! key name, so every mutation of one key always lands in the same shard
//! and per-key history order is a single-shard concern. Each shard is a
//! [`TtkvBuilder`] behind its own mutex: producers append whole batches
//! under the lock (an `O(batch)` memcpy-ish append, not a per-event tree
//! insertion), and the expensive sort + store construction happens once per
//! shard at [`ShardedTtkv::into_ttkv`] time — in parallel across shards.

use std::sync::Mutex;
use std::time::Instant;

use ocasta_trace::TraceOp;
use ocasta_ttkv::{PruneStats, Timestamp, Ttkv, TtkvBuilder};

use crate::metrics::FleetMetrics;

/// Stable key→shard hash (FNV-1a, 64-bit; see [`crate::hash`]).
pub fn key_hash(key: &str) -> u64 {
    crate::hash::fnv1a_64(key.as_bytes())
}

/// A hash-striped set of TTKV shards accepting concurrent batched appends.
///
/// # Examples
///
/// ```
/// use ocasta_fleet::ShardedTtkv;
/// use ocasta_trace::{AccessEvent, TraceOp};
/// use ocasta_ttkv::{Timestamp, Value};
///
/// let sharded = ShardedTtkv::new(4);
/// let op = TraceOp::Mutation(AccessEvent::write(
///     Timestamp::from_secs(1), "app/k", Value::from(1),
/// ));
/// let shard = sharded.shard_of(op.key().as_str());
/// sharded.append_batch(shard, vec![op]);
/// let store = sharded.into_ttkv();
/// assert_eq!(store.len(), 1);
/// ```
#[derive(Debug)]
pub struct ShardedTtkv {
    shards: Vec<Mutex<TtkvBuilder>>,
}

impl ShardedTtkv {
    /// Creates `shards` empty shards (at least 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedTtkv {
            shards: (0..shards)
                .map(|_| Mutex::new(TtkvBuilder::new()))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index a key stripes to.
    pub fn shard_of(&self, key: &str) -> usize {
        (key_hash(key) % self.shards.len() as u64) as usize
    }

    /// Appends a batch of ops to one shard. Every op in the batch must
    /// stripe to `shard` (callers batch per shard; debug builds check).
    pub fn append_batch(&self, shard: usize, batch: Vec<TraceOp>) {
        self.append_batch_with(shard, batch, |_| {});
    }

    /// Like [`ShardedTtkv::append_batch`], invoking `before_apply` on the
    /// batch **under the shard lock**, before it is buffered. This is the
    /// write-ahead hook: because the callback and the apply happen inside
    /// one critical section, an observer fed by the callback (the WAL lane)
    /// sees same-shard batches in exactly the order the shard applies them
    /// — which is what makes WAL replay reproduce the store even when
    /// same-key timestamp ties arrive from different workers.
    pub fn append_batch_with<F: FnOnce(&[TraceOp])>(
        &self,
        shard: usize,
        batch: Vec<TraceOp>,
        before_apply: F,
    ) {
        self.append_batch_observed(shard, batch, before_apply, None);
    }

    /// [`ShardedTtkv::append_batch_with`] with optional instrumentation:
    /// when `metrics` is set, the stripe-lock wait and the in-lock apply
    /// (WAL send included) are timed into the fleet histograms. Timing is
    /// observation-only — the lock discipline and apply order are
    /// identical with metrics on or off.
    pub(crate) fn append_batch_observed<F: FnOnce(&[TraceOp])>(
        &self,
        shard: usize,
        batch: Vec<TraceOp>,
        before_apply: F,
        metrics: Option<&FleetMetrics>,
    ) {
        debug_assert!(batch
            .iter()
            .all(|op| self.shard_of(op.key().as_str()) == shard));
        let wait_started = metrics.map(|_| Instant::now());
        let mut builder = self.shards[shard].lock().expect("shard lock poisoned");
        let apply_started = metrics.map(|m| {
            m.lock_wait
                .record_duration(wait_started.expect("paired with metrics").elapsed());
            Instant::now()
        });
        before_apply(&batch);
        let ops = batch.len() as u64;
        for op in batch {
            op.buffer(&mut builder);
        }
        drop(builder);
        if let (Some(m), Some(started)) = (metrics, apply_started) {
            m.batch_apply.record_duration(started.elapsed());
            m.ingest_batches.inc();
            m.ingest_ops.add(ops);
        }
    }

    /// Appends an un-routed batch, striping each op to its shard.
    pub fn append_routed(&self, batch: Vec<TraceOp>) {
        // Group locally first so each shard lock is taken at most once.
        let mut per_shard: Vec<Vec<TraceOp>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for op in batch {
            per_shard[self.shard_of(op.key().as_str())].push(op);
        }
        for (shard, ops) in per_shard.into_iter().enumerate() {
            if !ops.is_empty() {
                self.append_batch(shard, ops);
            }
        }
    }

    /// Buffered mutation count across all shards (for progress reporting;
    /// takes each shard lock briefly).
    pub fn buffered_mutations(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned").len())
            .sum()
    }

    /// The latest applied-or-buffered mutation timestamp across all shards
    /// — the ingest frontier a retention sweep measures its horizon
    /// against. Takes each shard lock briefly; the answer can lag appends
    /// that land while later shards are read, which only makes a horizon
    /// computed from it more conservative.
    pub fn last_mutation_time(&self) -> Option<Timestamp> {
        self.shards
            .iter()
            .filter_map(|s| s.lock().expect("shard lock poisoned").last_time())
            .max()
    }

    /// Compacts every shard's history older than `horizon`, returning what
    /// the sweep reclaimed (see [`ocasta_ttkv::Ttkv::prune_before`]).
    ///
    /// Each shard is pruned **atomically under its own stripe lock** — the
    /// same per-shard-atomic discipline as [`ShardedTtkv::snapshot_store`]
    /// — and **incrementally**, via [`TtkvBuilder::prune_before`]: the
    /// stripe lock is held for O(ops appended since the previous sweep +
    /// versions reclaimed in that shard), not O(the shard's live state).
    /// An earlier design took the builder out of its slot, built the whole
    /// store, pruned it, and reinstalled it — an O(live) stall per shard
    /// per sweep, and the reason sweeps had to be paced conservatively;
    /// the in-place path is equal to that rebuild by construction
    /// (property-tested across the crates, `DESIGN.md §5.10`). Concurrent
    /// appends still either land entirely before or entirely after the
    /// prune, so per-key history is never torn, and shards are swept one
    /// after another — a rolling cut of the fleet, exactly like a
    /// snapshot.
    ///
    /// Callers coordinating with pinned readers must clamp `horizon`
    /// through an [`ocasta_ttkv::HorizonGuard`] first; the engine's
    /// retention sweeper does.
    pub fn prune_before(&self, horizon: Timestamp) -> PruneStats {
        let mut stats = PruneStats::default();
        for shard in &self.shards {
            let mut slot = shard.lock().expect("shard lock poisoned");
            stats.absorb(slot.prune_before(horizon));
        }
        stats
    }

    /// Collects dead counter-only shells from every shard, returning how
    /// many keys were removed (see [`ocasta_ttkv::Ttkv::gc_dead_shells`]).
    ///
    /// Each shard is collected atomically under its own stripe lock, one
    /// after another. The retention sweeper calls this **only on its final
    /// sweep**: while ingestion can still deliver a straggler rewrite of a
    /// pruned key, the shell's counters are that key's only memory of its
    /// lifetime modification count.
    pub fn gc_dead_shells(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned").gc_dead_shells())
            .sum()
    }

    /// Takes a read-only snapshot of the live store **while ingestion
    /// continues**: each shard's buffered state is cloned under its lock (an
    /// O(buffered) copy — the expensive sort runs outside, via
    /// [`ocasta_ttkv::TtkvBuilder::build_snapshot`] semantics), the clones
    /// are built in parallel, and the disjoint shard stores merge into one
    /// consistent [`Ttkv`].
    ///
    /// Consistency: every key's full applied history is either entirely in
    /// the snapshot or entirely absent at its tail — a key never stripes
    /// across shards, so per-key history can never be torn. Shards are
    /// locked one after another, not atomically, so the snapshot is a
    /// *per-shard-atomic* cut of the fleet: exactly the guarantee a repair
    /// session pins (see `DESIGN.md §5.8`).
    pub fn snapshot_store(&self) -> Ttkv {
        let builders: Vec<TtkvBuilder> = self
            .shards
            .iter()
            .map(|m| m.lock().expect("shard lock poisoned").clone())
            .collect();
        let stores = std::thread::scope(|scope| {
            let handles: Vec<_> = builders
                .into_iter()
                .map(|builder| scope.spawn(move || builder.build()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard build panicked"))
                .collect::<Vec<Ttkv>>()
        });
        Ttkv::from_shards(stores)
    }

    /// Builds every shard's store (in parallel) and merges them into one
    /// consistent [`Ttkv`]. Shard key sets are disjoint by construction, so
    /// the merge is a pure record move.
    pub fn into_ttkv(self) -> Ttkv {
        let shards: Vec<TtkvBuilder> = self
            .shards
            .into_iter()
            .map(|m| m.into_inner().expect("shard lock poisoned"))
            .collect();
        let stores = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .map(|builder| scope.spawn(move || builder.build()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard build panicked"))
                .collect::<Vec<Ttkv>>()
        });
        Ttkv::from_shards(stores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocasta_trace::AccessEvent;
    use ocasta_ttkv::{Timestamp, Value};

    fn write_op(key: &str, t: u64, v: i64) -> TraceOp {
        TraceOp::Mutation(AccessEvent::write(
            Timestamp::from_millis(t),
            key,
            Value::from(v),
        ))
    }

    #[test]
    fn hash_is_stable_and_spreads() {
        assert_eq!(key_hash("app/k"), key_hash("app/k"));
        let sharded = ShardedTtkv::new(8);
        let hit: std::collections::BTreeSet<usize> = (0..200)
            .map(|i| sharded.shard_of(&format!("app/key{i}")))
            .collect();
        assert!(
            hit.len() >= 6,
            "200 keys should touch most of 8 shards: {hit:?}"
        );
    }

    #[test]
    fn routed_append_equals_unsharded_build() {
        let ops: Vec<TraceOp> = (0..100)
            .map(|i| write_op(&format!("app/k{}", i % 17), 1_000 + i, i as i64))
            .chain(std::iter::once(TraceOp::Reads(
                ocasta_ttkv::Key::new("app/k0"),
                42,
            )))
            .collect();
        let sharded = ShardedTtkv::new(5);
        sharded.append_routed(ops.clone());
        let merged = sharded.into_ttkv();

        let mut direct = Ttkv::new();
        for op in ops {
            op.apply(&mut direct, ocasta_ttkv::TimePrecision::Milliseconds);
        }
        assert_eq!(merged, direct);
    }

    #[test]
    fn concurrent_appends_from_many_threads() {
        let sharded = ShardedTtkv::new(4);
        std::thread::scope(|scope| {
            for worker in 0..8u64 {
                let sharded = &sharded;
                scope.spawn(move || {
                    // Each worker owns a disjoint key space.
                    let ops: Vec<TraceOp> = (0..500)
                        .map(|i| write_op(&format!("w{worker}/k{}", i % 9), i, i as i64))
                        .collect();
                    sharded.append_routed(ops);
                });
            }
        });
        let store = sharded.into_ttkv();
        assert_eq!(store.stats().writes, 8 * 500);
        assert_eq!(store.len(), 8 * 9);
    }

    #[test]
    fn snapshot_is_consistent_under_concurrent_appends() {
        let sharded = ShardedTtkv::new(4);
        // Writers keep appending whole per-key batches; snapshots taken
        // mid-flight must only ever see complete batches per key.
        let snapshots = std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let sharded = &sharded;
                scope.spawn(move || {
                    for round in 0..50u64 {
                        let ops: Vec<TraceOp> = (0..4)
                            .map(|i| write_op(&format!("w{worker}/k"), round * 10 + i, i as i64))
                            .collect();
                        sharded.append_routed(ops);
                    }
                });
            }
            let mut snapshots = Vec::new();
            for _ in 0..5 {
                snapshots.push(sharded.snapshot_store());
            }
            snapshots
        });
        for snap in &snapshots {
            // Each appended batch lands atomically in its key's shard, so
            // every observed per-key write count is a multiple of 4.
            for (_, record) in snap.iter() {
                assert_eq!(record.writes % 4, 0, "torn batch visible");
            }
        }
        // After the writers finish, the snapshot equals the final merge.
        let last = sharded.snapshot_store();
        assert_eq!(last, sharded.into_ttkv());
        assert_eq!(last.stats().writes, 4 * 50 * 4);
    }

    #[test]
    fn prune_bounds_live_shards_and_preserves_post_horizon_queries() {
        let sharded = ShardedTtkv::new(4);
        let ops: Vec<TraceOp> = (0..400)
            .map(|i| write_op(&format!("app/k{}", i % 8), i * 10, i as i64))
            .collect();
        sharded.append_routed(ops.clone());
        let reference = sharded.snapshot_store();
        assert_eq!(
            sharded.last_mutation_time(),
            Some(Timestamp::from_millis(3_990))
        );

        let horizon = Timestamp::from_millis(2_000);
        let stats = sharded.prune_before(horizon);
        assert!(stats.pruned_versions > 0);
        assert!(stats.reclaimed_bytes > 0);

        let pruned = sharded.snapshot_store();
        assert!(pruned.approx_bytes() < reference.approx_bytes());
        for key in reference.keys() {
            for probe in [2_000, 2_005, 3_990] {
                let t = Timestamp::from_millis(probe);
                assert_eq!(
                    pruned.value_at(key.as_str(), t),
                    reference.value_at(key.as_str(), t),
                    "{key} at {t}"
                );
            }
        }
        // Lifetime counters survive the sweep.
        assert_eq!(pruned.stats().writes, reference.stats().writes);

        // The store keeps ingesting after the sweep.
        sharded.append_routed(vec![write_op("app/k0", 9_000, 999)]);
        let after = sharded.into_ttkv();
        assert_eq!(
            after.current("app/k0"),
            Some(&ocasta_ttkv::Value::from(999))
        );
    }

    #[test]
    fn prune_races_concurrent_appends_without_tearing() {
        let sharded = ShardedTtkv::new(4);
        let total_writes = std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let sharded = &sharded;
                scope.spawn(move || {
                    for round in 0..60u64 {
                        let ops: Vec<TraceOp> = (0..4)
                            .map(|i| write_op(&format!("w{worker}/k"), round * 100 + i, i as i64))
                            .collect();
                        sharded.append_routed(ops);
                    }
                });
            }
            let sweeper = scope.spawn(|| {
                for sweep in 1..=20u64 {
                    sharded.prune_before(Timestamp::from_millis(sweep * 250));
                }
            });
            sweeper.join().expect("sweeper panicked");
            4u64 * 60 * 4
        });
        // One deterministic sweep after the race settles: staged sweeps
        // (however they interleaved with the appends) plus this final
        // prune must equal one direct prune of the complete history — the
        // incremental path inherits the staged-sweep property exactly.
        let final_horizon = Timestamp::from_millis(6_000);
        sharded.prune_before(final_horizon);
        let store = sharded.into_ttkv();
        // Counters are prune-invariant, so every concurrent write is
        // accounted for exactly once regardless of sweep interleaving.
        assert_eq!(store.stats().writes, total_writes);
        for (_, record) in store.iter() {
            assert_eq!(record.writes % 4, 0, "torn batch visible");
        }
        let mut direct = Ttkv::new();
        for worker in 0..4u64 {
            for round in 0..60u64 {
                for i in 0..4 {
                    direct.write(
                        Timestamp::from_millis(round * 100 + i),
                        format!("w{worker}/k"),
                        Value::from(i as i64),
                    );
                }
            }
        }
        direct.prune_before(final_horizon);
        assert_eq!(
            store, direct,
            "staged concurrent sweeps == one direct prune"
        );
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let sharded = ShardedTtkv::new(0);
        assert_eq!(sharded.shard_count(), 1);
        assert_eq!(sharded.shard_of("anything"), 0);
    }
}
