//! The lock-striped sharded TTKV that concurrent ingestion writes into.
//!
//! Keys are striped across `N` shards by a stable 64-bit FNV-1a hash of the
//! key name, so every mutation of one key always lands in the same shard
//! and per-key history order is a single-shard concern. Each shard is a
//! stack of **immutable sealed segments** plus a small **mutable tail**
//! behind one mutex: producers append whole batches into the tail under
//! the lock (an `O(batch)` memcpy-ish append, not a per-event tree
//! insertion), and when the tail exceeds the seal threshold it is frozen
//! into an `Arc`-shared [`Ttkv`] segment. Because segments never mutate
//! after sealing, a snapshot is an **epoch pin** — [`ShardedTtkv::pin_epoch`]
//! grabs segment `Arc`s plus a tail clone in O(shards + tails), and the
//! expensive fold to a queryable store happens outside every lock, in
//! parallel across shards ([`EpochSnapshot::materialize`]).
//!
//! Retention sweeps prune sealed segments **copy-on-write**: a rewritten
//! segment replaces its `Arc` slot, so a pinned epoch keeps the pre-sweep
//! generation alive until the pin drops. The fold that merges segments is
//! the same demote-baselines-then-fold-oldest→newest recipe the WAL layer
//! chain proved exact ([`Ttkv::fold_layers`], `DESIGN.md §5.10`, `§5.13`).

use std::sync::{Arc, Mutex, MutexGuard};

use ocasta_obs::Stopwatch;
use ocasta_trace::TraceOp;
use ocasta_ttkv::{PruneStats, Timestamp, Ttkv, TtkvBuilder};

use crate::metrics::FleetMetrics;

/// Default mutable-tail size (buffered mutations) at which a shard seals
/// its tail into an immutable segment.
pub const DEFAULT_SEAL_THRESHOLD: usize = 4096;

/// Stable key→shard hash (FNV-1a, 64-bit; see [`crate::hash`]).
pub fn key_hash(key: &str) -> u64 {
    crate::hash::fnv1a_64(key.as_bytes())
}

/// An immutable sealed segment: a built [`Ttkv`] plus the metadata the
/// sweep and fold paths steer by. Never mutated after construction — a
/// sweep that needs to prune one builds a replacement and swaps the `Arc`.
#[derive(Debug, Clone)]
struct Segment {
    /// The sealed store (history + any baselines earlier prunes left).
    store: Ttkv,
    /// Earliest *history* timestamp in the segment (baselines excluded);
    /// `None` once a sweep has collapsed every version into baselines.
    first: Option<Timestamp>,
    /// The horizon this segment was last pruned at, if any. Segments up to
    /// the last pruned index fold via demote-then-re-prune; later segments
    /// (sealed after the last sweep) absorb verbatim.
    pruned_to: Option<Timestamp>,
}

impl Segment {
    fn seal(store: Ttkv, pruned_to: Option<Timestamp>) -> Arc<Segment> {
        Arc::new(Segment {
            first: store.first_mutation_time(),
            store,
            pruned_to,
        })
    }
}

/// One shard: sealed segments (oldest first, in seal order), the mutable
/// tail, and the bookkeeping that makes epoch pins and sweeps exact.
#[derive(Debug)]
struct ShardState {
    segments: Vec<Arc<Segment>>,
    tail: TtkvBuilder,
    /// Standing sweep horizon: the max horizon any sweep applied to this
    /// shard. Monotone, which is what lets the fold re-prune once at the
    /// standing horizon instead of replaying every staged sweep.
    horizon: Option<Timestamp>,
    /// Bumped on every structural change (seal, COW rewrite, rebase), so
    /// doctor-style invariant checks can assert monotonicity.
    generation: u64,
    /// Max mutation timestamp ever sealed out of the tail (the tail's own
    /// frontier is tracked by the builder).
    last_time: Option<Timestamp>,
}

impl ShardState {
    fn new() -> Self {
        ShardState {
            segments: Vec::new(),
            tail: TtkvBuilder::new(),
            horizon: None,
            generation: 0,
            last_time: None,
        }
    }

    /// Freezes the tail (if non-empty) into a sealed segment.
    fn seal_tail(&mut self) {
        if self.tail.is_empty() {
            return;
        }
        if let Some(t) = self.tail.last_time() {
            self.last_time = Some(self.last_time.map_or(t, |prev| prev.max(t)));
        }
        let store = std::mem::replace(&mut self.tail, TtkvBuilder::new()).build();
        self.segments.push(Segment::seal(store, None));
        self.generation += 1;
    }

    /// One retention sweep: seal the tail, COW-prune every segment with
    /// history older than the effective horizon, coalesce fully-collapsed
    /// neighbours. Returns (reclaim stats, segments rewritten).
    fn sweep(&mut self, requested: Timestamp) -> (PruneStats, u64) {
        // The shard horizon is monotone: a retreating request re-applies
        // the standing horizon, which keeps the single-re-prune fold exact.
        let horizon = match self.horizon {
            Some(h) if h > requested => h,
            _ => requested,
        };
        self.seal_tail();
        let mut stats = PruneStats::default();
        let mut rewritten = 0u64;
        for slot in &mut self.segments {
            if slot.first.is_some_and(|f| f < horizon) {
                let mut store = slot.store.clone();
                stats.absorb(store.prune_before(horizon));
                *slot = Segment::seal(store, Some(horizon));
                rewritten += 1;
            }
        }
        self.coalesce_collapsed(horizon);
        self.horizon = Some(horizon);
        if rewritten > 0 {
            self.generation += 1;
        }
        (stats, rewritten)
    }

    /// Merges adjacent runs of fully-collapsed (baseline-only) segments so
    /// repeated seal/sweep cycles leave O(live segments) husks, not one per
    /// seal ever performed. Order is preserved, so the fold is unaffected.
    fn coalesce_collapsed(&mut self, horizon: Timestamp) {
        fn flush(out: &mut Vec<Arc<Segment>>, run: &mut Vec<Arc<Segment>>, horizon: Timestamp) {
            if run.len() > 1 {
                let store = Ttkv::fold_layers(run.drain(..).map(segment_store), Some(horizon));
                out.push(Segment::seal(store, Some(horizon)));
            } else if let Some(only) = run.pop() {
                out.push(only);
            }
        }
        let mut out: Vec<Arc<Segment>> = Vec::with_capacity(self.segments.len());
        let mut run: Vec<Arc<Segment>> = Vec::new();
        for seg in self.segments.drain(..) {
            if seg.first.is_none() && seg.pruned_to.is_some() {
                run.push(seg);
            } else {
                flush(&mut out, &mut run, horizon);
                out.push(seg);
            }
        }
        flush(&mut out, &mut run, horizon);
        self.segments = out;
    }

    /// Folds everything into one store, collects dead shells, and rebases
    /// the shard onto a single segment. Returns removed-shell count.
    fn gc_rebase(&mut self) -> u64 {
        self.seal_tail();
        if self.segments.is_empty() {
            return 0;
        }
        let segments = std::mem::take(&mut self.segments);
        let last_pruned = segments.iter().rposition(|s| s.pruned_to.is_some());
        let layers: Vec<Ttkv> = segments.into_iter().map(segment_store).collect();
        let mut store = fold_shard(layers, last_pruned, self.horizon, TtkvBuilder::new());
        let removed = store.gc_dead_shells();
        // The rebased segment may interleave pruned history with straggler
        // writes that arrived after the last sweep, so it is NOT marked
        // pruned: it folds verbatim as the base layer (exactly the shape a
        // sequential store has after prune + further appends) until the
        // next sweep re-prunes it.
        self.segments.push(Segment::seal(store, None));
        self.generation += 1;
        removed
    }

    /// Consumes the shard into its folded store.
    fn into_store(self) -> Ttkv {
        let ShardState {
            segments,
            tail,
            horizon,
            ..
        } = self;
        let last_pruned = segments.iter().rposition(|s| s.pruned_to.is_some());
        let layers: Vec<Ttkv> = segments.into_iter().map(segment_store).collect();
        fold_shard(layers, last_pruned, horizon, tail)
    }
}

/// Locks a shard stripe, propagating the panic if the stripe is
/// poisoned: poison means a worker died mid-append, so the tail may hold
/// a torn batch, and reading it would break per-key batch atomicity. On
/// engine worker threads this panic is caught by the worker harness's
/// `catch_unwind` and recorded as a cascade of the root failure
/// (`DESIGN.md §5.12`); accepting the poison instead would silently
/// expose torn history.
fn lock_stripe(stripe: &Mutex<ShardState>) -> MutexGuard<'_, ShardState> {
    // lint:allow(panic-in-worker-path): a poisoned stripe implies a possibly-torn tail batch — propagating the panic (caught and recorded by the engine's worker harness) is safer than exposing torn per-key history
    stripe.lock().expect("stripe poisoned by a worker panic")
}

/// Unwraps a segment's store without cloning when this was the last `Arc`.
fn segment_store(seg: Arc<Segment>) -> Ttkv {
    match Arc::try_unwrap(seg) {
        Ok(seg) => seg.store,
        Err(shared) => shared.store.clone(),
    }
}

/// The one shard fold both snapshots and consumption share. Layers up to
/// `last_pruned` (the last swept segment) fold via
/// [`Ttkv::fold_layers`] — demote baselines, absorb oldest→newest, one
/// re-prune at the standing horizon — which PR 5 proved equal to the
/// sequential store that experienced the staged sweeps. Later layers were
/// sealed after the last sweep and absorb verbatim, and the tail (which
/// never holds baselines) builds on top, exactly like live ingestion.
fn fold_shard(
    mut layers: Vec<Ttkv>,
    last_pruned: Option<usize>,
    horizon: Option<Timestamp>,
    tail: TtkvBuilder,
) -> Ttkv {
    let mut store = match last_pruned {
        Some(j) => {
            debug_assert!(
                horizon.is_some(),
                "pruned segments imply a standing horizon"
            );
            let stragglers = layers.split_off(j + 1);
            let mut store = Ttkv::fold_layers(layers, horizon);
            for layer in stragglers {
                store.absorb(layer);
            }
            store
        }
        None => {
            let mut store = Ttkv::new();
            for layer in layers {
                store.absorb(layer);
            }
            store
        }
    };
    tail.build_into(&mut store);
    store
}

/// One pinned shard inside an [`EpochSnapshot`]: shared segment handles
/// plus an owned tail clone.
#[derive(Debug, Clone)]
struct PinnedShard {
    segments: Vec<Arc<Segment>>,
    tail: TtkvBuilder,
    horizon: Option<Timestamp>,
    generation: u64,
}

impl PinnedShard {
    fn fold(&self) -> Ttkv {
        let last_pruned = self.segments.iter().rposition(|s| s.pruned_to.is_some());
        let layers: Vec<Ttkv> = self.segments.iter().map(|s| s.store.clone()).collect();
        fold_shard(layers, last_pruned, self.horizon, self.tail.clone())
    }
}

/// A point-in-time pin of every shard's epoch, taken in O(shards + tails)
/// by [`ShardedTtkv::pin_epoch`].
///
/// The pin holds `Arc`s to immutable sealed segments plus a clone of each
/// mutable tail, so it is a complete, self-contained capture: later
/// appends land in the live tails, and later sweeps *replace* segment
/// `Arc`s copy-on-write rather than mutating them — there is no code path
/// that can alter what a pin references ([`DESIGN.md` §5.13]). Dropping
/// the pin releases the pinned segment generation.
///
/// [`EpochSnapshot::materialize`] folds the pin into a queryable [`Ttkv`],
/// in parallel across shards, outside every shard lock. Materializing the
/// same pin twice — no matter what the live store did in between — yields
/// identical stores.
#[derive(Debug, Clone)]
pub struct EpochSnapshot {
    shards: Vec<PinnedShard>,
}

impl EpochSnapshot {
    /// Folds the pinned epoch into one consistent [`Ttkv`] (in parallel
    /// across shards; runs outside every shard lock).
    pub fn materialize(&self) -> Ttkv {
        let stores = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| scope.spawn(move || shard.fold()))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(store) => store,
                    // Re-raise the fold thread's panic with its original
                    // payload instead of wrapping it in a new expect.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect::<Vec<Ttkv>>()
        });
        Ttkv::from_shards(stores)
    }

    /// Number of pinned shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard segment generations at pin time (monotone per shard; used
    /// by invariant checks and tests).
    pub fn generations(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.generation).collect()
    }

    /// Total sealed segments the pin references (shared, not copied).
    pub fn segment_count(&self) -> usize {
        self.shards.iter().map(|s| s.segments.len()).sum()
    }

    /// Buffered mutations the pin had to *copy* (the tails) — the pin's
    /// marginal owned state, as opposed to the shared sealed segments.
    pub fn pinned_tail_mutations(&self) -> usize {
        self.shards.iter().map(|s| s.tail.len()).sum()
    }
}

/// A hash-striped set of TTKV shards accepting concurrent batched appends.
///
/// # Examples
///
/// ```
/// use ocasta_fleet::ShardedTtkv;
/// use ocasta_trace::{AccessEvent, TraceOp};
/// use ocasta_ttkv::{Timestamp, Value};
///
/// let sharded = ShardedTtkv::new(4);
/// let op = TraceOp::Mutation(AccessEvent::write(
///     Timestamp::from_secs(1), "app/k", Value::from(1),
/// ));
/// let shard = sharded.shard_of(op.key().as_str());
/// sharded.append_batch(shard, vec![op]);
/// let store = sharded.into_ttkv();
/// assert_eq!(store.len(), 1);
/// ```
#[derive(Debug)]
pub struct ShardedTtkv {
    shards: Vec<Mutex<ShardState>>,
    seal_threshold: usize,
}

impl ShardedTtkv {
    /// Creates `shards` empty shards (at least 1) with the default seal
    /// threshold ([`DEFAULT_SEAL_THRESHOLD`]).
    pub fn new(shards: usize) -> Self {
        Self::with_seal_threshold(shards, DEFAULT_SEAL_THRESHOLD)
    }

    /// Creates `shards` empty shards (at least 1) sealing each tail into
    /// an immutable segment once it buffers `seal_threshold` mutations
    /// (clamped to at least 1).
    pub fn with_seal_threshold(shards: usize, seal_threshold: usize) -> Self {
        let shards = shards.max(1);
        ShardedTtkv {
            shards: (0..shards).map(|_| Mutex::new(ShardState::new())).collect(),
            seal_threshold: seal_threshold.max(1),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The tail size at which a shard seals.
    pub fn seal_threshold(&self) -> usize {
        self.seal_threshold
    }

    /// The shard index a key stripes to.
    pub fn shard_of(&self, key: &str) -> usize {
        (key_hash(key) % self.shards.len() as u64) as usize
    }

    /// Appends a batch of ops to one shard. Every op in the batch must
    /// stripe to `shard` (callers batch per shard; debug builds check).
    pub fn append_batch(&self, shard: usize, batch: Vec<TraceOp>) {
        self.append_batch_with(shard, batch, |_| {});
    }

    /// Like [`ShardedTtkv::append_batch`], invoking `before_apply` on the
    /// batch **under the shard lock**, before it is buffered. This is the
    /// write-ahead hook: because the callback and the apply happen inside
    /// one critical section, an observer fed by the callback (the WAL lane)
    /// sees same-shard batches in exactly the order the shard applies them
    /// — which is what makes WAL replay reproduce the store even when
    /// same-key timestamp ties arrive from different workers.
    pub fn append_batch_with<F: FnOnce(&[TraceOp])>(
        &self,
        shard: usize,
        batch: Vec<TraceOp>,
        before_apply: F,
    ) {
        self.append_batch_observed(shard, batch, before_apply, None);
    }

    /// [`ShardedTtkv::append_batch_with`] with optional instrumentation:
    /// when `metrics` is set, the stripe-lock wait, the in-lock apply (WAL
    /// send included), and any tail seal the batch triggers are timed into
    /// the fleet histograms. Timing is observation-only — the lock
    /// discipline, apply order, and seal points are identical with metrics
    /// on or off.
    pub(crate) fn append_batch_observed<F: FnOnce(&[TraceOp])>(
        &self,
        shard: usize,
        batch: Vec<TraceOp>,
        before_apply: F,
        metrics: Option<&FleetMetrics>,
    ) {
        debug_assert!(batch
            .iter()
            .all(|op| self.shard_of(op.key().as_str()) == shard));
        // lint:allow(panic-in-worker-path): public-API caller contract — the engine worker path validates shard indices before reaching here, and an out-of-range index from an external caller is a programming error at the call site
        let stripe = self.shards.get(shard).expect("shard index out of range");
        let wait_started = Stopwatch::start_if(metrics.is_some());
        let mut state = lock_stripe(stripe);
        if let (Some(m), Some(sw)) = (metrics, wait_started) {
            m.lock_wait.record_duration(sw.elapsed());
        }
        let apply_started = Stopwatch::start_if(metrics.is_some());
        before_apply(&batch);
        let ops = batch.len() as u64;
        for op in batch {
            op.buffer(&mut state.tail);
        }
        if state.tail.len() >= self.seal_threshold {
            let seal_started = Stopwatch::start_if(metrics.is_some());
            state.seal_tail();
            if let (Some(m), Some(started)) = (metrics, seal_started) {
                m.seal_stall.record_duration(started.elapsed());
                m.seals.inc();
            }
        }
        drop(state);
        if let (Some(m), Some(started)) = (metrics, apply_started) {
            m.batch_apply.record_duration(started.elapsed());
            m.ingest_batches.inc();
            m.ingest_ops.add(ops);
        }
    }

    /// Appends an un-routed batch, striping each op to its shard.
    pub fn append_routed(&self, batch: Vec<TraceOp>) {
        // Group locally first so each shard lock is taken at most once.
        let mut per_shard: Vec<Vec<TraceOp>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for op in batch {
            let shard = self.shard_of(op.key().as_str());
            if let Some(bucket) = per_shard.get_mut(shard) {
                bucket.push(op);
            }
        }
        for (shard, ops) in per_shard.into_iter().enumerate() {
            if !ops.is_empty() {
                self.append_batch(shard, ops);
            }
        }
    }

    /// Mutations buffered in mutable tails (not yet sealed) across all
    /// shards, for progress reporting; takes each shard lock briefly.
    pub fn buffered_mutations(&self) -> usize {
        self.shards.iter().map(|s| lock_stripe(s).tail.len()).sum()
    }

    /// The latest applied-or-buffered mutation timestamp across all shards
    /// — the ingest frontier a retention sweep measures its horizon
    /// against. Takes each shard lock briefly; the answer can lag appends
    /// that land while later shards are read, which only makes a horizon
    /// computed from it more conservative.
    pub fn last_mutation_time(&self) -> Option<Timestamp> {
        self.shards
            .iter()
            .filter_map(|s| {
                let state = lock_stripe(s);
                match (state.last_time, state.tail.last_time()) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (a, b) => a.or(b),
                }
            })
            .max()
    }

    /// Compacts every shard's history older than `horizon`, returning what
    /// the sweep reclaimed (see [`ocasta_ttkv::Ttkv::prune_before`]).
    ///
    /// Each shard is swept **atomically under its own stripe lock** — the
    /// same per-shard-atomic discipline as [`ShardedTtkv::pin_epoch`] —
    /// and **copy-on-write**: the tail is sealed, then every sealed
    /// segment holding history older than the horizon is cloned, pruned,
    /// and swapped into its `Arc` slot. Live epoch pins keep the pre-sweep
    /// segments alive until released, so a pinned snapshot can never
    /// observe a sweep that ran after it was taken. Fully-collapsed
    /// neighbours coalesce, so husks stay bounded. Concurrent appends
    /// still land entirely before or entirely after the sweep — per-key
    /// history is never torn — and the staged-sweep fold is equal to one
    /// direct prune by construction (`DESIGN.md §5.10`, `§5.13`).
    ///
    /// Callers coordinating with pinned readers must clamp `horizon`
    /// through an [`ocasta_ttkv::HorizonGuard`] first; the engine's
    /// retention sweeper does.
    pub fn prune_before(&self, horizon: Timestamp) -> PruneStats {
        self.prune_before_observed(horizon, None)
    }

    /// [`ShardedTtkv::prune_before`] recording copy-on-write segment
    /// rewrites into the fleet metrics when `metrics` is set.
    pub(crate) fn prune_before_observed(
        &self,
        horizon: Timestamp,
        metrics: Option<&FleetMetrics>,
    ) -> PruneStats {
        let mut stats = PruneStats::default();
        let mut rewritten = 0u64;
        for shard in &self.shards {
            let mut state = lock_stripe(shard);
            let (shard_stats, shard_rewritten) = state.sweep(horizon);
            stats.absorb(shard_stats);
            rewritten += shard_rewritten;
        }
        if let Some(m) = metrics {
            m.cow_segments.add(rewritten);
        }
        stats
    }

    /// Collects dead counter-only shells from every shard, returning how
    /// many keys were removed (see [`ocasta_ttkv::Ttkv::gc_dead_shells`]).
    ///
    /// Each shard is folded, collected, and **rebased onto a single fresh
    /// segment** atomically under its own stripe lock, one after another
    /// (live pins keep the pre-rebase segments alive). The retention
    /// sweeper calls this **only on its final sweep**: while ingestion can
    /// still deliver a straggler rewrite of a pruned key, the shell's
    /// counters are that key's only memory of its lifetime modification
    /// count.
    pub fn gc_dead_shells(&self) -> u64 {
        self.shards.iter().map(|s| lock_stripe(s).gc_rebase()).sum()
    }

    /// Pins the current epoch of every shard in **O(shards + tails)**:
    /// per shard, under its stripe lock, the pin grabs the sealed-segment
    /// `Arc`s (shared, not copied) and clones the small mutable tail.
    ///
    /// Consistency: every key's full applied history is either entirely in
    /// the pin or entirely absent at its tail — a key never stripes across
    /// shards, so per-key history can never be torn. Shards are locked one
    /// after another, not atomically, so the pin is a *per-shard-atomic*
    /// cut of the fleet: exactly the guarantee a repair session pins (see
    /// `DESIGN.md §5.8`, `§5.13`).
    pub fn pin_epoch(&self) -> EpochSnapshot {
        self.pin_epoch_observed(None)
    }

    /// [`ShardedTtkv::pin_epoch`] recording pin count and pin stall into
    /// the fleet metrics when `metrics` is set.
    pub(crate) fn pin_epoch_observed(&self, metrics: Option<&FleetMetrics>) -> EpochSnapshot {
        let started = Stopwatch::start_if(metrics.is_some());
        let shards = self
            .shards
            .iter()
            .map(|m| {
                let state = lock_stripe(m);
                PinnedShard {
                    segments: state.segments.clone(),
                    tail: state.tail.clone(),
                    horizon: state.horizon,
                    generation: state.generation,
                }
            })
            .collect();
        if let (Some(m), Some(started)) = (metrics, started) {
            m.pin_stall.record_duration(started.elapsed());
            m.epoch_pins.inc();
        }
        EpochSnapshot { shards }
    }

    /// Takes a read-only snapshot of the live store **while ingestion
    /// continues**: an epoch pin ([`ShardedTtkv::pin_epoch`]) immediately
    /// materialized. The in-lock cost is O(shards + tails); the fold to a
    /// queryable store runs outside every lock, in parallel across shards.
    pub fn snapshot_store(&self) -> Ttkv {
        self.pin_epoch().materialize()
    }

    /// The legacy clone-under-lock snapshot: every shard's **entire**
    /// state — sealed segment stores included — is deep-cloned under its
    /// stripe lock (an O(live state) stall), then folded outside. Kept as
    /// the equivalence oracle for [`ShardedTtkv::pin_epoch`] (the property
    /// suite asserts pin == clone at every interleaving it can generate)
    /// and as the bench yardstick the epoch pin is measured against.
    pub fn snapshot_store_cloned(&self) -> Ttkv {
        let shards = self
            .shards
            .iter()
            .map(|m| {
                let state = lock_stripe(m);
                PinnedShard {
                    segments: state
                        .segments
                        .iter()
                        .map(|seg| Arc::new(seg.as_ref().clone()))
                        .collect(),
                    tail: state.tail.clone(),
                    horizon: state.horizon,
                    generation: state.generation,
                }
            })
            .collect();
        EpochSnapshot { shards }.materialize()
    }

    /// Folds every shard (in parallel) and merges them into one consistent
    /// [`Ttkv`]. Shard key sets are disjoint by construction, so the merge
    /// is a pure record move.
    pub fn into_ttkv(self) -> Ttkv {
        let states: Vec<ShardState> = self
            .shards
            .into_iter()
            // lint:allow(panic-in-worker-path): a poisoned stripe implies a possibly-torn tail batch — consuming it would bake torn per-key history into the folded store, so propagating the panic is the safe choice
            .map(|m| m.into_inner().expect("stripe poisoned by a worker panic"))
            .collect();
        let stores = std::thread::scope(|scope| {
            let handles: Vec<_> = states
                .into_iter()
                .map(|state| scope.spawn(move || state.into_store()))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(store) => store,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect::<Vec<Ttkv>>()
        });
        Ttkv::from_shards(stores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocasta_trace::AccessEvent;
    use ocasta_ttkv::{Timestamp, Value};

    fn write_op(key: &str, t: u64, v: i64) -> TraceOp {
        TraceOp::Mutation(AccessEvent::write(
            Timestamp::from_millis(t),
            key,
            Value::from(v),
        ))
    }

    fn direct_store(ops: &[TraceOp]) -> Ttkv {
        let mut direct = Ttkv::new();
        for op in ops {
            op.clone()
                .apply(&mut direct, ocasta_ttkv::TimePrecision::Milliseconds);
        }
        direct
    }

    #[test]
    fn hash_is_stable_and_spreads() {
        assert_eq!(key_hash("app/k"), key_hash("app/k"));
        let sharded = ShardedTtkv::new(8);
        let hit: std::collections::BTreeSet<usize> = (0..200)
            .map(|i| sharded.shard_of(&format!("app/key{i}")))
            .collect();
        assert!(
            hit.len() >= 6,
            "200 keys should touch most of 8 shards: {hit:?}"
        );
    }

    #[test]
    fn routed_append_equals_unsharded_build() {
        let ops: Vec<TraceOp> = (0..100)
            .map(|i| write_op(&format!("app/k{}", i % 17), 1_000 + i, i as i64))
            .chain(std::iter::once(TraceOp::Reads(
                ocasta_ttkv::Key::new("app/k0"),
                42,
            )))
            .collect();
        let sharded = ShardedTtkv::new(5);
        sharded.append_routed(ops.clone());
        let merged = sharded.into_ttkv();
        assert_eq!(merged, direct_store(&ops));
    }

    #[test]
    fn routed_append_equals_unsharded_build_across_seal_thresholds() {
        // Same equality with seals forced mid-stream: thresholds straddle
        // the batch sizes so tails seal at varied points, including
        // exactly at the threshold (the boundary case).
        let ops: Vec<TraceOp> = (0..100)
            .map(|i| write_op(&format!("app/k{}", i % 17), 1_000 + i, i as i64))
            .collect();
        let direct = direct_store(&ops);
        for threshold in [1, 2, 7, 16, 100] {
            let sharded = ShardedTtkv::with_seal_threshold(5, threshold);
            sharded.append_routed(ops.clone());
            assert_eq!(
                sharded.snapshot_store(),
                direct,
                "threshold {threshold}: epoch snapshot"
            );
            assert_eq!(
                sharded.snapshot_store_cloned(),
                direct,
                "threshold {threshold}: clone oracle"
            );
            assert_eq!(sharded.into_ttkv(), direct, "threshold {threshold}: fold");
        }
    }

    #[test]
    fn concurrent_appends_from_many_threads() {
        let sharded = ShardedTtkv::with_seal_threshold(4, 64);
        std::thread::scope(|scope| {
            for worker in 0..8u64 {
                let sharded = &sharded;
                scope.spawn(move || {
                    // Each worker owns a disjoint key space.
                    let ops: Vec<TraceOp> = (0..500)
                        .map(|i| write_op(&format!("w{worker}/k{}", i % 9), i, i as i64))
                        .collect();
                    sharded.append_routed(ops);
                });
            }
        });
        let store = sharded.into_ttkv();
        assert_eq!(store.stats().writes, 8 * 500);
        assert_eq!(store.len(), 8 * 9);
    }

    #[test]
    fn snapshot_is_consistent_under_concurrent_appends() {
        let sharded = ShardedTtkv::with_seal_threshold(4, 32);
        // Writers keep appending whole per-key batches; snapshots taken
        // mid-flight must only ever see complete batches per key.
        let snapshots = std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let sharded = &sharded;
                scope.spawn(move || {
                    for round in 0..50u64 {
                        let ops: Vec<TraceOp> = (0..4)
                            .map(|i| write_op(&format!("w{worker}/k"), round * 10 + i, i as i64))
                            .collect();
                        sharded.append_routed(ops);
                    }
                });
            }
            let mut snapshots = Vec::new();
            for _ in 0..5 {
                snapshots.push(sharded.snapshot_store());
            }
            snapshots
        });
        for snap in &snapshots {
            // Each appended batch lands atomically in its key's shard, so
            // every observed per-key write count is a multiple of 4.
            for (_, record) in snap.iter() {
                assert_eq!(record.writes % 4, 0, "torn batch visible");
            }
        }
        // After the writers finish, the snapshot equals the final merge.
        let last = sharded.snapshot_store();
        assert_eq!(last, sharded.into_ttkv());
        assert_eq!(last.stats().writes, 4 * 50 * 4);
    }

    #[test]
    fn prune_bounds_live_shards_and_preserves_post_horizon_queries() {
        let sharded = ShardedTtkv::with_seal_threshold(4, 16);
        let ops: Vec<TraceOp> = (0..400)
            .map(|i| write_op(&format!("app/k{}", i % 8), i * 10, i as i64))
            .collect();
        sharded.append_routed(ops.clone());
        let reference = sharded.snapshot_store();
        assert_eq!(
            sharded.last_mutation_time(),
            Some(Timestamp::from_millis(3_990))
        );

        let horizon = Timestamp::from_millis(2_000);
        let stats = sharded.prune_before(horizon);
        assert!(stats.pruned_versions > 0);
        assert!(stats.reclaimed_bytes > 0);

        let pruned = sharded.snapshot_store();
        assert_eq!(
            pruned,
            sharded.snapshot_store_cloned(),
            "epoch pin == clone oracle after a sweep"
        );
        assert!(pruned.approx_bytes() < reference.approx_bytes());
        for key in reference.keys() {
            for probe in [2_000, 2_005, 3_990] {
                let t = Timestamp::from_millis(probe);
                assert_eq!(
                    pruned.value_at(key.as_str(), t),
                    reference.value_at(key.as_str(), t),
                    "{key} at {t}"
                );
            }
        }
        // Lifetime counters survive the sweep.
        assert_eq!(pruned.stats().writes, reference.stats().writes);

        // The store keeps ingesting after the sweep.
        sharded.append_routed(vec![write_op("app/k0", 9_000, 999)]);
        let after = sharded.into_ttkv();
        assert_eq!(
            after.current("app/k0"),
            Some(&ocasta_ttkv::Value::from(999))
        );
    }

    #[test]
    fn prune_races_concurrent_appends_without_tearing() {
        let sharded = ShardedTtkv::with_seal_threshold(4, 48);
        let total_writes = std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let sharded = &sharded;
                scope.spawn(move || {
                    for round in 0..60u64 {
                        let ops: Vec<TraceOp> = (0..4)
                            .map(|i| write_op(&format!("w{worker}/k"), round * 100 + i, i as i64))
                            .collect();
                        sharded.append_routed(ops);
                    }
                });
            }
            let sweeper = scope.spawn(|| {
                for sweep in 1..=20u64 {
                    sharded.prune_before(Timestamp::from_millis(sweep * 250));
                }
            });
            sweeper.join().expect("sweeper panicked");
            4u64 * 60 * 4
        });
        // One deterministic sweep after the race settles: staged sweeps
        // (however they interleaved with the appends) plus this final
        // prune must equal one direct prune of the complete history — the
        // copy-on-write segment path inherits the staged-sweep property
        // exactly.
        let final_horizon = Timestamp::from_millis(6_000);
        sharded.prune_before(final_horizon);
        let store = sharded.into_ttkv();
        // Counters are prune-invariant, so every concurrent write is
        // accounted for exactly once regardless of sweep interleaving.
        assert_eq!(store.stats().writes, total_writes);
        for (_, record) in store.iter() {
            assert_eq!(record.writes % 4, 0, "torn batch visible");
        }
        let mut direct = Ttkv::new();
        for worker in 0..4u64 {
            for round in 0..60u64 {
                for i in 0..4 {
                    direct.write(
                        Timestamp::from_millis(round * 100 + i),
                        format!("w{worker}/k"),
                        Value::from(i as i64),
                    );
                }
            }
        }
        direct.prune_before(final_horizon);
        assert_eq!(
            store, direct,
            "staged concurrent sweeps == one direct prune"
        );
    }

    #[test]
    fn prune_horizon_exactly_on_segment_boundary_matches_direct_prune() {
        // One shard, threshold 4: ops at 0,10,20,30 seal into segment A
        // and 40..=70 into segment B; 80, 90 remain in the tail. Horizons
        // probing exactly the boundary timestamps (last-of-A, first-of-B)
        // must match a direct sequential store pruned the same way.
        for boundary in [30u64, 40, 70, 80] {
            let sharded = ShardedTtkv::with_seal_threshold(1, 4);
            let ops: Vec<TraceOp> = (0..10)
                .map(|i| write_op("app/k", i * 10, i as i64))
                .collect();
            sharded.append_routed(ops.clone());
            sharded.prune_before(Timestamp::from_millis(boundary));
            let mut direct = direct_store(&ops);
            direct.prune_before(Timestamp::from_millis(boundary));
            assert_eq!(
                sharded.snapshot_store(),
                direct,
                "horizon exactly at {boundary}ms"
            );
            assert_eq!(
                sharded.into_ttkv(),
                direct,
                "fold after horizon at {boundary}ms"
            );
        }
    }

    #[test]
    fn pinned_epoch_is_immutable_under_later_appends_sweeps_and_gc() {
        let sharded = ShardedTtkv::with_seal_threshold(2, 8);
        let ops: Vec<TraceOp> = (0..40)
            .map(|i| write_op(&format!("app/k{}", i % 5), 100 + i * 10, i as i64))
            .collect();
        sharded.append_routed(ops);

        let pin = sharded.pin_epoch();
        let oracle = pin.materialize();
        let generations = pin.generations();

        // Churn the live store: more appends (sealing), a sweep, a rebase.
        sharded.append_routed(
            (0..40)
                .map(|i| write_op(&format!("app/k{}", i % 5), 600 + i * 10, -(i as i64)))
                .collect(),
        );
        sharded.prune_before(Timestamp::from_millis(500));
        sharded.gc_dead_shells();

        assert_eq!(
            pin.materialize(),
            oracle,
            "a pinned epoch can never observe later appends, sweeps, or gc"
        );
        let after = sharded.pin_epoch();
        for (before, now) in generations.iter().zip(after.generations()) {
            assert!(*before <= now, "segment generations are monotone");
        }
        assert!(
            after.generations().iter().sum::<u64>() > generations.iter().sum::<u64>(),
            "seal + sweep + rebase bump generations"
        );
    }

    #[test]
    fn pin_taken_mid_seal_churn_is_exact() {
        // Pins race appends that are constantly sealing (threshold 4).
        // Each pin's immediate materialization is its oracle; after all
        // churn settles, re-materializing must reproduce it exactly, and
        // per-key batch atomicity must hold inside every pin.
        let sharded = ShardedTtkv::with_seal_threshold(4, 4);
        let pins = std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let sharded = &sharded;
                scope.spawn(move || {
                    for round in 0..40u64 {
                        let ops: Vec<TraceOp> = (0..4)
                            .map(|i| write_op(&format!("w{worker}/k"), round * 10 + i, i as i64))
                            .collect();
                        sharded.append_routed(ops);
                    }
                });
            }
            let mut pins = Vec::new();
            for _ in 0..6 {
                let pin = sharded.pin_epoch();
                let oracle = pin.materialize();
                pins.push((pin, oracle));
            }
            pins
        });
        for (pin, oracle) in &pins {
            assert_eq!(&pin.materialize(), oracle, "pin drifted after churn");
            for (_, record) in oracle.iter() {
                assert_eq!(record.writes % 4, 0, "torn batch inside a pin");
            }
        }
        assert_eq!(sharded.snapshot_store(), sharded.snapshot_store_cloned());
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let sharded = ShardedTtkv::new(0);
        assert_eq!(sharded.shard_count(), 1);
        assert_eq!(sharded.shard_of("anything"), 0);
        assert_eq!(sharded.seal_threshold(), DEFAULT_SEAL_THRESHOLD);
        assert_eq!(ShardedTtkv::with_seal_threshold(2, 0).seal_threshold(), 1);
    }
}
