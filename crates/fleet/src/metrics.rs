//! Fleet-tier metric handles: what the ingestion engine records when a
//! caller asks for observability.
//!
//! [`FleetMetrics`] is a bundle of [`ocasta_obs`] handles registered under
//! stable `fleet.*` names. The engine records into it from three places —
//! ingest workers (batch counts, stripe-lock wait, batch apply), the WAL
//! appender (append/flush/compact/rebase timings), and the retention
//! sweeper (stall, reclaimed volume, pin clamps) — always as a **pure
//! observer**: wall-clock readings and tallies only, nothing fed back into
//! scheduling or data flow, so an instrumented run produces bit-identical
//! stores to an uninstrumented one (asserted end-to-end by the CLI
//! determinism tests; `DESIGN.md §5.11`).

use std::sync::Arc;

use ocasta_obs::{Counter, Histogram, Registry};

/// Metric handles for one instrumented ingestion run.
///
/// Construct with [`FleetMetrics::register`] against the registry whose
/// snapshot you intend to export; pass by reference through
/// [`crate::IngestOptions::metrics`].
#[derive(Debug)]
pub struct FleetMetrics {
    /// Batches applied to shards (`fleet.ingest.batches`).
    pub ingest_batches: Arc<Counter>,
    /// Ops applied to shards (`fleet.ingest.ops`).
    pub ingest_ops: Arc<Counter>,
    /// Time spent waiting for a stripe lock (`fleet.shard.lock_wait_us`).
    pub lock_wait: Arc<Histogram>,
    /// Time spent applying a batch under the stripe lock, WAL send
    /// included (`fleet.shard.batch_apply_us`).
    pub batch_apply: Arc<Histogram>,
    /// WAL frame append latency on the appender thread
    /// (`fleet.wal.append_us`).
    pub wal_append: Arc<Histogram>,
    /// WAL flush/fsync latency (`fleet.wal.flush_us`).
    pub wal_flush: Arc<Histogram>,
    /// Incremental (delta-layer) WAL compaction latency
    /// (`fleet.wal.compact_us`).
    pub wal_compact: Arc<Histogram>,
    /// Full-chain WAL rebase latency (`fleet.wal.rebase_us`).
    pub wal_rebase: Arc<Histogram>,
    /// Frames appended to the WAL (`fleet.wal.frames`).
    pub wal_frames: Arc<Counter>,
    /// Store-side sweep stall: one `prune_before` across every shard
    /// (`fleet.sweep.stall_us`).
    pub sweep_stall: Arc<Histogram>,
    /// Sweeps executed (`fleet.sweep.count`).
    pub sweeps: Arc<Counter>,
    /// Versions reclaimed by sweeps (`fleet.sweep.reclaimed_versions`).
    pub sweep_reclaimed_versions: Arc<Counter>,
    /// Approximate bytes reclaimed by sweeps
    /// (`fleet.sweep.reclaimed_bytes`).
    pub sweep_reclaimed_bytes: Arc<Counter>,
    /// Sweep attempts whose horizon a live pin clamped back
    /// (`fleet.sweep.pin_clamps`).
    pub pin_clamps: Arc<Counter>,
    /// Shard tails frozen into sealed segments (`fleet.shard.seals`).
    pub seals: Arc<Counter>,
    /// Time spent sealing one tail under its stripe lock
    /// (`fleet.shard.seal_us`).
    pub seal_stall: Arc<Histogram>,
    /// Epoch pins taken for snapshots (`fleet.snapshot.epoch_pins`).
    pub epoch_pins: Arc<Counter>,
    /// Time spent pinning one epoch across every shard
    /// (`fleet.snapshot.pin_us`).
    pub pin_stall: Arc<Histogram>,
    /// Sealed segments rewritten copy-on-write by sweeps
    /// (`fleet.sweep.cow_segments`).
    pub cow_segments: Arc<Counter>,
}

impl FleetMetrics {
    /// Registers every fleet metric on `registry` and returns the bundle.
    pub fn register(registry: &Registry) -> Self {
        FleetMetrics {
            ingest_batches: registry.counter("fleet.ingest.batches"),
            ingest_ops: registry.counter("fleet.ingest.ops"),
            lock_wait: registry.histogram("fleet.shard.lock_wait_us"),
            batch_apply: registry.histogram("fleet.shard.batch_apply_us"),
            wal_append: registry.histogram("fleet.wal.append_us"),
            wal_flush: registry.histogram("fleet.wal.flush_us"),
            wal_compact: registry.histogram("fleet.wal.compact_us"),
            wal_rebase: registry.histogram("fleet.wal.rebase_us"),
            wal_frames: registry.counter("fleet.wal.frames"),
            sweep_stall: registry.histogram("fleet.sweep.stall_us"),
            sweeps: registry.counter("fleet.sweep.count"),
            sweep_reclaimed_versions: registry.counter("fleet.sweep.reclaimed_versions"),
            sweep_reclaimed_bytes: registry.counter("fleet.sweep.reclaimed_bytes"),
            pin_clamps: registry.counter("fleet.sweep.pin_clamps"),
            seals: registry.counter("fleet.shard.seals"),
            seal_stall: registry.histogram("fleet.shard.seal_us"),
            epoch_pins: registry.counter("fleet.snapshot.epoch_pins"),
            pin_stall: registry.histogram("fleet.snapshot.pin_us"),
            cow_segments: registry.counter("fleet.sweep.cow_segments"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_names_every_series_once() {
        let registry = Registry::new();
        let metrics = FleetMetrics::register(&registry);
        metrics.ingest_batches.inc();
        metrics.sweep_stall.record(42);
        // Re-registering shares the same handles.
        let again = FleetMetrics::register(&registry);
        assert_eq!(again.ingest_batches.get(), 1);
        assert_eq!(again.sweep_stall.count(), 1);
        let json = registry.snapshot_json();
        for name in [
            "fleet.ingest.batches",
            "fleet.ingest.ops",
            "fleet.shard.lock_wait_us",
            "fleet.shard.batch_apply_us",
            "fleet.wal.append_us",
            "fleet.wal.flush_us",
            "fleet.wal.compact_us",
            "fleet.wal.rebase_us",
            "fleet.wal.frames",
            "fleet.sweep.stall_us",
            "fleet.sweep.count",
            "fleet.sweep.reclaimed_versions",
            "fleet.sweep.reclaimed_bytes",
            "fleet.sweep.pin_clamps",
            "fleet.shard.seals",
            "fleet.shard.seal_us",
            "fleet.snapshot.epoch_pins",
            "fleet.snapshot.pin_us",
            "fleet.sweep.cow_segments",
        ] {
            assert!(json.contains(name), "{name} missing from {json}");
        }
    }
}
