//! The rule engine: token-sequence matchers for the four project
//! invariants, plus the suppression mechanism.
//!
//! All matchers operate on the *significant* token stream — comments
//! dropped, `#[cfg(test)]` items excised — so a lint can only fire on
//! code that actually ships on the path the policy registered.
//!
//! Suppressions are deliberately expensive to write: the exact form is
//! `// lint:allow(<rule>): <reason>`, the reason must be non-empty, the
//! rule must exist, and a suppression that matches nothing is itself an
//! Error. A suppression covers findings of its rule on its own line and
//! on the next code line below it.

use crate::lexer::{lex, Token, TokenKind};
use crate::policy::Policy;
use crate::report::{Finding, Severity};

/// Rule id: direct wall-clock reads outside the policy's allow list.
pub const RULE_WALLCLOCK: &str = "wallclock-in-deterministic-path";
/// Rule id: panicking constructs on registered worker/appender/sweeper
/// paths.
pub const RULE_PANIC: &str = "panic-in-worker-path";
/// Rule id: nested lock acquisition and I/O under a live guard.
pub const RULE_LOCK: &str = "lock-discipline";
/// Rule id: crate attributes and suppression hygiene.
pub const RULE_HYGIENE: &str = "crate-hygiene";

/// Every rule id, for suppression validation.
pub const RULES: [&str; 4] = [RULE_WALLCLOCK, RULE_PANIC, RULE_LOCK, RULE_HYGIENE];

/// Keywords that can legitimately precede `[` without it being an index
/// expression (slice patterns, array types behind `let`/`for`/…).
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "trait", "type", "unsafe", "use", "where", "while",
    "yield",
];

/// Lints one source file against the policy. Returns the surviving
/// findings and how many suppressions were honoured.
pub fn lint_source(policy: &Policy, path: &str, source: &str) -> (Vec<Finding>, usize) {
    let tokens = lex(source);
    let linter = FileLinter::new(policy, path, &tokens);
    linter.run()
}

/// Checks a crate root (`lib.rs`) for the workspace-wide attribute
/// contract: `#![forbid(unsafe_code)]` and `#![deny(missing_docs)]`.
pub fn check_crate_hygiene(path: &str, source: &str) -> Vec<Finding> {
    let tokens = lex(source);
    let sig: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::LineComment)
        .collect();
    let has = |outer: &str, inner: &str| {
        sig.windows(4).any(|w| {
            w[0].is_ident(outer) && w[1].is_punct('(') && w[2].is_ident(inner) && w[3].is_punct(')')
        })
    };
    let mut findings = Vec::new();
    let mut missing = |attr: &str, present: bool| {
        if !present {
            findings.push(Finding {
                rule: RULE_HYGIENE,
                path: path.to_owned(),
                line: 1,
                col: 1,
                severity: Severity::Error,
                message: format!("crate root is missing `#![{attr}]`"),
            });
        }
    };
    missing("forbid(unsafe_code)", has("forbid", "unsafe_code"));
    missing("deny(missing_docs)", has("deny", "missing_docs"));
    findings
}

/// One `// lint:allow(rule): reason` comment.
struct Suppression {
    line: u32,
    col: u32,
    rule: &'static str,
    used: bool,
}

/// A live mutex guard being tracked by the lock-discipline scan.
struct Guard {
    name: Option<String>,
    family: String,
    depth: i32,
    line: u32,
    /// Not `let`-bound: dies at the end of its statement.
    transient: bool,
}

struct FileLinter<'a> {
    policy: &'a Policy,
    path: &'a str,
    tokens: &'a [Token],
    /// Indices into `tokens` of significant (non-comment, non-test) tokens.
    sig: Vec<usize>,
    /// Sorted lines that carry at least one significant token.
    code_lines: Vec<u32>,
}

impl<'a> FileLinter<'a> {
    fn new(policy: &'a Policy, path: &'a str, tokens: &'a [Token]) -> Self {
        let skip = test_ranges(tokens);
        let sig: Vec<usize> = (0..tokens.len())
            .filter(|&i| tokens[i].kind != TokenKind::LineComment && !skip[i])
            .collect();
        let mut code_lines: Vec<u32> = sig.iter().map(|&i| tokens[i].line).collect();
        code_lines.dedup();
        FileLinter {
            policy,
            path,
            tokens,
            sig,
            code_lines,
        }
    }

    fn run(&self) -> (Vec<Finding>, usize) {
        let mut findings = Vec::new();
        if !Policy::path_matches(self.path, &self.policy.wallclock_allow) {
            self.scan_wallclock(&mut findings);
        }
        if Policy::path_matches(self.path, &self.policy.panic_paths) {
            self.scan_panics(&mut findings);
        }
        if Policy::path_matches(self.path, &self.policy.lock_paths) {
            self.scan_locks(&mut findings);
        }
        let mut suppressions = self.parse_suppressions(&mut findings);
        findings.retain(|finding| {
            let covered = suppressions.iter_mut().find(|s| {
                s.rule == finding.rule
                    && (s.line == finding.line || self.next_code_line(s.line) == Some(finding.line))
            });
            match covered {
                Some(s) => {
                    s.used = true;
                    false
                }
                None => true,
            }
        });
        let used = suppressions.iter().filter(|s| s.used).count();
        for s in &suppressions {
            if !s.used {
                findings.push(self.finding(
                    RULE_HYGIENE,
                    s.line,
                    s.col,
                    format!("unused suppression for `{}` — remove it", s.rule),
                ));
            }
        }
        (findings, used)
    }

    fn tok(&self, j: usize) -> &Token {
        &self.tokens[self.sig[j]]
    }

    fn finding(&self, rule: &'static str, line: u32, col: u32, message: String) -> Finding {
        Finding {
            rule,
            path: self.path.to_owned(),
            line,
            col,
            severity: Severity::Error,
            message,
        }
    }

    /// The first line strictly below `line` that carries code.
    fn next_code_line(&self, line: u32) -> Option<u32> {
        let idx = self.code_lines.partition_point(|&l| l <= line);
        self.code_lines.get(idx).copied()
    }

    /// Extracts and validates `lint:allow` comments; malformed ones
    /// become findings directly.
    fn parse_suppressions(&self, findings: &mut Vec<Finding>) -> Vec<Suppression> {
        let mut out = Vec::new();
        for token in self.tokens {
            if token.kind != TokenKind::LineComment {
                continue;
            }
            let body = token.text.trim();
            let Some(rest) = body.strip_prefix("lint:allow(") else {
                continue;
            };
            let Some((rule, tail)) = rest.split_once(')') else {
                findings.push(self.finding(
                    RULE_HYGIENE,
                    token.line,
                    token.col,
                    "malformed suppression: expected `lint:allow(<rule>): <reason>`".into(),
                ));
                continue;
            };
            let Some(rule) = RULES.iter().find(|r| **r == rule.trim()) else {
                findings.push(self.finding(
                    RULE_HYGIENE,
                    token.line,
                    token.col,
                    format!("suppression names unknown rule `{}`", rule.trim()),
                ));
                continue;
            };
            let reason = tail.strip_prefix(':').map(str::trim).unwrap_or("");
            if reason.is_empty() {
                findings.push(self.finding(
                    RULE_HYGIENE,
                    token.line,
                    token.col,
                    format!("suppression for `{rule}` has no reason — say why it is sound"),
                ));
                continue;
            }
            out.push(Suppression {
                line: token.line,
                col: token.col,
                rule,
                used: false,
            });
        }
        out
    }

    fn scan_wallclock(&self, findings: &mut Vec<Finding>) {
        for j in 0..self.sig.len().saturating_sub(3) {
            let head = self.tok(j);
            let clock = if head.is_ident("Instant") {
                "Instant"
            } else if head.is_ident("SystemTime") {
                "SystemTime"
            } else {
                continue;
            };
            if self.tok(j + 1).is_punct(':')
                && self.tok(j + 2).is_punct(':')
                && self.tok(j + 3).is_ident("now")
            {
                findings.push(self.finding(
                    RULE_WALLCLOCK,
                    head.line,
                    head.col,
                    format!(
                        "`{clock}::now()` in a deterministic path — route timing through \
                         `ocasta_obs::Stopwatch` or allow this path in lint.toml"
                    ),
                ));
            }
        }
    }

    fn scan_panics(&self, findings: &mut Vec<Finding>) {
        for j in 0..self.sig.len() {
            let t = self.tok(j);
            // `.unwrap(` / `.expect(`
            if t.is_punct('.') && j + 2 < self.sig.len() {
                let name = &self.tok(j + 1).text;
                if (name == "unwrap" || name == "expect")
                    && self.tok(j + 1).kind == TokenKind::Ident
                    && self.tok(j + 2).is_punct('(')
                {
                    let at = self.tok(j + 1);
                    findings.push(self.finding(
                        RULE_PANIC,
                        at.line,
                        at.col,
                        format!(
                            "`.{name}()` on a registered panic path — return a structured \
                             error instead"
                        ),
                    ));
                }
            }
            // `panic!` / `unreachable!` / `todo!` / `unimplemented!`
            if t.kind == TokenKind::Ident
                && matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                )
                && j + 1 < self.sig.len()
                && self.tok(j + 1).is_punct('!')
            {
                findings.push(self.finding(
                    RULE_PANIC,
                    t.line,
                    t.col,
                    format!("`{}!` on a registered panic path", t.text),
                ));
            }
            // `expr[index]`: `[` whose previous token ends an expression.
            if t.is_punct('[') && j > 0 {
                let prev = self.tok(j - 1);
                let indexes_expr = match prev.kind {
                    TokenKind::Ident => !KEYWORDS.contains(&prev.text.as_str()),
                    TokenKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
                    _ => false,
                };
                if indexes_expr {
                    findings.push(
                        self.finding(
                            RULE_PANIC,
                            t.line,
                            t.col,
                            "direct indexing on a registered panic path — use `.get()` and \
                         handle the miss"
                                .into(),
                        ),
                    );
                }
            }
        }
    }

    fn scan_locks(&self, findings: &mut Vec<Finding>) {
        let mut depth: i32 = 0;
        let mut guards: Vec<Guard> = Vec::new();
        let mut j = 0usize;
        while j < self.sig.len() {
            let t = self.tok(j);
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
            } else if t.is_punct(';') {
                guards.retain(|g| !(g.transient && g.depth == depth));
            } else if t.is_ident("drop")
                && j + 3 < self.sig.len()
                && self.tok(j + 1).is_punct('(')
                && self.tok(j + 2).kind == TokenKind::Ident
                && self.tok(j + 3).is_punct(')')
            {
                let name = self.tok(j + 2).text.clone();
                guards.retain(|g| g.name.as_deref() != Some(name.as_str()));
            } else if let Some((receiver, at)) = self.lock_acquisition(j) {
                self.on_acquire(&receiver, at, depth, &mut guards, findings, j);
            } else if !guards.is_empty() {
                if let Some(io) = self.io_call(j) {
                    let g = guards.last().expect("guards is non-empty");
                    findings.push(self.finding(
                        RULE_LOCK,
                        t.line,
                        t.col,
                        format!(
                            "`{io}` I/O while a `{}` guard (line {}) is live — drop the \
                             guard first",
                            g.family, g.line
                        ),
                    ));
                }
            }
            j += 1;
        }
    }

    /// If the token at `j` starts a lock acquisition, returns the
    /// receiver identifier and the token to report at.
    fn lock_acquisition(&self, j: usize) -> Option<(String, &Token)> {
        let t = self.tok(j);
        // `receiver.lock(` — `j` at the `.`.
        if t.is_punct('.')
            && j + 2 < self.sig.len()
            && self.tok(j + 1).is_ident("lock")
            && self.tok(j + 2).is_punct('(')
        {
            return Some((self.receiver_before(j), self.tok(j + 1)));
        }
        // `lock_ignore_poison(receiver)` — helper registered via `acquire`.
        if t.kind == TokenKind::Ident
            && self.policy.acquire_fns.iter().any(|f| f == &t.text)
            && j + 1 < self.sig.len()
            && self.tok(j + 1).is_punct('(')
            && !(j > 0 && self.tok(j - 1).is_ident("fn"))
        {
            return Some((self.receiver_in_call(j + 1), t));
        }
        None
    }

    /// The identifier the `.lock()` at `sig[dot]` is called on, walking
    /// back over one `[…]`/`(…)` group (`self.shards[shard].lock()`).
    fn receiver_before(&self, dot: usize) -> String {
        let mut k = dot;
        while k > 0 {
            k -= 1;
            let t = self.tok(k);
            if t.is_punct(']') || t.is_punct(')') {
                let close = if t.is_punct(']') { ']' } else { ')' };
                let open = if close == ']' { '[' } else { '(' };
                let mut nest = 1;
                while k > 0 && nest > 0 {
                    k -= 1;
                    if self.tok(k).is_punct(close) {
                        nest += 1;
                    } else if self.tok(k).is_punct(open) {
                        nest -= 1;
                    }
                }
                continue;
            }
            if t.kind == TokenKind::Ident {
                return t.text.clone();
            }
            break;
        }
        "?".into()
    }

    /// The last identifier of the first argument in the call whose `(`
    /// is at `sig[open]` (`lock_ignore_poison(&self.failure)` → `failure`).
    fn receiver_in_call(&self, open: usize) -> String {
        let mut k = open + 1;
        let mut nest = 1;
        let mut last = String::from("?");
        while k < self.sig.len() && nest > 0 {
            let t = self.tok(k);
            if t.is_punct('(') || t.is_punct('[') {
                nest += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                nest -= 1;
            } else if t.is_punct(',') && nest == 1 {
                break;
            } else if t.kind == TokenKind::Ident && nest == 1 {
                last = t.text.clone();
            }
            k += 1;
        }
        last
    }

    fn on_acquire(
        &self,
        receiver: &str,
        at: &Token,
        depth: i32,
        guards: &mut Vec<Guard>,
        findings: &mut Vec<Finding>,
        j: usize,
    ) {
        let Some(family) = self.policy.family_of(receiver) else {
            findings.push(Finding {
                rule: RULE_LOCK,
                path: self.path.to_owned(),
                line: at.line,
                col: at.col,
                severity: Severity::Warning,
                message: format!(
                    "lock receiver `{receiver}` is not registered with any family in \
                     lint.toml"
                ),
            });
            return;
        };
        if let Some(live) = guards.last() {
            findings.push(self.finding(
                RULE_LOCK,
                at.line,
                at.col,
                format!(
                    "nested lock acquisition: `{receiver}` ({}) taken while a `{}` guard \
                     (line {}) is live",
                    family.name, live.family, live.line
                ),
            ));
        }
        let (name, transient) = self.let_binding(j);
        guards.push(Guard {
            name,
            family: family.name.clone(),
            depth,
            line: at.line,
            transient,
        });
    }

    /// Walks back from the acquisition at `sig[j]` looking for
    /// `let [mut] <name> = …` — the guard binding, if any.
    fn let_binding(&self, j: usize) -> (Option<String>, bool) {
        let mut m = j;
        while m > 0 {
            let prev = self.tok(m - 1);
            let chained = match prev.kind {
                TokenKind::Ident => !KEYWORDS.contains(&prev.text.as_str()),
                TokenKind::Punct => prev.is_punct('.') || prev.is_punct('&') || prev.is_punct('*'),
                _ => false,
            };
            if !chained {
                break;
            }
            m -= 1;
        }
        if m >= 3
            && self.tok(m - 1).is_punct('=')
            && self.tok(m - 2).kind == TokenKind::Ident
            && (self.tok(m - 3).is_ident("let")
                || (self.tok(m - 3).is_ident("mut") && m >= 4 && self.tok(m - 4).is_ident("let")))
        {
            (Some(self.tok(m - 2).text.clone()), false)
        } else {
            (None, true)
        }
    }

    /// If the token at `j` is a registered I/O call, returns its display
    /// name. Entries containing `::` match qualified paths; bare names
    /// match `.name(` method calls.
    fn io_call(&self, j: usize) -> Option<String> {
        let t = self.tok(j);
        for entry in &self.policy.io_calls {
            if entry.contains("::") {
                let segments: Vec<&str> = entry.split("::").filter(|s| !s.is_empty()).collect();
                if self.matches_path(j, &segments, entry.ends_with("::")) {
                    return Some(entry.trim_end_matches(':').to_owned());
                }
            } else if t.is_punct('.')
                && j + 2 < self.sig.len()
                && self.tok(j + 1).is_ident(entry)
                && self.tok(j + 2).is_punct('(')
            {
                return Some(entry.clone());
            }
        }
        None
    }

    /// `segments` joined by `::` starting at `sig[j]`; if
    /// `trailing_sep`, a `::` must follow the last segment.
    fn matches_path(&self, j: usize, segments: &[&str], trailing_sep: bool) -> bool {
        let mut k = j;
        for (i, seg) in segments.iter().enumerate() {
            if k >= self.sig.len() || !self.tok(k).is_ident(seg) {
                return false;
            }
            k += 1;
            let need_sep = i + 1 < segments.len() || trailing_sep;
            if need_sep {
                if k + 1 < self.sig.len()
                    && self.tok(k).is_punct(':')
                    && self.tok(k + 1).is_punct(':')
                {
                    k += 2;
                } else {
                    return false;
                }
            }
        }
        true
    }
}

/// Marks token index ranges covered by `#[cfg(test)]` items (and the
/// attribute itself), so test code is exempt from every rule.
fn test_ranges(tokens: &[Token]) -> Vec<bool> {
    let mut skip = vec![false; tokens.len()];
    let sig: Vec<usize> = (0..tokens.len())
        .filter(|&i| tokens[i].kind != TokenKind::LineComment)
        .collect();
    let mut j = 0usize;
    while j < sig.len() {
        if !(tokens[sig[j]].is_punct('#') && j + 1 < sig.len() && tokens[sig[j + 1]].is_punct('['))
        {
            j += 1;
            continue;
        }
        // Scan the attribute body for `cfg` … `test`.
        let attr_start = j;
        let mut k = j + 2;
        let mut nest = 1;
        let mut saw_cfg = false;
        let mut saw_test = false;
        while k < sig.len() && nest > 0 {
            let t = &tokens[sig[k]];
            if t.is_punct('[') {
                nest += 1;
            } else if t.is_punct(']') {
                nest -= 1;
            } else if t.is_ident("cfg") {
                saw_cfg = true;
            } else if t.is_ident("test") {
                saw_test = true;
            }
            k += 1;
        }
        if !(saw_cfg && saw_test) {
            j = k;
            continue;
        }
        // Skip any further attributes on the same item.
        while k + 1 < sig.len() && tokens[sig[k]].is_punct('#') && tokens[sig[k + 1]].is_punct('[')
        {
            let mut nest = 1;
            k += 2;
            while k < sig.len() && nest > 0 {
                if tokens[sig[k]].is_punct('[') {
                    nest += 1;
                } else if tokens[sig[k]].is_punct(']') {
                    nest -= 1;
                }
                k += 1;
            }
        }
        // The item: brace-delimited (mod/fn/impl) or `;`-terminated (use).
        while k < sig.len() && !tokens[sig[k]].is_punct('{') && !tokens[sig[k]].is_punct(';') {
            k += 1;
        }
        if k < sig.len() && tokens[sig[k]].is_punct('{') {
            let mut braces = 1;
            k += 1;
            while k < sig.len() && braces > 0 {
                if tokens[sig[k]].is_punct('{') {
                    braces += 1;
                } else if tokens[sig[k]].is_punct('}') {
                    braces -= 1;
                }
                k += 1;
            }
        } else if k < sig.len() {
            k += 1; // past the `;`
        }
        let from = sig[attr_start];
        let to = if k < sig.len() {
            sig[k - 1]
        } else {
            tokens.len() - 1
        };
        for slot in skip.iter_mut().take(to + 1).skip(from) {
            *slot = true;
        }
        j = k;
    }
    skip
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> Policy {
        Policy::parse(
            r#"
[rule.wallclock-in-deterministic-path]
allow = ["src/allowed"]

[rule.panic-in-worker-path]
paths = ["src/worker.rs"]

[rule.lock-discipline]
paths = ["src/worker.rs"]
families = ["stripe = shards, state", "registry = pins"]
acquire = ["lock_ignore_poison"]
io = ["File::", "std::fs", "flush"]
"#,
        )
        .expect("test policy parses")
    }

    fn errors(path: &str, src: &str) -> Vec<Finding> {
        let (findings, _) = lint_source(&policy(), path, src);
        findings
            .into_iter()
            .filter(|f| f.severity == Severity::Error)
            .collect()
    }

    #[test]
    fn wallclock_denied_by_default_allowed_by_policy() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(errors("src/other.rs", src).len(), 1);
        assert!(errors("src/allowed/lib.rs", src).is_empty());
        let sys = "fn f() { let t = std::time::SystemTime::now(); }";
        assert_eq!(errors("src/other.rs", sys).len(), 1);
    }

    #[test]
    fn panic_constructs_fire_only_on_registered_paths() {
        let src = "fn f(v: Vec<u32>) { v.get(0).unwrap(); v.first().expect(\"x\"); panic!(); }";
        assert_eq!(errors("src/worker.rs", src).len(), 3);
        assert!(errors("src/elsewhere.rs", src).is_empty());
    }

    #[test]
    fn indexing_fires_but_slice_patterns_do_not() {
        assert_eq!(
            errors("src/worker.rs", "fn f(v: Vec<u32>, i: usize) { v[i]; }").len(),
            1
        );
        assert!(errors(
            "src/worker.rs",
            "fn f(h: [u8; 2]) { let [a, b] = h; if let [x, y] = h {} }"
        )
        .is_empty());
        assert!(errors("src/worker.rs", "fn f() { let v = vec![1, 2]; }").is_empty());
        assert!(errors("src/worker.rs", "fn f(s: &[u8]) -> [u8; 4] { [0; 4] }").is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        assert!(errors(
            "src/worker.rs",
            "fn f(m: M) { m.lock().unwrap_or_else(|p| p.into_inner()); }"
        )
        .is_empty());
    }

    #[test]
    fn cfg_test_items_are_exempt() {
        let src = r#"
            fn prod() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Vec::<u32>::new().pop().unwrap(); panic!(); }
            }
        "#;
        assert!(errors("src/worker.rs", src).is_empty());
    }

    #[test]
    fn nested_lock_is_an_error_sequential_is_not() {
        let nested = r#"
            fn f(a: M, b: M) {
                let g = a.shards.lock().unwrap_or_else(|p| p.into_inner());
                let h = b.pins.lock().unwrap_or_else(|p| p.into_inner());
            }
        "#;
        let found = errors("src/worker.rs", nested);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("nested lock acquisition"));

        let sequential = r#"
            fn f(a: M, b: M) {
                { let g = a.shards.lock().unwrap_or_else(|p| p.into_inner()); }
                let h = b.pins.lock().unwrap_or_else(|p| p.into_inner());
            }
        "#;
        assert!(errors("src/worker.rs", sequential).is_empty());
    }

    #[test]
    fn drop_and_statement_end_release_guards() {
        let dropped = r#"
            fn f(a: M, b: M) {
                let g = a.state.lock().unwrap_or_else(|p| p.into_inner());
                drop(g);
                let h = b.pins.lock().unwrap_or_else(|p| p.into_inner());
            }
        "#;
        assert!(errors("src/worker.rs", dropped).is_empty());

        let transient = r#"
            fn f(a: M, b: M) {
                *a.state.lock().unwrap_or_else(|p| p.into_inner()) = 1;
                *b.pins.lock().unwrap_or_else(|p| p.into_inner()) = 2;
            }
        "#;
        assert!(errors("src/worker.rs", transient).is_empty());
    }

    #[test]
    fn acquire_helper_counts_as_a_lock() {
        let src = r#"
            fn f(a: M, b: M) {
                let g = lock_ignore_poison(&a.shards);
                let h = lock_ignore_poison(&b.pins);
            }
        "#;
        assert_eq!(errors("src/worker.rs", src).len(), 1);
    }

    #[test]
    fn io_under_a_guard_is_an_error() {
        let src = r#"
            fn f(a: M, w: W) {
                let g = a.state.lock().unwrap_or_else(|p| p.into_inner());
                w.flush();
            }
        "#;
        let found = errors("src/worker.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("I/O while"));

        let qualified = r#"
            fn f(a: M) {
                let g = a.state.lock().unwrap_or_else(|p| p.into_inner());
                let file = File::create("x");
                let meta = std::fs::metadata("y");
            }
        "#;
        assert_eq!(errors("src/worker.rs", qualified).len(), 2);
    }

    #[test]
    fn unregistered_receiver_is_a_warning() {
        let (findings, _) = lint_source(
            &policy(),
            "src/worker.rs",
            "fn f(x: M) { let g = x.mystery.lock().unwrap_or_else(|p| p.into_inner()); }",
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].severity, Severity::Warning);
        assert!(findings[0].message.contains("mystery"));
    }

    #[test]
    fn suppression_with_reason_covers_next_code_line() {
        let src = r#"
            fn f(v: Vec<u32>) {
                // lint:allow(panic-in-worker-path): index bounded by caller contract
                v[0];
            }
        "#;
        let (findings, used) = lint_source(&policy(), "src/worker.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(used, 1);
    }

    #[test]
    fn reasonless_unknown_and_unused_suppressions_are_errors() {
        let no_reason = "// lint:allow(panic-in-worker-path):\nfn f(v: Vec<u32>) { v[0]; }";
        let found = errors("src/worker.rs", no_reason);
        assert!(found.iter().any(|f| f.message.contains("no reason")));

        let unknown = "// lint:allow(not-a-rule): because\nfn f() {}";
        let found = errors("src/worker.rs", unknown);
        assert!(found.iter().any(|f| f.message.contains("unknown rule")));

        let unused =
            "// lint:allow(panic-in-worker-path): nothing here needs it\nfn f() { let x = 1; }";
        let found = errors("src/worker.rs", unused);
        assert!(found
            .iter()
            .any(|f| f.message.contains("unused suppression")));
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = r##"
            fn f() {
                let s = "Instant::now() v.unwrap() panic!";
                let r = r#"SystemTime::now()"#;
                // Instant::now() in prose
            }
        "##;
        assert!(errors("src/worker.rs", src).is_empty());
    }

    #[test]
    fn crate_hygiene_attrs() {
        let good = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub fn x() {}";
        assert!(check_crate_hygiene("src/lib.rs", good).is_empty());
        let bad = "#![forbid(unsafe_code)]\npub fn x() {}";
        let found = check_crate_hygiene("src/lib.rs", bad);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("deny(missing_docs)"));
    }
}
