//! Project-invariant static analysis for the Ocasta workspace
//! (`DESIGN.md §5.14`).
//!
//! `rustc` and clippy check Rust's invariants; this crate checks
//! *Ocasta's*. The reproduction's credibility rests on properties no
//! general-purpose linter knows about:
//!
//! * **Determinism** — engine, store, and service code must not read the
//!   wall clock; the VOPR's replayable-seed guarantee dies the moment a
//!   timestamp sneaks into a decision. The
//!   `wallclock-in-deterministic-path` rule denies `Instant::now()` /
//!   `SystemTime::now()` everywhere except the few module trees the
//!   policy allows (the obs timing seam, the benches).
//! * **Worker paths don't panic** — a panic inside an ingest worker, the
//!   WAL appender, or the retention sweeper poisons locks and cascades;
//!   those call graphs must return structured errors. The
//!   `panic-in-worker-path` rule bans `unwrap`/`expect`/`panic!`-family
//!   macros and direct indexing on the registered files.
//! * **Lock discipline** — the stripe locks and the pin registry have a
//!   documented order and must never be held across I/O. The
//!   `lock-discipline` rule tracks guards through each registered file
//!   and flags nested acquisition and I/O under a live guard.
//! * **Crate hygiene** — every workspace crate carries
//!   `#![forbid(unsafe_code)]` and `#![deny(missing_docs)]`, and every
//!   suppression carries a reason. The `crate-hygiene` rule enforces
//!   both, and flags suppressions that no longer suppress anything.
//!
//! The implementation is dependency-free in the workspace's offline
//! style: a hand-rolled Rust lexer (same spirit as `bench-compare`'s
//! structural JSON scanner) feeds token-sequence matchers, so nothing in
//! a string literal or comment can ever fire a rule. Scope comes from
//! the checked-in `lint.toml`; findings use the doctor's severity model
//! and the run exits non-zero on any Error.
//!
//! Run it as `cargo run -p ocasta-lint -- --workspace` or
//! `ocasta lint`; CI runs it with `--json` and fails on Errors.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod lexer;
pub mod policy;
pub mod report;
pub mod rules;
pub mod workspace;

pub use policy::{LockFamily, Policy, PolicyError};
pub use report::{Finding, LintReport, Severity};
pub use rules::{check_crate_hygiene, lint_source, RULES};
pub use workspace::{discover_members, lint_members, lint_workspace, Member};
