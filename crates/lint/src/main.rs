//! `ocasta-lint` — run the project-invariant lints over the workspace.
//!
//! ```text
//! ocasta-lint --workspace [--root <dir>] [--json]
//! ```
//!
//! Exit codes: 0 clean (warnings allowed), 1 at least one Error finding,
//! 2 usage or I/O problem.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use ocasta_lint::lint_workspace;

const USAGE: &str = "usage: ocasta-lint --workspace [--root <dir>] [--json]

Checks the Ocasta project invariants (see lint.toml):
  wallclock-in-deterministic-path  no Instant/SystemTime::now outside the allow list
  panic-in-worker-path             no unwrap/expect/panic!/indexing on worker paths
  lock-discipline                  no nested lock acquisition or I/O under a guard
  crate-hygiene                    crate attributes + suppression hygiene
";

fn main() -> ExitCode {
    let mut workspace = false;
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if !workspace {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    match lint_workspace(&root) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_table());
            }
            if report.has_errors() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(message) => {
            eprintln!("ocasta-lint: {message}");
            ExitCode::from(2)
        }
    }
}
