//! The checked-in lint policy (`lint.toml`): which invariant applies
//! where.
//!
//! The policy file is the contract between the rules and the codebase:
//! the **wallclock** rule denies by default and the policy lists the few
//! module trees allowed to read the clock; the **panic** and **lock**
//! rules apply only to the call graphs the policy registers (the engine
//! worker, WAL appender, and sweeper paths); lock receivers are grouped
//! into named **families** so the nesting check can tell a stripe lock
//! from the pin registry. Parsing is a hand-rolled TOML subset (sections,
//! string values, string arrays) in the same spirit as the rest of the
//! workspace's offline tooling — no dependency, no surprises, and any
//! unknown section or key is a hard error so a typo cannot silently
//! disable a rule.

use std::collections::BTreeMap;
use std::fmt;

/// A named group of lock receivers (`stripe`, `pin-registry`, …): the
/// identifiers that `.lock()` is called on in the registered files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockFamily {
    /// Family name, used in findings.
    pub name: String,
    /// Receiver identifiers that acquire this family's locks.
    pub receivers: Vec<String>,
}

/// The parsed policy: every rule's scope, as read from `lint.toml`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Policy {
    /// Path prefixes (workspace-relative, `/`-separated) where direct
    /// wall-clock reads are legitimate. Everything else is deterministic
    /// territory.
    pub wallclock_allow: Vec<String>,
    /// Files on the engine worker / WAL appender / sweeper call graphs,
    /// where panicking constructs must be structured errors instead.
    pub panic_paths: Vec<String>,
    /// Files whose lock usage is checked for nesting and held-across-I/O.
    pub lock_paths: Vec<String>,
    /// Registered lock families for the lock-discipline rule.
    pub lock_families: Vec<LockFamily>,
    /// Helper functions that acquire a lock on their first argument
    /// (e.g. `lock_ignore_poison`) — tracked like `.lock()` calls.
    pub acquire_fns: Vec<String>,
    /// Token patterns treated as I/O calls by the lock-discipline rule:
    /// `Type::` prefixes match qualified paths, bare names match method
    /// calls (`.name(`).
    pub io_calls: Vec<String>,
}

/// A policy-file syntax or schema problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyError {
    /// 1-based line in `lint.toml` (0 for schema-level problems).
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for PolicyError {}

impl Policy {
    /// Parses a policy file's text.
    ///
    /// # Errors
    ///
    /// [`PolicyError`] on syntax errors, unknown sections/keys, or a
    /// malformed family spec — unknowns are errors precisely so a typo
    /// cannot silently un-scope a rule.
    pub fn parse(text: &str) -> Result<Policy, PolicyError> {
        let raw = parse_toml_subset(text)?;
        let mut policy = Policy::default();
        for ((section, key), (line, values)) in raw {
            match (section.as_str(), key.as_str()) {
                ("rule.wallclock-in-deterministic-path", "allow") => {
                    policy.wallclock_allow = values;
                }
                ("rule.panic-in-worker-path", "paths") => policy.panic_paths = values,
                ("rule.lock-discipline", "paths") => policy.lock_paths = values,
                ("rule.lock-discipline", "families") => {
                    policy.lock_families = values
                        .iter()
                        .map(|spec| parse_family(spec, line))
                        .collect::<Result<_, _>>()?;
                }
                ("rule.lock-discipline", "acquire") => policy.acquire_fns = values,
                ("rule.lock-discipline", "io") => policy.io_calls = values,
                _ => {
                    return Err(PolicyError {
                        line,
                        message: format!("unknown policy entry `{key}` in `[{section}]`"),
                    });
                }
            }
        }
        Ok(policy)
    }

    /// `true` if `path` starts with any prefix in `prefixes`.
    pub fn path_matches(path: &str, prefixes: &[String]) -> bool {
        prefixes.iter().any(|p| path.starts_with(p.as_str()))
    }

    /// The family a lock receiver identifier belongs to, if registered.
    pub fn family_of(&self, receiver: &str) -> Option<&LockFamily> {
        self.lock_families
            .iter()
            .find(|f| f.receivers.iter().any(|r| r == receiver))
    }
}

/// `"name = recv, recv, …"` → a [`LockFamily`].
fn parse_family(spec: &str, line: u32) -> Result<LockFamily, PolicyError> {
    let (name, receivers) = spec.split_once('=').ok_or_else(|| PolicyError {
        line,
        message: format!("family spec `{spec}` must look like `name = receiver, receiver`"),
    })?;
    let receivers: Vec<String> = receivers
        .split(',')
        .map(|r| r.trim().to_owned())
        .filter(|r| !r.is_empty())
        .collect();
    if name.trim().is_empty() || receivers.is_empty() {
        return Err(PolicyError {
            line,
            message: format!("family spec `{spec}` needs a name and at least one receiver"),
        });
    }
    Ok(LockFamily {
        name: name.trim().to_owned(),
        receivers,
    })
}

type RawEntries = BTreeMap<(String, String), (u32, Vec<String>)>;

/// Parses the TOML subset the policy uses: `[section]` headers, `key =
/// "string"`, and `key = [ "a", "b", … ]` arrays (single- or multi-line,
/// `#` comments allowed). Returns `(section, key) → (line, values)`.
fn parse_toml_subset(text: &str) -> Result<RawEntries, PolicyError> {
    let mut entries = RawEntries::new();
    let mut section = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line_no = idx as u32 + 1;
        let line = strip_comment(raw).trim().to_owned();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header.strip_suffix(']').ok_or_else(|| PolicyError {
                line: line_no,
                message: "unterminated section header".into(),
            })?;
            section = header.trim().to_owned();
            continue;
        }
        let (key, value) = line.split_once('=').ok_or_else(|| PolicyError {
            line: line_no,
            message: format!("expected `key = value`, got `{line}`"),
        })?;
        let key = key.trim().to_owned();
        let mut value = value.trim().to_owned();
        if value.starts_with('[') && !value.ends_with(']') {
            // Multi-line array: keep consuming until the closing bracket.
            loop {
                let (_, next) = lines.next().ok_or_else(|| PolicyError {
                    line: line_no,
                    message: format!("unterminated array for key `{key}`"),
                })?;
                let next = strip_comment(next).trim().to_owned();
                value.push(' ');
                value.push_str(&next);
                if next.ends_with(']') {
                    break;
                }
            }
        }
        let values = parse_value(&value, line_no)?;
        entries.insert((section.clone(), key), (line_no, values));
    }
    Ok(entries)
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// `"x"` → `["x"]`; `[ "a", "b" ]` → `["a", "b"]`.
fn parse_value(value: &str, line: u32) -> Result<Vec<String>, PolicyError> {
    let unquote = |s: &str| -> Result<String, PolicyError> {
        let s = s.trim();
        s.strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .map(str::to_owned)
            .ok_or_else(|| PolicyError {
                line,
                message: format!("expected a quoted string, got `{s}`"),
            })
    };
    if let Some(inner) = value.strip_prefix('[') {
        let inner = inner.strip_suffix(']').ok_or_else(|| PolicyError {
            line,
            message: "unterminated array".into(),
        })?;
        split_elements(inner).into_iter().map(unquote).collect()
    } else {
        Ok(vec![unquote(value)?])
    }
}

/// Splits an array body on commas, but not the commas inside quoted
/// strings (`"stripe = shards, s"` is one element).
fn split_elements(inner: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut in_string = false;
    let mut start = 0usize;
    for (i, ch) in inner.char_indices() {
        match ch {
            '"' => in_string = !in_string,
            ',' if !in_string => {
                out.push(inner[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(inner[start..].trim());
    out.into_iter().filter(|s| !s.is_empty()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[rule.wallclock-in-deterministic-path]
allow = [
    "crates/obs/src", # trailing comment
    "crates/bench/src",
]

[rule.panic-in-worker-path]
paths = ["crates/fleet/src/engine.rs"]

[rule.lock-discipline]
paths = ["crates/fleet/src/shard.rs"]
families = [
    "stripe = shards, s, m",
    "pin-registry = pins",
]
acquire = ["lock_ignore_poison"]
io = ["File::", "flush"]
"#;

    #[test]
    fn sample_policy_round_trips() {
        let policy = Policy::parse(SAMPLE).expect("parses");
        assert_eq!(
            policy.wallclock_allow,
            vec!["crates/obs/src", "crates/bench/src"]
        );
        assert_eq!(policy.panic_paths, vec!["crates/fleet/src/engine.rs"]);
        assert_eq!(policy.lock_families.len(), 2);
        assert_eq!(policy.acquire_fns, vec!["lock_ignore_poison"]);
        assert_eq!(policy.family_of("m").expect("registered").name, "stripe");
        assert_eq!(
            policy.family_of("pins").expect("registered").name,
            "pin-registry"
        );
        assert!(policy.family_of("other").is_none());
        assert!(Policy::path_matches(
            "crates/obs/src/lib.rs",
            &policy.wallclock_allow
        ));
        assert!(!Policy::path_matches(
            "crates/fleet/src/engine.rs",
            &policy.wallclock_allow
        ));
    }

    #[test]
    fn unknown_keys_and_bad_specs_are_errors() {
        assert!(Policy::parse("[rule.wallclock-in-deterministic-path]\ndeny = [\"x\"]").is_err());
        assert!(Policy::parse("[rule.nope]\nallow = [\"x\"]").is_err());
        assert!(Policy::parse("[rule.lock-discipline]\nfamilies = [\"no-equals\"]").is_err());
        assert!(Policy::parse("key = unquoted").is_err());
        assert!(Policy::parse("[unterminated").is_err());
    }
}
