//! Findings, severities, and the human/machine renderings — the same
//! severity model `ocasta doctor` uses (`DESIGN.md §5.11`): `Error` means
//! the build must fail, `Warning` means someone should look.

use std::fmt;

/// How bad one finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth fixing, does not fail the build (e.g. an unregistered lock
    /// receiver the policy should classify).
    Warning,
    /// A broken invariant: the lint run (and CI) exits non-zero.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "ERROR"),
        }
    }
}

/// One rule violation at one source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier (`wallclock-in-deterministic-path`, …).
    pub rule: &'static str,
    /// Workspace-relative, `/`-separated file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// How bad it is.
    pub severity: Severity,
    /// Human-readable specifics.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}:{}:{} — {}",
            self.severity, self.rule, self.path, self.line, self.col, self.message
        )
    }
}

/// Everything one lint run produced, plus how much it scanned.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LintReport {
    /// Findings, sorted by path, then line, then column.
    pub findings: Vec<Finding>,
    /// Source files scanned.
    pub files_scanned: usize,
    /// Workspace crates whose hygiene (lint attributes) was checked.
    pub crates_checked: usize,
    /// Suppressions that matched at least one finding.
    pub suppressions_used: usize,
}

impl LintReport {
    /// Number of [`Severity::Error`] findings.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Number of [`Severity::Warning`] findings.
    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .count()
    }

    /// `true` when the run should exit non-zero.
    pub fn has_errors(&self) -> bool {
        self.errors() > 0
    }

    /// The human rendering: one line per finding, then a summary line.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        for finding in &self.findings {
            out.push_str(&finding.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} files, {} crates checked: {} error(s), {} warning(s), {} suppression(s) honoured\n",
            self.files_scanned,
            self.crates_checked,
            self.errors(),
            self.warnings(),
            self.suppressions_used,
        ));
        out
    }

    /// The machine rendering: a hand-rolled JSON document (the workspace
    /// carries no serde), stable field order, findings pre-sorted.
    pub fn render_json(&self) -> String {
        let mut findings = String::new();
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                findings.push_str(",\n");
            }
            findings.push_str(&format!(
                "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \
                 \"severity\": \"{}\", \"message\": \"{}\"}}",
                escape(f.rule),
                escape(&f.path),
                f.line,
                f.col,
                match f.severity {
                    Severity::Warning => "warning",
                    Severity::Error => "error",
                },
                escape(&f.message),
            ));
        }
        format!(
            "{{\n  \"files_scanned\": {},\n  \"crates_checked\": {},\n  \
             \"errors\": {},\n  \"warnings\": {},\n  \"suppressions_used\": {},\n  \
             \"findings\": [\n{}\n  ]\n}}\n",
            self.files_scanned,
            self.crates_checked,
            self.errors(),
            self.warnings(),
            self.suppressions_used,
            findings,
        )
    }

    /// Sorts findings into the stable reporting order.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule))
        });
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintReport {
        LintReport {
            findings: vec![
                Finding {
                    rule: "panic-in-worker-path",
                    path: "crates/fleet/src/engine.rs".into(),
                    line: 3,
                    col: 9,
                    severity: Severity::Error,
                    message: "`.unwrap()` on a registered panic path".into(),
                },
                Finding {
                    rule: "lock-discipline",
                    path: "crates/fleet/src/shard.rs".into(),
                    line: 7,
                    col: 1,
                    severity: Severity::Warning,
                    message: "unregistered lock receiver `x` — say \"which family\"".into(),
                },
            ],
            files_scanned: 2,
            crates_checked: 1,
            suppressions_used: 1,
        }
    }

    #[test]
    fn table_and_counts() {
        let report = sample();
        assert_eq!(report.errors(), 1);
        assert_eq!(report.warnings(), 1);
        assert!(report.has_errors());
        let table = report.render_table();
        assert!(table.contains("ERROR [panic-in-worker-path]"), "{table}");
        assert!(table.contains("engine.rs:3:9"), "{table}");
        assert!(table.contains("1 error(s), 1 warning(s)"), "{table}");
    }

    #[test]
    fn json_is_escaped_and_complete() {
        let json = sample().render_json();
        assert!(json.contains("\"errors\": 1"), "{json}");
        assert!(json.contains("\\\"which family\\\""), "{json}");
        assert!(json.contains("\"severity\": \"warning\""), "{json}");
    }
}
