//! Workspace discovery and the full lint run: find the members in the
//! root `Cargo.toml`, walk each member's `src/` tree, lint every file,
//! and check each crate root's hygiene attributes.
//!
//! `vendor/` members are skipped: the shims deliberately mirror external
//! crates' APIs (including their panicking corners) and are not Ocasta
//! code.

use std::fs;
use std::path::{Path, PathBuf};

use crate::policy::Policy;
use crate::report::LintReport;
use crate::rules::{check_crate_hygiene, lint_source};

/// A workspace member whose sources get linted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Member {
    /// Workspace-relative directory (`crates/fleet`, or `.` for the root
    /// package).
    pub rel_dir: String,
}

/// Reads the member list out of the root `Cargo.toml`, skipping
/// `vendor/` shims. The root package itself (the `[package]` section the
/// workspace manifest carries) is included as `.`.
///
/// # Errors
///
/// A message if the manifest cannot be read or has no `members` array.
pub fn discover_members(root: &Path) -> Result<Vec<Member>, String> {
    let manifest_path = root.join("Cargo.toml");
    let manifest = fs::read_to_string(&manifest_path)
        .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
    let mut members = Vec::new();
    if manifest.contains("[package]") {
        members.push(Member {
            rel_dir: ".".into(),
        });
    }
    // Line-anchored so `default-members = [` (which contains the same
    // substring) cannot match.
    let after = manifest
        .split_once("\nmembers = [")
        .ok_or("Cargo.toml has no `members = [` array")?
        .1;
    let list = after
        .split_once(']')
        .ok_or("unterminated `members` array in Cargo.toml")?
        .0;
    for entry in list.split(',') {
        let entry = entry.trim().trim_matches('"');
        if entry.is_empty() || entry.starts_with('#') || entry.starts_with("vendor/") {
            continue;
        }
        members.push(Member {
            rel_dir: entry.to_owned(),
        });
    }
    Ok(members)
}

/// Collects every `.rs` file under `dir`, recursively, sorted by path
/// for deterministic reports.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Loads `lint.toml` from the workspace root and lints every member.
///
/// # Errors
///
/// A message when the policy file is missing/invalid or the workspace
/// cannot be discovered; rule findings are *not* errors here — they come
/// back inside the report.
pub fn lint_workspace(root: &Path) -> Result<LintReport, String> {
    let policy_path = root.join("lint.toml");
    let policy_text = fs::read_to_string(&policy_path)
        .map_err(|e| format!("cannot read {}: {e}", policy_path.display()))?;
    let policy = Policy::parse(&policy_text).map_err(|e| e.to_string())?;
    lint_members(root, &policy, &discover_members(root)?)
}

/// Lints the given members against an already-parsed policy.
///
/// # Errors
///
/// A message when a source file cannot be read.
pub fn lint_members(
    root: &Path,
    policy: &Policy,
    members: &[Member],
) -> Result<LintReport, String> {
    let mut report = LintReport::default();
    for member in members {
        let src_dir = root.join(&member.rel_dir).join("src");
        let crate_root = src_dir.join("lib.rs");
        let mut saw_crate_root = false;
        for file in rust_files(&src_dir) {
            let source = fs::read_to_string(&file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            let rel = rel_path(root, &file);
            let (findings, used) = lint_source(policy, &rel, &source);
            report.findings.extend(findings);
            report.suppressions_used += used;
            report.files_scanned += 1;
            if file == crate_root {
                saw_crate_root = true;
                report.findings.extend(check_crate_hygiene(&rel, &source));
            }
        }
        if saw_crate_root {
            report.crates_checked += 1;
        }
    }
    report.sort();
    Ok(report)
}

/// `root`-relative, `/`-separated rendering of `path` (what the policy's
/// prefixes match against).
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let joined = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/");
    joined.strip_prefix("./").unwrap_or(&joined).to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_discovery_skips_vendor_and_keeps_root_package() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let members = discover_members(&root).expect("workspace manifest parses");
        let dirs: Vec<&str> = members.iter().map(|m| m.rel_dir.as_str()).collect();
        assert!(dirs.contains(&"."), "root package: {dirs:?}");
        assert!(dirs.contains(&"crates/fleet"), "{dirs:?}");
        assert!(dirs.contains(&"crates/lint"), "{dirs:?}");
        assert!(!dirs.iter().any(|d| d.starts_with("vendor/")), "{dirs:?}");
    }

    #[test]
    fn rel_paths_are_slash_separated_and_root_relative() {
        let root = Path::new("/work/repo");
        let file = Path::new("/work/repo/crates/fleet/src/engine.rs");
        assert_eq!(rel_path(root, file), "crates/fleet/src/engine.rs");
    }
}
