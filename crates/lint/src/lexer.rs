//! A small hand-rolled Rust lexer: just enough token structure for the
//! rule engine, with full string/char/comment awareness.
//!
//! The rules in this crate match **token sequences**, never raw text, so
//! `"Instant::now"` inside a string literal, a `// panic!` in a comment,
//! or an `unwrap` buried in a raw-string fixture can never fire a lint.
//! That is the same design point as `bench-compare`'s structural JSON
//! scanner: parse exactly the structure the checks need — here, the token
//! boundaries and literal/comment extents — and nothing more.
//!
//! What the lexer understands:
//!
//! * line comments (`//`, `///`, `//!`) — **kept** as tokens, because
//!   suppressions (`// lint:allow(rule): reason`) live in them;
//! * block comments (`/* … */`), nested per Rust's rules — skipped;
//! * string literals with escapes, byte strings, and raw (byte) strings
//!   with any `#` nesting depth (`r"…"`, `r##"…"##`, `br#"…"#`) —
//!   emitted as single [`TokenKind::Literal`] tokens;
//! * char literals vs lifetimes (`'x'` / `'\n'` vs `'a` in `&'a str`);
//! * numbers (including float/exponent forms), identifiers/keywords, and
//!   single-character punctuation.
//!
//! Every token carries its 1-based line and column, so findings point at
//! source the way compiler diagnostics do.

/// What kind of source atom a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `fn`, `Instant`, …).
    Ident,
    /// One punctuation character (`.`, `[`, `:`, `!`, …).
    Punct,
    /// A string/char/number/lifetime literal, emitted as one token.
    Literal,
    /// A line comment; [`Token::text`] holds the body after the `//`.
    LineComment,
}

/// One lexed token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token class.
    pub kind: TokenKind,
    /// Ident text, the punctuation character, or the comment body.
    /// Empty for literals (rules never match literal contents).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
}

impl Token {
    /// `true` for an identifier token with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// `true` for a punctuation token with exactly this character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }
}

/// Lexes `source` into a token stream; never fails (unterminated
/// literals and comments simply end at end-of-file).
pub fn lex(source: &str) -> Vec<Token> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
    source: std::marker::PhantomData<&'a str>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
            source: std::marker::PhantomData,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one character, tracking line/column.
    fn bump(&mut self) -> Option<char> {
        let ch = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if ch == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(ch)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(ch) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            if ch.is_whitespace() {
                self.bump();
            } else if ch == '/' && self.peek(1) == Some('/') {
                self.line_comment(line, col);
            } else if ch == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if ch == '"' {
                self.string_literal(line, col);
            } else if ch == '\'' {
                self.quote(line, col);
            } else if ch.is_ascii_digit() {
                self.number(line, col);
            } else if ch.is_alphabetic() || ch == '_' {
                self.ident_or_prefixed_literal(line, col);
            } else {
                self.bump();
                self.push(TokenKind::Punct, ch.to_string(), line, col);
            }
        }
        self.tokens
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        self.bump();
        self.bump(); // the two slashes
        let mut body = String::new();
        while let Some(ch) = self.peek(0) {
            if ch == '\n' {
                break;
            }
            body.push(ch);
            self.bump();
        }
        self.push(TokenKind::LineComment, body, line, col);
    }

    /// Skips a `/* … */` comment, honouring Rust's nesting.
    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// A `"…"` string with escapes; multi-line allowed.
    fn string_literal(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        while let Some(ch) = self.bump() {
            match ch {
                '\\' => {
                    self.bump(); // whatever is escaped, including `"` and `\`
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Literal, String::new(), line, col);
    }

    /// A raw (byte) string: the caller consumed the `r`/`br` prefix; this
    /// consumes `#*"` … `"#*` with matching hash depth.
    fn raw_string(&mut self, line: u32, col: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'scan: while let Some(ch) = self.bump() {
            if ch == '"' {
                for ahead in 0..hashes {
                    if self.peek(ahead) != Some('#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokenKind::Literal, String::new(), line, col);
    }

    /// `'` starts either a char literal or a lifetime.
    fn quote(&mut self, line: u32, col: u32) {
        self.bump(); // the quote
        match self.peek(0) {
            // `'\n'`, `'\''`, `'\u{1F980}'` — always a char literal.
            Some('\\') => {
                self.bump();
                self.bump(); // the escaped char (or the `u` of \u{…})
                while let Some(ch) = self.peek(0) {
                    self.bump();
                    if ch == '\'' {
                        break;
                    }
                }
                self.push(TokenKind::Literal, String::new(), line, col);
            }
            // `'x'` is a char; `'x` followed by anything else is a
            // lifetime (`&'a str`, `'static`, loop labels).
            Some(ch) if ch.is_alphanumeric() || ch == '_' => {
                if !ch.is_ascii_digit()
                    && self
                        .peek(1)
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    // Multi-char identifier after the quote: a lifetime or
                    // label. Consume the identifier run.
                    while self
                        .peek(0)
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
                    {
                        self.bump();
                    }
                    self.push(TokenKind::Literal, String::new(), line, col);
                } else if self.peek(1) == Some('\'') {
                    self.bump();
                    self.bump();
                    self.push(TokenKind::Literal, String::new(), line, col);
                } else {
                    // Single-letter lifetime: `'a`, `'_`.
                    self.bump();
                    self.push(TokenKind::Literal, String::new(), line, col);
                }
            }
            // Stray quote (macro land): emit as punctuation and move on.
            _ => self.push(TokenKind::Punct, "'".into(), line, col),
        }
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut prev = '0';
        while let Some(ch) = self.peek(0) {
            let take = ch.is_alphanumeric()
                || ch == '_'
                // `1.5` but not `1..4` (range) and not `1.method()`.
                || (ch == '.'
                    && self.peek(1).is_some_and(|c| c.is_ascii_digit())
                    && prev != '.')
                // Exponent sign: `1e-3`, `2.5E+10`.
                || ((ch == '+' || ch == '-')
                    && (prev == 'e' || prev == 'E')
                    && self.peek(1).is_some_and(|c| c.is_ascii_digit()));
            if !take {
                break;
            }
            prev = ch;
            self.bump();
        }
        self.push(TokenKind::Literal, String::new(), line, col);
    }

    fn ident_or_prefixed_literal(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(ch) = self.peek(0) {
            if ch.is_alphanumeric() || ch == '_' {
                text.push(ch);
                self.bump();
            } else {
                break;
            }
        }
        // `r"…"` / `r#"…"#` / `br#"…"#` raw strings and `b"…"` / `b'…'`
        // byte literals: the "identifier" was a literal prefix.
        match (text.as_str(), self.peek(0)) {
            ("r" | "br" | "rb", Some('"' | '#')) => self.raw_string(line, col),
            ("b", Some('"')) => self.string_literal(line, col),
            ("b", Some('\'')) => self.quote(line, col),
            _ => self.push(TokenKind::Ident, text, line, col),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(source: &str) -> Vec<String> {
        lex(source)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let s = "Instant::now() unwrap";
            /* panic!("no") */
            let r = r#"SystemTime::now() "quoted" inside"#;
            let b = b"unwrap";
            // only this comment survives as a token
        "##;
        let toks = lex(src);
        assert!(!idents(src).iter().any(|t| t == "unwrap" || t == "Instant"));
        let comments: Vec<&Token> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::LineComment)
            .collect();
        assert_eq!(comments.len(), 1);
        assert!(comments[0].text.contains("only this comment"));
    }

    #[test]
    fn raw_string_hash_depths_terminate_correctly() {
        let src = r###"let a = r##"ends "# not yet"##; let tail = 1;"###;
        let names = idents(src);
        assert_eq!(names, vec!["let", "a", "let", "tail"]);
    }

    #[test]
    fn chars_vs_lifetimes() {
        let src =
            "fn f<'a>(x: &'a str) { let c = 'x'; let esc = '\\''; 'outer: loop { break 'outer; } }";
        let names = idents(src);
        // Lifetime identifiers are folded into literal tokens, so `a`,
        // `outer` never appear as idents; the char literals lex cleanly.
        assert!(!names.iter().any(|t| t == "a" || t == "outer"));
        assert!(names.iter().any(|t| t == "break"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ fn after() {}";
        assert_eq!(idents(src), vec!["fn", "after"]);
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let toks = lex("for i in 1..4 { x(1.5e-3); (2).pow(3); }");
        let puncts: String = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert!(puncts.contains(".."), "range dots survive: {puncts}");
    }

    #[test]
    fn positions_are_one_based_and_accurate() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
