//! Corpus tests: each fixture file under `tests/fixtures/` exercises one
//! rule end-to-end through the public [`lint_source`] /
//! [`check_crate_hygiene`] API against a fixtures-scoped policy.
//!
//! The fixtures are never compiled — they are data, read with
//! `include_str!` — so they can reference undefined types and contain
//! deliberate violations without touching the workspace build.

use ocasta_lint::{check_crate_hygiene, lint_source, Finding, Policy, Severity};

const POLICY: &str = r#"
[rule.wallclock-in-deterministic-path]
allow = ["fixtures/allowed"]

[rule.panic-in-worker-path]
paths = [
    "fixtures/clean.rs",
    "fixtures/panic_paths.rs",
    "fixtures/suppressions.rs",
]

[rule.lock-discipline]
paths = ["fixtures/clean.rs", "fixtures/lock_discipline.rs"]
families = ["stripe = shards", "registry = pins"]
io = ["flush", "File::"]
"#;

fn policy() -> Policy {
    Policy::parse(POLICY).expect("fixture policy parses")
}

/// Lints one fixture, returning `(rule, line)` pairs of Error findings.
fn error_sites(path: &str, source: &str) -> Vec<(&'static str, u32)> {
    let (findings, _) = lint_source(&policy(), path, source);
    findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .map(|f| (f.rule, f.line))
        .collect()
}

#[test]
fn clean_fixture_has_no_findings() {
    let source = include_str!("fixtures/clean.rs");
    let (findings, used) = lint_source(&policy(), "fixtures/clean.rs", source);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(used, 0, "nothing to suppress in a clean file");
}

#[test]
fn wallclock_fixture_flags_both_clock_reads() {
    let source = include_str!("fixtures/wallclock.rs");
    assert_eq!(
        error_sites("fixtures/wallclock.rs", source),
        vec![
            ("wallclock-in-deterministic-path", 5),
            ("wallclock-in-deterministic-path", 6),
        ]
    );
}

#[test]
fn panic_fixture_flags_each_construct_and_exempts_tests() {
    let source = include_str!("fixtures/panic_paths.rs");
    assert_eq!(
        error_sites("fixtures/panic_paths.rs", source),
        vec![
            ("panic-in-worker-path", 5),  // .unwrap()
            ("panic-in-worker-path", 6),  // .expect()
            ("panic-in-worker-path", 8),  // panic!
            ("panic-in-worker-path", 10), // v[i]
        ]
    );
}

#[test]
fn panic_fixture_is_quiet_on_an_unregistered_path() {
    let source = include_str!("fixtures/panic_paths.rs");
    assert!(error_sites("fixtures/unregistered.rs", source).is_empty());
}

#[test]
fn lock_fixture_flags_nesting_and_io_under_guard() {
    let source = include_str!("fixtures/lock_discipline.rs");
    let sites = error_sites("fixtures/lock_discipline.rs", source);
    assert_eq!(
        sites,
        vec![("lock-discipline", 6), ("lock-discipline", 14)],
        "nested acquisition and flush-under-guard"
    );
}

#[test]
fn suppression_fixture_honours_reasons_and_flags_hygiene() {
    let source = include_str!("fixtures/suppressions.rs");
    let (findings, used) = lint_source(&policy(), "fixtures/suppressions.rs", source);
    assert_eq!(used, 1, "exactly the reasoned suppression is honoured");
    let mut sites: Vec<(&str, u32)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    sites.sort();
    assert_eq!(
        sites,
        vec![
            ("crate-hygiene", 11),        // unused suppression
            ("crate-hygiene", 17),        // reasonless suppression
            ("panic-in-worker-path", 18), // not covered by the reasonless one
        ],
        "{findings:?}"
    );
}

#[test]
fn hygiene_fixture_reports_the_missing_attribute() {
    let source = include_str!("fixtures/hygiene.rs");
    let findings: Vec<Finding> = check_crate_hygiene("fixtures/hygiene.rs", source);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("deny(missing_docs)"));
}
