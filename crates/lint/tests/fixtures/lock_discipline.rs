//! Lock-discipline violations: nesting and I/O under a live guard.

/// A `registry` lock taken while the `stripe` guard is live (line 6).
pub fn nested(a: &Stripes, b: &Registry) {
    let g = a.shards.lock().unwrap_or_else(|p| p.into_inner());
    let h = b.pins.lock().unwrap_or_else(|p| p.into_inner());
    drop(h);
    drop(g);
}

/// A flush while the stripe guard is live (line 14).
pub fn io_under_guard(a: &Stripes, w: &mut Sink) {
    let g = a.shards.lock().unwrap_or_else(|p| p.into_inner());
    w.flush();
    drop(g);
}
