//! Suppression hygiene: one honoured, one unused, one reasonless.

/// The indexing below is covered by a reasoned suppression.
pub fn covered(v: &[u32]) -> u32 {
    // lint:allow(panic-in-worker-path): index is bounded by the caller contract
    v[0]
}

/// This suppression matches nothing — itself an error (line 11).
pub fn stale() -> u32 {
    // lint:allow(panic-in-worker-path): nothing below actually panics
    7
}

/// A reasonless suppression is an error (line 17) and covers nothing.
pub fn reasonless(v: &[u32]) -> u32 {
    // lint:allow(panic-in-worker-path):
    v[0]
}
