//! Panicking constructs a registered worker path must not use.

/// Four violations: unwrap (5), expect (6), panic! (8), indexing (10).
pub fn bad(v: Vec<u32>, i: usize) -> u32 {
    let first = v.first().unwrap();
    let picked = v.get(i).expect("present");
    if i > v.len() {
        panic!("out of range");
    }
    first + picked + v[i]
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        Vec::<u32>::new().pop().unwrap();
        unreachable!("never flagged");
    }
}
