//! Reads the wall clock where determinism is required.

/// Two denied clock reads (lines 5 and 6).
pub fn naughty() -> u128 {
    let started = std::time::Instant::now();
    let _ = std::time::SystemTime::now();
    started.elapsed().as_nanos()
}
