//! A crate root that forgot half of its hygiene attributes.
#![forbid(unsafe_code)]

/// Fine on its own; the missing `#![deny(missing_docs)]` is the finding.
pub fn documented() {}
