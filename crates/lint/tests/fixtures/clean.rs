//! A file registered with every rule that violates none of them.

/// Doubles a number on the worker path without panicking.
pub fn double(x: u32) -> u32 {
    x.saturating_mul(2)
}

/// Mentions the forbidden constructs only in prose and strings.
pub fn prose() -> &'static str {
    "Instant::now() and v.unwrap() are only text here"
}

/// Sequential (non-nested) lock use with a transient guard.
pub fn sequential(a: &Stripes, b: &Registry) {
    *a.shards.lock().unwrap_or_else(|p| p.into_inner()) += 1;
    *b.pins.lock().unwrap_or_else(|p| p.into_inner()) += 1;
}
