//! The self-run gate: the checked-in tree must satisfy its own lints.
//!
//! This is the tier-1 enforcement point — `cargo test` fails the moment
//! a clock read, a panicking construct, a lock-discipline violation, or
//! a hygiene regression lands on a registered path, without waiting for
//! the CI lint job.

use std::path::Path;

use ocasta_lint::lint_workspace;

#[test]
fn the_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root).expect("workspace discovery and policy parse");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — discovery broke",
        report.files_scanned
    );
    assert!(
        report.crates_checked >= 11,
        "expected every non-vendor crate root, saw {}",
        report.crates_checked
    );
    assert_eq!(
        report.errors(),
        0,
        "the tree must lint clean:\n{}",
        report.render_table()
    );
}
