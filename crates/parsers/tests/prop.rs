//! Property-based tests: parser round-trips and differ laws.

use proptest::prelude::*;

use ocasta_parsers::{
    diff_flush, parse_ini, parse_json, parse_plain, parse_postscript, parse_xml, write_ini,
    write_json, write_plain, write_postscript, write_xml, FlatConfig, FlushChange, Node,
};
use ocasta_ttkv::Value;

/// Identifier-like key segment (valid in every format).
fn segment() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_]{0,8}".prop_map(|s| s)
}

/// Scalars every format can represent losslessly.
fn portable_scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<bool>().prop_map(Value::Bool),
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        "[A-Za-z][A-Za-z0-9_ .-]{0,12}[A-Za-z0-9]".prop_map(Value::from),
    ]
}

/// A two-level map document: what INI can represent losslessly.
fn two_level_doc() -> impl Strategy<Value = Node> {
    let leaf = (segment(), portable_scalar().prop_map(Node::Scalar));
    let section = (
        segment(),
        prop::collection::vec((segment(), portable_scalar().prop_map(Node::Scalar)), 1..5)
            .prop_map(dedup_entries)
            .prop_map(Node::Map),
    );
    (
        prop::collection::vec(leaf, 0..4).prop_map(dedup_entries),
        prop::collection::vec(section, 0..4).prop_map(dedup_entries),
    )
        .prop_map(|(mut scalars, sections)| {
            let names: std::collections::HashSet<_> =
                sections.iter().map(|(k, _)| k.clone()).collect();
            scalars.retain(|(k, _)| !names.contains(k));
            scalars.extend(sections);
            Node::Map(scalars)
        })
}

/// Arbitrary nested documents (JSON/XML/PostScript can hold structure).
fn nested_doc() -> impl Strategy<Value = Node> {
    let leaf = portable_scalar().prop_map(Node::Scalar);
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Node::Seq),
            prop::collection::vec((segment(), inner), 1..4)
                .prop_map(dedup_entries)
                .prop_map(Node::Map),
        ]
    })
    .prop_map(|body| Node::Map(vec![("root".to_owned(), body)]))
}

fn dedup_entries(entries: Vec<(String, Node)>) -> Vec<(String, Node)> {
    let mut seen = std::collections::HashSet::new();
    entries
        .into_iter()
        .filter(|(k, _)| seen.insert(k.clone()))
        .collect()
}

fn flat_config() -> impl Strategy<Value = FlatConfig> {
    prop::collection::btree_map(segment(), portable_scalar(), 0..12)
        .prop_map(|m| m.into_iter().collect())
}

proptest! {
    /// JSON round-trips arbitrary nested documents exactly.
    #[test]
    fn json_roundtrip(doc in nested_doc()) {
        let text = write_json(&doc);
        prop_assert_eq!(parse_json(&text).unwrap(), doc);
    }

    /// JSON round-trips arbitrary *strings* exactly (escaping law).
    #[test]
    fn json_string_roundtrip(s in "\\PC{0,40}") {
        let doc = Node::map([("k", Node::scalar(s))]);
        let text = write_json(&doc);
        prop_assert_eq!(parse_json(&text).unwrap(), doc);
    }

    /// INI round-trips two-level documents with portable scalars.
    #[test]
    fn ini_roundtrip(doc in two_level_doc()) {
        let text = write_ini(&doc);
        prop_assert_eq!(parse_ini(&text).unwrap(), doc);
    }

    /// Plain text round-trips at the flattened level.
    #[test]
    fn plain_roundtrip_flat(doc in two_level_doc()) {
        let text = write_plain(&doc);
        let reparsed = parse_plain(&text).unwrap();
        prop_assert_eq!(reparsed.flatten(), doc.flatten());
    }

    /// PostScript round-trips nested documents (strings, names, dicts,
    /// arrays).
    #[test]
    fn postscript_roundtrip(doc in nested_doc()) {
        // PostScript has no Seq-of-scalars / List distinction at parse time;
        // normalise by a first round-trip, then require a fixed point.
        let once = parse_postscript(&write_postscript(&doc)).unwrap();
        let twice = parse_postscript(&write_postscript(&once)).unwrap();
        prop_assert_eq!(once, twice);
    }

    /// XML round-trips map-shaped documents.
    #[test]
    fn xml_roundtrip(doc in nested_doc()) {
        // XML cannot represent a root-level Seq or scalar text with numeric
        // typing ambiguity; like PostScript, require a fixed point.
        let once = parse_xml(&write_xml(&doc)).unwrap();
        let twice = parse_xml(&write_xml(&once)).unwrap();
        prop_assert_eq!(once, twice);
    }

    /// parse → serialize → reparse is the identity on the node tree for
    /// every format that round-trips exactly: once a document has been
    /// parsed, writing it out and reading it back must reach a fixed
    /// point immediately (no drift across save/load cycles — the property
    /// the flush-diff logger depends on).
    #[test]
    fn ini_parse_serialize_reparse_is_identity(doc in two_level_doc()) {
        let parsed = parse_ini(&write_ini(&doc)).unwrap();
        let reparsed = parse_ini(&write_ini(&parsed)).unwrap();
        prop_assert_eq!(&reparsed, &parsed);
        // And the serialized text itself is stable.
        prop_assert_eq!(write_ini(&reparsed), write_ini(&parsed));
    }

    /// JSON: parse → serialize → reparse identity, including stable text.
    #[test]
    fn json_parse_serialize_reparse_is_identity(doc in nested_doc()) {
        let parsed = parse_json(&write_json(&doc)).unwrap();
        let reparsed = parse_json(&write_json(&parsed)).unwrap();
        prop_assert_eq!(&reparsed, &parsed);
        prop_assert_eq!(write_json(&reparsed), write_json(&parsed));
    }

    /// XML: after one normalising round-trip, serialize → reparse is the
    /// identity and the serialized text is stable.
    #[test]
    fn xml_parse_serialize_reparse_is_identity(doc in nested_doc()) {
        let parsed = parse_xml(&write_xml(&doc)).unwrap();
        let reparsed = parse_xml(&write_xml(&parsed)).unwrap();
        prop_assert_eq!(&reparsed, &parsed);
        prop_assert_eq!(write_xml(&reparsed), write_xml(&parsed));
    }

    /// A document diffed against itself is always empty, whatever its
    /// shape — nested or flat, any format-portable scalars.
    #[test]
    fn diff_of_document_against_itself_is_empty(doc in nested_doc()) {
        let flat = doc.flatten();
        prop_assert!(diff_flush(&flat, &flat.clone()).is_empty());
    }

    /// Same law for two-level (INI-shaped) documents.
    #[test]
    fn diff_of_two_level_document_against_itself_is_empty(doc in two_level_doc()) {
        let flat = doc.flatten();
        prop_assert!(diff_flush(&flat, &flat.clone()).is_empty());
    }

    /// diff(a, a) is empty; diff(a, b) mentions exactly the differing keys;
    /// applying the diff to `a` reproduces `b`.
    #[test]
    fn diff_laws(a in flat_config(), b in flat_config()) {
        prop_assert!(diff_flush(&a, &a.clone()).is_empty());

        let changes = diff_flush(&a, &b);
        // Replay the changes onto `a`.
        let mut replay = a.clone();
        for change in &changes {
            match change {
                FlushChange::Set { key, value } => {
                    replay.insert(key.clone(), value.clone());
                }
                FlushChange::Removed { key } => {
                    replay.remove(key);
                }
            }
        }
        prop_assert_eq!(replay, b);
    }
}
