//! Parse errors.

use std::fmt;

use crate::Format;

/// Error produced when a configuration document cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseConfigError {
    format: Format,
    line: usize,
    column: usize,
    message: String,
}

impl ParseConfigError {
    pub(crate) fn new(
        format: Format,
        line: usize,
        column: usize,
        message: impl Into<String>,
    ) -> Self {
        ParseConfigError {
            format,
            line,
            column,
            message: message.into(),
        }
    }

    /// The format the parser was expecting.
    pub fn format(&self) -> Format {
        self.format
    }

    /// 1-based line of the failure.
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based column of the failure.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Description of the problem.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid {} at line {}, column {}: {}",
            self.format, self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_location() {
        let e = ParseConfigError::new(Format::Json, 3, 14, "unexpected `}`");
        assert_eq!(
            e.to_string(),
            "invalid JSON at line 3, column 14: unexpected `}`"
        );
        assert_eq!(e.line(), 3);
        assert_eq!(e.column(), 14);
        assert_eq!(e.format(), Format::Json);
    }
}
