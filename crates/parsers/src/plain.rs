//! Plain-text parsing and emission: flat `key= value` lists (the paper's
//! "plain text" format class, §IV-B3).

use ocasta_ttkv::Value;

use crate::error::ParseConfigError;
use crate::node::Node;
use crate::Format;

/// Parses a flat `key = value` document into a [`Node`] tree (a single-level
/// map).
///
/// Supported syntax: one `key = value` per line, `#` comments, blank lines.
/// Unlike [`crate::parse_ini`], there are no sections: the key is taken
/// verbatim (it may itself contain dots or slashes, which stay part of the
/// key name).
///
/// # Errors
///
/// Returns a [`ParseConfigError`] for lines without a `=` separator.
///
/// # Examples
///
/// ```
/// use ocasta_parsers::parse_plain;
/// use ocasta_ttkv::Value;
///
/// let doc = parse_plain("toolbar.find=visible\nzoom= 1.5\n")?;
/// let flat = doc.flatten();
/// assert_eq!(flat.get("toolbar.find"), Some(&Value::from("visible")));
/// assert_eq!(flat.get("zoom"), Some(&Value::from(1.5)));
/// # Ok::<(), ocasta_parsers::ParseConfigError>(())
/// ```
pub fn parse_plain(input: &str) -> Result<Node, ParseConfigError> {
    let mut entries: Vec<(String, Node)> = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let sep = line.find('=').ok_or_else(|| {
            ParseConfigError::new(
                Format::PlainText,
                lineno,
                1,
                format!("expected `key= value`, found {line:?}"),
            )
        })?;
        let key = line[..sep].trim();
        if key.is_empty() {
            return Err(ParseConfigError::new(
                Format::PlainText,
                lineno,
                1,
                "empty key",
            ));
        }
        let value = Value::parse_token(line[sep + 1..].trim());
        match entries.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = Node::Scalar(value),
            None => entries.push((key.to_owned(), Node::Scalar(value))),
        }
    }
    Ok(Node::Map(entries))
}

/// Serialises a single-level map as a flat `key= value` document.
///
/// Nested structure (which plain text cannot represent) is flattened with
/// `/`-joined key paths first.
///
/// # Examples
///
/// ```
/// use ocasta_parsers::{parse_plain, write_plain, Node};
///
/// let doc = Node::map([("a", Node::scalar(1)), ("b", Node::scalar("x"))]);
/// assert_eq!(parse_plain(&write_plain(&doc))?, doc);
/// # Ok::<(), ocasta_parsers::ParseConfigError>(())
/// ```
pub fn write_plain(node: &Node) -> String {
    let mut out = String::new();
    for (key, value) in node.flatten().iter() {
        out.push_str(&format!("{key}= {value}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_pairs() {
        let flat = parse_plain("# comment\na= 1\nb = true\nc=text with spaces\n")
            .unwrap()
            .flatten();
        assert_eq!(flat.get("a"), Some(&Value::from(1)));
        assert_eq!(flat.get("b"), Some(&Value::from(true)));
        assert_eq!(flat.get("c"), Some(&Value::from("text with spaces")));
    }

    #[test]
    fn keys_are_verbatim_flat() {
        let doc = parse_plain("menu.bar.visible= false\n").unwrap();
        assert_eq!(doc.get("menu.bar.visible"), Some(&Node::scalar(false)));
    }

    #[test]
    fn rejects_separator_free_lines() {
        let err = parse_plain("a= 1\nnot a pair\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(parse_plain("= 1\n").is_err());
    }

    #[test]
    fn later_assignment_wins() {
        let flat = parse_plain("k= 1\nk= 2\n").unwrap().flatten();
        assert_eq!(flat.get("k"), Some(&Value::from(2)));
    }

    #[test]
    fn write_flattens_nesting() {
        let doc = Node::map([("outer", Node::map([("inner", Node::scalar(1))]))]);
        let text = write_plain(&doc);
        assert_eq!(text, "outer/inner= 1\n");
        let reparsed = parse_plain(&text).unwrap();
        assert_eq!(reparsed.flatten().get("outer/inner"), Some(&Value::from(1)));
    }
}
