//! The flush differ: inferring key-level writes from file snapshots.
//!
//! Applications with private configuration files "read the entire file into
//! an in-memory key-value store ... and flush the in-memory store back to
//! disk. To infer which keys are changed, Ocasta compares the files before
//! and after each flush" (§IV-B3). This module is that comparison.

use ocasta_ttkv::Value;

use crate::node::FlatConfig;

/// One inferred key-level change between two file snapshots.
#[derive(Debug, Clone, PartialEq)]
pub enum FlushChange {
    /// The key was added or its value changed.
    Set {
        /// Flattened key path.
        key: String,
        /// The new value.
        value: Value,
    },
    /// The key disappeared from the file.
    Removed {
        /// Flattened key path.
        key: String,
    },
}

impl FlushChange {
    /// The key path this change affects.
    pub fn key(&self) -> &str {
        match self {
            FlushChange::Set { key, .. } | FlushChange::Removed { key } => key,
        }
    }
}

/// Compares two flattened file snapshots and returns the inferred key-level
/// changes, sorted by key.
///
/// An empty result means the flush did not change any setting (applications
/// routinely rewrite files without changing content; those flushes must not
/// produce TTKV writes, or every key in the file would appear co-modified).
///
/// # Examples
///
/// ```
/// use ocasta_parsers::{diff_flush, parse_plain, FlushChange};
///
/// let before = parse_plain("a= 1\nb= 2\n")?.flatten();
/// let after  = parse_plain("a= 1\nb= 3\nc= 4\n")?.flatten();
/// let changes = diff_flush(&before, &after);
/// assert_eq!(changes.len(), 2);
/// assert_eq!(changes[0].key(), "b");
/// assert_eq!(changes[1].key(), "c");
/// # Ok::<(), ocasta_parsers::ParseConfigError>(())
/// ```
pub fn diff_flush(before: &FlatConfig, after: &FlatConfig) -> Vec<FlushChange> {
    let mut changes = Vec::new();
    for (key, value) in after.iter() {
        if before.get(key) != Some(value) {
            changes.push(FlushChange::Set {
                key: key.clone(),
                value: value.clone(),
            });
        }
    }
    for (key, _) in before.iter() {
        if !after.contains(key) {
            changes.push(FlushChange::Removed { key: key.clone() });
        }
    }
    changes.sort_by(|a, b| a.key().cmp(b.key()));
    changes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(pairs: &[(&str, i64)]) -> FlatConfig {
        pairs
            .iter()
            .map(|&(k, v)| (k.to_owned(), Value::from(v)))
            .collect()
    }

    #[test]
    fn identical_snapshots_produce_no_changes() {
        let a = flat(&[("x", 1), ("y", 2)]);
        assert!(diff_flush(&a, &a.clone()).is_empty());
    }

    #[test]
    fn detects_adds_changes_and_removes() {
        let before = flat(&[("keep", 1), ("change", 2), ("drop", 3)]);
        let after = flat(&[("keep", 1), ("change", 20), ("add", 4)]);
        let changes = diff_flush(&before, &after);
        assert_eq!(
            changes,
            vec![
                FlushChange::Set {
                    key: "add".into(),
                    value: Value::from(4)
                },
                FlushChange::Set {
                    key: "change".into(),
                    value: Value::from(20)
                },
                FlushChange::Removed { key: "drop".into() },
            ]
        );
    }

    #[test]
    fn empty_before_reports_all_as_sets() {
        let changes = diff_flush(&FlatConfig::new(), &flat(&[("a", 1)]));
        assert_eq!(changes.len(), 1);
        assert!(matches!(changes[0], FlushChange::Set { .. }));
    }

    #[test]
    fn empty_after_reports_all_as_removed() {
        let changes = diff_flush(&flat(&[("a", 1)]), &FlatConfig::new());
        assert_eq!(changes, vec![FlushChange::Removed { key: "a".into() }]);
    }
}
