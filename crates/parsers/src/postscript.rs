//! PostScript-style preference parsing and emission (the dictionary subset
//! used by Adobe Acrobat-era preference files).
//!
//! These files are sequences of `/Name value` pairs where values are
//! booleans, numbers, names, `(strings)`, `[arrays]` and `<< dictionaries >>`:
//!
//! ```text
//! /MenuBar true
//! /RecentFiles [ (a.pdf) (b.pdf) ]
//! /Toolbars << /Find true /Zoom false >>
//! ```

use ocasta_ttkv::Value;

use crate::cursor::Cursor;
use crate::error::ParseConfigError;
use crate::node::Node;
use crate::Format;

/// Parses a PostScript-style preference document into a [`Node`] tree.
///
/// The document is an implicit top-level dictionary: a sequence of
/// `/Key value` pairs. `%` starts a comment to end of line. Strings use
/// `(...)` with `\` escapes and balanced nested parentheses.
///
/// # Errors
///
/// Returns a [`ParseConfigError`] on stray values, unterminated strings,
/// arrays or dictionaries.
///
/// # Examples
///
/// ```
/// use ocasta_parsers::parse_postscript;
/// use ocasta_ttkv::Value;
///
/// let doc = parse_postscript("/MenuBar true\n/OpenCount 7\n")?;
/// let flat = doc.flatten();
/// assert_eq!(flat.get("MenuBar"), Some(&Value::from(true)));
/// assert_eq!(flat.get("OpenCount"), Some(&Value::from(7)));
/// # Ok::<(), ocasta_parsers::ParseConfigError>(())
/// ```
pub fn parse_postscript(input: &str) -> Result<Node, ParseConfigError> {
    let mut cur = Cursor::new(Format::PostScript, input);
    let entries = parse_dict_body(&mut cur, /*terminated:*/ false)?;
    Ok(Node::Map(entries))
}

fn skip_blanks(cur: &mut Cursor<'_>) {
    loop {
        cur.skip_whitespace();
        if cur.peek() == Some('%') {
            cur.take_while(|c| c != '\n');
        } else {
            return;
        }
    }
}

/// Parses `/Key value` pairs until end of input (`terminated == false`) or a
/// closing `>>` (`terminated == true`).
fn parse_dict_body(
    cur: &mut Cursor<'_>,
    terminated: bool,
) -> Result<Vec<(String, Node)>, ParseConfigError> {
    let mut entries = Vec::new();
    loop {
        skip_blanks(cur);
        match cur.peek() {
            None if !terminated => return Ok(entries),
            None => return Err(cur.error("unterminated dictionary")),
            Some('>') if terminated => {
                cur.next();
                cur.expect('>')?;
                return Ok(entries);
            }
            Some('/') => {
                cur.next();
                let name = read_ps_name(cur)?;
                skip_blanks(cur);
                let value = parse_ps_value(cur)?;
                entries.push((name, value));
            }
            Some(c) => return Err(cur.error(format!("expected `/Name`, found `{c}`"))),
        }
    }
}

fn parse_ps_value(cur: &mut Cursor<'_>) -> Result<Node, ParseConfigError> {
    skip_blanks(cur);
    match cur.peek() {
        Some('(') => Ok(Node::Scalar(Value::Str(parse_ps_string(cur)?))),
        Some('[') => {
            cur.next();
            let mut items = Vec::new();
            loop {
                skip_blanks(cur);
                match cur.peek() {
                    Some(']') => {
                        cur.next();
                        return Ok(Node::Seq(items));
                    }
                    Some(_) => items.push(parse_ps_value(cur)?),
                    None => return Err(cur.error("unterminated array")),
                }
            }
        }
        Some('<') => {
            cur.next();
            cur.expect('<')?;
            let entries = parse_dict_body(cur, true)?;
            Ok(Node::Map(entries))
        }
        Some('/') => {
            cur.next();
            // A name used as a value (an enumerated constant).
            Ok(Node::Scalar(Value::Str(format!("/{}", read_ps_name(cur)?))))
        }
        Some(c) if c == '-' || c == '+' || c.is_ascii_digit() => {
            let text = cur.take_while(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.'));
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Node::Scalar(Value::Int(i)));
            }
            text.parse::<f64>()
                .map(|f| Node::Scalar(Value::Float(f)))
                .map_err(|_| cur.error(format!("invalid number `{text}`")))
        }
        Some(c) if c.is_ascii_alphabetic() => {
            let word = cur.take_while(|c| c.is_ascii_alphanumeric());
            match word.as_str() {
                "true" => Ok(Node::Scalar(Value::Bool(true))),
                "false" => Ok(Node::Scalar(Value::Bool(false))),
                "null" => Ok(Node::Scalar(Value::Null)),
                other => Err(cur.error(format!("unknown token `{other}`"))),
            }
        }
        Some(c) => Err(cur.error(format!("unexpected character `{c}`"))),
        None => Err(cur.error("expected a value, found end of input")),
    }
}

fn parse_ps_string(cur: &mut Cursor<'_>) -> Result<String, ParseConfigError> {
    cur.expect('(')?;
    let mut out = String::new();
    let mut depth = 1usize;
    loop {
        match cur.next() {
            Some('\\') => match cur.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some(c @ ('(' | ')' | '\\')) => out.push(c),
                Some(c) => {
                    out.push('\\');
                    out.push(c);
                }
                None => return Err(cur.error("unterminated string")),
            },
            Some('(') => {
                depth += 1;
                out.push('(');
            }
            Some(')') => {
                depth -= 1;
                if depth == 0 {
                    return Ok(out);
                }
                out.push(')');
            }
            Some(c) => out.push(c),
            None => return Err(cur.error("unterminated string")),
        }
    }
}

fn read_ps_name(cur: &mut Cursor<'_>) -> Result<String, ParseConfigError> {
    let name = cur.take_while(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'));
    if name.is_empty() {
        Err(cur.error("expected a name after `/`"))
    } else {
        Ok(name)
    }
}

/// Serialises a [`Node`] tree as a PostScript-style preference document.
///
/// The root must be a map (it becomes the implicit top-level dictionary);
/// scalars and sequences at the root are wrapped under a `/Value` key.
///
/// # Examples
///
/// ```
/// use ocasta_parsers::{parse_postscript, write_postscript, Node};
///
/// let doc = Node::map([("MenuBar", Node::scalar(true))]);
/// assert_eq!(parse_postscript(&write_postscript(&doc))?, doc);
/// # Ok::<(), ocasta_parsers::ParseConfigError>(())
/// ```
pub fn write_postscript(node: &Node) -> String {
    let mut out = String::new();
    match node {
        Node::Map(entries) => {
            for (key, value) in entries {
                out.push('/');
                out.push_str(key);
                out.push(' ');
                write_ps_value(value, &mut out);
                out.push('\n');
            }
        }
        other => {
            out.push_str("/Value ");
            write_ps_value(other, &mut out);
            out.push('\n');
        }
    }
    out
}

fn write_ps_value(node: &Node, out: &mut String) {
    match node {
        Node::Scalar(Value::Null) => out.push_str("null"),
        Node::Scalar(Value::Bool(b)) => out.push_str(if *b { "true" } else { "false" }),
        Node::Scalar(Value::Int(i)) => out.push_str(&i.to_string()),
        Node::Scalar(Value::Float(f)) => out.push_str(&format!("{f:?}")),
        Node::Scalar(Value::Str(s)) => {
            if let Some(name) = s.strip_prefix('/') {
                out.push('/');
                out.push_str(name);
            } else {
                write_ps_string(s, out);
            }
        }
        Node::Scalar(Value::List(items)) => {
            out.push_str("[ ");
            for item in items {
                write_ps_value(&Node::Scalar(item.clone()), out);
                out.push(' ');
            }
            out.push(']');
        }
        Node::Seq(items) => {
            out.push_str("[ ");
            for item in items {
                write_ps_value(item, out);
                out.push(' ');
            }
            out.push(']');
        }
        Node::Map(entries) => {
            out.push_str("<< ");
            for (key, value) in entries {
                out.push('/');
                out.push_str(key);
                out.push(' ');
                write_ps_value(value, out);
                out.push(' ');
            }
            out.push_str(">>");
        }
    }
}

fn write_ps_string(s: &str, out: &mut String) {
    out.push('(');
    for c in s.chars() {
        match c {
            '(' | ')' | '\\' => {
                out.push('\\');
                out.push(c);
            }
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push(')');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_acrobat_like_prefs() {
        let text = "\
% Acrobat-style preferences
/MenuBar true
/OpenCount 12
/Zoom 1.5
/RecentFiles [ (report.pdf) (slides.pdf) ]
/Toolbars << /Find true /SelectZoom false >>
/PageMode /UseThumbs
";
        let flat = parse_postscript(text).unwrap().flatten();
        assert_eq!(flat.get("MenuBar"), Some(&Value::from(true)));
        assert_eq!(flat.get("OpenCount"), Some(&Value::from(12)));
        assert_eq!(flat.get("Zoom"), Some(&Value::from(1.5)));
        assert_eq!(
            flat.get("RecentFiles"),
            Some(&Value::List(vec![
                Value::from("report.pdf"),
                Value::from("slides.pdf")
            ]))
        );
        assert_eq!(flat.get("Toolbars/Find"), Some(&Value::from(true)));
        assert_eq!(flat.get("PageMode"), Some(&Value::from("/UseThumbs")));
    }

    #[test]
    fn nested_parens_in_strings() {
        let doc = parse_postscript("/Name (outer (inner) text \\(escaped\\))\n").unwrap();
        assert_eq!(
            doc.get("Name"),
            Some(&Node::scalar("outer (inner) text (escaped)"))
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "/Key",               // missing value
            "stray",              // value with no key
            "/Key (unterminated", // string
            "/Key [ 1 2",         // array
            "/Key << /A 1",       // dict
            "/ 5",                // empty name
        ] {
            assert!(parse_postscript(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn comments_are_skipped_anywhere() {
        let flat = parse_postscript("% header\n/A 1 % trailing\n/B 2\n")
            .unwrap()
            .flatten();
        assert_eq!(flat.get("A"), Some(&Value::from(1)));
        assert_eq!(flat.get("B"), Some(&Value::from(2)));
    }

    #[test]
    fn writer_roundtrips() {
        let doc = Node::map([
            ("Flag", Node::scalar(false)),
            ("Count", Node::scalar(-3)),
            ("Ratio", Node::scalar(0.25)),
            ("Title", Node::scalar("with (parens) \\ and \n newline")),
            ("Mode", Node::scalar("/FullScreen")),
            (
                "Files",
                Node::Seq(vec![Node::scalar("a.pdf"), Node::scalar("b.pdf")]),
            ),
            (
                "Sub",
                Node::map([
                    ("Inner", Node::scalar(1)),
                    ("Deep", Node::map([("X", Node::scalar(true))])),
                ]),
            ),
        ]);
        let text = write_postscript(&doc);
        assert_eq!(parse_postscript(&text).unwrap(), doc);
    }
}
