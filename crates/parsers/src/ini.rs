//! INI parsing and emission (hierarchical `key = value` files, e.g. GTK and
//! Evolution settings files).
//!
//! The paper's taxonomy calls a `key=value` file *INI* when the keys are
//! hierarchical (sections) and *plain text* when flat (§IV-B3).

use ocasta_ttkv::Value;

use crate::error::ParseConfigError;
use crate::node::Node;
use crate::Format;

/// Parses an INI document into a [`Node`] tree.
///
/// Supported syntax:
///
/// * `[section]` and `[nested.section]` headers (dot-separated nesting);
/// * `key = value` and `key: value` assignments;
/// * `;` and `#` comment lines, and blank lines;
/// * values parsed as bool/int/float when unambiguous, else strings;
/// * `a, b, c` comma lists become [`Value::List`] when a value contains an
///   unquoted comma;
/// * quoted values (`key = "exact text"`) keep commas and spaces verbatim.
///
/// # Errors
///
/// Returns a [`ParseConfigError`] on unterminated section headers or lines
/// that are neither assignments, comments, headers, nor blank.
///
/// # Examples
///
/// ```
/// use ocasta_parsers::parse_ini;
/// use ocasta_ttkv::Value;
///
/// let doc = parse_ini("[mail.display]\nmark_seen = true\nmark_seen_timeout = 1500\n")?;
/// let flat = doc.flatten();
/// assert_eq!(flat.get("mail/display/mark_seen"), Some(&Value::from(true)));
/// # Ok::<(), ocasta_parsers::ParseConfigError>(())
/// ```
pub fn parse_ini(input: &str) -> Result<Node, ParseConfigError> {
    let mut root: Vec<(String, Node)> = Vec::new();
    let mut section_path: Vec<String> = Vec::new();

    for (idx, raw_line) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with(';') || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let inner = rest.strip_suffix(']').ok_or_else(|| {
                ParseConfigError::new(
                    Format::Ini,
                    lineno,
                    line.len(),
                    "unterminated section header",
                )
            })?;
            let inner = inner.trim();
            if inner.is_empty() {
                return Err(ParseConfigError::new(
                    Format::Ini,
                    lineno,
                    1,
                    "empty section name",
                ));
            }
            section_path = inner.split('.').map(|s| s.trim().to_owned()).collect();
            // Materialise the section even if empty.
            ensure_map(&mut root, &section_path);
            continue;
        }
        let sep = line
            .char_indices()
            .find(|&(_, c)| c == '=' || c == ':')
            .map(|(i, _)| i)
            .ok_or_else(|| {
                ParseConfigError::new(
                    Format::Ini,
                    lineno,
                    1,
                    format!("expected `key = value`, found {line:?}"),
                )
            })?;
        let key = line[..sep].trim();
        if key.is_empty() {
            return Err(ParseConfigError::new(Format::Ini, lineno, 1, "empty key"));
        }
        let value = parse_ini_value(line[sep + 1..].trim());
        let mut path = section_path.clone();
        path.push(key.to_owned());
        insert(&mut root, &path, Node::Scalar(value));
    }
    Ok(Node::Map(root))
}

fn parse_ini_value(text: &str) -> Value {
    if let Some(inner) = text
        .strip_prefix('"')
        .and_then(|rest| rest.strip_suffix('"'))
    {
        return Value::Str(inner.to_owned());
    }
    if text.contains(',') {
        return Value::List(
            text.split(',')
                .map(|v| Value::parse_token(v.trim()))
                .collect(),
        );
    }
    Value::parse_token(text)
}

/// Walks/creates nested maps along `path[..path.len()-1]` and inserts the
/// node at the final segment (replacing an existing entry of the same name).
fn insert(entries: &mut Vec<(String, Node)>, path: &[String], node: Node) {
    let (head, rest) = path.split_first().expect("insert path is non-empty");
    if rest.is_empty() {
        if let Some(slot) = entries.iter_mut().find(|(k, _)| k == head) {
            slot.1 = node;
        } else {
            entries.push((head.clone(), node));
        }
        return;
    }
    let child = match entries
        .iter_mut()
        .position(|(k, v)| k == head && matches!(v, Node::Map(_)))
    {
        Some(pos) => &mut entries[pos].1,
        None => {
            entries.push((head.clone(), Node::Map(Vec::new())));
            &mut entries.last_mut().expect("just pushed").1
        }
    };
    if let Node::Map(inner) = child {
        insert(inner, rest, node);
    }
}

fn ensure_map(entries: &mut Vec<(String, Node)>, path: &[String]) {
    if path.is_empty() {
        return;
    }
    let (head, rest) = path.split_first().expect("checked non-empty");
    let child = match entries
        .iter_mut()
        .position(|(k, v)| k == head && matches!(v, Node::Map(_)))
    {
        Some(pos) => &mut entries[pos].1,
        None => {
            entries.push((head.clone(), Node::Map(Vec::new())));
            &mut entries.last_mut().expect("just pushed").1
        }
    };
    if let Node::Map(inner) = child {
        ensure_map(inner, rest);
    }
}

/// Serialises a [`Node`] tree as an INI document.
///
/// Nested maps become dotted section headers; only two levels of nesting are
/// representable losslessly (section + key); deeper maps flatten into dotted
/// section names.
///
/// # Examples
///
/// ```
/// use ocasta_parsers::{parse_ini, write_ini, Node};
///
/// let doc = Node::map([("ui", Node::map([("theme", Node::scalar("dark"))]))]);
/// let text = write_ini(&doc);
/// assert_eq!(parse_ini(&text)?, doc);
/// # Ok::<(), ocasta_parsers::ParseConfigError>(())
/// ```
pub fn write_ini(node: &Node) -> String {
    let mut out = String::new();
    if let Node::Map(entries) = node {
        // Top-level scalars first (no section header).
        for (key, value) in entries {
            if let Node::Scalar(v) = value {
                out.push_str(&format!("{key} = {}\n", format_ini_value(v)));
            }
        }
        for (key, value) in entries {
            write_section(key, value, &mut out);
        }
    }
    out
}

fn write_section(path: &str, node: &Node, out: &mut String) {
    match node {
        Node::Scalar(_) => {}
        Node::Map(entries) => {
            let scalars: Vec<_> = entries
                .iter()
                .filter_map(|(k, v)| match v {
                    Node::Scalar(s) => Some((k, s)),
                    _ => None,
                })
                .collect();
            if !scalars.is_empty() || entries.is_empty() {
                out.push_str(&format!("[{path}]\n"));
                for (k, v) in scalars {
                    out.push_str(&format!("{k} = {}\n", format_ini_value(v)));
                }
            }
            for (k, v) in entries {
                if matches!(v, Node::Map(_)) {
                    write_section(&format!("{path}.{k}"), v, out);
                }
            }
        }
        Node::Seq(items) => {
            // Sequences degrade to a comma list under a synthetic key.
            let rendered: Vec<String> = items
                .iter()
                .map(|n| match n {
                    Node::Scalar(v) => format_ini_value(v),
                    _ => String::from("?"),
                })
                .collect();
            out.push_str(&format!("{path} = {}\n", rendered.join(", ")));
        }
    }
}

fn format_ini_value(value: &Value) -> String {
    match value {
        Value::Str(s)
            if s.is_empty()
                || s.contains(',')
                || s.as_str() != s.trim()
                || !matches!(Value::parse_token(s), Value::Str(_)) =>
        {
            // Quote anything a naive reparse would mangle: padding, commas,
            // or text that would lex as a bool/number.
            format!("\"{s}\"")
        }
        Value::List(items) => items
            .iter()
            .map(format_ini_value)
            .collect::<Vec<_>>()
            .join(", "),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_types() {
        let text = "\
; Evolution-like settings
top = 1
[mail]
mark_seen = true
timeout = 1.5
[mail.composer]
reply_style : quoted
";
        let flat = parse_ini(text).unwrap().flatten();
        assert_eq!(flat.get("top"), Some(&Value::from(1)));
        assert_eq!(flat.get("mail/mark_seen"), Some(&Value::from(true)));
        assert_eq!(flat.get("mail/timeout"), Some(&Value::from(1.5)));
        assert_eq!(
            flat.get("mail/composer/reply_style"),
            Some(&Value::from("quoted"))
        );
    }

    #[test]
    fn comma_lists_and_quotes() {
        let flat = parse_ini("plugins = a, b, c\nliteral = \"x, y\"\n")
            .unwrap()
            .flatten();
        assert_eq!(
            flat.get("plugins"),
            Some(&Value::List(vec![
                Value::from("a"),
                Value::from("b"),
                Value::from("c")
            ]))
        );
        assert_eq!(flat.get("literal"), Some(&Value::from("x, y")));
    }

    #[test]
    fn later_assignment_wins() {
        let flat = parse_ini("k = 1\nk = 2\n").unwrap().flatten();
        assert_eq!(flat.get("k"), Some(&Value::from(2)));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_ini("[unterminated\n").is_err());
        assert!(parse_ini("[]\n").is_err());
        assert!(parse_ini("just some words\n").is_err());
        assert!(parse_ini("= nokey\n").is_err());
    }

    #[test]
    fn empty_sections_survive() {
        let doc = parse_ini("[empty]\n").unwrap();
        assert_eq!(doc.get("empty"), Some(&Node::Map(vec![])));
    }

    #[test]
    fn writer_roundtrips() {
        let doc = Node::map([
            ("global", Node::scalar(5)),
            (
                "ui",
                Node::map([
                    ("theme", Node::scalar("dark")),
                    ("zoom", Node::scalar(1.25)),
                    ("panel", Node::map([("visible", Node::scalar(true))])),
                ]),
            ),
        ]);
        let text = write_ini(&doc);
        assert_eq!(parse_ini(&text).unwrap(), doc);
    }

    #[test]
    fn quoted_writer_values_roundtrip() {
        let doc = Node::map([
            ("tricky", Node::scalar("has, comma")),
            ("boolish", Node::scalar("true")),
        ]);
        // "true" the *string* must come back as a string, not a bool.
        let text = write_ini(&doc);
        let reparsed = parse_ini(&text).unwrap();
        assert_eq!(reparsed, doc);
    }
}
