//! # ocasta-parsers — configuration-file loggers
//!
//! Parsers for the five configuration-file formats the
//! [Ocasta](https://arxiv.org/abs/1711.04030) prototype supports — JSON,
//! XML, INI, plain text and PostScript-style preference files — plus the
//! *flush differ* that converts before/after file snapshots into key-level
//! write and delete events (the application-file logger of §IV-B3).
//!
//! Every parser produces the same [`Node`] tree, which [`Node::flatten`]
//! turns into a flat `key path → value` map ([`FlatConfig`]); matching
//! writers re-emit trees so synthetic workloads can generate realistic
//! configuration files.
//!
//! ```
//! use ocasta_parsers::{detect_format, diff_flush, parse, Format};
//!
//! let before = parse(Format::Json, r#"{"toolbar": {"home": true}}"#)?.flatten();
//! let text_after = r#"{"toolbar": {"home": false}}"#;
//! assert_eq!(detect_format(text_after), Some(Format::Json));
//! let after = parse(Format::Json, text_after)?.flatten();
//!
//! let changes = diff_flush(&before, &after);
//! assert_eq!(changes.len(), 1);
//! assert_eq!(changes[0].key(), "toolbar/home");
//! # Ok::<(), ocasta_parsers::ParseConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod cursor;
mod diff;
mod error;
mod ini;
mod json;
mod node;
mod plain;
mod postscript;
mod xml;

pub use diff::{diff_flush, FlushChange};
pub use error::ParseConfigError;
pub use ini::{parse_ini, write_ini};
pub use json::{parse_json, write_json};
pub use node::{FlatConfig, Node};
pub use plain::{parse_plain, write_plain};
pub use postscript::{parse_postscript, write_postscript};
pub use xml::{parse_xml, write_xml};

use std::fmt;

/// The configuration-file formats the logger supports (§IV-B3: "JSON, XML,
/// PostScript, or one of two key-value lists ... which we called INI if it
/// is hierarchical and plain text if it is flat").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// RFC 8259 JSON (Chrome preferences, bookmarks).
    Json,
    /// XML configuration documents (GConf-style).
    Xml,
    /// Hierarchical `key = value` with `[sections]`.
    Ini,
    /// Flat `key= value` lines.
    PlainText,
    /// PostScript-style `/Key value` preference files (Acrobat).
    PostScript,
}

impl Format {
    /// All supported formats.
    pub const ALL: [Format; 5] = [
        Format::Json,
        Format::Xml,
        Format::Ini,
        Format::PlainText,
        Format::PostScript,
    ];
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Format::Json => "JSON",
            Format::Xml => "XML",
            Format::Ini => "INI",
            Format::PlainText => "plain text",
            Format::PostScript => "PostScript",
        })
    }
}

/// Parses `input` as the given format.
///
/// # Errors
///
/// Returns the underlying parser's [`ParseConfigError`].
pub fn parse(format: Format, input: &str) -> Result<Node, ParseConfigError> {
    match format {
        Format::Json => parse_json(input),
        Format::Xml => parse_xml(input),
        Format::Ini => parse_ini(input),
        Format::PlainText => parse_plain(input),
        Format::PostScript => parse_postscript(input),
    }
}

/// Serialises `node` in the given format.
pub fn write(format: Format, node: &Node) -> String {
    match format {
        Format::Json => write_json(node),
        Format::Xml => write_xml(node),
        Format::Ini => write_ini(node),
        Format::PlainText => write_plain(node),
        Format::PostScript => write_postscript(node),
    }
}

/// Guesses the format of a configuration document from its content.
///
/// Returns `None` for content that matches no supported format. Detection is
/// heuristic (first significant character plus line shape) but sufficient for
/// the loggers, which mostly know the format from the file extension anyway.
///
/// # Examples
///
/// ```
/// use ocasta_parsers::{detect_format, Format};
///
/// assert_eq!(detect_format("{\"a\": 1}"), Some(Format::Json));
/// assert_eq!(detect_format("<cfg><a>1</a></cfg>"), Some(Format::Xml));
/// assert_eq!(detect_format("[ui]\ntheme = dark\n"), Some(Format::Ini));
/// assert_eq!(detect_format("/MenuBar true\n"), Some(Format::PostScript));
/// assert_eq!(detect_format("zoom= 1.5\n"), Some(Format::PlainText));
/// assert_eq!(detect_format("!!!"), None);
/// ```
pub fn detect_format(input: &str) -> Option<Format> {
    let trimmed = input.trim_start();
    match trimmed.chars().next()? {
        '{' | '"' => return Some(Format::Json),
        '<' => return Some(Format::Xml),
        '/' => return Some(Format::PostScript),
        '%' => return Some(Format::PostScript),
        '[' => {
            // `[section]` (INI) vs `[1, 2]` (JSON array).
            let rest: String = trimmed.chars().skip(1).take_while(|&c| c != ']').collect();
            return if rest.contains(',')
                || rest
                    .trim()
                    .chars()
                    .all(|c| c.is_ascii_digit() || c.is_whitespace())
            {
                Some(Format::Json)
            } else {
                Some(Format::Ini)
            };
        }
        _ => {}
    }
    // Line-shaped key-value content: INI if any section headers or dotted
    // sections appear later, else plain text.
    let mut saw_pair = false;
    for line in trimmed.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with(';') {
            continue;
        }
        if line.starts_with('[') && line.ends_with(']') {
            return Some(Format::Ini);
        }
        if line.contains('=') || line.contains(':') {
            saw_pair = true;
        } else {
            return None;
        }
    }
    saw_pair.then_some(Format::PlainText)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_dispatches_each_format() {
        assert!(parse(Format::Json, "{}").is_ok());
        assert!(parse(Format::Xml, "<a/>").is_ok());
        assert!(parse(Format::Ini, "k = 1\n").is_ok());
        assert!(parse(Format::PlainText, "k= 1\n").is_ok());
        assert!(parse(Format::PostScript, "/K 1\n").is_ok());
    }

    #[test]
    fn write_then_parse_identity_per_format() {
        let doc = Node::map([
            ("alpha", Node::scalar(1)),
            ("beta", Node::map([("gamma", Node::scalar("x"))])),
        ]);
        for format in [Format::Json, Format::Ini] {
            let text = write(format, &doc);
            assert_eq!(parse(format, &text).unwrap(), doc, "{format}");
        }
    }

    #[test]
    fn detect_format_on_realistic_headers() {
        assert_eq!(
            detect_format("<?xml version=\"1.0\"?>\n<x/>"),
            Some(Format::Xml)
        );
        assert_eq!(
            detect_format("% ps prefs\n/A 1\n"),
            Some(Format::PostScript)
        );
        assert_eq!(
            detect_format("# comment\nkey= v\n"),
            Some(Format::PlainText)
        );
        assert_eq!(
            detect_format("# comment\n[sec]\nkey= v\n"),
            Some(Format::Ini)
        );
        assert_eq!(detect_format("[1, 2, 3]"), Some(Format::Json));
        assert_eq!(detect_format(""), None);
        assert_eq!(detect_format("free prose, no pairs"), None);
    }

    #[test]
    fn detected_format_actually_parses() {
        let samples = [
            "{\"a\": {\"b\": 2}}",
            "<root><a>1</a></root>",
            "[ui]\ntheme = dark\n",
            "zoom= 1.5\n",
            "/MenuBar true\n",
        ];
        for text in samples {
            let format = detect_format(text).expect("detected");
            parse(format, text).expect("parses in detected format");
        }
    }

    #[test]
    fn format_display_names() {
        for f in Format::ALL {
            assert!(!f.to_string().is_empty());
        }
    }
}
