//! The parsed document tree and its flattening into key paths.

use std::collections::BTreeMap;

use ocasta_ttkv::Value;

/// A parsed configuration document.
///
/// Every supported format parses into this tree; [`Node::flatten`] then
/// converts the tree into the flat `key path → value` map the TTKV stores.
/// Maps preserve source order (important for faithful re-emission).
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A leaf value.
    Scalar(Value),
    /// An ordered sequence of children.
    Seq(Vec<Node>),
    /// An ordered mapping from names to children.
    Map(Vec<(String, Node)>),
}

impl Node {
    /// Convenience constructor for a scalar leaf.
    pub fn scalar(value: impl Into<Value>) -> Node {
        Node::Scalar(value.into())
    }

    /// Convenience constructor for a map from an entry list.
    pub fn map<I, S>(entries: I) -> Node
    where
        I: IntoIterator<Item = (S, Node)>,
        S: Into<String>,
    {
        Node::Map(entries.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a direct child of a map node by name.
    pub fn get(&self, name: &str) -> Option<&Node> {
        match self {
            Node::Map(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// `true` if this sequence contains only scalar children.
    fn is_scalar_seq(items: &[Node]) -> bool {
        items.iter().all(|n| matches!(n, Node::Scalar(_)))
    }

    /// Flattens the tree into `key path → value` entries.
    ///
    /// * map entries join path segments with `/`;
    /// * sequences of scalars become a single [`Value::List`] (an ordered
    ///   setting such as an MRU list is *one* setting);
    /// * sequences containing structure use numeric path segments;
    /// * an empty map or sequence contributes no entries.
    ///
    /// # Examples
    ///
    /// ```
    /// use ocasta_parsers::Node;
    /// use ocasta_ttkv::Value;
    ///
    /// let doc = Node::map([
    ///     ("window", Node::map([("width", Node::scalar(800))])),
    ///     ("recent", Node::Seq(vec![Node::scalar("a.txt"), Node::scalar("b.txt")])),
    /// ]);
    /// let flat = doc.flatten();
    /// assert_eq!(flat.get("window/width"), Some(&Value::from(800)));
    /// assert_eq!(
    ///     flat.get("recent"),
    ///     Some(&Value::List(vec![Value::from("a.txt"), Value::from("b.txt")])),
    /// );
    /// ```
    pub fn flatten(&self) -> FlatConfig {
        let mut flat = BTreeMap::new();
        self.flatten_into("", &mut flat);
        FlatConfig(flat)
    }

    fn flatten_into(&self, path: &str, out: &mut BTreeMap<String, Value>) {
        match self {
            Node::Scalar(v) => {
                let key = if path.is_empty() { "value" } else { path };
                out.insert(key.to_owned(), v.clone());
            }
            Node::Seq(items) if Self::is_scalar_seq(items) => {
                let values: Vec<Value> = items
                    .iter()
                    .map(|n| match n {
                        Node::Scalar(v) => v.clone(),
                        _ => unreachable!("is_scalar_seq checked"),
                    })
                    .collect();
                let key = if path.is_empty() { "value" } else { path };
                out.insert(key.to_owned(), Value::List(values));
            }
            Node::Seq(items) => {
                for (i, item) in items.iter().enumerate() {
                    item.flatten_into(&join(path, &i.to_string()), out);
                }
            }
            Node::Map(entries) => {
                for (name, child) in entries {
                    child.flatten_into(&join(path, name), out);
                }
            }
        }
    }
}

fn join(path: &str, segment: &str) -> String {
    if path.is_empty() {
        segment.to_owned()
    } else {
        format!("{path}/{segment}")
    }
}

/// A flattened configuration document: `key path → value`.
///
/// This is the representation Ocasta's application-file logger compares
/// before and after each flush to infer key-level writes (see
/// [`crate::diff_flush`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlatConfig(BTreeMap<String, Value>);

impl FlatConfig {
    /// Creates an empty flat configuration.
    pub fn new() -> Self {
        FlatConfig::default()
    }

    /// Number of settings.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if there are no settings.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Value of a key path.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.0.get(key)
    }

    /// Inserts an entry, returning the previous value.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Value>) -> Option<Value> {
        self.0.insert(key.into(), value.into())
    }

    /// Removes an entry.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.0.remove(key)
    }

    /// `true` if the key path exists.
    pub fn contains(&self, key: &str) -> bool {
        self.0.contains_key(key)
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.0.iter()
    }

    /// Iterates key paths in key order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.0.keys()
    }
}

impl FromIterator<(String, Value)> for FlatConfig {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        FlatConfig(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a FlatConfig {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::collections::btree_map::Iter<'a, String, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_at_root_gets_synthetic_key() {
        let flat = Node::scalar(5).flatten();
        assert_eq!(flat.get("value"), Some(&Value::from(5)));
    }

    #[test]
    fn nested_maps_join_with_slash() {
        let doc = Node::map([(
            "a",
            Node::map([("b", Node::map([("c", Node::scalar(true))]))]),
        )]);
        let flat = doc.flatten();
        assert_eq!(flat.get("a/b/c"), Some(&Value::from(true)));
        assert_eq!(flat.len(), 1);
    }

    #[test]
    fn scalar_seq_becomes_list_value() {
        let doc = Node::map([("mru", Node::Seq(vec![Node::scalar("x"), Node::scalar("y")]))]);
        let flat = doc.flatten();
        assert_eq!(
            flat.get("mru"),
            Some(&Value::List(vec![Value::from("x"), Value::from("y")]))
        );
    }

    #[test]
    fn structured_seq_uses_indices() {
        let doc = Node::map([(
            "profiles",
            Node::Seq(vec![
                Node::map([("name", Node::scalar("default"))]),
                Node::map([("name", Node::scalar("work"))]),
            ]),
        )]);
        let flat = doc.flatten();
        assert_eq!(flat.get("profiles/0/name"), Some(&Value::from("default")));
        assert_eq!(flat.get("profiles/1/name"), Some(&Value::from("work")));
    }

    #[test]
    fn empty_containers_contribute_nothing() {
        assert!(Node::Map(vec![]).flatten().is_empty());
        let doc = Node::map([("empty", Node::Seq(vec![]))]);
        // An empty scalar seq *is* an (empty) list value.
        assert_eq!(doc.flatten().get("empty"), Some(&Value::List(vec![])));
    }

    #[test]
    fn get_walks_map_entries() {
        let doc = Node::map([("k", Node::scalar(1))]);
        assert!(doc.get("k").is_some());
        assert!(doc.get("missing").is_none());
        assert!(Node::scalar(1).get("k").is_none());
    }
}
