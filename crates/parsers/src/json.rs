//! JSON parsing and emission (RFC 8259 subset sufficient for configuration
//! files — e.g. Chrome's `Preferences` and `Bookmarks`).

use ocasta_ttkv::Value;

use crate::cursor::Cursor;
use crate::error::ParseConfigError;
use crate::node::Node;
use crate::Format;

/// Parses a JSON document into a [`Node`] tree.
///
/// Supports objects, arrays, strings (with all RFC 8259 escapes including
/// `\uXXXX` and surrogate pairs), numbers, booleans and `null`. Trailing
/// whitespace is allowed; trailing garbage is an error.
///
/// # Errors
///
/// Returns a [`ParseConfigError`] with line/column information on malformed
/// input.
///
/// # Examples
///
/// ```
/// use ocasta_parsers::parse_json;
/// use ocasta_ttkv::Value;
///
/// let doc = parse_json(r#"{"browser": {"show_home_button": true}}"#)?;
/// let flat = doc.flatten();
/// assert_eq!(flat.get("browser/show_home_button"), Some(&Value::from(true)));
/// # Ok::<(), ocasta_parsers::ParseConfigError>(())
/// ```
pub fn parse_json(input: &str) -> Result<Node, ParseConfigError> {
    let mut cur = Cursor::new(Format::Json, input);
    cur.skip_whitespace();
    let node = parse_value(&mut cur)?;
    cur.skip_whitespace();
    if !cur.at_end() {
        return Err(cur.error("trailing characters after document"));
    }
    Ok(node)
}

fn parse_value(cur: &mut Cursor<'_>) -> Result<Node, ParseConfigError> {
    cur.skip_whitespace();
    match cur.peek() {
        Some('{') => parse_object(cur),
        Some('[') => parse_array(cur),
        Some('"') => Ok(Node::Scalar(Value::Str(parse_string(cur)?))),
        Some('t') | Some('f') | Some('n') => parse_keyword(cur),
        Some(c) if c == '-' || c.is_ascii_digit() => parse_number(cur),
        Some(c) => Err(cur.error(format!("unexpected character `{c}`"))),
        None => Err(cur.error("unexpected end of input")),
    }
}

fn parse_object(cur: &mut Cursor<'_>) -> Result<Node, ParseConfigError> {
    cur.expect('{')?;
    let mut entries = Vec::new();
    cur.skip_whitespace();
    if cur.eat('}') {
        return Ok(Node::Map(entries));
    }
    loop {
        cur.skip_whitespace();
        let key = parse_string(cur)?;
        cur.skip_whitespace();
        cur.expect(':')?;
        let value = parse_value(cur)?;
        entries.push((key, value));
        cur.skip_whitespace();
        if cur.eat(',') {
            continue;
        }
        cur.expect('}')?;
        return Ok(Node::Map(entries));
    }
}

fn parse_array(cur: &mut Cursor<'_>) -> Result<Node, ParseConfigError> {
    cur.expect('[')?;
    let mut items = Vec::new();
    cur.skip_whitespace();
    if cur.eat(']') {
        return Ok(Node::Seq(items));
    }
    loop {
        items.push(parse_value(cur)?);
        cur.skip_whitespace();
        if cur.eat(',') {
            continue;
        }
        cur.expect(']')?;
        return Ok(Node::Seq(items));
    }
}

fn parse_string(cur: &mut Cursor<'_>) -> Result<String, ParseConfigError> {
    cur.expect('"')?;
    let mut out = String::new();
    loop {
        match cur.next() {
            Some('"') => return Ok(out),
            Some('\\') => match cur.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('b') => out.push('\u{0008}'),
                Some('f') => out.push('\u{000C}'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let first = parse_hex4(cur)?;
                    let code = if (0xD800..0xDC00).contains(&first) {
                        // High surrogate: require a following low surrogate.
                        cur.expect('\\')?;
                        cur.expect('u')?;
                        let second = parse_hex4(cur)?;
                        if !(0xDC00..0xE000).contains(&second) {
                            return Err(cur.error("invalid low surrogate"));
                        }
                        0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                    } else {
                        first
                    };
                    match char::from_u32(code) {
                        Some(c) => out.push(c),
                        None => return Err(cur.error("invalid unicode escape")),
                    }
                }
                Some(c) => return Err(cur.error(format!("invalid escape `\\{c}`"))),
                None => return Err(cur.error("unterminated string")),
            },
            Some(c) if (c as u32) < 0x20 => {
                return Err(cur.error("unescaped control character in string"))
            }
            Some(c) => out.push(c),
            None => return Err(cur.error("unterminated string")),
        }
    }
}

fn parse_hex4(cur: &mut Cursor<'_>) -> Result<u32, ParseConfigError> {
    let mut code = 0u32;
    for _ in 0..4 {
        let c = cur
            .next()
            .ok_or_else(|| cur.error("truncated \\u escape"))?;
        let digit = c
            .to_digit(16)
            .ok_or_else(|| cur.error(format!("bad hex digit `{c}`")))?;
        code = code * 16 + digit;
    }
    Ok(code)
}

fn parse_keyword(cur: &mut Cursor<'_>) -> Result<Node, ParseConfigError> {
    let word = cur.take_while(|c| c.is_ascii_alphabetic());
    match word.as_str() {
        "true" => Ok(Node::Scalar(Value::Bool(true))),
        "false" => Ok(Node::Scalar(Value::Bool(false))),
        "null" => Ok(Node::Scalar(Value::Null)),
        other => Err(cur.error(format!("unknown keyword `{other}`"))),
    }
}

fn parse_number(cur: &mut Cursor<'_>) -> Result<Node, ParseConfigError> {
    let text = cur.take_while(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'));
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Node::Scalar(Value::Int(i)));
        }
    }
    text.parse::<f64>()
        .map(|f| Node::Scalar(Value::Float(f)))
        .map_err(|_| cur.error(format!("invalid number `{text}`")))
}

/// Serialises a [`Node`] tree as pretty-printed JSON.
///
/// Scalars that JSON cannot represent exactly degrade gracefully: non-finite
/// floats are emitted as `null` (matching what mainstream emitters do).
///
/// # Examples
///
/// ```
/// use ocasta_parsers::{parse_json, write_json, Node};
///
/// let doc = Node::map([("a", Node::scalar(1))]);
/// let text = write_json(&doc);
/// assert_eq!(parse_json(&text)?, doc);
/// # Ok::<(), ocasta_parsers::ParseConfigError>(())
/// ```
pub fn write_json(node: &Node) -> String {
    let mut out = String::new();
    write_node(node, 0, &mut out);
    out.push('\n');
    out
}

fn write_node(node: &Node, indent: usize, out: &mut String) {
    match node {
        Node::Scalar(v) => write_scalar(v, out),
        Node::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(indent + 1, out);
                write_node(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Node::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(indent + 1, out);
                write_string(key, out);
                out.push_str(": ");
                write_node(value, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
    }
}

fn write_scalar(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) if f.is_finite() => {
            let text = format!("{f:?}");
            out.push_str(&text);
        }
        Value::Float(_) => out.push_str("null"),
        Value::Str(s) => write_string(s, out),
        Value::List(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_scalar(item, out);
            }
            out.push(']');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_indent(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_chrome_like_preferences() {
        let text = r#"{
            "bookmark_bar": {"show_on_all_tabs": true},
            "browser": {"show_home_button": false, "window_placement": {"left": 10, "top": 20}},
            "mru": ["a.html", "b.html"],
            "zoom": 1.25,
            "profile": null
        }"#;
        let flat = parse_json(text).unwrap().flatten();
        assert_eq!(
            flat.get("bookmark_bar/show_on_all_tabs"),
            Some(&Value::from(true))
        );
        assert_eq!(
            flat.get("browser/window_placement/left"),
            Some(&Value::from(10))
        );
        assert_eq!(flat.get("zoom"), Some(&Value::from(1.25)));
        assert_eq!(flat.get("profile"), Some(&Value::Null));
        assert_eq!(
            flat.get("mru"),
            Some(&Value::List(vec![
                Value::from("a.html"),
                Value::from("b.html")
            ]))
        );
    }

    #[test]
    fn string_escapes_roundtrip() {
        let doc = parse_json(r#""a\"b\\c\ndA😀""#).unwrap();
        assert_eq!(doc, Node::scalar("a\"b\\c\ndA😀"));
    }

    #[test]
    fn numbers_pick_int_or_float() {
        assert_eq!(parse_json("42").unwrap(), Node::scalar(42));
        assert_eq!(parse_json("-7").unwrap(), Node::scalar(-7));
        assert_eq!(parse_json("4.5").unwrap(), Node::scalar(4.5));
        assert_eq!(parse_json("1e3").unwrap(), Node::scalar(1000.0));
        // i64 overflow degrades to float
        assert_eq!(
            parse_json("99999999999999999999").unwrap(),
            Node::scalar(1e20)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "{} extra",
            "\"bad \\q escape\"",
            "\"\\uD800\"",
            "\u{0001}",
        ] {
            assert!(parse_json(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn error_positions_are_useful() {
        let err = parse_json("{\n  \"a\": ?\n}").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.message().contains('?'));
    }

    #[test]
    fn writer_roundtrips_structures() {
        let doc = Node::map([
            ("s", Node::scalar("hi \"there\"\n")),
            ("n", Node::scalar(3)),
            ("f", Node::scalar(0.5)),
            ("b", Node::scalar(false)),
            ("null", Node::Scalar(Value::Null)),
            (
                "seq",
                Node::Seq(vec![Node::scalar(1), Node::map([("x", Node::scalar(2))])]),
            ),
            ("empty_map", Node::Map(vec![])),
            ("empty_seq", Node::Seq(vec![])),
        ]);
        let text = write_json(&doc);
        assert_eq!(parse_json(&text).unwrap(), doc);
    }

    #[test]
    fn duplicate_keys_keep_both_entries() {
        // Order-preserving maps keep duplicates; flatten keeps the last.
        let doc = parse_json(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(doc.flatten().get("k"), Some(&Value::from(2)));
    }
}
