//! Shared character cursor with position tracking for the hand-written
//! parsers.

use crate::error::ParseConfigError;
use crate::Format;

/// A peekable cursor over the characters of a document, tracking line and
/// column for error reporting.
#[derive(Debug)]
pub(crate) struct Cursor<'a> {
    format: Format,
    chars: std::str::Chars<'a>,
    peeked: std::collections::VecDeque<char>,
    line: usize,
    column: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(format: Format, input: &'a str) -> Self {
        Cursor {
            format,
            chars: input.chars(),
            peeked: std::collections::VecDeque::new(),
            line: 1,
            column: 1,
        }
    }

    /// The next character without consuming it.
    pub(crate) fn peek(&mut self) -> Option<char> {
        self.peek_at(0)
    }

    /// The character after the next one, without consuming either.
    pub(crate) fn peek2(&mut self) -> Option<char> {
        self.peek_at(1)
    }

    fn peek_at(&mut self, offset: usize) -> Option<char> {
        while self.peeked.len() <= offset {
            let c = self.chars.next()?;
            self.peeked.push_back(c);
        }
        self.peeked.get(offset).copied()
    }

    /// Consumes and returns the next character.
    pub(crate) fn next(&mut self) -> Option<char> {
        let c = self.peeked.pop_front().or_else(|| self.chars.next());
        if let Some(c) = c {
            if c == '\n' {
                self.line += 1;
                self.column = 1;
            } else {
                self.column += 1;
            }
        }
        c
    }

    /// Consumes the next character and checks it equals `expected`.
    pub(crate) fn expect(&mut self, expected: char) -> Result<(), ParseConfigError> {
        match self.next() {
            Some(c) if c == expected => Ok(()),
            Some(c) => Err(self.error(format!("expected `{expected}`, found `{c}`"))),
            None => Err(self.error(format!("expected `{expected}`, found end of input"))),
        }
    }

    /// Consumes the next character if it equals `expected`.
    pub(crate) fn eat(&mut self, expected: char) -> bool {
        if self.peek() == Some(expected) {
            self.next();
            true
        } else {
            false
        }
    }

    /// Skips ASCII whitespace.
    pub(crate) fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.next();
        }
    }

    /// Consumes characters while `pred` holds, returning the consumed text.
    pub(crate) fn take_while(&mut self, pred: impl Fn(char) -> bool) -> String {
        let mut out = String::new();
        while matches!(self.peek(), Some(c) if pred(c)) {
            out.push(self.next().expect("peeked"));
        }
        out
    }

    /// `true` at end of input.
    pub(crate) fn at_end(&mut self) -> bool {
        self.peek().is_none()
    }

    /// Builds a positioned parse error.
    pub(crate) fn error(&self, message: impl Into<String>) -> ParseConfigError {
        ParseConfigError::new(self.format, self.line, self.column, message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_lines_and_columns() {
        let mut c = Cursor::new(Format::Json, "ab\ncd");
        c.next();
        c.next();
        c.next(); // newline
        c.next();
        let err = c.error("boom");
        assert_eq!(err.line(), 2);
        assert_eq!(err.column(), 2);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut c = Cursor::new(Format::Json, "x");
        assert_eq!(c.peek(), Some('x'));
        assert_eq!(c.peek(), Some('x'));
        assert_eq!(c.next(), Some('x'));
        assert!(c.at_end());
    }

    #[test]
    fn expect_and_eat() {
        let mut c = Cursor::new(Format::Json, "ab");
        assert!(c.expect('a').is_ok());
        assert!(!c.eat('x'));
        assert!(c.eat('b'));
        assert!(c.expect('z').is_err());
    }

    #[test]
    fn take_while_stops_at_predicate_boundary() {
        let mut c = Cursor::new(Format::Json, "abc123");
        assert_eq!(c.take_while(|ch| ch.is_alphabetic()), "abc");
        assert_eq!(c.take_while(|ch| ch.is_numeric()), "123");
    }
}
