//! XML parsing and emission (the configuration-file subset: elements,
//! attributes, text, comments, declarations and the five predefined
//! entities — no DTDs or namespaces-aware processing).

use ocasta_ttkv::Value;

use crate::cursor::Cursor;
use crate::error::ParseConfigError;
use crate::node::Node;
use crate::Format;

/// Parses an XML document into a [`Node`] tree.
///
/// Mapping rules (designed for configuration documents like GConf's
/// `%gconf.xml` files):
///
/// * an element becomes a map entry named after its tag;
/// * attributes become entries prefixed with `@`;
/// * repeated child tags collect into a [`Node::Seq`];
/// * an element with only text becomes a scalar (typed via
///   [`Value::parse_token`]);
/// * an element with attributes *and* text stores the text under `#text`;
/// * comments (`<!-- -->`), processing instructions (`<? ?>`) and CDATA are
///   handled; DTDs are not.
///
/// The returned node is a map with a single entry for the root element.
///
/// # Errors
///
/// Returns a [`ParseConfigError`] on mismatched tags, malformed markup or
/// unknown entities.
///
/// # Examples
///
/// ```
/// use ocasta_parsers::parse_xml;
/// use ocasta_ttkv::Value;
///
/// let doc = parse_xml(r#"<gconf><entry name="mark_seen" type="bool">true</entry></gconf>"#)?;
/// let flat = doc.flatten();
/// assert_eq!(flat.get("gconf/entry/@name"), Some(&Value::from("mark_seen")));
/// assert_eq!(flat.get("gconf/entry/#text"), Some(&Value::from(true)));
/// # Ok::<(), ocasta_parsers::ParseConfigError>(())
/// ```
pub fn parse_xml(input: &str) -> Result<Node, ParseConfigError> {
    let mut cur = Cursor::new(Format::Xml, input);
    skip_misc(&mut cur)?;
    if cur.peek() != Some('<') {
        return Err(cur.error("expected root element"));
    }
    let (name, node) = parse_element(&mut cur)?;
    skip_misc(&mut cur)?;
    if !cur.at_end() {
        return Err(cur.error("trailing content after root element"));
    }
    Ok(Node::Map(vec![(name, node)]))
}

/// Skips whitespace, comments, processing instructions and declarations
/// without consuming the `<` of a real element.
fn skip_misc(cur: &mut Cursor<'_>) -> Result<(), ParseConfigError> {
    loop {
        cur.skip_whitespace();
        if cur.peek() != Some('<') {
            return Ok(());
        }
        match cur.peek2() {
            Some('?') => {
                cur.next();
                cur.next();
                let mut prev = ' ';
                loop {
                    match cur.next() {
                        Some('>') if prev == '?' => break,
                        Some(c) => prev = c,
                        None => return Err(cur.error("unterminated processing instruction")),
                    }
                }
            }
            Some('!') => {
                cur.next();
                cur.next();
                if cur.eat('-') {
                    cur.expect('-')?;
                    let mut dashes = 0;
                    loop {
                        match cur.next() {
                            Some('-') => dashes += 1,
                            Some('>') if dashes >= 2 => break,
                            Some(_) => dashes = 0,
                            None => return Err(cur.error("unterminated comment")),
                        }
                    }
                } else {
                    return Err(cur.error("DTD declarations are not supported"));
                }
            }
            _ => return Ok(()),
        }
    }
}

/// Parses one element starting at `<`.
fn parse_element(cur: &mut Cursor<'_>) -> Result<(String, Node), ParseConfigError> {
    cur.expect('<')?;
    parse_element_after_lt(cur)
}

/// Parses one element whose `<` has already been consumed.
fn parse_element_after_lt(cur: &mut Cursor<'_>) -> Result<(String, Node), ParseConfigError> {
    let name = read_name(cur)?;
    let mut attrs: Vec<(String, Node)> = Vec::new();
    loop {
        cur.skip_whitespace();
        match cur.peek() {
            Some('/') => {
                cur.next();
                cur.expect('>')?;
                return Ok((name, finish_element(attrs, Vec::new(), String::new())));
            }
            Some('>') => {
                cur.next();
                break;
            }
            Some(_) => {
                let attr_name = read_name(cur)?;
                cur.skip_whitespace();
                cur.expect('=')?;
                cur.skip_whitespace();
                let quote = match cur.next() {
                    Some(q @ ('"' | '\'')) => q,
                    _ => return Err(cur.error("expected quoted attribute value")),
                };
                let mut raw = String::new();
                loop {
                    match cur.next() {
                        Some(c) if c == quote => break,
                        Some('&') => raw.push(read_entity(cur)?),
                        Some(c) => raw.push(c),
                        None => return Err(cur.error("unterminated attribute value")),
                    }
                }
                attrs.push((
                    format!("@{attr_name}"),
                    Node::Scalar(Value::parse_token(&raw)),
                ));
            }
            None => return Err(cur.error("unterminated start tag")),
        }
    }

    // Content: children and character data until `</name>`.
    let mut children: Vec<(String, Node)> = Vec::new();
    let mut text = String::new();
    loop {
        match cur.peek() {
            Some('<') => {
                cur.next();
                match cur.peek() {
                    Some('/') => {
                        cur.next();
                        let close = read_name(cur)?;
                        cur.skip_whitespace();
                        cur.expect('>')?;
                        if close != name {
                            return Err(cur.error(format!(
                                "mismatched closing tag: expected </{name}>, found </{close}>"
                            )));
                        }
                        return Ok((name, finish_element(attrs, children, text)));
                    }
                    Some('!') => {
                        cur.next();
                        if cur.eat('-') {
                            cur.expect('-')?;
                            let mut dashes = 0;
                            loop {
                                match cur.next() {
                                    Some('-') => dashes += 1,
                                    Some('>') if dashes >= 2 => break,
                                    Some(_) => dashes = 0,
                                    None => return Err(cur.error("unterminated comment")),
                                }
                            }
                        } else if cur.eat('[') {
                            // CDATA section.
                            for expected in "CDATA[".chars() {
                                cur.expect(expected)?;
                            }
                            let mut brackets = 0;
                            loop {
                                match cur.next() {
                                    Some(']') => brackets += 1,
                                    Some('>') if brackets >= 2 => break,
                                    Some(c) => {
                                        for _ in 0..brackets {
                                            text.push(']');
                                        }
                                        brackets = 0;
                                        text.push(c);
                                    }
                                    None => return Err(cur.error("unterminated CDATA")),
                                }
                            }
                        } else {
                            return Err(cur.error("unsupported markup declaration"));
                        }
                    }
                    Some('?') => {
                        cur.next();
                        let mut prev = ' ';
                        loop {
                            match cur.next() {
                                Some('>') if prev == '?' => break,
                                Some(c) => prev = c,
                                None => {
                                    return Err(cur.error("unterminated processing instruction"))
                                }
                            }
                        }
                    }
                    _ => {
                        let (child_name, child) = parse_element_after_lt(cur)?;
                        children.push((child_name, child));
                    }
                }
            }
            Some('&') => {
                cur.next();
                text.push(read_entity(cur)?);
            }
            Some(_) => text.push(cur.next().expect("peeked")),
            None => return Err(cur.error(format!("unterminated element <{name}>"))),
        }
    }
}

/// Combines attributes, children and text into the element's node.
fn finish_element(attrs: Vec<(String, Node)>, children: Vec<(String, Node)>, text: String) -> Node {
    let text = text.trim().to_owned();
    if attrs.is_empty() && children.is_empty() {
        return if text.is_empty() {
            Node::Map(Vec::new())
        } else {
            Node::Scalar(Value::parse_token(&text))
        };
    }
    let mut entries = attrs;
    // Group repeated child names into sequences, preserving first-seen order.
    let mut order: Vec<String> = Vec::new();
    let mut grouped: std::collections::BTreeMap<String, Vec<Node>> = Default::default();
    for (name, node) in children {
        if !grouped.contains_key(&name) {
            order.push(name.clone());
        }
        grouped.entry(name).or_default().push(node);
    }
    for name in order {
        let mut nodes = grouped.remove(&name).expect("grouped by construction");
        if nodes.len() == 1 {
            entries.push((name, nodes.pop().expect("one element")));
        } else {
            entries.push((name, Node::Seq(nodes)));
        }
    }
    if !text.is_empty() {
        entries.push(("#text".to_owned(), Node::Scalar(Value::parse_token(&text))));
    }
    Node::Map(entries)
}

fn read_name(cur: &mut Cursor<'_>) -> Result<String, ParseConfigError> {
    let name = cur.take_while(|c| c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':'));
    if name.is_empty() {
        Err(cur.error("expected a name"))
    } else {
        Ok(name)
    }
}

fn read_entity(cur: &mut Cursor<'_>) -> Result<char, ParseConfigError> {
    let body = cur.take_while(|c| c != ';');
    if !cur.eat(';') {
        return Err(cur.error("unterminated entity"));
    }
    match body.as_str() {
        "lt" => Ok('<'),
        "gt" => Ok('>'),
        "amp" => Ok('&'),
        "quot" => Ok('"'),
        "apos" => Ok('\''),
        other => {
            if let Some(hex) = other
                .strip_prefix("#x")
                .or_else(|| other.strip_prefix("#X"))
            {
                u32::from_str_radix(hex, 16)
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| cur.error(format!("invalid character reference &{other};")))
            } else if let Some(dec) = other.strip_prefix('#') {
                dec.parse::<u32>()
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| cur.error(format!("invalid character reference &{other};")))
            } else {
                Err(cur.error(format!("unknown entity &{other};")))
            }
        }
    }
}

/// Serialises a [`Node`] tree as XML.
///
/// Inverts the parse mapping: `@`-prefixed entries become attributes,
/// `#text` becomes character data, sequences repeat the tag. The node must
/// be a single-entry map (the root element); other shapes are wrapped in a
/// `<config>` element.
///
/// # Examples
///
/// ```
/// use ocasta_parsers::{parse_xml, write_xml, Node};
///
/// let doc = Node::map([("root", Node::map([("leaf", Node::scalar(5))]))]);
/// assert_eq!(parse_xml(&write_xml(&doc))?, doc);
/// # Ok::<(), ocasta_parsers::ParseConfigError>(())
/// ```
pub fn write_xml(node: &Node) -> String {
    let mut out = String::from("<?xml version=\"1.0\"?>\n");
    match node {
        // A single-entry map whose value is not a sequence maps onto exactly
        // one root element; anything else (several entries, or a repeated
        // root tag) needs a wrapper to stay well-formed.
        Node::Map(entries) if entries.len() == 1 && !matches!(entries[0].1, Node::Seq(_)) => {
            write_element(&entries[0].0, &entries[0].1, 0, &mut out);
        }
        other => write_element("config", other, 0, &mut out),
    }
    out
}

fn write_element(name: &str, node: &Node, indent: usize, out: &mut String) {
    match node {
        Node::Seq(items) => {
            for item in items {
                write_element(name, item, indent, out);
            }
        }
        Node::Scalar(v) => {
            push_indent(indent, out);
            out.push_str(&format!(
                "<{name}>{}</{name}>\n",
                escape_text(&v.to_string())
            ));
        }
        Node::Map(entries) => {
            let (attrs, rest): (Vec<_>, Vec<_>) =
                entries.iter().partition(|(k, _)| k.starts_with('@'));
            push_indent(indent, out);
            out.push('<');
            out.push_str(name);
            for (k, v) in &attrs {
                if let Node::Scalar(value) = v {
                    out.push_str(&format!(
                        " {}=\"{}\"",
                        &k[1..],
                        escape_text(&value.to_string())
                    ));
                }
            }
            let text = rest.iter().find(|(k, _)| k == "#text");
            let children: Vec<_> = rest.iter().filter(|(k, _)| k != "#text").collect();
            if children.is_empty() {
                match text {
                    Some((_, Node::Scalar(v))) => {
                        out.push_str(&format!(">{}</{name}>\n", escape_text(&v.to_string())));
                    }
                    _ => out.push_str("/>\n"),
                }
            } else {
                out.push_str(">\n");
                if let Some((_, Node::Scalar(v))) = text {
                    push_indent(indent + 1, out);
                    out.push_str(&escape_text(&v.to_string()));
                    out.push('\n');
                }
                for (k, v) in children {
                    write_element(k, v, indent + 1, out);
                }
                push_indent(indent, out);
                out.push_str(&format!("</{name}>\n"));
            }
        }
    }
}

fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
    out
}

fn push_indent(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_gconf_like_document() {
        let text = r#"<?xml version="1.0"?>
<!-- GConf entry file -->
<gconf>
  <entry name="mark_seen" mtime="1349990400" type="bool">true</entry>
  <entry name="mark_seen_timeout" type="int">1500</entry>
</gconf>"#;
        let flat = parse_xml(text).unwrap().flatten();
        assert_eq!(
            flat.get("gconf/entry/0/@name"),
            Some(&Value::from("mark_seen"))
        );
        assert_eq!(flat.get("gconf/entry/0/#text"), Some(&Value::from(true)));
        assert_eq!(flat.get("gconf/entry/1/#text"), Some(&Value::from(1500)));
    }

    #[test]
    fn text_only_elements_become_typed_scalars() {
        let doc = parse_xml("<root><n>42</n><s>hello</s><b>false</b></root>").unwrap();
        let flat = doc.flatten();
        assert_eq!(flat.get("root/n"), Some(&Value::from(42)));
        assert_eq!(flat.get("root/s"), Some(&Value::from("hello")));
        assert_eq!(flat.get("root/b"), Some(&Value::from(false)));
    }

    #[test]
    fn entities_and_cdata() {
        let doc = parse_xml("<r a=\"x&amp;y\">1 &lt; 2 &#65;<![CDATA[<raw>]]></r>").unwrap();
        let flat = doc.flatten();
        assert_eq!(flat.get("r/@a"), Some(&Value::from("x&y")));
        assert_eq!(flat.get("r/#text"), Some(&Value::from("1 < 2 A<raw>")));
    }

    #[test]
    fn self_closing_and_empty_elements() {
        let doc = parse_xml("<r><empty/><blank></blank></r>").unwrap();
        assert_eq!(
            doc,
            Node::map([(
                "r",
                Node::map([("empty", Node::Map(vec![])), ("blank", Node::Map(vec![]))]),
            )])
        );
    }

    #[test]
    fn rejects_malformed_markup() {
        for bad in [
            "<a><b></a></b>",
            "<a>",
            "<a attr=unquoted></a>",
            "<a>&unknown;</a>",
            "<!DOCTYPE html><a/>",
            "no markup",
            "<a/><b/>",
        ] {
            assert!(parse_xml(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn writer_roundtrips() {
        let doc = Node::map([(
            "prefs",
            Node::map([
                ("@version", Node::scalar(2)),
                ("title", Node::scalar("My <Config> & Stuff")),
                (
                    "entry",
                    Node::Seq(vec![
                        Node::map([("@name", Node::scalar("a")), ("#text", Node::scalar(1))]),
                        Node::map([("@name", Node::scalar("b")), ("#text", Node::scalar(2))]),
                    ]),
                ),
                ("empty", Node::Map(vec![])),
            ]),
        )]);
        let text = write_xml(&doc);
        assert_eq!(parse_xml(&text).unwrap(), doc);
    }
}
