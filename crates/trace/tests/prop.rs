//! Property-based tests for the trace substrate.

use proptest::prelude::*;

use ocasta_trace::{AccessEvent, Trace};
use ocasta_ttkv::{Key, TimePrecision, Timestamp, Value};

/// Arbitrary mutation events over a small key space.
fn events() -> impl Strategy<Value = Vec<(u8, u64, i32, bool)>> {
    prop::collection::vec(
        (
            0u8..8,
            0u64..1_000_000,
            any::<i32>(),
            prop::bool::weighted(0.15),
        ),
        0..80,
    )
}

fn build_trace(entries: &[(u8, u64, i32, bool)], reads: &[(u8, u32)]) -> Trace {
    let mut trace = Trace::new("prop", 30);
    for &(k, t, v, delete) in entries {
        let key = Key::new(format!("a/k{k}"));
        let t = Timestamp::from_millis(t);
        if delete {
            trace.push(AccessEvent::delete(t, key));
        } else {
            trace.push(AccessEvent::write(t, key, Value::from(i64::from(v))));
        }
    }
    for &(k, count) in reads {
        trace.add_reads(Key::new(format!("a/k{k}")), u64::from(count));
    }
    trace
}

proptest! {
    /// Trace files round-trip: events, read counters and header survive.
    #[test]
    fn trace_file_roundtrip(
        entries in events(),
        reads in prop::collection::vec((0u8..8, 0u32..1000), 0..8),
    ) {
        let mut trace = build_trace(&entries, &reads);
        let text = trace.save_to_string();
        let mut loaded = Trace::load_from_str(&text).unwrap();
        prop_assert_eq!(trace.name(), loaded.name());
        prop_assert_eq!(trace.days(), loaded.days());
        prop_assert_eq!(trace.read_counts(), loaded.read_counts());
        prop_assert_eq!(trace.events(), loaded.events());
    }

    /// Replay conserves access counts: the TTKV's totals equal the trace's.
    #[test]
    fn replay_conserves_counts(
        entries in events(),
        reads in prop::collection::vec((0u8..8, 0u32..1000), 0..8),
    ) {
        let trace = build_trace(&entries, &reads);
        let trace_stats = trace.stats();
        let store = trace.replay(TimePrecision::Milliseconds);
        let store_stats = store.stats();
        prop_assert_eq!(store_stats.reads, trace_stats.reads);
        prop_assert_eq!(store_stats.writes, trace_stats.writes);
        prop_assert_eq!(store_stats.deletes, trace_stats.deletes);
        prop_assert_eq!(store_stats.keys, trace_stats.keys);
    }

    /// Second-precision replay only ever moves timestamps backwards within
    /// the same second, so every key's final value is unchanged.
    #[test]
    fn quantised_replay_preserves_final_values(entries in events()) {
        let trace = build_trace(&entries, &[]);
        let fine = trace.replay(TimePrecision::Milliseconds);
        let coarse = trace.replay(TimePrecision::Seconds);
        // Keys whose last mutations share a quantised second may legally
        // resolve ties differently; restrict the check to keys whose final
        // mutation second is unique in their own history.
        for key in fine.keys() {
            let record = fine.record(key.as_str()).unwrap();
            let times: Vec<u64> = record.mutation_times().map(|t| t.as_secs()).collect();
            if let Some(&last) = times.last() {
                if times.iter().filter(|&&s| s == last).count() == 1 {
                    prop_assert_eq!(
                        fine.current(key.as_str()),
                        coarse.current(key.as_str()),
                        "key {}", key
                    );
                }
            }
        }
    }

    /// Trace stats are insensitive to event insertion order.
    #[test]
    fn stats_are_order_insensitive(entries in events()) {
        let forward = build_trace(&entries, &[]);
        let mut reversed_entries = entries.clone();
        reversed_entries.reverse();
        let reversed = build_trace(&reversed_entries, &[]);
        prop_assert_eq!(forward.stats(), reversed.stats());
    }
}
