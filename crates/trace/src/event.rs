//! Configuration-access events: what Ocasta's loggers emit.

use ocasta_ttkv::{Key, Timestamp, Value};

/// A mutation of one configuration setting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// The setting was written with a new value.
    Write(Value),
    /// The setting was deleted.
    Delete,
}

/// One timestamped mutation observed by a logger.
///
/// Read accesses are tracked as aggregate per-key counters on the
/// [`Trace`](crate::Trace) rather than as individual events — only Table I's
/// totals need them, and the Windows traces contain tens of millions.
///
/// The application a key belongs to is the first segment of its hierarchical
/// name (`word/...`, `acrobat/...`), which is how [`AccessEvent::app`]
/// recovers it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessEvent {
    /// When the mutation happened.
    pub timestamp: Timestamp,
    /// The setting's hierarchical key.
    pub key: Key,
    /// What happened to it.
    pub mutation: Mutation,
}

impl AccessEvent {
    /// Creates a write event.
    pub fn write(timestamp: Timestamp, key: impl Into<Key>, value: impl Into<Value>) -> Self {
        AccessEvent {
            timestamp,
            key: key.into(),
            mutation: Mutation::Write(value.into()),
        }
    }

    /// Creates a deletion event.
    pub fn delete(timestamp: Timestamp, key: impl Into<Key>) -> Self {
        AccessEvent {
            timestamp,
            key: key.into(),
            mutation: Mutation::Delete,
        }
    }

    /// The application component of the key (its first path segment).
    ///
    /// # Examples
    ///
    /// ```
    /// use ocasta_trace::AccessEvent;
    /// use ocasta_ttkv::Timestamp;
    ///
    /// let e = AccessEvent::write(Timestamp::EPOCH, "word/mru/max_display", 9);
    /// assert_eq!(e.app(), "word");
    /// ```
    pub fn app(&self) -> &str {
        self.key
            .as_str()
            .split('/')
            .next()
            .unwrap_or(self.key.as_str())
    }

    /// `true` if this is a deletion.
    pub fn is_delete(&self) -> bool {
        matches!(self.mutation, Mutation::Delete)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let w = AccessEvent::write(Timestamp::from_secs(1), "app/k", true);
        assert!(!w.is_delete());
        assert_eq!(w.app(), "app");
        let d = AccessEvent::delete(Timestamp::from_secs(2), "app/k");
        assert!(d.is_delete());
    }

    #[test]
    fn app_of_flat_key_is_the_key() {
        let e = AccessEvent::write(Timestamp::EPOCH, "standalone", 1);
        assert_eq!(e.app(), "standalone");
    }
}
