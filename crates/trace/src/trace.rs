//! The trace container: an ordered mutation log plus aggregate read counts.

use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};

use ocasta_ttkv::codec;
use ocasta_ttkv::{Key, TimeDelta, TimePrecision, Timestamp, Ttkv, TtkvError, Value};

use crate::event::{AccessEvent, Mutation};

/// A recorded (or generated) configuration-access trace for one machine or
/// user.
///
/// A trace is what the paper's deployment produced over 18–76 days: every
/// write/deletion of every application's configuration settings, plus read
/// counters. Replaying a trace populates a [`Ttkv`], which is the input to
/// clustering and repair.
///
/// # Examples
///
/// ```
/// use ocasta_trace::{AccessEvent, Trace};
/// use ocasta_ttkv::{TimePrecision, Timestamp};
///
/// let mut trace = Trace::new("demo", 1);
/// trace.push(AccessEvent::write(Timestamp::from_secs(5), "app/theme", "dark"));
/// trace.add_reads("app/theme", 10);
///
/// let store = trace.replay(TimePrecision::Seconds);
/// assert_eq!(store.stats().writes, 1);
/// assert_eq!(store.stats().reads, 10);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    name: String,
    days: u64,
    events: Vec<AccessEvent>,
    read_counts: BTreeMap<Key, u64>,
    sorted: bool,
}

impl Trace {
    /// Creates an empty trace covering `days` days.
    pub fn new(name: impl Into<String>, days: u64) -> Self {
        Trace {
            name: name.into(),
            days,
            events: Vec::new(),
            read_counts: BTreeMap::new(),
            sorted: true,
        }
    }

    /// The trace's name (machine or user identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The nominal length of the deployment, in days.
    pub fn days(&self) -> u64 {
        self.days
    }

    /// The end of the trace window.
    pub fn end_time(&self) -> Timestamp {
        Timestamp::EPOCH + TimeDelta::from_days(self.days)
    }

    /// Appends a mutation event.
    pub fn push(&mut self, event: AccessEvent) {
        if let Some(last) = self.events.last() {
            if last.timestamp > event.timestamp {
                self.sorted = false;
            }
        }
        self.events.push(event);
    }

    /// Adds `count` read accesses to `key`'s counter.
    pub fn add_reads(&mut self, key: impl Into<Key>, count: u64) {
        *self.read_counts.entry(key.into()).or_insert(0) += count;
    }

    /// The mutation events in timestamp order.
    pub fn events(&mut self) -> &[AccessEvent] {
        self.ensure_sorted();
        &self.events
    }

    /// The mutation events without sorting (may be out of order if pushed
    /// out of order).
    pub fn events_unsorted(&self) -> &[AccessEvent] {
        &self.events
    }

    /// Number of mutation events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if the trace has no mutation events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total recorded reads.
    pub fn total_reads(&self) -> u64 {
        self.read_counts.values().sum()
    }

    /// Per-key read counters.
    pub fn read_counts(&self) -> &BTreeMap<Key, u64> {
        &self.read_counts
    }

    /// The distinct applications (first key segments) appearing in the
    /// trace, in sorted order.
    pub fn apps(&self) -> Vec<String> {
        let mut apps: Vec<String> = self
            .events
            .iter()
            .map(|e| e.app().to_owned())
            .chain(self.read_counts.keys().map(|k| {
                k.as_str()
                    .split('/')
                    .next()
                    .unwrap_or(k.as_str())
                    .to_owned()
            }))
            .collect();
        apps.sort();
        apps.dedup();
        apps
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.events.sort_by(|a, b| {
                a.timestamp
                    .cmp(&b.timestamp)
                    .then_with(|| a.key.cmp(&b.key))
            });
            self.sorted = true;
        }
    }

    /// Replays the trace into a fresh TTKV, quantising timestamps to the
    /// given precision (the deployed loggers recorded whole seconds).
    pub fn replay(&self, precision: TimePrecision) -> Ttkv {
        let mut store = Ttkv::new();
        for (key, &count) in &self.read_counts {
            store.add_reads(key.clone(), count);
        }
        let mut events = self.events.clone();
        events.sort_by(|a, b| {
            a.timestamp
                .cmp(&b.timestamp)
                .then_with(|| a.key.cmp(&b.key))
        });
        for event in events {
            let t = precision.apply(event.timestamp);
            match event.mutation {
                Mutation::Write(value) => store.write(t, event.key, value),
                Mutation::Delete => store.delete(t, event.key),
            }
        }
        store
    }

    /// Aggregate trace statistics (one Table I row).
    pub fn stats(&self) -> TraceStats {
        let mut keys: std::collections::BTreeSet<&Key> = self.read_counts.keys().collect();
        let mut writes = 0u64;
        let mut deletes = 0u64;
        for event in &self.events {
            keys.insert(&event.key);
            if event.is_delete() {
                deletes += 1;
            } else {
                writes += 1;
            }
        }
        TraceStats {
            days: self.days,
            reads: self.total_reads(),
            writes,
            deletes,
            keys: keys.len() as u64,
        }
    }

    /// Serialises the trace to a writer (line-oriented text; see the crate
    /// docs for the format).
    ///
    /// # Errors
    ///
    /// Returns [`TtkvError::Io`] if the writer fails.
    pub fn save<W: Write>(&self, mut writer: W) -> Result<(), TtkvError> {
        writeln!(
            writer,
            "ocasta-trace v1 {} days={}",
            codec::escape(&self.name),
            self.days
        )?;
        for (key, count) in &self.read_counts {
            writeln!(writer, "r {} {}", codec::escape(key.as_str()), count)?;
        }
        for event in &self.events {
            match &event.mutation {
                Mutation::Write(value) => writeln!(
                    writer,
                    "w {} {} {}",
                    event.timestamp.as_millis(),
                    codec::escape(event.key.as_str()),
                    codec::value_to_token(value),
                )?,
                Mutation::Delete => writeln!(
                    writer,
                    "d {} {}",
                    event.timestamp.as_millis(),
                    codec::escape(event.key.as_str()),
                )?,
            }
        }
        Ok(())
    }

    /// Serialises the trace to a string.
    pub fn save_to_string(&self) -> String {
        let mut buf = Vec::new();
        self.save(&mut buf).expect("writing to a Vec cannot fail");
        String::from_utf8(buf).expect("trace format is UTF-8")
    }

    /// Loads a trace previously produced by [`Trace::save`].
    ///
    /// # Errors
    ///
    /// Returns [`TtkvError::Io`] on reader failure or [`TtkvError::Parse`] on
    /// malformed content.
    pub fn load<R: BufRead>(reader: R) -> Result<Trace, TtkvError> {
        fn parse_err(line: usize, message: impl Into<String>) -> TtkvError {
            TtkvError::Parse {
                line,
                message: message.into(),
            }
        }
        let mut lines = reader.lines();
        let header = lines
            .next()
            .transpose()?
            .ok_or_else(|| parse_err(1, "empty input"))?;
        let mut head_tokens = header.trim_end().split(' ');
        if head_tokens.next() != Some("ocasta-trace") || head_tokens.next() != Some("v1") {
            return Err(parse_err(1, format!("bad magic {header:?}")));
        }
        let name = head_tokens
            .next()
            .ok_or_else(|| parse_err(1, "missing trace name"))
            .and_then(|raw| codec::unescape(raw).map_err(|e| parse_err(1, e)))?;
        let days = head_tokens
            .next()
            .and_then(|t| t.strip_prefix("days="))
            .ok_or_else(|| parse_err(1, "missing days= field"))?
            .parse::<u64>()
            .map_err(|e| parse_err(1, format!("bad days: {e}")))?;
        let mut trace = Trace::new(name, days);
        for (idx, line) in lines.enumerate() {
            let lineno = idx + 2;
            let line = line?;
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let mut tokens = line.split(' ');
            match tokens.next() {
                Some("r") => {
                    let key = tokens
                        .next()
                        .ok_or_else(|| parse_err(lineno, "missing key"))
                        .and_then(|raw| codec::unescape(raw).map_err(|e| parse_err(lineno, e)))?;
                    let count = tokens
                        .next()
                        .ok_or_else(|| parse_err(lineno, "missing read count"))?
                        .parse::<u64>()
                        .map_err(|e| parse_err(lineno, format!("bad read count: {e}")))?;
                    trace.add_reads(Key::new(key), count);
                }
                Some(op @ ("w" | "d")) => {
                    let ts = tokens
                        .next()
                        .ok_or_else(|| parse_err(lineno, "missing timestamp"))?
                        .parse::<u64>()
                        .map_err(|e| parse_err(lineno, format!("bad timestamp: {e}")))?;
                    let key = tokens
                        .next()
                        .ok_or_else(|| parse_err(lineno, "missing key"))
                        .and_then(|raw| codec::unescape(raw).map_err(|e| parse_err(lineno, e)))?;
                    let t = Timestamp::from_millis(ts);
                    if op == "w" {
                        let value: Value =
                            codec::decode_value(&mut tokens).map_err(|e| parse_err(lineno, e))?;
                        trace.push(AccessEvent::write(t, Key::new(key), value));
                    } else {
                        trace.push(AccessEvent::delete(t, Key::new(key)));
                    }
                }
                Some(other) => return Err(parse_err(lineno, format!("unknown record {other:?}"))),
                None => unreachable!("split yields at least one token"),
            }
        }
        Ok(trace)
    }

    /// Loads a trace from a string.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Trace::load`].
    pub fn load_from_str(data: &str) -> Result<Trace, TtkvError> {
        Trace::load(io::Cursor::new(data.as_bytes()))
    }
}

impl Extend<AccessEvent> for Trace {
    fn extend<I: IntoIterator<Item = AccessEvent>>(&mut self, iter: I) {
        for e in iter {
            self.push(e);
        }
    }
}

/// Aggregate statistics of one trace (the shape of one Table I row).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Nominal deployment length in days.
    pub days: u64,
    /// Total read accesses.
    pub reads: u64,
    /// Total writes.
    pub writes: u64,
    /// Total deletions.
    pub deletes: u64,
    /// Distinct keys observed.
    pub keys: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn sample_trace() -> Trace {
        let mut trace = Trace::new("lab-1", 7);
        trace.push(AccessEvent::write(ts(10), "word/mru/max", 9));
        trace.push(AccessEvent::write(ts(10), "word/mru/item1", "a.doc"));
        trace.push(AccessEvent::delete(ts(500), "word/mru/item1"));
        trace.push(AccessEvent::write(ts(20), "chrome/home", true)); // out of order
        trace.add_reads("word/mru/max", 100);
        trace.add_reads("evolution/offline", 3);
        trace
    }

    #[test]
    fn events_are_sorted_on_access() {
        let mut trace = sample_trace();
        let times: Vec<_> = trace.events().iter().map(|e| e.timestamp).collect();
        assert_eq!(times, vec![ts(10), ts(10), ts(20), ts(500)]);
    }

    #[test]
    fn stats_count_everything_once() {
        let stats = sample_trace().stats();
        assert_eq!(stats.days, 7);
        assert_eq!(stats.reads, 103);
        assert_eq!(stats.writes, 3);
        assert_eq!(stats.deletes, 1);
        // word/mru/max, word/mru/item1, chrome/home, evolution/offline
        assert_eq!(stats.keys, 4);
    }

    #[test]
    fn apps_derive_from_key_prefixes() {
        assert_eq!(sample_trace().apps(), vec!["chrome", "evolution", "word"]);
    }

    #[test]
    fn replay_applies_precision() {
        let mut trace = Trace::new("t", 1);
        trace.push(AccessEvent::write(Timestamp::from_millis(1_250), "a/k", 1));
        let secs = trace.replay(TimePrecision::Seconds);
        let ms = trace.replay(TimePrecision::Milliseconds);
        assert!(secs.value_at("a/k", Timestamp::from_secs(1)).is_some());
        assert!(ms.value_at("a/k", Timestamp::from_secs(1)).is_none());
        assert!(ms.value_at("a/k", Timestamp::from_millis(1_250)).is_some());
    }

    #[test]
    fn replay_counts_reads_and_mutations() {
        let store = sample_trace().replay(TimePrecision::Seconds);
        let stats = store.stats();
        assert_eq!(stats.reads, 103);
        assert_eq!(stats.writes, 3);
        assert_eq!(stats.deletes, 1);
        assert_eq!(stats.keys, 4);
    }

    #[test]
    fn save_load_roundtrip() {
        let trace = sample_trace();
        let text = trace.save_to_string();
        let loaded = Trace::load_from_str(&text).unwrap();
        // Compare via stable views (sorted events + counters + header).
        let mut a = trace.clone();
        let mut b = loaded.clone();
        assert_eq!(a.name(), b.name());
        assert_eq!(a.days(), b.days());
        assert_eq!(a.read_counts(), b.read_counts());
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(Trace::load_from_str("").is_err());
        assert!(Trace::load_from_str("wrong header\n").is_err());
        assert!(Trace::load_from_str("ocasta-trace v1 t days=1\nz 1 2\n").is_err());
        assert!(Trace::load_from_str("ocasta-trace v1 t days=1\nw abc k i1\n").is_err());
        assert!(Trace::load_from_str("ocasta-trace v1 t days=1\nr k notanum\n").is_err());
    }

    #[test]
    fn end_time_reflects_days() {
        let trace = Trace::new("t", 3);
        assert_eq!(trace.end_time(), Timestamp::from_days(3));
    }
}
