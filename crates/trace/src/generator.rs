//! The synthetic desktop-workload generator.
//!
//! Substitutes for the paper's 29-machine deployment (§V): given per-
//! application [`WorkloadSpec`]s, produces a seeded, reproducible [`Trace`]
//! with the access patterns the paper's clustering relies on. See
//! `DESIGN.md` §5.3 for the substitution argument.

use std::collections::BTreeMap;

use ocasta_ttkv::{Key, TimeDelta, Timestamp, Value};
use rand::rngs::StdRng;
use rand::seq::{IndexedRandom, SliceRandom};
use rand::{Rng, SeedableRng};

use crate::event::AccessEvent;
use crate::sink::EventSink;
use crate::spec::{GroupBehavior, KeySpec, WorkloadSpec};
use crate::trace::Trace;

/// Configuration for one generated trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// RNG seed; identical seeds and specs produce identical traces.
    pub seed: u64,
    /// Deployment length in days.
    pub days: u64,
    /// Machine/user name for the trace.
    pub name: String,
}

impl GeneratorConfig {
    /// Creates a generator configuration.
    pub fn new(name: impl Into<String>, days: u64, seed: u64) -> Self {
        GeneratorConfig {
            seed,
            days,
            name: name.into(),
        }
    }
}

/// Generates a trace by simulating day-by-day desktop usage of every
/// application in `specs`.
///
/// The simulation is entirely deterministic in `(config.seed, specs)`:
///
/// * each app has 0–N sessions per day (Poisson around
///   [`WorkloadSpec::sessions_per_day`]), placed in an 8:00–22:00 window;
/// * a session reads every key once (startup read-all) plus extra reads;
/// * noise keys churn within sessions, independently;
/// * setting groups change rarely, writing members together per their
///   [`GroupBehavior`] (with optional partial updates);
/// * churn keys take occasional lone writes;
/// * software updates rewrite a third of all settings in one burst every
///   [`WorkloadSpec::update_every_days`] days.
///
/// # Examples
///
/// ```
/// use ocasta_trace::{generate, GeneratorConfig, KeySpec, SettingGroup, ValueKind, WorkloadSpec};
///
/// let mut spec = WorkloadSpec::new("mailer");
/// spec.groups.push(SettingGroup::new(
///     "mark_seen",
///     vec![
///         KeySpec::new("mark_seen", ValueKind::Toggle { initial: true }),
///         KeySpec::new("mark_seen_timeout", ValueKind::IntRange { min: 500, max: 3000 }),
///     ],
///     0.2,
/// ));
/// let trace = generate(&GeneratorConfig::new("demo", 30, 7), &[spec]);
/// assert!(trace.len() > 0);
/// ```
pub fn generate(config: &GeneratorConfig, specs: &[WorkloadSpec]) -> Trace {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut trace = Trace::new(config.name.clone(), config.days);
    let mut state = ValueState::default();

    for spec in specs {
        let mut app = AppSim::new(spec.clone(), &mut state);
        for day in 0..config.days {
            app.simulate_day(day, config.days, &mut trace, &mut rng, &mut state);
        }
    }
    trace
}

/// Live key values, shared so toggles flip and MRU lists accumulate.
#[derive(Debug, Default)]
pub(crate) struct ValueState {
    values: BTreeMap<Key, Value>,
}

impl ValueState {
    fn next_value(&mut self, rng: &mut StdRng, key: &Key, spec: &KeySpec) -> Value {
        let next = spec.kind.sample(rng, self.values.get(key.as_str()));
        self.values.insert(key.clone(), next.clone());
        next
    }

    fn remove(&mut self, key: &Key) {
        self.values.remove(key.as_str());
    }

    fn current_int(&self, key: &Key) -> Option<i64> {
        self.values.get(key.as_str()).and_then(Value::as_int)
    }
}

/// Per-app simulation state (resolved key names).
#[derive(Debug)]
pub(crate) struct AppSim {
    spec: WorkloadSpec,
    group_keys: Vec<Vec<Key>>,
    noise_keys: Vec<Key>,
    churn_keys: Vec<Key>,
    static_keys: Vec<Key>,
    /// Live item count per MRU group (index-aligned with `group_keys`).
    mru_live: Vec<usize>,
    /// Whether the install-day initialization burst has happened.
    initialized: bool,
}

impl AppSim {
    pub(crate) fn new(spec: WorkloadSpec, state: &mut ValueState) -> Self {
        let group_keys: Vec<Vec<Key>> = spec
            .groups
            .iter()
            .map(|g| g.keys.iter().map(|k| spec.key(&k.name)).collect())
            .collect();
        let noise_keys = spec.noise.iter().map(|n| spec.key(&n.spec.name)).collect();
        let churn_keys = (0..spec.churn_keys)
            .map(|i| spec.key(&format!("pref/opt{i:04}")))
            .collect();
        let static_keys = (0..spec.static_keys)
            .map(|i| spec.key(&format!("static/key{i:05}")))
            .collect();
        // MRU groups start with a couple of live items.
        let mru_live = spec
            .groups
            .iter()
            .map(|g| match g.behavior {
                GroupBehavior::MruWindow { .. } => (g.keys.len().saturating_sub(1)).min(3),
                GroupBehavior::Burst { .. } => 0,
            })
            .collect();
        // Seed initial values so toggles/limits have a baseline.
        for (group, keys) in spec.groups.iter().zip(&group_keys) {
            for (key_spec, key) in group.keys.iter().zip(keys) {
                state
                    .values
                    .entry(key.clone())
                    .or_insert_with(|| key_spec.kind.initial());
            }
        }
        AppSim {
            spec,
            group_keys,
            noise_keys,
            churn_keys,
            static_keys,
            mru_live,
            initialized: false,
        }
    }

    /// Install-day burst: the user (or the installer) walks the preference
    /// dialogs once, so every setting group receives one early write and
    /// every configuration key has a modification history. Groups are
    /// spaced well apart so the burst cannot merge unrelated groups.
    fn initialize_groups<S: EventSink>(
        &mut self,
        day: u64,
        sink: &mut S,
        rng: &mut StdRng,
        state: &mut ValueState,
    ) {
        let base = random_daytime(rng, day);
        for gi in 0..self.spec.groups.len() {
            let t = base + TimeDelta::from_secs(gi as u64 * 90 + rng.random_range(0..30));
            match self.spec.groups[gi].behavior {
                GroupBehavior::Burst { span_ms } => {
                    self.write_full_group(gi, t, span_ms, sink, rng, state);
                }
                GroupBehavior::MruWindow { span_ms, .. } => {
                    self.write_mru_max_change(gi, t, span_ms, sink, rng, state);
                }
            }
        }
        self.initialized = true;
    }

    /// Writes every member of a burst group (no partial updates).
    fn write_full_group<S: EventSink>(
        &self,
        gi: usize,
        t: Timestamp,
        span_ms: u64,
        sink: &mut S,
        rng: &mut StdRng,
        state: &mut ValueState,
    ) {
        let group = &self.spec.groups[gi];
        let keys = &self.group_keys[gi];
        let n = group.keys.len() as u64;
        for (pos, key) in keys.iter().enumerate() {
            let offset = if n > 1 {
                span_ms * pos as u64 / (n - 1)
            } else {
                0
            };
            let when = t + TimeDelta::from_millis(offset + rng.random_range(0..50));
            let value = state.next_value(rng, key, &group.keys[pos]);
            sink.record_event(AccessEvent::write(when, key.clone(), value));
        }
    }

    pub(crate) fn simulate_day<S: EventSink>(
        &mut self,
        day: u64,
        total_days: u64,
        sink: &mut S,
        rng: &mut StdRng,
        state: &mut ValueState,
    ) {
        let sessions = poisson(rng, self.spec.sessions_per_day);
        if sessions > 0 && !self.initialized {
            self.initialize_groups(day, sink, rng, state);
        }
        for _ in 0..sessions {
            self.simulate_session(day, sink, rng, state);
        }
        // Lone churn writes, independent of sessions.
        for _ in 0..poisson(rng, self.spec.churn_writes_per_day) {
            if let Some(key) = self.churn_keys.choose(rng) {
                let t = random_daytime(rng, day);
                let spec = KeySpec::new(
                    "churn",
                    crate::ValueKind::IntRange {
                        min: 0,
                        max: 1 << 20,
                    },
                );
                let value = state.next_value(rng, key, &spec);
                sink.record_event(AccessEvent::write(t, key.clone(), value));
            }
        }
        // Software update: one burst rewriting a third of everything.
        if let Some(every) = self.spec.update_every_days {
            if every > 0 && day % every == every - 1 && day + 1 < total_days {
                self.simulate_update(day, sink, rng, state);
            }
        }
    }

    fn simulate_session<S: EventSink>(
        &mut self,
        day: u64,
        sink: &mut S,
        rng: &mut StdRng,
        state: &mut ValueState,
    ) {
        let start = random_daytime(rng, day);
        let session_len = TimeDelta::from_mins(rng.random_range(15..120));

        // Startup read-all plus extra reads concentrated on a few keys.
        for key in self
            .static_keys
            .iter()
            .chain(self.churn_keys.iter())
            .chain(self.noise_keys.iter())
            .chain(self.group_keys.iter().flatten())
        {
            sink.record_reads(key.clone(), 1);
        }
        let extra = self.spec.reads_per_session;
        if extra > 0 {
            let hot_count = 16.min(self.spec.key_count().max(1));
            for _ in 0..hot_count {
                let key = self.random_key(rng);
                sink.record_reads(key, extra / hot_count as u64);
            }
        }

        // Noise churn.
        for (noise, key) in self.spec.noise.iter().zip(&self.noise_keys) {
            for _ in 0..poisson(rng, noise.writes_per_session) {
                let t = random_within(rng, start, session_len);
                let value = state.next_value(rng, key, &noise.spec);
                sink.record_event(AccessEvent::write(t, key.clone(), value));
            }
        }

        // Group activity.
        let per_session = if self.spec.sessions_per_day > 0.0 {
            1.0 / self.spec.sessions_per_day
        } else {
            1.0
        };
        for gi in 0..self.spec.groups.len() {
            let changes_per_day = self.spec.groups[gi].changes_per_day;
            match self.spec.groups[gi].behavior {
                GroupBehavior::Burst { span_ms } => {
                    let lambda = changes_per_day * per_session;
                    for _ in 0..poisson(rng, lambda) {
                        let t = random_within(rng, start, session_len);
                        self.write_burst_group(gi, t, span_ms, sink, rng, state);
                    }
                }
                GroupBehavior::MruWindow {
                    span_ms,
                    item_updates_per_session,
                } => {
                    // Frequent item rotations.
                    for _ in 0..poisson(rng, item_updates_per_session) {
                        let t = random_within(rng, start, session_len);
                        self.write_mru_rotation(gi, t, span_ms, sink, rng, state);
                    }
                    // Rare max changes.
                    let lambda = changes_per_day * per_session;
                    for _ in 0..poisson(rng, lambda) {
                        let t = random_within(rng, start, session_len);
                        self.write_mru_max_change(gi, t, span_ms, sink, rng, state);
                    }
                }
            }
        }
    }

    /// Writes a burst group: all members (or a partial subset) with jitter
    /// spread over `span_ms`.
    fn write_burst_group<S: EventSink>(
        &self,
        gi: usize,
        t: Timestamp,
        span_ms: u64,
        sink: &mut S,
        rng: &mut StdRng,
        state: &mut ValueState,
    ) {
        let group = &self.spec.groups[gi];
        let keys = &self.group_keys[gi];
        let mut members: Vec<usize> = (0..group.keys.len()).collect();
        if group.keys.len() > 1 && rng.random_bool(group.partial_update_prob) {
            members.shuffle(rng);
            let keep = rng.random_range(1..group.keys.len());
            members.truncate(keep);
            members.sort_unstable();
        }
        let n = members.len() as u64;
        for (pos, &mi) in members.iter().enumerate() {
            let offset = if n > 1 {
                span_ms * pos as u64 / (n - 1).max(1)
            } else {
                0
            };
            let jitter = rng.random_range(0..50);
            let when = t + TimeDelta::from_millis(offset + jitter);
            let value = state.next_value(rng, &keys[mi], &group.keys[mi]);
            sink.record_event(AccessEvent::write(when, keys[mi].clone(), value));
        }
    }

    #[allow(clippy::needless_range_loop)] // `slot` indexes two parallel arrays
    /// Rewrites the MRU item slots (a "document open"): the list grows by
    /// one slot (up to the current max) and every live slot is rewritten,
    /// staggered over the span.
    fn write_mru_rotation<S: EventSink>(
        &mut self,
        gi: usize,
        t: Timestamp,
        span_ms: u64,
        sink: &mut S,
        rng: &mut StdRng,
        state: &mut ValueState,
    ) {
        let group = &self.spec.groups[gi];
        let keys = &self.group_keys[gi];
        let slots = keys.len().saturating_sub(1);
        let max = state
            .current_int(&keys[0])
            .map_or(slots, |m| m.max(0) as usize)
            .min(slots);
        let live = (self.mru_live[gi] + 1).min(max);
        self.mru_live[gi] = live;
        for slot in 1..=live {
            let offset = span_ms * (slot as u64 - 1) / live.max(2) as u64;
            let when = t + TimeDelta::from_millis(offset + rng.random_range(0..50));
            let value = state.next_value(rng, &keys[slot], &group.keys[slot]);
            sink.record_event(AccessEvent::write(when, keys[slot].clone(), value));
        }
    }

    #[allow(clippy::needless_range_loop)] // `slot` indexes two parallel arrays
    /// Changes the MRU max: writes the max key, rewrites surviving slots and
    /// deletes slots beyond the new max (Figure 1a semantics).
    fn write_mru_max_change<S: EventSink>(
        &mut self,
        gi: usize,
        t: Timestamp,
        span_ms: u64,
        sink: &mut S,
        rng: &mut StdRng,
        state: &mut ValueState,
    ) {
        let group = &self.spec.groups[gi];
        let keys = &self.group_keys[gi];
        let slots = keys.len().saturating_sub(1);
        if slots == 0 {
            return;
        }
        let (min_max, max_max) = match group.keys[0].kind {
            crate::ValueKind::IntRange { min, max } => {
                (min.max(1) as usize, (max.max(1) as usize).min(slots))
            }
            _ => (1, slots),
        };
        let new_max = rng.random_range(min_max..=max_max.max(min_max));
        state
            .values
            .insert(keys[0].clone(), Value::Int(new_max as i64));
        sink.record_event(AccessEvent::write(
            t,
            keys[0].clone(),
            Value::Int(new_max as i64),
        ));
        // Figure 1a semantics: the application rewrites every surviving slot
        // and clears every slot beyond the new max, so a max change touches
        // the whole group.
        let steps = slots as u64;
        for slot in 1..=slots {
            let when =
                t + TimeDelta::from_millis(span_ms * slot as u64 / steps + rng.random_range(0..50));
            if slot <= new_max {
                let value = state.next_value(rng, &keys[slot], &group.keys[slot]);
                sink.record_event(AccessEvent::write(when, keys[slot].clone(), value));
            } else {
                state.remove(&keys[slot]);
                sink.record_event(AccessEvent::delete(when, keys[slot].clone()));
            }
        }
        self.mru_live[gi] = new_max;
    }

    /// One software-update burst touching a third of all writable settings.
    fn simulate_update<S: EventSink>(
        &self,
        day: u64,
        sink: &mut S,
        rng: &mut StdRng,
        state: &mut ValueState,
    ) {
        let t = random_daytime(rng, day);
        let mut offset = 0u64;
        for (group, keys) in self.spec.groups.iter().zip(&self.group_keys) {
            for (key_spec, key) in group.keys.iter().zip(keys) {
                if rng.random_bool(0.33) {
                    let when = t + TimeDelta::from_millis(offset);
                    offset += rng.random_range(5..40);
                    let value = state.next_value(rng, key, key_spec);
                    sink.record_event(AccessEvent::write(when, key.clone(), value));
                }
            }
        }
        for key in &self.churn_keys {
            if rng.random_bool(0.2) {
                let when = t + TimeDelta::from_millis(offset);
                offset += rng.random_range(5..40);
                let spec = KeySpec::new(
                    "churn",
                    crate::ValueKind::IntRange {
                        min: 0,
                        max: 1 << 20,
                    },
                );
                let value = state.next_value(rng, key, &spec);
                sink.record_event(AccessEvent::write(when, key.clone(), value));
            }
        }
    }

    fn random_key(&self, rng: &mut StdRng) -> Key {
        let pools: [&[Key]; 4] = [&self.static_keys, &self.churn_keys, &self.noise_keys, &[]];
        let _ = pools;
        // Weighted choice across all key classes, flattening group keys.
        let total = self.spec.key_count().max(1);
        let mut idx = rng.random_range(0..total);
        for pool in [&self.static_keys, &self.churn_keys, &self.noise_keys] {
            if idx < pool.len() {
                return pool[idx].clone();
            }
            idx -= pool.len();
        }
        for keys in &self.group_keys {
            if idx < keys.len() {
                return keys[idx].clone();
            }
            idx -= keys.len();
        }
        self.spec.key("static/key00000")
    }
}

/// A sample from a Poisson distribution (Knuth's method for small `lambda`,
/// normal approximation above 30).
pub(crate) fn poisson(rng: &mut StdRng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        let sample: f64 = rng.random::<f64>() + rng.random::<f64>() + rng.random::<f64>()
            - rng.random::<f64>()
            - rng.random::<f64>()
            - rng.random::<f64>();
        // `sample` is roughly normal with mean 0, variance 0.5.
        let normal = sample * std::f64::consts::SQRT_2;
        return (lambda + normal * lambda.sqrt()).round().max(0.0) as u64;
    }
    let threshold = (-lambda).exp();
    let mut count = 0u64;
    let mut product: f64 = rng.random();
    while product > threshold {
        count += 1;
        product *= rng.random::<f64>();
    }
    count
}

/// A random instant within day `day`'s 8:00–22:00 usage window.
fn random_daytime(rng: &mut StdRng, day: u64) -> Timestamp {
    let seconds = rng.random_range(8 * 3600..20 * 3600);
    Timestamp::from_days(day)
        + TimeDelta::from_secs(seconds)
        + TimeDelta::from_millis(rng.random_range(0..1000))
}

/// A random instant within `[start, start + len]`.
fn random_within(rng: &mut StdRng, start: Timestamp, len: TimeDelta) -> Timestamp {
    start + TimeDelta::from_millis(rng.random_range(0..len.as_millis().max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{NoiseKey, SettingGroup, ValueKind};
    use ocasta_ttkv::TimePrecision;

    fn demo_spec() -> WorkloadSpec {
        let mut spec = WorkloadSpec::new("demo");
        spec.sessions_per_day = 2.0;
        spec.reads_per_session = 64;
        spec.static_keys = 20;
        spec.churn_keys = 5;
        spec.churn_writes_per_day = 0.5;
        spec.groups.push(SettingGroup::new(
            "pair",
            vec![
                KeySpec::new("flag", ValueKind::Toggle { initial: false }),
                KeySpec::new("level", ValueKind::IntRange { min: 1, max: 5 }),
            ],
            0.4,
        ));
        spec.noise.push(NoiseKey::new(
            KeySpec::new(
                "geometry",
                ValueKind::IntRange {
                    min: 100,
                    max: 2000,
                },
            ),
            3.0,
        ));
        spec
    }

    #[test]
    fn generation_is_deterministic() {
        let config = GeneratorConfig::new("m", 10, 99);
        let a = generate(&config, &[demo_spec()]);
        let b = generate(&config, &[demo_spec()]);
        assert_eq!(a, b);
        let c = generate(&GeneratorConfig::new("m", 10, 100), &[demo_spec()]);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn trace_covers_expected_key_classes() {
        let trace = generate(&GeneratorConfig::new("m", 30, 7), &[demo_spec()]);
        let stats = trace.stats();
        assert!(stats.writes > 30, "writes: {}", stats.writes);
        assert!(stats.reads > 1_000, "reads: {}", stats.reads);
        // Static + churn + noise + group keys all observed.
        assert!(stats.keys >= 28, "keys: {}", stats.keys);
        let mut trace = trace;
        let group_writes = trace
            .events()
            .iter()
            .filter(|e| e.key.as_str() == "demo/flag")
            .count();
        assert!(group_writes >= 2, "group written {group_writes} times");
    }

    #[test]
    fn group_members_are_written_within_their_span() {
        let mut spec = WorkloadSpec::new("app");
        spec.sessions_per_day = 3.0;
        spec.groups.push(SettingGroup::new(
            "g",
            vec![
                KeySpec::new("a", ValueKind::Toggle { initial: true }),
                KeySpec::new("b", ValueKind::Toggle { initial: true }),
            ],
            1.0,
        ));
        let mut trace = generate(&GeneratorConfig::new("m", 40, 3), &[spec]);
        let events = trace.events();
        // Every write of `a` has a write of `b` within 1 second.
        let a_times: Vec<_> = events
            .iter()
            .filter(|e| e.key.as_str() == "app/a")
            .map(|e| e.timestamp)
            .collect();
        let b_times: Vec<_> = events
            .iter()
            .filter(|e| e.key.as_str() == "app/b")
            .map(|e| e.timestamp)
            .collect();
        assert!(!a_times.is_empty());
        for t in &a_times {
            assert!(
                b_times.iter().any(|bt| {
                    bt.delta_since(*t).as_millis() <= 1000 || t.delta_since(*bt).as_millis() <= 1000
                }),
                "lonely write of app/a at {t}"
            );
        }
    }

    #[test]
    fn mru_groups_emit_deletions() {
        let mut spec = WorkloadSpec::new("word");
        spec.sessions_per_day = 2.0;
        let mut keys = vec![KeySpec::new(
            "mru/max",
            ValueKind::IntRange { min: 1, max: 6 },
        )];
        for i in 1..=6 {
            keys.push(KeySpec::new(
                format!("mru/item{i}"),
                ValueKind::PathName { extension: "doc" },
            ));
        }
        spec.groups
            .push(
                SettingGroup::new("mru", keys, 0.5).with_behavior(GroupBehavior::MruWindow {
                    span_ms: 3_000,
                    item_updates_per_session: 2.0,
                }),
            );
        let trace = generate(&GeneratorConfig::new("m", 60, 11), &[spec]);
        let stats = trace.stats();
        assert!(stats.deletes > 0, "MRU shrinks should delete item slots");
        assert!(stats.writes > 50);
    }

    #[test]
    fn replay_roundtrips_through_ttkv() {
        let trace = generate(&GeneratorConfig::new("m", 15, 5), &[demo_spec()]);
        let store = trace.replay(TimePrecision::Seconds);
        assert_eq!(store.stats().writes, trace.stats().writes);
        assert_eq!(store.stats().reads, trace.stats().reads);
    }

    #[test]
    fn poisson_mean_is_roughly_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        for lambda in [0.3, 2.0, 8.0, 50.0] {
            let n = 3000;
            let total: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda * 0.15 + 0.1,
                "lambda={lambda}, mean={mean}"
            );
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn updates_touch_many_keys_in_one_burst() {
        let mut spec = demo_spec();
        spec.update_every_days = Some(10);
        spec.churn_keys = 30;
        let mut trace = generate(&GeneratorConfig::new("m", 30, 21), &[spec]);
        // Find a dense burst: ≥5 writes within 2 seconds.
        let events = trace.events();
        let times: Vec<_> = events.iter().map(|e| e.timestamp).collect();
        let mut best = 0;
        for (i, t) in times.iter().enumerate() {
            let within = times[i..]
                .iter()
                .take_while(|u| u.delta_since(*t).as_millis() <= 2_000)
                .count();
            best = best.max(within);
        }
        assert!(best >= 5, "largest 2s burst: {best}");
    }
}
