//! Where generated accesses go: the [`EventSink`] abstraction.
//!
//! The workload generator historically wrote straight into a [`Trace`],
//! materialising every event in memory. Fleet-scale ingestion
//! (`ocasta-fleet`) instead streams events as they are produced, so the
//! simulation core is generic over this sink trait: a [`Trace`] collects, a
//! streaming buffer forwards, a write-ahead log appends.

use ocasta_ttkv::Key;

use crate::event::AccessEvent;
use crate::trace::Trace;

/// A consumer of configuration-access observations.
pub trait EventSink {
    /// Receives one mutation event (write or deletion).
    fn record_event(&mut self, event: AccessEvent);

    /// Receives `count` aggregated read accesses to `key`.
    fn record_reads(&mut self, key: Key, count: u64);
}

impl EventSink for Trace {
    fn record_event(&mut self, event: AccessEvent) {
        self.push(event);
    }

    fn record_reads(&mut self, key: Key, count: u64) {
        self.add_reads(key, count);
    }
}

/// Forwarding: a `&mut` to a sink is a sink.
impl<S: EventSink + ?Sized> EventSink for &mut S {
    fn record_event(&mut self, event: AccessEvent) {
        (**self).record_event(event);
    }

    fn record_reads(&mut self, key: Key, count: u64) {
        (**self).record_reads(key, count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocasta_ttkv::Timestamp;

    #[test]
    fn trace_is_a_sink() {
        let mut trace = Trace::new("t", 1);
        EventSink::record_event(
            &mut trace,
            AccessEvent::write(Timestamp::from_secs(1), "a/k", 1),
        );
        EventSink::record_reads(&mut trace, Key::new("a/k"), 5);
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.total_reads(), 5);
    }
}
