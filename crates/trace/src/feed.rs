//! Feed adapters: turning op and event streams into analytics write feeds.
//!
//! The streaming clustering tier consumes one vocabulary — *which key
//! mutated when* — while traces speak several: materialised
//! [`Trace`](crate::Trace)s, lazy [`TraceOp`] streams, raw
//! [`AccessEvent`]s. The adapters here normalise all of them to
//! `(Key, Timestamp)` mutation pairs, dropping read accesses (reads carry
//! no co-modification signal) without the consumer knowing which source it
//! is fed from.

use ocasta_ttkv::{Key, Timestamp};

use crate::event::AccessEvent;
use crate::stream::TraceOp;
use crate::trace::Trace;

/// Adapts any [`TraceOp`] stream into its mutation feed: `(key, time)`
/// pairs for every write and deletion, reads skipped.
///
/// # Examples
///
/// ```
/// use ocasta_trace::{mutation_feed, AccessEvent, TraceOp};
/// use ocasta_ttkv::{Key, Timestamp};
///
/// let ops = vec![
///     TraceOp::Mutation(AccessEvent::write(Timestamp::from_secs(1), "app/k", 1)),
///     TraceOp::Reads(Key::new("app/k"), 250),
///     TraceOp::Mutation(AccessEvent::delete(Timestamp::from_secs(2), "app/k")),
/// ];
/// let feed: Vec<_> = mutation_feed(ops).collect();
/// assert_eq!(feed.len(), 2);
/// assert_eq!(feed[0].1, Timestamp::from_secs(1));
/// ```
pub fn mutation_feed<I>(ops: I) -> impl Iterator<Item = (Key, Timestamp)>
where
    I: IntoIterator<Item = TraceOp>,
{
    ops.into_iter().filter_map(|op| match op {
        TraceOp::Mutation(event) => Some((event.key, event.timestamp)),
        TraceOp::Reads(..) => None,
    })
}

impl TraceOp {
    /// The mutation inside this op, if it is one — the borrowing
    /// counterpart of [`mutation_feed`] for callers holding op slices.
    pub fn as_mutation(&self) -> Option<&AccessEvent> {
        match self {
            TraceOp::Mutation(event) => Some(event),
            TraceOp::Reads(..) => None,
        }
    }
}

impl Trace {
    /// This trace's mutation feed: `(key, time)` for every recorded write
    /// and deletion, in recorded order.
    pub fn mutation_feed(&self) -> impl Iterator<Item = (Key, Timestamp)> + '_ {
        self.events_unsorted()
            .iter()
            .map(|event| (event.key.clone(), event.timestamp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feed_drops_reads_and_keeps_mutation_order() {
        let ops = vec![
            TraceOp::Reads(Key::new("a/x"), 5),
            TraceOp::Mutation(AccessEvent::write(Timestamp::from_secs(3), "a/y", 1)),
            TraceOp::Mutation(AccessEvent::delete(Timestamp::from_secs(1), "a/z")),
        ];
        let feed: Vec<_> = mutation_feed(ops).collect();
        assert_eq!(feed.len(), 2);
        assert_eq!(feed[0].0.as_str(), "a/y");
        assert_eq!(feed[1].0.as_str(), "a/z");
        assert_eq!(feed[1].1, Timestamp::from_secs(1));
    }

    #[test]
    fn as_mutation_selects_mutations_only() {
        let write = TraceOp::Mutation(AccessEvent::write(Timestamp::from_secs(1), "a/x", 1));
        assert!(write.as_mutation().is_some());
        assert!(TraceOp::Reads(Key::new("a/x"), 1).as_mutation().is_none());
    }

    #[test]
    fn trace_feed_covers_every_mutation() {
        let mut trace = Trace::new("t", 1);
        trace.push(AccessEvent::write(Timestamp::from_secs(1), "a/x", 1));
        trace.push(AccessEvent::delete(Timestamp::from_secs(2), "a/x"));
        trace.add_reads("a/x", 40);
        let feed: Vec<_> = trace.mutation_feed().collect();
        assert_eq!(feed.len(), 2);
    }
}
