//! Machine profiles calibrated to the paper's Table I.
//!
//! Each profile carries the published deployment length and access totals
//! for one of the nine traced machines/users; [`MachineProfile::calibrate`]
//! scales a set of workload specs so the generated trace approximates those
//! totals. Absolute volumes are approximate (the generator is stochastic);
//! the *shape* — orders of magnitude between machines, reads ≫ writes,
//! Windows ≫ Linux — is what downstream experiments rely on.

use crate::spec::{GroupBehavior, WorkloadSpec};

/// OS family of a traced machine (drives which applications run on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OsFlavor {
    /// Windows 7 / Vista / XP desktops (registry logger).
    Windows,
    /// Debian 6 lab machines (GConf + file loggers).
    Linux,
}

/// One machine/user row of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineProfile {
    /// Machine or user label, as in Table I.
    pub name: &'static str,
    /// OS family.
    pub os: OsFlavor,
    /// Deployment length in days.
    pub days: u64,
    /// Published total reads.
    pub target_reads: u64,
    /// Published total writes.
    pub target_writes: u64,
    /// Published distinct key count.
    pub target_keys: u64,
    /// Generator seed (fixed so every run reproduces the same trace).
    pub seed: u64,
}

/// The nine Table I machines/users.
pub const TABLE1_PROFILES: [MachineProfile; 9] = [
    MachineProfile {
        name: "Windows 7",
        os: OsFlavor::Windows,
        days: 42,
        target_reads: 6_760_000,
        target_writes: 67_720,
        target_keys: 4_611,
        seed: 71,
    },
    MachineProfile {
        name: "Windows Vista",
        os: OsFlavor::Windows,
        days: 53,
        target_reads: 3_460_000,
        target_writes: 20_500,
        target_keys: 14_673,
        seed: 72,
    },
    MachineProfile {
        name: "Windows Vista-2",
        os: OsFlavor::Windows,
        days: 18,
        target_reads: 15_080_000,
        target_writes: 224_640,
        target_keys: 1_123,
        seed: 73,
    },
    MachineProfile {
        name: "Windows XP",
        os: OsFlavor::Windows,
        days: 25,
        target_reads: 22_800_000,
        target_writes: 311_900,
        target_keys: 14_667,
        seed: 74,
    },
    MachineProfile {
        name: "Windows XP-2",
        os: OsFlavor::Windows,
        days: 32,
        target_reads: 26_760_000,
        target_writes: 268_960,
        target_keys: 19_501,
        seed: 75,
    },
    MachineProfile {
        name: "Linux-1",
        os: OsFlavor::Linux,
        days: 25,
        target_reads: 91_520,
        target_writes: 3_340,
        target_keys: 1_660,
        seed: 76,
    },
    MachineProfile {
        name: "Linux-2",
        os: OsFlavor::Linux,
        days: 84,
        target_reads: 8_150,
        target_writes: 480,
        target_keys: 35,
        seed: 77,
    },
    MachineProfile {
        name: "Linux-3",
        os: OsFlavor::Linux,
        days: 46,
        target_reads: 52_410,
        target_writes: 440,
        target_keys: 706,
        seed: 78,
    },
    MachineProfile {
        name: "Linux-4",
        os: OsFlavor::Linux,
        days: 64,
        target_reads: 507_070,
        target_writes: 5_430,
        target_keys: 751,
        seed: 79,
    },
];

impl MachineProfile {
    /// Looks a profile up by its Table I name.
    pub fn by_name(name: &str) -> Option<&'static MachineProfile> {
        TABLE1_PROFILES.iter().find(|p| p.name == name)
    }

    /// Scales `specs` in place so a [`crate::generate`] run over `self.days`
    /// days approximates this machine's Table I totals:
    ///
    /// * pads `static_keys` until the distinct-key total matches;
    /// * solves for `reads_per_session` from the read target;
    /// * scales noise/churn write rates toward the write target (group
    ///   change rates are semantically meaningful and left untouched).
    pub fn calibrate(&self, specs: &mut [WorkloadSpec]) {
        if specs.is_empty() {
            return;
        }
        // Order matters: write scaling may add churn keys, key padding fixes
        // the key population, and the read solve depends on the final key
        // count (startup reads scan every key).
        self.calibrate_writes(specs);
        self.calibrate_keys(specs);
        self.calibrate_reads(specs);
    }

    fn calibrate_keys(&self, specs: &mut [WorkloadSpec]) {
        let current_keys: usize = specs.iter().map(WorkloadSpec::key_count).sum();
        let missing = (self.target_keys as usize).saturating_sub(current_keys);
        let per_spec = missing / specs.len();
        let mut remainder = missing % specs.len();
        for spec in specs.iter_mut() {
            spec.static_keys += per_spec + usize::from(remainder > 0);
            remainder = remainder.saturating_sub(1);
        }
    }

    fn calibrate_reads(&self, specs: &mut [WorkloadSpec]) {
        let reads_per_day_target = self.target_reads as f64 / self.days as f64;
        let startup_reads_per_day: f64 = specs
            .iter()
            .map(|s| s.sessions_per_day * s.key_count() as f64)
            .sum();
        let total_sessions_per_day: f64 = specs.iter().map(|s| s.sessions_per_day).sum();
        let extra_per_session = ((reads_per_day_target - startup_reads_per_day)
            / total_sessions_per_day.max(0.01))
        .clamp(0.0, f64::MAX) as u64;
        for spec in specs.iter_mut() {
            spec.reads_per_session = extra_per_session;
        }
    }

    fn calibrate_writes(&self, specs: &mut [WorkloadSpec]) {
        let writes_per_day_target = self.target_writes as f64 / self.days as f64;
        let mut group_writes_per_day = 0.0;
        let mut scalable_writes_per_day = 0.0;
        for spec in specs.iter() {
            for group in &spec.groups {
                let size = group.keys.len() as f64;
                match group.behavior {
                    GroupBehavior::Burst { .. } => {
                        group_writes_per_day +=
                            group.changes_per_day * size * (1.0 - group.partial_update_prob * 0.5);
                    }
                    GroupBehavior::MruWindow {
                        item_updates_per_session,
                        ..
                    } => {
                        let live = (size - 1.0).clamp(1.0, 3.0);
                        group_writes_per_day +=
                            item_updates_per_session * spec.sessions_per_day * live
                                + group.changes_per_day * size;
                    }
                }
            }
            scalable_writes_per_day += spec.churn_writes_per_day;
            scalable_writes_per_day += spec
                .noise
                .iter()
                .map(|n| n.writes_per_session * spec.sessions_per_day)
                .sum::<f64>();
        }
        let deficit = (writes_per_day_target - group_writes_per_day).max(0.0);
        let factor = if scalable_writes_per_day > 0.0 {
            deficit / scalable_writes_per_day
        } else {
            0.0
        };
        // Heavy write volumes need enough churn keys to spread over, but the
        // churn population must stay well under the machine's key budget.
        let churn_budget = ((self.target_keys / 4) as usize / specs.len()).max(1);
        for spec in specs.iter_mut() {
            spec.churn_writes_per_day *= factor;
            for noise in &mut spec.noise {
                noise.writes_per_session *= factor;
            }
            if factor > 2.0 && spec.churn_keys < churn_budget {
                spec.churn_keys = churn_budget.min(64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};
    use crate::spec::{KeySpec, NoiseKey, SettingGroup, ValueKind};

    fn base_specs() -> Vec<WorkloadSpec> {
        let mut spec = WorkloadSpec::new("editor");
        spec.sessions_per_day = 2.0;
        spec.static_keys = 10;
        spec.churn_keys = 8;
        spec.churn_writes_per_day = 1.0;
        spec.groups.push(SettingGroup::new(
            "pair",
            vec![
                KeySpec::new("a", ValueKind::Toggle { initial: true }),
                KeySpec::new("b", ValueKind::IntRange { min: 0, max: 9 }),
            ],
            0.2,
        ));
        spec.noise.push(NoiseKey::new(
            KeySpec::new("geom", ValueKind::IntRange { min: 0, max: 4000 }),
            2.0,
        ));
        vec![spec]
    }

    #[test]
    fn all_nine_table1_rows_present() {
        assert_eq!(TABLE1_PROFILES.len(), 9);
        assert_eq!(
            TABLE1_PROFILES
                .iter()
                .filter(|p| p.os == OsFlavor::Windows)
                .count(),
            5
        );
        assert!(MachineProfile::by_name("Linux-3").is_some());
        assert!(MachineProfile::by_name("BeOS").is_none());
    }

    #[test]
    fn calibrate_pads_keys_to_target() {
        let profile = MachineProfile::by_name("Linux-3").unwrap();
        let mut specs = base_specs();
        profile.calibrate(&mut specs);
        let total: usize = specs.iter().map(WorkloadSpec::key_count).sum();
        assert!(
            (total as i64 - profile.target_keys as i64).abs() <= 1,
            "padded to {total}, want {}",
            profile.target_keys
        );
    }

    #[test]
    fn calibrated_trace_approximates_targets() {
        // Use the smallest machine so the test stays fast.
        let profile = MachineProfile::by_name("Linux-2").unwrap();
        let mut specs = base_specs();
        profile.calibrate(&mut specs);
        let config = GeneratorConfig::new(profile.name, profile.days, profile.seed);
        let stats = generate(&config, &specs).stats();
        let reads_err =
            (stats.reads as f64 - profile.target_reads as f64).abs() / profile.target_reads as f64;
        let writes_err = (stats.writes as f64 - profile.target_writes as f64).abs()
            / profile.target_writes as f64;
        assert!(
            reads_err < 0.5,
            "reads {} vs {}",
            stats.reads,
            profile.target_reads
        );
        assert!(
            writes_err < 0.5,
            "writes {} vs {}",
            stats.writes,
            profile.target_writes
        );
    }

    #[test]
    fn calibration_never_reduces_group_rates() {
        let profile = MachineProfile::by_name("Windows 7").unwrap();
        let mut specs = base_specs();
        let before = specs[0].groups[0].changes_per_day;
        profile.calibrate(&mut specs);
        assert_eq!(specs[0].groups[0].changes_per_day, before);
    }
}
