//! Lazy, day-chunked streaming generation of fleet-scale traces.
//!
//! [`crate::generate`] materialises a whole deployment's [`Trace`] in
//! memory before anything can consume it — fine for one machine, hopeless
//! for a fleet of hundreds streamed concurrently. [`EventStream`] produces
//! the same kind of synthetic desktop workload *incrementally*: it simulates
//! one day at a time and buffers only that day's operations, so peak memory
//! is bounded by the busiest single day regardless of deployment length.
//!
//! The stream yields [`TraceOp`]s — mutations interleaved with aggregated
//! read counts — which is exactly the vocabulary the `ocasta-fleet`
//! write-ahead log and sharded ingestion pipeline consume.

use std::collections::VecDeque;

use ocasta_ttkv::{Key, TimePrecision, Ttkv, TtkvBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::event::{AccessEvent, Mutation};
use crate::generator::{AppSim, GeneratorConfig, ValueState};
use crate::sink::EventSink;
use crate::spec::WorkloadSpec;

/// One streamed trace operation: the unit of fleet ingestion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// A mutation (write or deletion) of one setting.
    Mutation(AccessEvent),
    /// `count` aggregated read accesses to a key.
    Reads(Key, u64),
}

impl TraceOp {
    /// The key this operation touches.
    pub fn key(&self) -> &Key {
        match self {
            TraceOp::Mutation(event) => &event.key,
            TraceOp::Reads(key, _) => key,
        }
    }

    /// `true` if this is a mutation (write or deletion).
    pub fn is_mutation(&self) -> bool {
        matches!(self, TraceOp::Mutation(_))
    }

    /// Applies this operation to a [`Ttkv`], quantising mutation timestamps
    /// to `precision`.
    pub fn apply(self, store: &mut Ttkv, precision: TimePrecision) {
        match self {
            TraceOp::Mutation(event) => {
                let t = precision.apply(event.timestamp);
                match event.mutation {
                    Mutation::Write(value) => store.write(t, event.key, value),
                    Mutation::Delete => store.delete(t, event.key),
                }
            }
            TraceOp::Reads(key, count) => store.add_reads(key, count),
        }
    }

    /// Buffers this operation into a [`TtkvBuilder`] (timestamps are kept
    /// at full precision; quantise on the event if needed).
    pub fn buffer(self, builder: &mut TtkvBuilder) {
        match self {
            TraceOp::Mutation(event) => match event.mutation {
                Mutation::Write(value) => builder.write(event.timestamp, event.key, value),
                Mutation::Delete => builder.delete(event.timestamp, event.key),
            },
            TraceOp::Reads(key, count) => builder.add_reads(key, count),
        }
    }
}

/// A day's worth of buffered operations; the [`EventSink`] the simulation
/// writes into between yields.
#[derive(Debug, Default)]
struct DayBuffer {
    ops: VecDeque<TraceOp>,
}

impl EventSink for DayBuffer {
    fn record_event(&mut self, event: AccessEvent) {
        self.ops.push_back(TraceOp::Mutation(event));
    }

    fn record_reads(&mut self, key: Key, count: u64) {
        self.ops.push_back(TraceOp::Reads(key, count));
    }
}

/// A lazy iterator over one simulated machine's configuration accesses.
///
/// Events arrive in day order; within a day they arrive in simulation order
/// (which is *not* globally timestamp-sorted, exactly like a real logger's
/// interleaved observations — the TTKV and the fleet WAL both accept
/// out-of-order arrivals).
///
/// # Examples
///
/// ```
/// use ocasta_trace::{EventStream, GeneratorConfig, KeySpec, SettingGroup, ValueKind, WorkloadSpec};
///
/// let mut spec = WorkloadSpec::new("viewer");
/// spec.groups.push(SettingGroup::new(
///     "print",
///     vec![KeySpec::new("print/dpi", ValueKind::IntRange { min: 150, max: 600 })],
///     0.3,
/// ));
/// let config = GeneratorConfig::new("m01", 30, 7);
/// let ops: Vec<_> = EventStream::new(&config, vec![spec]).collect();
/// assert!(!ops.is_empty());
/// // Identical configuration ⇒ identical stream.
/// # let spec2 = {
/// #     let mut s = WorkloadSpec::new("viewer");
/// #     s.groups.push(SettingGroup::new(
/// #         "print",
/// #         vec![KeySpec::new("print/dpi", ValueKind::IntRange { min: 150, max: 600 })],
/// #         0.3,
/// #     ));
/// #     s
/// # };
/// assert!(EventStream::new(&config, vec![spec2]).eq(ops.into_iter()));
/// ```
#[derive(Debug)]
pub struct EventStream {
    sims: Vec<AppSim>,
    /// One RNG per app so the stream is insensitive to how many other apps
    /// run on the machine before it.
    rngs: Vec<StdRng>,
    state: ValueState,
    day: u64,
    days: u64,
    buf: DayBuffer,
}

impl EventStream {
    /// Builds a stream for one machine described by `config` over the given
    /// application workloads.
    pub fn new(config: &GeneratorConfig, specs: Vec<WorkloadSpec>) -> Self {
        let mut state = ValueState::default();
        let rngs = (0..specs.len())
            .map(|i| {
                StdRng::seed_from_u64(config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            })
            .collect();
        let sims = specs
            .into_iter()
            .map(|spec| AppSim::new(spec, &mut state))
            .collect();
        EventStream {
            sims,
            rngs,
            state,
            day: 0,
            days: config.days,
            buf: DayBuffer::default(),
        }
    }

    /// The deployment length in days.
    pub fn days(&self) -> u64 {
        self.days
    }

    /// The next day still to be simulated (equals [`EventStream::days`]
    /// once the stream is exhausted).
    pub fn current_day(&self) -> u64 {
        self.day
    }
}

impl Iterator for EventStream {
    type Item = TraceOp;

    fn next(&mut self) -> Option<TraceOp> {
        loop {
            if let Some(op) = self.buf.ops.pop_front() {
                return Some(op);
            }
            if self.day >= self.days {
                return None;
            }
            let day = self.day;
            self.day += 1;
            for (sim, rng) in self.sims.iter_mut().zip(&mut self.rngs) {
                sim.simulate_day(day, self.days, &mut self.buf, rng, &mut self.state);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{KeySpec, NoiseKey, SettingGroup, ValueKind};
    use ocasta_ttkv::TimePrecision;

    fn demo_specs() -> Vec<WorkloadSpec> {
        let mut a = WorkloadSpec::new("alpha");
        a.sessions_per_day = 2.0;
        a.reads_per_session = 16;
        a.static_keys = 10;
        a.churn_keys = 3;
        a.churn_writes_per_day = 0.5;
        a.groups.push(SettingGroup::new(
            "pair",
            vec![
                KeySpec::new("flag", ValueKind::Toggle { initial: false }),
                KeySpec::new("level", ValueKind::IntRange { min: 1, max: 5 }),
            ],
            0.4,
        ));
        a.noise.push(NoiseKey::new(
            KeySpec::new(
                "geometry",
                ValueKind::IntRange {
                    min: 100,
                    max: 2000,
                },
            ),
            2.0,
        ));
        let mut b = WorkloadSpec::new("beta");
        b.sessions_per_day = 1.0;
        b.static_keys = 5;
        b.groups.push(SettingGroup::new(
            "solo",
            vec![KeySpec::new("mode", ValueKind::Toggle { initial: true })],
            0.2,
        ));
        vec![a, b]
    }

    #[test]
    fn stream_is_deterministic() {
        let config = GeneratorConfig::new("m", 20, 11);
        let a: Vec<_> = EventStream::new(&config, demo_specs()).collect();
        let b: Vec<_> = EventStream::new(&config, demo_specs()).collect();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c: Vec<_> =
            EventStream::new(&GeneratorConfig::new("m", 20, 12), demo_specs()).collect();
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn stream_yields_days_in_order_and_covers_all_apps() {
        let config = GeneratorConfig::new("m", 30, 3);
        let ops: Vec<_> = EventStream::new(&config, demo_specs()).collect();
        let mut last_day = 0;
        let mut apps = std::collections::BTreeSet::new();
        for op in &ops {
            if let TraceOp::Mutation(event) = op {
                let day = event.timestamp.as_millis() / 86_400_000;
                assert!(day + 1 >= last_day, "events stay within a day of order");
                last_day = last_day.max(day);
                apps.insert(event.app().to_owned());
            }
        }
        assert!(apps.contains("alpha") && apps.contains("beta"), "{apps:?}");
    }

    #[test]
    fn streamed_replay_builds_a_plausible_store() {
        let config = GeneratorConfig::new("m", 15, 9);
        let mut store = Ttkv::new();
        let mut ops = 0usize;
        for op in EventStream::new(&config, demo_specs()) {
            ops += 1;
            op.apply(&mut store, TimePrecision::Seconds);
        }
        assert!(ops > 100, "ops: {ops}");
        assert!(store.stats().writes > 10);
        assert!(store.stats().reads > 100);
        assert!(store.len() >= 15, "keys: {}", store.len());
    }

    #[test]
    fn buffered_build_equals_direct_apply() {
        let config = GeneratorConfig::new("m", 10, 5);
        let mut direct = Ttkv::new();
        let mut builder = TtkvBuilder::new();
        for op in EventStream::new(&config, demo_specs()) {
            op.clone().apply(&mut direct, TimePrecision::Milliseconds);
            op.buffer(&mut builder);
        }
        assert_eq!(builder.build(), direct);
    }

    #[test]
    fn current_day_tracks_progress() {
        let config = GeneratorConfig::new("m", 4, 2);
        let mut stream = EventStream::new(&config, demo_specs());
        assert_eq!(stream.current_day(), 0);
        while stream.next().is_some() {}
        assert_eq!(stream.current_day(), stream.days());
    }
}
