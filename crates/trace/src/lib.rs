//! # ocasta-trace — trace substrate
//!
//! The trace-collection substrate of the
//! [Ocasta](https://arxiv.org/abs/1711.04030) reproduction. The paper
//! deployed loggers (registry interception, `LD_PRELOAD` GConf shims, file
//! flush diffing) on 29 real desktops for one to two-plus months; this crate
//! provides everything downstream of the interception point:
//!
//! * [`AccessEvent`] / [`Mutation`] — the events loggers emit;
//! * [`Trace`] — an ordered mutation log with aggregate read counters, a
//!   line-oriented file format, and [`Trace::replay`] into a
//!   [`ocasta_ttkv::Ttkv`];
//! * [`WorkloadSpec`] / [`generate`] — a seeded synthetic desktop-workload
//!   generator that substitutes for the live deployment;
//! * [`MachineProfile`] — the nine Table I machines, with calibration so
//!   generated traces match the published access volumes.
//!
//! ```
//! use ocasta_trace::{generate, GeneratorConfig, KeySpec, SettingGroup, ValueKind, WorkloadSpec};
//! use ocasta_ttkv::TimePrecision;
//!
//! let mut spec = WorkloadSpec::new("viewer");
//! spec.groups.push(SettingGroup::new(
//!     "print",
//!     vec![
//!         KeySpec::new("print/enabled", ValueKind::Toggle { initial: true }),
//!         KeySpec::new("print/dpi", ValueKind::IntRange { min: 150, max: 600 }),
//!     ],
//!     0.3,
//! ));
//! let trace = generate(&GeneratorConfig::new("demo", 20, 1), &[spec]);
//! let store = trace.replay(TimePrecision::Seconds);
//! assert!(store.stats().writes > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
mod feed;
mod generator;
mod profiles;
mod sink;
mod spec;
mod stream;
#[allow(clippy::module_inception)]
mod trace;

pub use event::{AccessEvent, Mutation};
pub use feed::mutation_feed;
pub use generator::{generate, GeneratorConfig};
pub use profiles::{MachineProfile, OsFlavor, TABLE1_PROFILES};
pub use sink::EventSink;
pub use spec::{GroupBehavior, KeySpec, NoiseKey, SettingGroup, ValueKind, WorkloadSpec};
pub use stream::{EventStream, TraceOp};
pub use trace::{Trace, TraceStats};
