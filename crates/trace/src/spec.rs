//! Workload specifications: the data-driven description of how an
//! application touches its configuration store.
//!
//! The paper's traces come from real desktops; this reproduction generates
//! them from `WorkloadSpec`s built by `ocasta-apps` (one per application).
//! The spec encodes exactly the behaviours the paper identifies as the
//! *reasons* clustering works — and the reasons it sometimes fails:
//!
//! * related settings are written together by application logic
//!   ([`SettingGroup`]);
//! * a few settings churn frequently and independently ([`NoiseKey`] — MRU
//!   lists, window geometry);
//! * users occasionally change unrelated settings in one burst and software
//!   updates rewrite many keys at once (oversized-cluster sources);
//! * dependent settings are sometimes only partially updated
//!   ([`SettingGroup::partial_update_prob`] — undersized-cluster source).

use ocasta_ttkv::Value;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::Rng;

/// How values for one key are generated across writes.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueKind {
    /// A boolean that flips on every change.
    Toggle {
        /// Value before the first change.
        initial: bool,
    },
    /// A boolean that is `true` with probability `on_prob` on each write —
    /// the model for settings users keep in one state almost all the time
    /// (a visible toolbar, an enabled feature).
    BiasedToggle {
        /// Probability of writing `true`.
        on_prob: f64,
    },
    /// A textual choice drawn with the given weights; heavier options model
    /// the states users prefer.
    WeightedChoice(Vec<(&'static str, u32)>),
    /// An integer drawn uniformly from `min..=max`.
    IntRange {
        /// Smallest value.
        min: i64,
        /// Largest value.
        max: i64,
    },
    /// A float drawn uniformly from `min..=max`, rounded to 2 decimals.
    FloatRange {
        /// Smallest value.
        min: f64,
        /// Largest value.
        max: f64,
    },
    /// One of a fixed set of textual choices (enumerated settings).
    Choice(Vec<&'static str>),
    /// A synthetic file-path-like string (document names, executables).
    PathName {
        /// File extension, e.g. `"doc"`.
        extension: &'static str,
    },
    /// An ordered most-recently-used list of path names.
    RecentList {
        /// Maximum list length.
        max_len: usize,
        /// File extension of generated names.
        extension: &'static str,
    },
}

impl ValueKind {
    /// Samples the next value for a key, given its previous value (used by
    /// toggles and MRU lists).
    pub fn sample(&self, rng: &mut StdRng, previous: Option<&Value>) -> Value {
        match self {
            ValueKind::Toggle { initial } => {
                let prev = previous.and_then(Value::as_bool).unwrap_or(*initial);
                Value::Bool(!prev)
            }
            ValueKind::BiasedToggle { on_prob } => {
                Value::Bool(rng.random_bool(on_prob.clamp(0.0, 1.0)))
            }
            ValueKind::WeightedChoice(options) => {
                let total: u32 = options.iter().map(|(_, w)| w).sum();
                let mut pick = rng.random_range(0..total.max(1));
                for (option, weight) in options {
                    if pick < *weight {
                        return Value::Str((*option).to_owned());
                    }
                    pick -= weight;
                }
                Value::Str(options.last().expect("non-empty").0.to_owned())
            }
            ValueKind::IntRange { min, max } => Value::Int(rng.random_range(*min..=*max)),
            ValueKind::FloatRange { min, max } => {
                let raw: f64 = rng.random_range(*min..=*max);
                Value::Float((raw * 100.0).round() / 100.0)
            }
            ValueKind::Choice(options) => {
                Value::Str((*options.choose(rng).expect("choices are non-empty")).to_owned())
            }
            ValueKind::PathName { extension } => Value::Str(random_path(rng, extension)),
            ValueKind::RecentList { max_len, extension } => {
                let mut items: Vec<Value> = previous
                    .and_then(Value::as_list)
                    .map(<[Value]>::to_vec)
                    .unwrap_or_default();
                items.insert(0, Value::Str(random_path(rng, extension)));
                items.truncate(*max_len);
                Value::List(items)
            }
        }
    }

    /// An initial value for the key (what the application ships with).
    pub fn initial(&self) -> Value {
        match self {
            ValueKind::Toggle { initial } => Value::Bool(*initial),
            ValueKind::BiasedToggle { on_prob } => Value::Bool(*on_prob >= 0.5),
            ValueKind::WeightedChoice(options) => Value::Str(
                options
                    .iter()
                    .max_by_key(|(_, w)| *w)
                    .expect("non-empty")
                    .0
                    .to_owned(),
            ),
            ValueKind::IntRange { min, .. } => Value::Int(*min),
            ValueKind::FloatRange { min, .. } => Value::Float(*min),
            ValueKind::Choice(options) => {
                Value::Str((*options.first().expect("non-empty")).to_owned())
            }
            ValueKind::PathName { extension } => Value::Str(format!("default.{extension}")),
            ValueKind::RecentList { .. } => Value::List(Vec::new()),
        }
    }
}

fn random_path(rng: &mut StdRng, extension: &str) -> String {
    const STEMS: [&str; 12] = [
        "report", "notes", "draft", "budget", "thesis", "slides", "summary", "invoice", "paper",
        "letter", "plan", "data",
    ];
    format!(
        "{}{}.{}",
        STEMS.choose(rng).expect("non-empty"),
        rng.random_range(1..1000),
        extension
    )
}

/// One configuration setting within a workload spec.
#[derive(Debug, Clone, PartialEq)]
pub struct KeySpec {
    /// Key path relative to the application prefix, e.g. `mru/max_display`.
    pub name: String,
    /// How its values evolve.
    pub kind: ValueKind,
}

impl KeySpec {
    /// Creates a key spec.
    pub fn new(name: impl Into<String>, kind: ValueKind) -> Self {
        KeySpec {
            name: name.into(),
            kind,
        }
    }
}

/// How a group's writes are laid out in time when it changes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GroupBehavior {
    /// All member keys are written in one burst spanning `span_ms`
    /// milliseconds (the default; fits inside the paper's 1-second window
    /// when `span_ms < 1000`).
    Burst {
        /// Total time between the first and last write of the group.
        span_ms: u64,
    },
    /// A most-recently-used window (the paper's Figure 1a): `keys[0]` is the
    /// rarely-changing *max count* setting; `keys[1..]` are item slots.
    ///
    /// Item slots are rewritten (staggered over `span_ms`) on every "document
    /// open", which happens `item_updates_per_session` times per session —
    /// far more often than the max changes. Changing the max rewrites the
    /// slots and *deletes* slots beyond the new max. This is the behaviour
    /// behind the paper's error #2 and its window/threshold tuning.
    MruWindow {
        /// Total time between the first and last write of a rotation.
        span_ms: u64,
        /// Expected item-slot rotations per application session.
        item_updates_per_session: f64,
    },
}

impl Default for GroupBehavior {
    fn default() -> Self {
        GroupBehavior::Burst { span_ms: 600 }
    }
}

/// A group of *related* settings the application updates together.
///
/// Groups are the ground truth for clustering-accuracy evaluation
/// (Table II): a multi-key cluster is correct iff it is contained in one
/// group.
#[derive(Debug, Clone, PartialEq)]
pub struct SettingGroup {
    /// Human-readable group name (e.g. `"mru"`, `"autocomplete"`).
    pub name: String,
    /// The member settings (written together, in spec order, with
    /// sub-second jitter).
    pub keys: Vec<KeySpec>,
    /// Expected number of user-initiated changes to this group per day.
    pub changes_per_day: f64,
    /// Probability that a change writes only a random strict subset of the
    /// group (the paper's undersized-cluster source).
    pub partial_update_prob: f64,
    /// Temporal layout of the group's writes.
    pub behavior: GroupBehavior,
}

impl SettingGroup {
    /// Creates a burst group with no partial updates.
    pub fn new(name: impl Into<String>, keys: Vec<KeySpec>, changes_per_day: f64) -> Self {
        SettingGroup {
            name: name.into(),
            keys,
            changes_per_day,
            partial_update_prob: 0.0,
            behavior: GroupBehavior::default(),
        }
    }

    /// Sets the partial-update probability.
    pub fn with_partial_updates(mut self, prob: f64) -> Self {
        self.partial_update_prob = prob;
        self
    }

    /// Sets the temporal write behaviour.
    pub fn with_behavior(mut self, behavior: GroupBehavior) -> Self {
        self.behavior = behavior;
        self
    }
}

/// A setting that churns frequently and independently of everything else
/// (recently-used lists, window geometry, session counters).
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseKey {
    /// The setting.
    pub spec: KeySpec,
    /// Expected writes per application session.
    pub writes_per_session: f64,
}

impl NoiseKey {
    /// Creates a noise key.
    pub fn new(spec: KeySpec, writes_per_session: f64) -> Self {
        NoiseKey {
            spec,
            writes_per_session,
        }
    }
}

/// The complete configuration-access behaviour of one application.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Application name; becomes the first segment of every key.
    pub app: String,
    /// Related-setting groups (ground truth for Table II).
    pub groups: Vec<SettingGroup>,
    /// Independent, frequently-churning settings.
    pub noise: Vec<NoiseKey>,
    /// Settings that are read but never modified (most of the registry).
    pub static_keys: usize,
    /// Settings modified rarely and independently (one-off preferences).
    pub churn_keys: usize,
    /// Expected churn-key writes per day across the whole app.
    pub churn_writes_per_day: f64,
    /// Expected application sessions per day.
    pub sessions_per_day: f64,
    /// Extra (non-startup) reads per session.
    pub reads_per_session: u64,
    /// Every `n` days a software update rewrites a swath of settings in one
    /// burst (the paper's oversized-cluster source); `None` disables.
    pub update_every_days: Option<u64>,
}

impl WorkloadSpec {
    /// Creates a spec with no groups or noise and modest defaults.
    pub fn new(app: impl Into<String>) -> Self {
        WorkloadSpec {
            app: app.into(),
            groups: Vec::new(),
            noise: Vec::new(),
            static_keys: 0,
            churn_keys: 0,
            churn_writes_per_day: 0.0,
            sessions_per_day: 1.0,
            reads_per_session: 50,
            update_every_days: None,
        }
    }

    /// Total number of distinct keys this spec can touch.
    pub fn key_count(&self) -> usize {
        self.groups.iter().map(|g| g.keys.len()).sum::<usize>()
            + self.noise.len()
            + self.static_keys
            + self.churn_keys
    }

    /// The full key path for a relative name.
    pub fn key(&self, name: &str) -> ocasta_ttkv::Key {
        ocasta_ttkv::Key::new(format!("{}/{}", self.app, name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn toggle_flips_from_previous() {
        let kind = ValueKind::Toggle { initial: false };
        let mut r = rng();
        assert_eq!(kind.sample(&mut r, None), Value::Bool(true));
        assert_eq!(
            kind.sample(&mut r, Some(&Value::Bool(true))),
            Value::Bool(false)
        );
        assert_eq!(kind.initial(), Value::Bool(false));
    }

    #[test]
    fn int_range_stays_in_bounds() {
        let kind = ValueKind::IntRange { min: 3, max: 9 };
        let mut r = rng();
        for _ in 0..100 {
            let v = kind.sample(&mut r, None).as_int().unwrap();
            assert!((3..=9).contains(&v));
        }
    }

    #[test]
    fn recent_list_prepends_and_truncates() {
        let kind = ValueKind::RecentList {
            max_len: 3,
            extension: "doc",
        };
        let mut r = rng();
        let mut v = kind.initial();
        for _ in 0..5 {
            v = kind.sample(&mut r, Some(&v));
        }
        let items = v.as_list().unwrap();
        assert_eq!(items.len(), 3);
        assert!(items[0].as_str().unwrap().ends_with(".doc"));
    }

    #[test]
    fn choice_draws_from_options() {
        let kind = ValueKind::Choice(vec!["a", "b"]);
        let mut r = rng();
        for _ in 0..20 {
            let v = kind.sample(&mut r, None);
            assert!(matches!(v.as_str(), Some("a") | Some("b")));
        }
    }

    #[test]
    fn float_range_rounds_to_cents() {
        let kind = ValueKind::FloatRange { min: 0.5, max: 2.0 };
        let mut r = rng();
        for _ in 0..50 {
            let v = kind.sample(&mut r, None).as_float().unwrap();
            assert!((0.5..=2.0).contains(&v));
            assert_eq!((v * 100.0).round() / 100.0, v);
        }
    }

    #[test]
    fn spec_key_count_sums_everything() {
        let mut spec = WorkloadSpec::new("app");
        spec.groups.push(SettingGroup::new(
            "g",
            vec![
                KeySpec::new("a", ValueKind::Toggle { initial: true }),
                KeySpec::new("b", ValueKind::IntRange { min: 0, max: 1 }),
            ],
            0.1,
        ));
        spec.noise.push(NoiseKey::new(
            KeySpec::new("n", ValueKind::PathName { extension: "tmp" }),
            2.0,
        ));
        spec.static_keys = 10;
        spec.churn_keys = 5;
        assert_eq!(spec.key_count(), 18);
        assert_eq!(spec.key("a").as_str(), "app/a");
    }
}
