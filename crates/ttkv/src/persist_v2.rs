//! `ocasta-ttkv binary v2` — the checksummed binary segment format.
//!
//! This is the format [`Ttkv::save`] writes and the one the fleet WAL chain
//! uses for its base/delta snapshot layers; the line-oriented text v1 format
//! (`persist.rs`) remains a read-only import path plus an explicit export for
//! humans. One segment is:
//!
//! ```text
//! segment  := magic section*                  magic = "ocasta-ttkv binary v2\n"
//! section  := tag:u8 len:u32le crc:u32le payload[len]
//!             crc = fnv1a_32(payload); sections appear in the fixed order
//!             'K' (key-intern table), 'R' (records), 'E' (end marker, empty)
//! 'K'      := count:uv  (len:uv utf8-bytes)*        keys in store order;
//!                                                   intern id = position
//! 'R'      := count:uv  record*
//! record   := key_id:uv reads:uv writes:uv deletes:uv flags:u8
//!             [baseline: ts_ms:uv [value]]          flags bit0 = baseline
//!             hist_len:uv version*                  flags bit1 = dead baseline
//! version  := kind:u8 ts_ms:uv [value]              kind 0 = write (value
//!                                                   follows), 1 = tombstone
//! value    := 0x00 | 0x01 | 0x02                    null / false / true
//!           | 0x03 zigzag:uv                        int
//!           | 0x04 bits:u64le                       float (bit-exact)
//!           | 0x05 len:uv utf8-bytes                string
//!           | 0x06 count:uv value*                  list (depth ≤ 32)
//! uv       := LEB128 unsigned varint, ≤ 10 bytes
//! ```
//!
//! Design notes:
//!
//! * **Torn writes are always detectable.** Every payload byte is covered by
//!   its section checksum, every section header states its length, and the
//!   empty `'E'` end marker must be present and final. A segment cut at any
//!   byte offset therefore fails with a structured [`TtkvError::Corrupt`] —
//!   either a short header/payload, a checksum mismatch, or a missing end
//!   marker — never a panic and never a silently partial store.
//! * **Deterministic bytes.** The store iterates its `BTreeMap` in key
//!   order, so equal stores serialise to identical bytes — the property the
//!   deterministic simulation (vopr) and the layered-replay equivalence
//!   tests lean on.
//! * **Version sniffing.** [`Ttkv::load`] reads the input fully, dispatches
//!   on the magic prefix, and falls back to the text v1 parser, so pre-v2
//!   files keep loading through the same entry point.
//!
//! The checksum is the same FNV-1a the fleet WAL frames use
//! ([`crate::hash::fnv1a_32`]) — snapshots and the WAL share one seam.

use std::io::{BufRead, Write};

use crate::error::TtkvError;
use crate::hash::fnv1a_32;
use crate::record::KeyRecord;
use crate::store::Ttkv;
use crate::time::Timestamp;
use crate::value::Value;
use crate::{Key, Version};

/// Magic prefix of an `ocasta-ttkv binary v2` segment, newline included.
pub const BINARY_MAGIC: &[u8] = b"ocasta-ttkv binary v2\n";

/// Section tag for the key-intern table.
const TAG_KEYS: u8 = b'K';
/// Section tag for the record bodies.
const TAG_RECORDS: u8 = b'R';
/// Section tag for the (empty) end marker.
const TAG_END: u8 = b'E';

/// Value tags, shared layout family with the fleet WAL op codec.
const VAL_NULL: u8 = 0x00;
const VAL_FALSE: u8 = 0x01;
const VAL_TRUE: u8 = 0x02;
const VAL_INT: u8 = 0x03;
const VAL_FLOAT: u8 = 0x04;
const VAL_STR: u8 = 0x05;
const VAL_LIST: u8 = 0x06;

/// Record flags.
const FLAG_BASELINE: u8 = 0b0000_0001;
const FLAG_BASELINE_DEAD: u8 = 0b0000_0010;

/// Version kinds.
const KIND_WRITE: u8 = 0x00;
const KIND_TOMBSTONE: u8 = 0x01;

/// Maximum nesting depth accepted when decoding list values (matches the
/// fleet WAL op codec's bound).
const MAX_VALUE_DEPTH: u32 = 32;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Appends an LEB128 unsigned varint.
fn put_uv(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a zigzag-encoded signed varint.
fn put_iv(out: &mut Vec<u8>, v: i64) {
    put_uv(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Appends one encoded value.
fn put_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => out.push(VAL_NULL),
        Value::Bool(false) => out.push(VAL_FALSE),
        Value::Bool(true) => out.push(VAL_TRUE),
        Value::Int(i) => {
            out.push(VAL_INT);
            put_iv(out, *i);
        }
        Value::Float(f) => {
            out.push(VAL_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(VAL_STR);
            put_uv(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::List(items) => {
            out.push(VAL_LIST);
            put_uv(out, items.len() as u64);
            for item in items {
                put_value(out, item);
            }
        }
    }
}

/// Appends one version (history entry).
fn put_version(out: &mut Vec<u8>, version: &Version) {
    match &version.value {
        Some(value) => {
            out.push(KIND_WRITE);
            put_uv(out, version.timestamp.as_millis());
            put_value(out, value);
        }
        None => {
            out.push(KIND_TOMBSTONE);
            put_uv(out, version.timestamp.as_millis());
        }
    }
}

/// Writes one framed section: tag, length, FNV-1a checksum, payload.
fn write_section<W: Write>(writer: &mut W, tag: u8, payload: &[u8]) -> Result<(), TtkvError> {
    let len = u32::try_from(payload.len())
        .map_err(|_| TtkvError::corrupt(0, format!("section 0x{tag:02x} exceeds 4 GiB")))?;
    writer.write_all(&[tag])?;
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(&fnv1a_32(payload).to_le_bytes())?;
    writer.write_all(payload)?;
    Ok(())
}

impl Ttkv {
    /// Serialises the store as an `ocasta-ttkv binary v2` segment.
    ///
    /// Equal stores serialise to identical bytes (iteration is key-ordered).
    /// For the human-readable text form, use [`Ttkv::save_text`].
    ///
    /// # Errors
    ///
    /// Returns [`TtkvError::Io`] if the writer fails, and
    /// [`TtkvError::Corrupt`] in the degenerate case of a section payload
    /// exceeding the `u32` length field.
    pub fn save<W: Write>(&self, mut writer: W) -> Result<(), TtkvError> {
        writer.write_all(BINARY_MAGIC)?;

        // 'K': intern table. Intern ids are positions in store (key) order.
        let mut keys = Vec::new();
        put_uv(&mut keys, self.len() as u64);
        for (key, _) in self.iter() {
            let name = key.as_str();
            put_uv(&mut keys, name.len() as u64);
            keys.extend_from_slice(name.as_bytes());
        }
        write_section(&mut writer, TAG_KEYS, &keys)?;

        // 'R': record bodies, referencing keys by intern id.
        let mut records = Vec::new();
        put_uv(&mut records, self.len() as u64);
        for (id, (_, record)) in self.iter().enumerate() {
            put_uv(&mut records, id as u64);
            put_uv(&mut records, record.reads);
            put_uv(&mut records, record.writes);
            put_uv(&mut records, record.deletes);
            let mut flags = 0u8;
            if let Some(baseline) = record.baseline() {
                flags |= FLAG_BASELINE;
                if baseline.is_tombstone() {
                    flags |= FLAG_BASELINE_DEAD;
                }
            }
            records.push(flags);
            if let Some(baseline) = record.baseline() {
                put_uv(&mut records, baseline.timestamp.as_millis());
                if let Some(value) = &baseline.value {
                    put_value(&mut records, value);
                }
            }
            put_uv(&mut records, record.history().len() as u64);
            for version in record.history() {
                put_version(&mut records, version);
            }
        }
        write_section(&mut writer, TAG_RECORDS, &records)?;

        // 'E': empty end marker — its presence is the commit point that makes
        // every truncation detectable.
        write_section(&mut writer, TAG_END, &[])?;
        writer.flush()?;
        Ok(())
    }

    /// Reads a store written by either [`Ttkv::save`] (binary v2) or the
    /// text v1 writer ([`Ttkv::save_text`]), sniffing the version from the
    /// magic prefix.
    ///
    /// # Errors
    ///
    /// Returns [`TtkvError::Io`] if the reader fails, [`TtkvError::Corrupt`]
    /// if a v2 segment is torn or corrupt, and [`TtkvError::Parse`] if text
    /// v1 content is malformed.
    pub fn load<R: BufRead>(mut reader: R) -> Result<Ttkv, TtkvError> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        if bytes.starts_with(BINARY_MAGIC) {
            decode_segment(&bytes)
        } else {
            Ttkv::load_text(std::io::Cursor::new(bytes))
        }
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Byte-slice reader that tracks its absolute offset for error reporting.
struct Reader<'a> {
    buf: &'a [u8],
    /// Absolute offset of `buf[pos]` within the segment file.
    base: usize,
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], base: usize) -> Self {
        Reader { buf, base, pos: 0 }
    }

    /// Absolute offset of the next unread byte.
    fn offset(&self) -> usize {
        self.base + self.pos
    }

    fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], TtkvError> {
        let rest = self.buf.get(self.pos..).unwrap_or(&[]);
        if rest.len() < n {
            return Err(TtkvError::corrupt(
                self.offset(),
                format!("truncated {what}: need {n} bytes, have {}", rest.len()),
            ));
        }
        let (taken, _) = rest.split_at(n);
        self.pos += n;
        Ok(taken)
    }

    fn u8(&mut self, what: &str) -> Result<u8, TtkvError> {
        let bytes = self.take(1, what)?;
        match bytes.first() {
            Some(&b) => Ok(b),
            None => Err(TtkvError::corrupt(self.offset(), format!("missing {what}"))),
        }
    }

    fn u32_le(&mut self, what: &str) -> Result<u32, TtkvError> {
        let bytes = self.take(4, what)?;
        let mut arr = [0u8; 4];
        arr.copy_from_slice(bytes);
        Ok(u32::from_le_bytes(arr))
    }

    fn u64_le(&mut self, what: &str) -> Result<u64, TtkvError> {
        let bytes = self.take(8, what)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads an LEB128 unsigned varint (≤ 10 bytes).
    fn uv(&mut self, what: &str) -> Result<u64, TtkvError> {
        let start = self.offset();
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8(what)?;
            let payload = u64::from(byte & 0x7F);
            if shift >= 64 || (shift == 63 && payload > 1) {
                return Err(TtkvError::corrupt(
                    start,
                    format!("varint {what} overflows u64"),
                ));
            }
            value |= payload << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Reads a varint and narrows it to a count bounded by the bytes that
    /// could possibly back it, rejecting absurd values early.
    fn count(&mut self, what: &str) -> Result<usize, TtkvError> {
        let start = self.offset();
        let raw = self.uv(what)?;
        let remaining = self.buf.len().saturating_sub(self.pos) as u64;
        if raw > remaining {
            return Err(TtkvError::corrupt(
                start,
                format!("{what} {raw} exceeds remaining payload ({remaining} bytes)"),
            ));
        }
        usize::try_from(raw)
            .map_err(|_| TtkvError::corrupt(start, format!("{what} {raw} does not fit usize")))
    }
}

/// Reads one zigzag-encoded signed varint.
fn get_iv(r: &mut Reader<'_>, what: &str) -> Result<i64, TtkvError> {
    let raw = r.uv(what)?;
    Ok(((raw >> 1) as i64) ^ -((raw & 1) as i64))
}

/// Reads one encoded value.
fn get_value(r: &mut Reader<'_>, depth: u32) -> Result<Value, TtkvError> {
    if depth > MAX_VALUE_DEPTH {
        return Err(TtkvError::corrupt(
            r.offset(),
            format!("value nesting exceeds depth {MAX_VALUE_DEPTH}"),
        ));
    }
    let start = r.offset();
    let tag = r.u8("value tag")?;
    match tag {
        VAL_NULL => Ok(Value::Null),
        VAL_FALSE => Ok(Value::Bool(false)),
        VAL_TRUE => Ok(Value::Bool(true)),
        VAL_INT => Ok(Value::Int(get_iv(r, "int value")?)),
        VAL_FLOAT => Ok(Value::Float(f64::from_bits(r.u64_le("float value")?))),
        VAL_STR => {
            let len = r.count("string length")?;
            let bytes = r.take(len, "string value")?;
            let s = std::str::from_utf8(bytes)
                .map_err(|e| TtkvError::corrupt(start, format!("string value not UTF-8: {e}")))?;
            Ok(Value::Str(s.to_owned()))
        }
        VAL_LIST => {
            let count = r.count("list length")?;
            let mut items = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                items.push(get_value(r, depth + 1)?);
            }
            Ok(Value::List(items))
        }
        other => Err(TtkvError::corrupt(
            start,
            format!("unknown value tag 0x{other:02x}"),
        )),
    }
}

/// Reads one framed section, verifying tag and checksum, and returns the
/// payload together with its absolute offset.
fn read_section<'a>(r: &mut Reader<'a>, expect_tag: u8) -> Result<(Reader<'a>, usize), TtkvError> {
    let start = r.offset();
    let tag = r.u8("section tag")?;
    if tag != expect_tag {
        return Err(TtkvError::corrupt(
            start,
            format!(
                "expected section '{}', found 0x{tag:02x}",
                expect_tag as char
            ),
        ));
    }
    let len = r.u32_le("section length")? as usize;
    let crc = r.u32_le("section checksum")?;
    let payload_at = r.offset();
    let payload = r.take(len, "section payload")?;
    let actual = fnv1a_32(payload);
    if actual != crc {
        return Err(TtkvError::corrupt(
            payload_at,
            format!(
                "section '{}' checksum mismatch: stored {crc:08x}, computed {actual:08x}",
                expect_tag as char
            ),
        ));
    }
    Ok((Reader::new(payload, payload_at), payload_at))
}

/// Decodes a full binary v2 segment (magic already sniffed by the caller,
/// but re-verified here so the function stands alone).
fn decode_segment(bytes: &[u8]) -> Result<Ttkv, TtkvError> {
    if !bytes.starts_with(BINARY_MAGIC) {
        return Err(TtkvError::corrupt(0, "missing binary v2 magic"));
    }
    let mut r = Reader::new(bytes, 0);
    r.take(BINARY_MAGIC.len(), "magic")?;

    // 'K': intern table.
    let (mut keys_r, _) = read_section(&mut r, TAG_KEYS)?;
    let key_count = keys_r.count("key count")?;
    let mut keys = Vec::with_capacity(key_count.min(65_536));
    let mut prev: Option<&str> = None;
    for _ in 0..key_count {
        let at = keys_r.offset();
        let len = keys_r.count("key length")?;
        let raw = keys_r.take(len, "key name")?;
        let name = std::str::from_utf8(raw)
            .map_err(|e| TtkvError::corrupt(at, format!("key name not UTF-8: {e}")))?;
        if let Some(p) = prev {
            if name <= p {
                return Err(TtkvError::corrupt(
                    at,
                    format!("intern table not strictly sorted: {name:?} after {p:?}"),
                ));
            }
        }
        prev = Some(name);
        keys.push(name);
    }
    if !keys_r.is_empty() {
        return Err(TtkvError::corrupt(
            keys_r.offset(),
            "trailing bytes in intern table",
        ));
    }

    // 'R': records.
    let (mut rec_r, _) = read_section(&mut r, TAG_RECORDS)?;
    let record_count = rec_r.count("record count")?;
    if record_count != keys.len() {
        return Err(TtkvError::corrupt(
            rec_r.offset(),
            format!(
                "record count {record_count} does not match intern table ({})",
                keys.len()
            ),
        ));
    }
    let mut store = Ttkv::new();
    for expect_id in 0..record_count {
        let at = rec_r.offset();
        let id = rec_r.uv("key id")?;
        if id != expect_id as u64 {
            return Err(TtkvError::corrupt(
                at,
                format!("key id {id} out of order (expected {expect_id})"),
            ));
        }
        let name = keys
            .get(expect_id)
            .ok_or_else(|| TtkvError::corrupt(at, format!("key id {id} not in intern table")))?;
        let reads = rec_r.uv("reads counter")?;
        let writes = rec_r.uv("writes counter")?;
        let deletes = rec_r.uv("deletes counter")?;
        let flags_at = rec_r.offset();
        let flags = rec_r.u8("record flags")?;
        if flags & !(FLAG_BASELINE | FLAG_BASELINE_DEAD) != 0 {
            return Err(TtkvError::corrupt(
                flags_at,
                format!("unknown record flags 0x{flags:02x}"),
            ));
        }
        if flags & FLAG_BASELINE_DEAD != 0 && flags & FLAG_BASELINE == 0 {
            return Err(TtkvError::corrupt(
                flags_at,
                "dead-baseline flag without baseline flag",
            ));
        }
        let mut record = KeyRecord::new();
        if flags & FLAG_BASELINE != 0 {
            let ts = Timestamp::from_millis(rec_r.uv("baseline timestamp")?);
            if flags & FLAG_BASELINE_DEAD != 0 {
                record.set_baseline(Version::tombstone(ts));
            } else {
                let value = get_value(&mut rec_r, 0)?;
                record.set_baseline(Version::write(ts, value));
            }
        }
        let hist_len = rec_r.count("history length")?;
        for _ in 0..hist_len {
            let kind_at = rec_r.offset();
            let kind = rec_r.u8("version kind")?;
            let ts = Timestamp::from_millis(rec_r.uv("version timestamp")?);
            match kind {
                KIND_WRITE => {
                    let value = get_value(&mut rec_r, 0)?;
                    record.record_mutation(Version::write(ts, value));
                }
                KIND_TOMBSTONE => record.record_mutation(Version::tombstone(ts)),
                other => {
                    return Err(TtkvError::corrupt(
                        kind_at,
                        format!("unknown version kind 0x{other:02x}"),
                    ));
                }
            }
        }
        record.set_counters(reads, writes, deletes);
        store.insert_record(Key::new(*name), record);
    }
    if !rec_r.is_empty() {
        return Err(TtkvError::corrupt(
            rec_r.offset(),
            "trailing bytes in record section",
        ));
    }

    // 'E': end marker — must be present, empty, and final.
    let (end_r, end_at) = read_section(&mut r, TAG_END)?;
    if !end_r.is_empty() {
        return Err(TtkvError::corrupt(end_at, "end marker is not empty"));
    }
    if !r.is_empty() {
        return Err(TtkvError::corrupt(
            r.offset(),
            "trailing bytes after end marker",
        ));
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TimeDelta;

    fn sample_store() -> Ttkv {
        let mut store = Ttkv::new();
        let t0 = Timestamp::from_secs(100);
        store.read("app/a key with spaces");
        store.write(t0, "app/a key with spaces", Value::from("hello world"));
        store.write(t0 + TimeDelta::from_secs(5), "app/count", Value::from(42));
        store.write(
            t0 + TimeDelta::from_secs(6),
            "app/ratio",
            Value::Float(-0.25),
        );
        store.write(
            t0 + TimeDelta::from_secs(7),
            "app/list",
            Value::List(vec![Value::from("a b"), Value::from(-1), Value::Null]),
        );
        store.delete(t0 + TimeDelta::from_secs(9), "app/count");
        store.write(t0 + TimeDelta::from_secs(10), "app/flag", Value::from(true));
        store
    }

    fn to_v2(store: &Ttkv) -> Vec<u8> {
        let mut bytes = Vec::new();
        store.save(&mut bytes).unwrap();
        bytes
    }

    #[test]
    fn binary_roundtrip_preserves_store() {
        let store = sample_store();
        let loaded = Ttkv::load(to_v2(&store).as_slice()).unwrap();
        assert_eq!(store, loaded);
    }

    #[test]
    fn binary_roundtrip_preserves_pruned_store() {
        let mut store = sample_store();
        store.write(Timestamp::from_secs(200), "app/flag", Value::from(false));
        store.prune_before(Timestamp::from_secs(150));
        let loaded = Ttkv::load(to_v2(&store).as_slice()).unwrap();
        assert_eq!(store, loaded);
        assert_eq!(loaded.stats().writes, store.stats().writes);
    }

    #[test]
    fn binary_roundtrip_preserves_special_floats() {
        let mut store = Ttkv::new();
        for (i, f) in [f64::NAN, f64::INFINITY, -0.0, 1e-300].iter().enumerate() {
            store.write(
                Timestamp::from_secs(i as u64),
                Key::new(format!("f/{i}")),
                Value::Float(*f),
            );
        }
        let loaded = Ttkv::load(to_v2(&store).as_slice()).unwrap();
        assert_eq!(store, loaded);
    }

    #[test]
    fn empty_store_roundtrips() {
        let loaded = Ttkv::load(to_v2(&Ttkv::new()).as_slice()).unwrap();
        assert!(loaded.is_empty());
    }

    #[test]
    fn save_is_byte_deterministic() {
        let a = to_v2(&sample_store());
        let b = to_v2(&sample_store());
        assert_eq!(a, b);
    }

    #[test]
    fn load_sniffs_text_v1() {
        let store = sample_store();
        let mut text = Vec::new();
        store.save_text(&mut text).unwrap();
        let loaded = Ttkv::load(text.as_slice()).unwrap();
        assert_eq!(store, loaded);
    }

    #[test]
    fn text_to_binary_migration_is_exact() {
        // Tentpole invariant 1: v1 → v2 → store equals the v1 load exactly.
        let mut store = sample_store();
        store.prune_before(Timestamp::from_secs(107));
        let mut text = Vec::new();
        store.save_text(&mut text).unwrap();
        let from_text = Ttkv::load(text.as_slice()).unwrap();
        let reloaded = Ttkv::load(to_v2(&from_text).as_slice()).unwrap();
        assert_eq!(from_text, reloaded);
        assert_eq!(store, reloaded);
    }

    #[test]
    fn every_strict_prefix_fails_structured() {
        // Tentpole invariant 3, ttkv half: a torn segment never loads as a
        // partial store and never panics — it errors at every cut point.
        let bytes = to_v2(&sample_store());
        for cut in 0..bytes.len() {
            let prefix = bytes.get(..cut).unwrap();
            let err = Ttkv::load(prefix).expect_err("prefix must not load");
            match err {
                TtkvError::Corrupt { .. } | TtkvError::Parse { .. } => {}
                other => panic!("cut {cut}: unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_byte_flip_fails() {
        let bytes = to_v2(&sample_store());
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x01;
            assert!(
                Ttkv::load(mutated.as_slice()).is_err(),
                "flip at byte {i} loaded silently"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = to_v2(&sample_store());
        bytes.push(0x00);
        let err = Ttkv::load(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("trailing bytes"), "{err}");
    }

    #[test]
    fn unsorted_intern_table_is_rejected() {
        // Handcraft a segment whose intern table is out of order.
        let mut keys = Vec::new();
        put_uv(&mut keys, 2);
        for name in ["b", "a"] {
            put_uv(&mut keys, name.len() as u64);
            keys.extend_from_slice(name.as_bytes());
        }
        let mut records = Vec::new();
        put_uv(&mut records, 2);
        for id in 0..2u64 {
            put_uv(&mut records, id);
            put_uv(&mut records, 0);
            put_uv(&mut records, 0);
            put_uv(&mut records, 0);
            records.push(0);
            put_uv(&mut records, 0);
        }
        let mut bytes = BINARY_MAGIC.to_vec();
        write_section(&mut bytes, TAG_KEYS, &keys).unwrap();
        write_section(&mut bytes, TAG_RECORDS, &records).unwrap();
        write_section(&mut bytes, TAG_END, &[]).unwrap();
        let err = Ttkv::load(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("not strictly sorted"), "{err}");
    }

    #[test]
    fn varint_overflow_is_rejected() {
        let mut r = Reader::new(&[0xFF; 11], 0);
        let err = r.uv("test").unwrap_err();
        assert!(err.to_string().contains("overflows"), "{err}");
    }

    #[test]
    fn zigzag_roundtrips_extremes() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123_456_789] {
            let mut buf = Vec::new();
            put_iv(&mut buf, v);
            let mut r = Reader::new(&buf, 0);
            assert_eq!(get_iv(&mut r, "test").unwrap(), v);
        }
    }

    #[test]
    fn binary_is_smaller_than_text_on_a_representative_store() {
        let mut store = Ttkv::new();
        for day in 0..200u64 {
            let t = Timestamp::from_secs(day * 86_400);
            store.write(t, "app/path", Value::from("c:\\docs\\report.doc"));
            store.write(t, "app/flag", Value::from(day % 2 == 0));
            store.write(t, "app/ratio", Value::Float(day as f64 / 7.0));
            store.write(t, "app/count", Value::from(day as i64 * 37));
        }
        let v2 = to_v2(&store);
        let mut v1 = Vec::new();
        store.save_text(&mut v1).unwrap();
        assert!(
            v2.len() < v1.len(),
            "v2 {} bytes not below v1 {} bytes",
            v2.len(),
            v1.len()
        );
    }
}
