//! Configuration setting values.
//!
//! Ocasta abstracts every configuration store (Windows registry, GConf,
//! XML/JSON/INI/PostScript/plain-text files) into key-value pairs. `Value`
//! is the common value type those stores are flattened into.

use std::fmt;
use std::hash::{Hash, Hasher};

/// The value of one configuration setting.
///
/// Values are deliberately simple: scalars plus ordered lists of scalars,
/// which is all the stores the paper supports can express at the leaves once
/// hierarchical names are flattened into key paths.
///
/// `Value` implements `Eq`/`Hash` by comparing floats bitwise, so it can be
/// used in deduplication sets (e.g. screenshot and version dedup).
///
/// # Examples
///
/// ```
/// use ocasta_ttkv::Value;
///
/// let v = Value::from(25);
/// assert_eq!(v.as_int(), Some(25));
/// assert_eq!(v.to_string(), "25");
///
/// let list = Value::List(vec![Value::from("a.doc"), Value::from("b.doc")]);
/// assert_eq!(list.to_string(), "[a.doc, b.doc]");
/// ```
#[derive(Debug, Clone, PartialOrd)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Value {
    /// Explicit null (JSON `null`, empty registry value).
    Null,
    /// Boolean flag.
    Bool(bool),
    /// Signed integer (registry DWORD/QWORD, GConf int, …).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// Text.
    Str(String),
    /// Ordered list of values (registry MULTI_SZ, GConf lists, JSON arrays).
    List(Vec<Value>),
}

impl Value {
    /// Returns the boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float payload, accepting `Int` as an exact float.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the list payload, if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// `true` if this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A short name for the value's type, used in diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::List(_) => "list",
        }
    }

    /// Parses a bare token the way the plain-text/INI loggers do: `true`/
    /// `false` become booleans, integers and floats become numbers, anything
    /// else stays a string.
    ///
    /// # Examples
    ///
    /// ```
    /// use ocasta_ttkv::Value;
    ///
    /// assert_eq!(Value::parse_token("true"), Value::Bool(true));
    /// assert_eq!(Value::parse_token("-3"), Value::Int(-3));
    /// assert_eq!(Value::parse_token("2.5"), Value::Float(2.5));
    /// assert_eq!(Value::parse_token("hello"), Value::from("hello"));
    /// ```
    pub fn parse_token(token: &str) -> Value {
        match token {
            "true" => return Value::Bool(true),
            "false" => return Value::Bool(false),
            "null" => return Value::Null,
            _ => {}
        }
        if let Ok(i) = token.parse::<i64>() {
            return Value::Int(i);
        }
        // Only accept float syntax that cannot be confused with plain words
        // ("inf"/"nan" stay strings, matching what config files contain).
        if token
            .chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        {
            if let Ok(f) = token.parse::<f64>() {
                return Value::Float(f);
            }
        }
        Value::Str(token.to_owned())
    }

    /// Approximate in-memory footprint in bytes, used for TTKV size
    /// accounting (Table I's last column).
    pub fn approx_bytes(&self) -> usize {
        match self {
            Value::Null | Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 8,
            Value::Str(s) => s.len(),
            Value::List(items) => 8 + items.iter().map(Value::approx_bytes).sum::<usize>(),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::List(a), Value::List(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        core::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::List(items) => items.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => f.write_str(s),
            Value::List(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl<T: Into<Value>> FromIterator<T> for Value {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Value::List(iter.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(5).as_int(), Some(5));
        assert_eq!(Value::from(5).as_float(), Some(5.0));
        assert_eq!(Value::from(2.5).as_float(), Some(2.5));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert!(Value::Null.is_null());
        assert_eq!(Value::from("x").as_int(), None);
    }

    #[test]
    fn parse_token_covers_all_scalars() {
        assert_eq!(Value::parse_token("false"), Value::Bool(false));
        assert_eq!(Value::parse_token("0"), Value::Int(0));
        assert_eq!(Value::parse_token("-1.5e3"), Value::Float(-1500.0));
        assert_eq!(Value::parse_token("null"), Value::Null);
        assert_eq!(Value::parse_token("inf"), Value::from("inf"));
        assert_eq!(Value::parse_token("1.2.3"), Value::from("1.2.3"));
    }

    #[test]
    fn float_equality_is_bitwise() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_ne!(Value::Float(0.0), Value::Float(-0.0));
        assert_ne!(Value::Float(1.0), Value::Int(1));
    }

    #[test]
    fn values_are_hashable() {
        let mut set = HashSet::new();
        set.insert(Value::from(1));
        set.insert(Value::from(1));
        set.insert(Value::from("1"));
        set.insert(Value::Float(1.0));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn display_is_never_empty() {
        for v in [
            Value::Null,
            Value::from(false),
            Value::from(0),
            Value::from(0.0),
            Value::from(""),
            Value::List(vec![]),
        ] {
            if let Value::Str(_) = v {
                // The empty string legitimately renders empty; the Debug
                // representation still identifies it.
                assert_eq!(format!("{v:?}"), "Str(\"\")");
            } else {
                assert!(!v.to_string().is_empty(), "{v:?}");
            }
        }
    }

    #[test]
    fn collect_builds_lists() {
        let v: Value = ["a", "b"].into_iter().collect();
        assert_eq!(v.as_list().unwrap().len(), 2);
        assert_eq!(v.to_string(), "[a, b]");
    }

    #[test]
    fn approx_bytes_is_monotone_in_content() {
        assert!(Value::from("abcdef").approx_bytes() > Value::from("ab").approx_bytes());
        let small = Value::List(vec![Value::from(1)]);
        let big = Value::List(vec![Value::from(1); 10]);
        assert!(big.approx_bytes() > small.approx_bytes());
    }
}
