//! Text (v1) persistence for the TTKV — a read-only import path plus an
//! explicit export.
//!
//! Since the binary v2 format landed (`persist_v2.rs`), [`Ttkv::save`] writes
//! checksummed binary segments and this module's writer is only reached
//! through [`Ttkv::save_text`] / [`Ttkv::save_to_string`] (the `ocasta
//! export` path). [`Ttkv::load`] sniffs the magic line and still accepts v1
//! files, so stores written before v2 keep loading unchanged.
//!
//! The store serialises to a line-oriented UTF-8 format so recorded histories
//! can be saved between sessions, shipped between machines (the paper merges
//! per-user traces from several lab computers) and inspected with ordinary
//! text tools:
//!
//! ```text
//! ocasta-ttkv v1
//! k word/mru/max_display reads=12 writes=3 deletes=1
//! b 500 i3
//! w 1000 i25
//! w 86400000 i9
//! d 90000000
//! ```
//!
//! Values use a compact token encoding (`n`, `b0`/`b1`, `i<dec>`,
//! `f<hex bits>`, `s<escaped>`, `l<count> <tokens…>`); strings escape
//! whitespace so every token is space-delimited.
//!
//! The `writes=`/`deletes=` fields and the `b`/`bd` (prune-baseline,
//! live/dead) records are retention additions: a pruned store's lifetime
//! counters exceed what its surviving history implies, and the collapsed
//! pre-horizon state is a baseline, not a mutation. All are optional on
//! load, so files written before retention existed still parse (their
//! counters are derived from the history lines, which is exact for
//! unpruned stores).

use std::io::{self, BufRead, Write};

use crate::codec::{decode_value, encode_value, escape, unescape};
use crate::error::TtkvError;
use crate::record::KeyRecord;
use crate::store::Ttkv;
use crate::time::Timestamp;
#[cfg(test)]
use crate::value::Value;

const MAGIC: &str = "ocasta-ttkv v1";

impl Ttkv {
    /// Serialises the store to a writer in the line-oriented text v1 format.
    ///
    /// This is the human-readable export form (`ocasta export`); the default
    /// on-disk form is the binary v2 segment written by [`Ttkv::save`].
    ///
    /// # Errors
    ///
    /// Returns [`TtkvError::Io`] if the writer fails.
    pub fn save_text<W: Write>(&self, mut writer: W) -> Result<(), TtkvError> {
        writeln!(writer, "{MAGIC}")?;
        for (key, record) in self.iter() {
            writeln!(
                writer,
                "k {} reads={} writes={} deletes={}",
                escape(key.as_str()),
                record.reads,
                record.writes,
                record.deletes,
            )?;
            if let Some(baseline) = record.baseline() {
                match &baseline.value {
                    Some(value) => {
                        let mut encoded = String::new();
                        encode_value(value, &mut encoded);
                        writeln!(writer, "b {} {}", baseline.timestamp.as_millis(), encoded)?;
                    }
                    // A dead-at-horizon baseline: the collapsed tombstone.
                    None => writeln!(writer, "bd {}", baseline.timestamp.as_millis())?,
                }
            }
            for version in record.history() {
                match &version.value {
                    Some(value) => {
                        let mut encoded = String::new();
                        encode_value(value, &mut encoded);
                        writeln!(writer, "w {} {}", version.timestamp.as_millis(), encoded)?;
                    }
                    None => writeln!(writer, "d {}", version.timestamp.as_millis())?,
                }
            }
        }
        Ok(())
    }

    /// Serialises the store to an in-memory string in the text v1 format.
    pub fn save_to_string(&self) -> String {
        let mut buf = Vec::new();
        self.save_text(&mut buf)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(buf).expect("text persist format is UTF-8")
    }

    /// Reads a store from the line-oriented text v1 format.
    ///
    /// Callers normally go through [`Ttkv::load`], which sniffs the magic and
    /// dispatches here for v1 files. Reads are restored as counters on the
    /// key they belong to; per-read timestamps are not persisted (matching
    /// what the deployed system kept).
    ///
    /// # Errors
    ///
    /// Returns [`TtkvError::Io`] if the reader fails and [`TtkvError::Parse`]
    /// if the content is not valid TTKV text data.
    pub(crate) fn load_text<R: BufRead>(reader: R) -> Result<Ttkv, TtkvError> {
        /// One key's record being assembled from consecutive lines.
        struct Pending {
            key: crate::Key,
            record: KeyRecord,
            reads: u64,
            /// Explicit `writes=`/`deletes=` from the `k` line; derived
            /// from the history lines when absent (pre-retention files).
            counters: Option<(u64, u64)>,
        }
        fn finish(store: &mut Ttkv, pending: Option<Pending>) {
            if let Some(p) = pending {
                let mut record = p.record;
                let (writes, deletes) = p.counters.unwrap_or((record.writes, record.deletes));
                record.set_counters(p.reads, writes, deletes);
                store.insert_record(p.key, record);
            }
        }

        let mut store = Ttkv::new();
        let mut pending: Option<Pending> = None;
        let mut lines = reader.lines();
        let first = lines
            .next()
            .transpose()?
            .ok_or_else(|| TtkvError::parse(1, "empty input"))?;
        if first.trim_end() != MAGIC {
            return Err(TtkvError::parse(1, format!("bad magic {first:?}")));
        }
        for (idx, line) in lines.enumerate() {
            let lineno = idx + 2;
            let line = line?;
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let mut tokens = line.split(' ');
            match tokens.next() {
                Some("k") => {
                    finish(&mut store, pending.take());
                    let raw = tokens
                        .next()
                        .ok_or_else(|| TtkvError::parse(lineno, "missing key name"))?;
                    let name = unescape(raw).map_err(|e| TtkvError::parse(lineno, e))?;
                    let mut reads = None;
                    let mut writes = None;
                    let mut deletes = None;
                    for token in tokens {
                        let (field, slot) = if let Some(v) = token.strip_prefix("reads=") {
                            (v, &mut reads)
                        } else if let Some(v) = token.strip_prefix("writes=") {
                            (v, &mut writes)
                        } else if let Some(v) = token.strip_prefix("deletes=") {
                            (v, &mut deletes)
                        } else {
                            return Err(TtkvError::parse(
                                lineno,
                                format!("unknown key field {token:?}"),
                            ));
                        };
                        *slot =
                            Some(field.parse::<u64>().map_err(|e| {
                                TtkvError::parse(lineno, format!("bad counter: {e}"))
                            })?);
                    }
                    let reads =
                        reads.ok_or_else(|| TtkvError::parse(lineno, "missing reads= field"))?;
                    pending = Some(Pending {
                        key: crate::Key::new(name),
                        record: KeyRecord::new(),
                        reads,
                        counters: match (writes, deletes) {
                            (Some(w), Some(d)) => Some((w, d)),
                            _ => None,
                        },
                    });
                }
                Some(op @ ("w" | "d" | "b" | "bd")) => {
                    let entry = pending
                        .as_mut()
                        .ok_or_else(|| TtkvError::parse(lineno, "mutation before any key"))?;
                    let ts = tokens
                        .next()
                        .ok_or_else(|| TtkvError::parse(lineno, "missing timestamp"))?
                        .parse::<u64>()
                        .map_err(|e| TtkvError::parse(lineno, format!("bad timestamp: {e}")))?;
                    let t = Timestamp::from_millis(ts);
                    match op {
                        "w" => {
                            let value = decode_value(&mut tokens)
                                .map_err(|e| TtkvError::parse(lineno, e))?;
                            entry
                                .record
                                .record_mutation(crate::Version::write(t, value));
                        }
                        "d" => entry.record.record_mutation(crate::Version::tombstone(t)),
                        "b" => {
                            let value = decode_value(&mut tokens)
                                .map_err(|e| TtkvError::parse(lineno, e))?;
                            entry.record.set_baseline(crate::Version::write(t, value));
                        }
                        _ => entry.record.set_baseline(crate::Version::tombstone(t)),
                    }
                }
                Some(other) => {
                    return Err(TtkvError::parse(
                        lineno,
                        format!("unknown record {other:?}"),
                    ));
                }
                None => unreachable!("split always yields at least one token"),
            }
        }
        finish(&mut store, pending);
        Ok(store)
    }

    /// Reads a store from an in-memory string (text v1; binary v2 segments
    /// are not valid UTF-8 and arrive as bytes via [`Ttkv::load`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Ttkv::load`].
    pub fn load_from_str(data: &str) -> Result<Ttkv, TtkvError> {
        Ttkv::load(io::Cursor::new(data.as_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Key, TimeDelta};

    fn sample_store() -> Ttkv {
        let mut store = Ttkv::new();
        let t0 = Timestamp::from_secs(100);
        store.read("app/a key with spaces");
        store.write(t0, "app/a key with spaces", Value::from("hello world"));
        store.write(t0 + TimeDelta::from_secs(5), "app/count", Value::from(42));
        store.write(t0 + TimeDelta::from_secs(6), "app/ratio", Value::from(0.25));
        store.write(
            t0 + TimeDelta::from_secs(7),
            "app/list",
            Value::List(vec![Value::from("a b"), Value::from(1), Value::Null]),
        );
        store.delete(t0 + TimeDelta::from_secs(9), "app/count");
        store.write(t0 + TimeDelta::from_secs(10), "app/flag", Value::from(true));
        store
    }

    #[test]
    fn roundtrip_preserves_store() {
        let store = sample_store();
        let text = store.save_to_string();
        let loaded = Ttkv::load_from_str(&text).unwrap();
        assert_eq!(store, loaded);
    }

    #[test]
    fn roundtrip_preserves_special_floats() {
        let mut store = Ttkv::new();
        for (i, f) in [f64::NAN, f64::INFINITY, -0.0, 1e-300].iter().enumerate() {
            store.write(
                Timestamp::from_secs(i as u64),
                Key::new(format!("f/{i}")),
                Value::Float(*f),
            );
        }
        let loaded = Ttkv::load_from_str(&store.save_to_string()).unwrap();
        assert_eq!(store, loaded);
    }

    #[test]
    fn escaping_handles_tricky_strings() {
        let tricky = "line1\nline2\ttab \\slash space";
        assert_eq!(unescape(&escape(tricky)).unwrap(), tricky);
        let mut store = Ttkv::new();
        store.write(Timestamp::EPOCH, Key::new(tricky), Value::from(tricky));
        let loaded = Ttkv::load_from_str(&store.save_to_string()).unwrap();
        assert_eq!(store, loaded);
    }

    #[test]
    fn pruned_store_roundtrips_baseline_and_counters() {
        let mut store = sample_store();
        store.write(Timestamp::from_secs(200), "app/flag", Value::from(false));
        store.prune_before(Timestamp::from_secs(150));
        let text = store.save_to_string();
        assert!(text.contains("\nb "), "live baseline emitted: {text}");
        // `app/count` ended in a pre-horizon tombstone: dead baseline.
        assert!(text.contains("\nbd "), "dead baseline emitted: {text}");
        let loaded = Ttkv::load_from_str(&text).unwrap();
        assert_eq!(store, loaded);
        // Lifetime counters survived even where history was collapsed.
        assert_eq!(loaded.stats().writes, store.stats().writes);
        assert_eq!(
            loaded.value_at("app/ratio", Timestamp::from_secs(150)),
            Some(&Value::from(0.25)),
        );
    }

    #[test]
    fn pre_retention_files_without_counter_fields_still_load() {
        let text = "ocasta-ttkv v1\nk app/a reads=2\nw 1000 i7\nd 2000\n";
        let store = Ttkv::load_from_str(text).unwrap();
        let record = store.record("app/a").unwrap();
        assert_eq!(record.reads, 2);
        assert_eq!(record.writes, 1, "derived from history");
        assert_eq!(record.deletes, 1);
        assert_eq!(store.stats().reads, 2);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = Ttkv::load_from_str("not-a-ttkv\n").unwrap_err();
        assert!(matches!(err, TtkvError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_mutation_before_key() {
        let err = Ttkv::load_from_str("ocasta-ttkv v1\nw 5 i1\n").unwrap_err();
        assert!(matches!(err, TtkvError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_truncated_list() {
        let err = Ttkv::load_from_str("ocasta-ttkv v1\nk a reads=0\nw 5 l3 i1 i2\n").unwrap_err();
        assert!(err.to_string().contains("missing value token"));
    }

    #[test]
    fn empty_store_roundtrips() {
        let store = Ttkv::new();
        let loaded = Ttkv::load_from_str(&store.save_to_string()).unwrap();
        assert!(loaded.is_empty());
    }
}
