//! Per-key history records.

use crate::stats::PruneStats;
use crate::time::Timestamp;
use crate::value::Value;

/// One recorded mutation of a key: either a write of a new value or a
/// deletion (tombstone).
///
/// The paper's Redis schema stores "a list of historical values of the key
/// including timestamps" with "a special type of value ... to represent
/// deletions"; `Version` is that list's element type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Version {
    /// When the mutation was recorded.
    pub timestamp: Timestamp,
    /// The value written, or `None` for a deletion tombstone.
    pub value: Option<Value>,
}

impl Version {
    /// Creates a write version.
    pub fn write(timestamp: Timestamp, value: Value) -> Self {
        Version {
            timestamp,
            value: Some(value),
        }
    }

    /// Creates a deletion tombstone.
    pub fn tombstone(timestamp: Timestamp) -> Self {
        Version {
            timestamp,
            value: None,
        }
    }

    /// `true` if this version is a deletion.
    pub fn is_tombstone(&self) -> bool {
        self.value.is_none()
    }
}

/// The complete recorded history of one key.
///
/// Mirrors the paper's TTKV record: "the number of writes and deletions, as
/// well as a list of historical values of the key including timestamps".
/// Read accesses are counted but not stored individually (only Table I's
/// aggregate read statistics need them).
///
/// After a [`KeyRecord::prune_in_place`], the collapsed pre-horizon state is
/// kept as a separate *baseline* — the newest pre-horizon version, write
/// or tombstone, with its original timestamp — **outside** the mutation
/// history. The baseline participates in point-in-time queries
/// ([`KeyRecord::value_at`]) but is invisible to
/// [`KeyRecord::mutation_times`] and [`KeyRecord::history`]: it is
/// recorded state, not a recorded mutation, so pruning can never inject a
/// phantom co-modification at the horizon into clustering or repair.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KeyRecord {
    /// Number of read accesses observed.
    pub reads: u64,
    /// Number of write accesses observed (excluding deletions).
    pub writes: u64,
    /// Number of deletions observed.
    pub deletes: u64,
    /// Timestamp-ordered mutation history (writes and tombstones).
    history: Vec<Version>,
    /// Collapsed pre-horizon state from the last prune: the newest
    /// pre-horizon version — a live write *or a tombstone* — kept **with
    /// its original timestamp** (not the horizon's). `None` only for
    /// never-pruned records or prunes that found nothing to collapse.
    /// Keeping the true timestamp and the tombstone case is what makes
    /// staged sweeps exact: a later prune can still rank the baseline
    /// against stragglers that arrived after the earlier sweep (including
    /// a late write that predates a collapsed deletion), so any sequence
    /// of prunes interleaved with appends equals one direct prune at the
    /// final horizon (property-tested).
    baseline: Option<Version>,
}

impl KeyRecord {
    /// Creates an empty record.
    pub fn new() -> Self {
        KeyRecord::default()
    }

    /// Total mutations (writes + deletions); the quantity Ocasta's repair
    /// search sorts clusters by.
    pub fn modifications(&self) -> u64 {
        self.writes + self.deletes
    }

    /// The ordered mutation history, oldest first.
    pub fn history(&self) -> &[Version] {
        &self.history
    }

    /// The most recent mutation, if any.
    pub fn latest(&self) -> Option<&Version> {
        self.history.last()
    }

    /// The key's live value as of `t` (inclusive): the value of the last
    /// write at or before `t`, or `None` if the key did not exist (never
    /// written, or deleted) at that time. A prune baseline answers for any
    /// `t` at or after its timestamp that no younger real mutation covers.
    pub fn value_at(&self, t: Timestamp) -> Option<&Value> {
        let idx = self.history.partition_point(|v| v.timestamp <= t);
        let newest = idx.checked_sub(1).map(|i| &self.history[i]);
        match (&self.baseline, newest) {
            // The baseline wins only over strictly older history: on a
            // timestamp tie a real mutation was recorded after the state
            // the baseline collapsed, so the mutation is newer — the same
            // last-arrival-wins rule unpruned histories follow.
            (Some(b), Some(v)) if b.timestamp <= t && v.timestamp < b.timestamp => b.value.as_ref(),
            (Some(b), None) if b.timestamp <= t => b.value.as_ref(),
            (_, Some(v)) => v.value.as_ref(),
            (_, None) => None,
        }
    }

    /// The key's current live value: the newest recorded state, whether
    /// that is the last history entry or the prune baseline. The baseline
    /// can be the newer of the two when a straggler mutation older than it
    /// arrives after a sweep — a tombstone baseline must keep the key dead
    /// against such a late write, exactly as [`KeyRecord::value_at`] at
    /// the end of time would.
    pub fn current(&self) -> Option<&Value> {
        match (&self.baseline, self.latest()) {
            (Some(b), Some(v)) if v.timestamp < b.timestamp => b.value.as_ref(),
            (_, Some(v)) => v.value.as_ref(),
            (Some(b), None) => b.value.as_ref(),
            (None, None) => None,
        }
    }

    /// `true` if the key existed (had a live, non-tombstoned value) at `t`.
    pub fn existed_at(&self, t: Timestamp) -> bool {
        self.value_at(t).is_some()
    }

    /// Timestamps of every mutation (write or deletion), oldest first.
    ///
    /// A prune baseline is deliberately **not** reported here: it is not a
    /// mutation the application performed, and surfacing it would fabricate
    /// a co-modification at the horizon across every pruned key (skewing
    /// clustering correlations and transaction grouping).
    pub fn mutation_times(&self) -> impl Iterator<Item = Timestamp> + '_ {
        self.history.iter().map(|v| v.timestamp)
    }

    /// The prune baseline, if this record has been pruned: the newest
    /// pre-horizon version (write or tombstone) with its original
    /// timestamp.
    pub fn baseline(&self) -> Option<&Version> {
        self.baseline.as_ref()
    }

    /// The timestamp of the most recent recorded *state*: the newer of
    /// the latest real mutation and the prune baseline (a straggler
    /// arriving after a sweep can leave the baseline as the newest state).
    /// This is what keeps [`crate::Ttkv::last_mutation_time`] (and
    /// therefore [`crate::Ttkv::snapshot_latest`]) meaningful on
    /// aggressively pruned stores.
    pub fn last_time(&self) -> Option<Timestamp> {
        self.latest()
            .map(|v| v.timestamp)
            .max(self.baseline.as_ref().map(|b| b.timestamp))
    }

    /// The *last-mutation watermark*: the timestamp of the newest mutation
    /// ever recorded against this key — **prune-invariant**, unlike
    /// [`KeyRecord::mutation_times`], whose tail a prune can swallow.
    ///
    /// No extra bookkeeping is needed: the prune baseline keeps the newest
    /// collapsed mutation *with its original timestamp*, and every other
    /// collapsed mutation was older, so `max(latest history entry,
    /// baseline)` equals the maximum over the full unpruned history at any
    /// prune depth (property-tested). This is what keeps rank-stable sorts
    /// stable on pruned stores: `ocasta-repair` breaks modification-count
    /// ties on this watermark, so `fix.cluster_rank` cannot renumber when
    /// a sweep reclaims the mutation that used to be the tie-break.
    pub fn last_mutation_watermark(&self) -> Option<Timestamp> {
        self.last_time()
    }

    /// Records `count` read accesses at once.
    pub(crate) fn add_reads(&mut self, count: u64) {
        self.reads += count;
    }

    /// Appends a mutation, keeping the history sorted. Out-of-order arrivals
    /// (possible when traces from several machines are merged per user, as
    /// the paper does for the Linux labs) are inserted at the right position.
    pub(crate) fn record_mutation(&mut self, version: Version) {
        if version.is_tombstone() {
            self.deletes += 1;
        } else {
            self.writes += 1;
        }
        match self.history.last() {
            Some(last) if last.timestamp > version.timestamp => {
                let idx = self
                    .history
                    .partition_point(|v| v.timestamp <= version.timestamp);
                self.history.insert(idx, version);
            }
            _ => self.history.push(version),
        }
    }

    /// Merges another record's history and counters into this one by value.
    ///
    /// Histories are merge-sorted on timestamps; on ties, `self`'s versions
    /// order before `other`'s — the same rule sequential
    /// [`KeyRecord::record_mutation`] insertion applies. When the incoming
    /// history strictly follows (or either side is empty) this is a plain
    /// append/move with no traversal.
    pub(crate) fn absorb(&mut self, other: KeyRecord) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.deletes += other.deletes;
        // Baselines only arise from pruning; when both sides carry one the
        // truly newer state subsumes the other (ties keep self's, the same
        // self-first rule the history merge applies).
        self.baseline = match (self.baseline.take(), other.baseline) {
            (Some(a), Some(b)) => Some(if b.timestamp > a.timestamp { b } else { a }),
            (a, b) => a.or(b),
        };
        if other.history.is_empty() {
            return;
        }
        if self.history.is_empty() {
            self.history = other.history;
            return;
        }
        let self_last = self.history.last().expect("non-empty").timestamp;
        let other_first = other.history.first().expect("non-empty").timestamp;
        if self_last <= other_first {
            self.history.extend(other.history);
            return;
        }
        let mut merged = Vec::with_capacity(self.history.len() + other.history.len());
        let mut left = std::mem::take(&mut self.history).into_iter().peekable();
        let mut right = other.history.into_iter().peekable();
        loop {
            match (left.peek(), right.peek()) {
                (Some(l), Some(r)) => {
                    // `<=` keeps self's versions first on ties.
                    if l.timestamp <= r.timestamp {
                        merged.push(left.next().expect("peeked"));
                    } else {
                        merged.push(right.next().expect("peeked"));
                    }
                }
                (Some(_), None) => merged.push(left.next().expect("peeked")),
                (None, Some(_)) => merged.push(right.next().expect("peeked")),
                (None, None) => break,
            }
        }
        self.history = merged;
    }

    /// Collapses versions strictly before `horizon` into the record's
    /// *baseline* — the newest pre-horizon version, write or tombstone,
    /// with its original timestamp, folded into the existing baseline slot
    /// without rebuilding or cloning anything. Access counters are
    /// unchanged: they feed the repair tool's sort and Table I, not the
    /// rollback search. Returns what the prune reclaimed.
    ///
    /// This is the per-record primitive every reclamation path in the
    /// workspace bottoms out in — [`crate::Ttkv::prune_before`] applies it
    /// to every record, [`crate::TtkvBuilder::prune_before`] only to
    /// records its earliest-history index proves can reclaim something,
    /// which is what makes a fleet sweep O(reclaimed) instead of O(live).
    ///
    /// The baseline lives outside [`KeyRecord::history`], so pruning never
    /// synthesises a mutation (see the type-level docs), and it keeps both
    /// its true timestamp and its tombstone-ness, so re-pruning after
    /// out-of-order arrivals (a lagging fleet machine applying pre-horizon
    /// events after a sweep) ranks the baseline against the stragglers
    /// correctly — staged sweeps equal one direct prune at the final
    /// horizon. A record whose whole history is reclaimed behind a
    /// tombstone baseline is *dead*: its counters remain but it no longer
    /// contributes to [`crate::Ttkv::modified_keys`].
    pub fn prune_in_place(&mut self, horizon: Timestamp) -> PruneStats {
        let cut = self.history.partition_point(|v| v.timestamp < horizon);
        if cut == 0 {
            return PruneStats::default();
        }
        let before_bytes = self.approx_bytes() as u64;
        // The truly newest pre-horizon state wins: the cut's last version,
        // unless a previously collapsed baseline is younger still (on a
        // tie, the recorded version arrived after the collapsed state).
        let newest = self.history.drain(..cut).next_back().expect("cut > 0");
        self.baseline = Some(match self.baseline.take() {
            Some(b) if newest.timestamp < b.timestamp => b,
            _ => newest,
        });
        let after_bytes = self.approx_bytes() as u64;
        PruneStats {
            pruned_versions: cut as u64,
            dead_keys: u64::from(
                self.history.is_empty() && self.baseline.as_ref().is_none_or(Version::is_tombstone),
            ),
            reclaimed_bytes: before_bytes.saturating_sub(after_bytes),
        }
    }

    /// `true` if this record is a *dead shell*: it was mutated at some
    /// point, but pruning reclaimed its whole history and left no live
    /// baseline (either none at all, or a tombstone — the key was dead at
    /// the horizon). Such a record answers `None`/absent to every query
    /// ([`KeyRecord::value_at`], [`KeyRecord::current`],
    /// [`crate::Ttkv::modified_keys`], snapshots) — only its lifetime
    /// counters remain, and under key churn those shells accumulate without
    /// bound. [`crate::Ttkv::gc_dead_shells`] collects them.
    ///
    /// Read-only records (`modifications() == 0`) are *not* shells: they
    /// were never mutated, carry no history to reclaim, and their read
    /// counters are live Table I data.
    pub fn is_dead_shell(&self) -> bool {
        self.modifications() > 0
            && self.history.is_empty()
            && self.baseline.as_ref().is_none_or(Version::is_tombstone)
    }

    /// Demotes the prune baseline (if any) back into the mutation history
    /// as an ordinary version, **without touching the counters** — the
    /// collapsed mutation it stands for was already counted when it was
    /// recorded.
    ///
    /// The demoted version is inserted *before* any real mutation sharing
    /// its timestamp, matching [`KeyRecord::value_at`]'s tie rule (a
    /// same-timestamp recorded mutation arrived after the state the
    /// baseline collapsed, so it stays the winner). This is the layered-WAL
    /// fold primitive: a delta snapshot's baseline becomes a plain version
    /// so the reader's single final prune can re-rank it against *older*
    /// layers — where the baseline, being the newer arrival, must win ties
    /// instead of losing them (see `ocasta-fleet`'s layered compaction and
    /// `DESIGN.md §5.10`).
    pub(crate) fn demote_baseline(&mut self) {
        if let Some(b) = self.baseline.take() {
            let idx = self.history.partition_point(|v| v.timestamp < b.timestamp);
            self.history.insert(idx, b);
        }
    }

    /// Restores a prune baseline (persistence load path; see
    /// `crate::persist`).
    pub(crate) fn set_baseline(&mut self, baseline: Version) {
        self.baseline = Some(baseline);
    }

    /// Overrides the access counters (persistence load path: a pruned
    /// record's counters exceed what its surviving history implies).
    pub(crate) fn set_counters(&mut self, reads: u64, writes: u64, deletes: u64) {
        self.reads = reads;
        self.writes = writes;
        self.deletes = deletes;
    }

    /// Approximate in-memory footprint of the record in bytes.
    pub fn approx_bytes(&self) -> usize {
        let version_bytes = |v: &Version| 16 + v.value.as_ref().map_or(1, Value::approx_bytes);
        24 + self.baseline.as_ref().map_or(0, version_bytes)
            + self.history.iter().map(version_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn value_at_walks_history() {
        let mut r = KeyRecord::new();
        r.record_mutation(Version::write(ts(10), Value::from(1)));
        r.record_mutation(Version::write(ts(20), Value::from(2)));
        assert_eq!(r.value_at(ts(5)), None);
        assert_eq!(r.value_at(ts(10)), Some(&Value::from(1)));
        assert_eq!(r.value_at(ts(15)), Some(&Value::from(1)));
        assert_eq!(r.value_at(ts(20)), Some(&Value::from(2)));
        assert_eq!(r.value_at(ts(999)), Some(&Value::from(2)));
    }

    #[test]
    fn tombstones_hide_values() {
        let mut r = KeyRecord::new();
        r.record_mutation(Version::write(ts(1), Value::from("x")));
        r.record_mutation(Version::tombstone(ts(2)));
        r.record_mutation(Version::write(ts(3), Value::from("y")));
        assert!(r.existed_at(ts(1)));
        assert!(!r.existed_at(ts(2)));
        assert_eq!(r.value_at(ts(3)), Some(&Value::from("y")));
        assert_eq!(r.writes, 2);
        assert_eq!(r.deletes, 1);
        assert_eq!(r.modifications(), 3);
    }

    #[test]
    fn out_of_order_mutations_are_sorted_in() {
        let mut r = KeyRecord::new();
        r.record_mutation(Version::write(ts(10), Value::from(10)));
        r.record_mutation(Version::write(ts(5), Value::from(5)));
        r.record_mutation(Version::write(ts(7), Value::from(7)));
        let times: Vec<_> = r.mutation_times().collect();
        assert_eq!(times, vec![ts(5), ts(7), ts(10)]);
        assert_eq!(r.value_at(ts(6)), Some(&Value::from(5)));
    }

    #[test]
    fn equal_timestamps_keep_insertion_order_last_wins() {
        let mut r = KeyRecord::new();
        r.record_mutation(Version::write(ts(1), Value::from("a")));
        r.record_mutation(Version::write(ts(1), Value::from("b")));
        assert_eq!(r.value_at(ts(1)), Some(&Value::from("b")));
    }

    #[test]
    fn prune_collapses_old_history_into_a_baseline() {
        let mut r = KeyRecord::new();
        r.record_mutation(Version::write(ts(1), Value::from(1)));
        r.record_mutation(Version::write(ts(5), Value::from(5)));
        r.record_mutation(Version::write(ts(9), Value::from(9)));
        let stats = r.prune_in_place(ts(6));
        // Pre-horizon versions collapse into the baseline, not the history;
        // the baseline keeps the newest pre-horizon value's own timestamp.
        assert_eq!(r.history().len(), 1);
        assert_eq!(r.baseline(), Some(&Version::write(ts(5), Value::from(5))));
        assert_eq!(r.value_at(ts(6)), Some(&Value::from(5)));
        assert_eq!(r.value_at(ts(7)), Some(&Value::from(5)));
        assert_eq!(r.value_at(ts(9)), Some(&Value::from(9)));
        // Counters survive (the sort depends on them).
        assert_eq!(r.writes, 3);
        assert_eq!(stats.pruned_versions, 2);
        assert_eq!(stats.dead_keys, 0);
        assert!(stats.reclaimed_bytes > 0);
    }

    #[test]
    fn prune_baseline_is_not_a_mutation() {
        // Regression: the baseline used to be synthesised as a real
        // `Version::write(horizon, ..)`, so `mutation_times` reported a
        // phantom co-modification at the horizon on every pruned key.
        let mut r = KeyRecord::new();
        r.record_mutation(Version::write(ts(1), Value::from(1)));
        r.record_mutation(Version::write(ts(9), Value::from(9)));
        r.prune_in_place(ts(6));
        let times: Vec<_> = r.mutation_times().collect();
        assert_eq!(times, vec![ts(9)], "no phantom mutation at the horizon");
        assert_eq!(r.history().len(), 1);
    }

    #[test]
    fn prune_drops_keys_dead_at_horizon() {
        let mut r = KeyRecord::new();
        r.record_mutation(Version::write(ts(1), Value::from("x")));
        r.record_mutation(Version::tombstone(ts(2)));
        r.record_mutation(Version::write(ts(8), Value::from("y")));
        let stats = r.prune_in_place(ts(5));
        // Dead at the horizon: the baseline is the collapsed tombstone, so
        // a later straggler write older than it cannot resurrect the key.
        assert_eq!(r.history().len(), 1);
        assert_eq!(r.baseline(), Some(&Version::tombstone(ts(2))));
        assert_eq!(r.value_at(ts(5)), None);
        assert_eq!(r.value_at(ts(8)), Some(&Value::from("y")));
        assert_eq!(stats.pruned_versions, 2);
        assert_eq!(stats.dead_keys, 0, "post-horizon history survives");
    }

    #[test]
    fn prune_of_entire_dead_history_marks_the_record_dead() {
        let mut r = KeyRecord::new();
        r.record_mutation(Version::write(ts(1), Value::from("x")));
        r.record_mutation(Version::tombstone(ts(2)));
        let stats = r.prune_in_place(ts(5));
        assert!(r.history().is_empty());
        assert_eq!(r.baseline(), Some(&Version::tombstone(ts(2))));
        assert_eq!(r.current(), None);
        assert_eq!(r.last_time(), Some(ts(2)), "the death is the last state");
        assert_eq!(stats.dead_keys, 1);
        // Counters are the durable trace of the key's activity.
        assert_eq!(r.modifications(), 2);
    }

    #[test]
    fn fully_pruned_live_key_serves_from_the_baseline() {
        let mut r = KeyRecord::new();
        r.record_mutation(Version::write(ts(1), Value::from("x")));
        r.record_mutation(Version::write(ts(3), Value::from("y")));
        r.prune_in_place(ts(5));
        assert!(r.history().is_empty());
        assert_eq!(r.current(), Some(&Value::from("y")));
        assert_eq!(r.value_at(ts(5)), Some(&Value::from("y")));
        // The baseline keeps its true time, so even this below-horizon
        // probe still matches the unpruned history.
        assert_eq!(r.value_at(ts(4)), Some(&Value::from("y")));
        assert_eq!(r.value_at(ts(2)), None, "before the baseline is gone");
        assert_eq!(r.last_time(), Some(ts(3)));
        assert_eq!(r.mutation_times().count(), 0);
    }

    #[test]
    fn repeated_prunes_keep_the_newest_pre_horizon_state() {
        let mut r = KeyRecord::new();
        r.record_mutation(Version::write(ts(1), Value::from(1)));
        r.record_mutation(Version::write(ts(8), Value::from(8)));
        r.prune_in_place(ts(4));
        assert_eq!(r.baseline(), Some(&Version::write(ts(1), Value::from(1))));
        // Second sweep with nothing new to collapse: a no-op.
        r.prune_in_place(ts(6));
        assert_eq!(r.baseline(), Some(&Version::write(ts(1), Value::from(1))));
        // A straggler *older than the baseline* arrives late (a lagging
        // machine), then a deeper sweep: the baseline must win, because it
        // is the truly newer pre-horizon state.
        r.record_mutation(Version::write(ts(0), Value::from(0)));
        r.prune_in_place(ts(6));
        assert_eq!(r.baseline(), Some(&Version::write(ts(1), Value::from(1))));
        // Third sweep past the last real write: the write subsumes it.
        r.prune_in_place(ts(9));
        assert_eq!(r.baseline(), Some(&Version::write(ts(8), Value::from(8))));
        assert!(r.history().is_empty());
        assert_eq!(r.writes, 3);
    }

    #[test]
    fn straggler_older_than_a_tombstone_baseline_cannot_resurrect_the_key() {
        // Regression: `current()`/`last_time()` used to consult the
        // baseline only when the history was empty, so a late write older
        // than a collapsed deletion brought the key back from the dead
        // (while `value_at` correctly kept it dead).
        let mut r = KeyRecord::new();
        r.record_mutation(Version::write(ts(1), Value::from("x")));
        r.record_mutation(Version::tombstone(ts(5)));
        r.prune_in_place(ts(6));
        assert_eq!(r.baseline(), Some(&Version::tombstone(ts(5))));
        // The straggler predates the collapsed deletion.
        r.record_mutation(Version::write(ts(0), Value::from("zombie")));
        assert_eq!(r.current(), None, "the tombstone is the newest state");
        assert_eq!(r.value_at(Timestamp::from_millis(u64::MAX)), None);
        assert_eq!(r.last_time(), Some(ts(5)));
        // A genuinely newer write does revive it.
        r.record_mutation(Version::write(ts(9), Value::from("alive")));
        assert_eq!(r.current(), Some(&Value::from("alive")));
        assert_eq!(r.last_time(), Some(ts(9)));
    }

    #[test]
    fn version_exactly_at_horizon_beats_the_baseline() {
        let mut r = KeyRecord::new();
        r.record_mutation(Version::write(ts(1), Value::from("old")));
        r.record_mutation(Version::write(ts(5), Value::from("at-horizon")));
        r.prune_in_place(ts(5));
        // ts(5) is not strictly before the horizon: it survives as real
        // history and is newer than the collapsed baseline.
        assert_eq!(r.history().len(), 1);
        assert_eq!(
            r.baseline(),
            Some(&Version::write(ts(1), Value::from("old")))
        );
        assert_eq!(r.value_at(ts(5)), Some(&Value::from("at-horizon")));
        assert_eq!(r.value_at(ts(9)), Some(&Value::from("at-horizon")));
    }

    #[test]
    fn prune_before_everything_is_a_noop() {
        let mut r = KeyRecord::new();
        r.record_mutation(Version::write(ts(5), Value::from(5)));
        let before = r.clone();
        let stats = r.prune_in_place(ts(1));
        assert_eq!(r, before);
        assert!(stats.is_noop());
    }

    #[test]
    fn reads_only_touch_counters() {
        let mut r = KeyRecord::new();
        r.add_reads(2);
        assert_eq!(r.reads, 2);
        assert!(r.history().is_empty());
        assert_eq!(r.current(), None);
    }
}
