//! Per-key history records.

use crate::time::Timestamp;
use crate::value::Value;

/// One recorded mutation of a key: either a write of a new value or a
/// deletion (tombstone).
///
/// The paper's Redis schema stores "a list of historical values of the key
/// including timestamps" with "a special type of value ... to represent
/// deletions"; `Version` is that list's element type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Version {
    /// When the mutation was recorded.
    pub timestamp: Timestamp,
    /// The value written, or `None` for a deletion tombstone.
    pub value: Option<Value>,
}

impl Version {
    /// Creates a write version.
    pub fn write(timestamp: Timestamp, value: Value) -> Self {
        Version {
            timestamp,
            value: Some(value),
        }
    }

    /// Creates a deletion tombstone.
    pub fn tombstone(timestamp: Timestamp) -> Self {
        Version {
            timestamp,
            value: None,
        }
    }

    /// `true` if this version is a deletion.
    pub fn is_tombstone(&self) -> bool {
        self.value.is_none()
    }
}

/// The complete recorded history of one key.
///
/// Mirrors the paper's TTKV record: "the number of writes and deletions, as
/// well as a list of historical values of the key including timestamps".
/// Read accesses are counted but not stored individually (only Table I's
/// aggregate read statistics need them).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KeyRecord {
    /// Number of read accesses observed.
    pub reads: u64,
    /// Number of write accesses observed (excluding deletions).
    pub writes: u64,
    /// Number of deletions observed.
    pub deletes: u64,
    /// Timestamp-ordered mutation history (writes and tombstones).
    history: Vec<Version>,
}

impl KeyRecord {
    /// Creates an empty record.
    pub fn new() -> Self {
        KeyRecord::default()
    }

    /// Total mutations (writes + deletions); the quantity Ocasta's repair
    /// search sorts clusters by.
    pub fn modifications(&self) -> u64 {
        self.writes + self.deletes
    }

    /// The ordered mutation history, oldest first.
    pub fn history(&self) -> &[Version] {
        &self.history
    }

    /// The most recent mutation, if any.
    pub fn latest(&self) -> Option<&Version> {
        self.history.last()
    }

    /// The key's live value as of `t` (inclusive): the value of the last
    /// write at or before `t`, or `None` if the key did not exist (never
    /// written, or deleted) at that time.
    pub fn value_at(&self, t: Timestamp) -> Option<&Value> {
        let idx = self.history.partition_point(|v| v.timestamp <= t);
        idx.checked_sub(1)
            .and_then(|i| self.history[i].value.as_ref())
    }

    /// The key's current live value.
    pub fn current(&self) -> Option<&Value> {
        self.latest().and_then(|v| v.value.as_ref())
    }

    /// `true` if the key existed (had a live, non-tombstoned value) at `t`.
    pub fn existed_at(&self, t: Timestamp) -> bool {
        self.value_at(t).is_some()
    }

    /// Timestamps of every mutation (write or deletion), oldest first.
    pub fn mutation_times(&self) -> impl Iterator<Item = Timestamp> + '_ {
        self.history.iter().map(|v| v.timestamp)
    }

    /// Records a read access.
    pub(crate) fn record_read(&mut self) {
        self.reads += 1;
    }

    /// Records `count` read accesses at once.
    pub(crate) fn add_reads(&mut self, count: u64) {
        self.reads += count;
    }

    /// Appends a mutation, keeping the history sorted. Out-of-order arrivals
    /// (possible when traces from several machines are merged per user, as
    /// the paper does for the Linux labs) are inserted at the right position.
    pub(crate) fn record_mutation(&mut self, version: Version) {
        if version.is_tombstone() {
            self.deletes += 1;
        } else {
            self.writes += 1;
        }
        match self.history.last() {
            Some(last) if last.timestamp > version.timestamp => {
                let idx = self
                    .history
                    .partition_point(|v| v.timestamp <= version.timestamp);
                self.history.insert(idx, version);
            }
            _ => self.history.push(version),
        }
    }

    /// Merges another record's history and counters into this one by value.
    ///
    /// Histories are merge-sorted on timestamps; on ties, `self`'s versions
    /// order before `other`'s — the same rule sequential
    /// [`KeyRecord::record_mutation`] insertion applies. When the incoming
    /// history strictly follows (or either side is empty) this is a plain
    /// append/move with no traversal.
    pub(crate) fn absorb(&mut self, other: KeyRecord) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.deletes += other.deletes;
        if other.history.is_empty() {
            return;
        }
        if self.history.is_empty() {
            self.history = other.history;
            return;
        }
        let self_last = self.history.last().expect("non-empty").timestamp;
        let other_first = other.history.first().expect("non-empty").timestamp;
        if self_last <= other_first {
            self.history.extend(other.history);
            return;
        }
        let mut merged = Vec::with_capacity(self.history.len() + other.history.len());
        let mut left = std::mem::take(&mut self.history).into_iter().peekable();
        let mut right = other.history.into_iter().peekable();
        loop {
            match (left.peek(), right.peek()) {
                (Some(l), Some(r)) => {
                    // `<=` keeps self's versions first on ties.
                    if l.timestamp <= r.timestamp {
                        merged.push(left.next().expect("peeked"));
                    } else {
                        merged.push(right.next().expect("peeked"));
                    }
                }
                (Some(_), None) => merged.push(left.next().expect("peeked")),
                (None, Some(_)) => merged.push(right.next().expect("peeked")),
                (None, None) => break,
            }
        }
        self.history = merged;
    }

    /// Collapses versions strictly before `horizon` into at most one
    /// version holding the value live at the horizon (see
    /// [`crate::Ttkv::prune_before`]). Counters are unchanged.
    pub(crate) fn prune_before(&mut self, horizon: Timestamp) {
        let cut = self.history.partition_point(|v| v.timestamp < horizon);
        if cut == 0 {
            return;
        }
        let baseline = self.history[cut - 1].value.clone();
        let mut kept: Vec<Version> = Vec::with_capacity(self.history.len() - cut + 1);
        if let Some(value) = baseline {
            kept.push(Version::write(horizon, value));
        }
        kept.extend(self.history.drain(cut..));
        self.history = kept;
    }

    /// Approximate in-memory footprint of the record in bytes.
    pub fn approx_bytes(&self) -> usize {
        24 + self
            .history
            .iter()
            .map(|v| 16 + v.value.as_ref().map_or(1, Value::approx_bytes))
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn value_at_walks_history() {
        let mut r = KeyRecord::new();
        r.record_mutation(Version::write(ts(10), Value::from(1)));
        r.record_mutation(Version::write(ts(20), Value::from(2)));
        assert_eq!(r.value_at(ts(5)), None);
        assert_eq!(r.value_at(ts(10)), Some(&Value::from(1)));
        assert_eq!(r.value_at(ts(15)), Some(&Value::from(1)));
        assert_eq!(r.value_at(ts(20)), Some(&Value::from(2)));
        assert_eq!(r.value_at(ts(999)), Some(&Value::from(2)));
    }

    #[test]
    fn tombstones_hide_values() {
        let mut r = KeyRecord::new();
        r.record_mutation(Version::write(ts(1), Value::from("x")));
        r.record_mutation(Version::tombstone(ts(2)));
        r.record_mutation(Version::write(ts(3), Value::from("y")));
        assert!(r.existed_at(ts(1)));
        assert!(!r.existed_at(ts(2)));
        assert_eq!(r.value_at(ts(3)), Some(&Value::from("y")));
        assert_eq!(r.writes, 2);
        assert_eq!(r.deletes, 1);
        assert_eq!(r.modifications(), 3);
    }

    #[test]
    fn out_of_order_mutations_are_sorted_in() {
        let mut r = KeyRecord::new();
        r.record_mutation(Version::write(ts(10), Value::from(10)));
        r.record_mutation(Version::write(ts(5), Value::from(5)));
        r.record_mutation(Version::write(ts(7), Value::from(7)));
        let times: Vec<_> = r.mutation_times().collect();
        assert_eq!(times, vec![ts(5), ts(7), ts(10)]);
        assert_eq!(r.value_at(ts(6)), Some(&Value::from(5)));
    }

    #[test]
    fn equal_timestamps_keep_insertion_order_last_wins() {
        let mut r = KeyRecord::new();
        r.record_mutation(Version::write(ts(1), Value::from("a")));
        r.record_mutation(Version::write(ts(1), Value::from("b")));
        assert_eq!(r.value_at(ts(1)), Some(&Value::from("b")));
    }

    #[test]
    fn prune_collapses_old_history() {
        let mut r = KeyRecord::new();
        r.record_mutation(Version::write(ts(1), Value::from(1)));
        r.record_mutation(Version::write(ts(5), Value::from(5)));
        r.record_mutation(Version::write(ts(9), Value::from(9)));
        r.prune_before(ts(6));
        // Pre-horizon versions collapse to one baseline at the horizon.
        assert_eq!(r.history().len(), 2);
        assert_eq!(r.value_at(ts(6)), Some(&Value::from(5)));
        assert_eq!(r.value_at(ts(9)), Some(&Value::from(9)));
        // Counters survive (the sort depends on them).
        assert_eq!(r.writes, 3);
    }

    #[test]
    fn prune_drops_keys_dead_at_horizon() {
        let mut r = KeyRecord::new();
        r.record_mutation(Version::write(ts(1), Value::from("x")));
        r.record_mutation(Version::tombstone(ts(2)));
        r.record_mutation(Version::write(ts(8), Value::from("y")));
        r.prune_before(ts(5));
        // Dead at the horizon: no baseline version is kept.
        assert_eq!(r.history().len(), 1);
        assert_eq!(r.value_at(ts(5)), None);
        assert_eq!(r.value_at(ts(8)), Some(&Value::from("y")));
    }

    #[test]
    fn prune_before_everything_is_a_noop() {
        let mut r = KeyRecord::new();
        r.record_mutation(Version::write(ts(5), Value::from(5)));
        let before = r.clone();
        r.prune_before(ts(1));
        assert_eq!(r, before);
    }

    #[test]
    fn reads_only_touch_counters() {
        let mut r = KeyRecord::new();
        r.record_read();
        r.record_read();
        assert_eq!(r.reads, 2);
        assert!(r.history().is_empty());
        assert_eq!(r.current(), None);
    }
}
