//! FNV-1a, the workspace's one hash function, at both widths.
//!
//! Two on-disk formats and one in-memory router need a fast, stable,
//! dependency-free hash: `ocasta-ttkv binary v2` sections and fleet WAL
//! frames checksum their payloads with the 32-bit variant, and the sharded
//! store stripes keys with the 64-bit variant. Both use Fowler–Noll–Vo 1a —
//! `hash = (hash ^ byte) * prime`, starting from the width's offset basis —
//! with the parameters from the FNV reference specification. The unit tests
//! pin the implementations to the reference test vectors, so neither segment
//! files, WAL files, nor shard layouts can silently change across releases.
//!
//! This module lives in `ocasta-ttkv` (the bottom of the dependency stack) so
//! the snapshot format and the WAL format share one implementation;
//! `ocasta_fleet::hash` re-exports it.

/// 32-bit FNV-1a offset basis.
const BASIS_32: u32 = 0x811C_9DC5;
/// 32-bit FNV prime.
const PRIME_32: u32 = 0x0100_0193;
/// 64-bit FNV-1a offset basis.
const BASIS_64: u64 = 0xCBF2_9CE4_8422_2325;
/// 64-bit FNV prime.
const PRIME_64: u64 = 0x0000_0100_0000_01B3;

/// 32-bit FNV-1a over a byte slice (the segment-section and WAL-frame
/// checksum).
///
/// # Examples
///
/// ```
/// assert_eq!(ocasta_ttkv::hash::fnv1a_32(b""), 0x811C_9DC5);
/// assert_eq!(ocasta_ttkv::hash::fnv1a_32(b"a"), 0xE40C_292C);
/// ```
pub fn fnv1a_32(bytes: &[u8]) -> u32 {
    let mut hash = BASIS_32;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(PRIME_32);
    }
    hash
}

/// 64-bit FNV-1a over a byte slice (the key→shard stripe hash).
///
/// # Examples
///
/// ```
/// assert_eq!(ocasta_ttkv::hash::fnv1a_64(b""), 0xCBF2_9CE4_8422_2325);
/// assert_eq!(ocasta_ttkv::hash::fnv1a_64(b"a"), 0xAF63_DC4C_8601_EC8C);
/// ```
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = BASIS_64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME_64);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors from the FNV specification's test suite
    /// (draft-eastlake-fnv, `fnv32a`/`fnv64a` columns).
    const VECTORS: &[(&[u8], u32, u64)] = &[
        (b"", 0x811C_9DC5, 0xCBF2_9CE4_8422_2325),
        (b"a", 0xE40C_292C, 0xAF63_DC4C_8601_EC8C),
        (b"b", 0xE70C_2DE5, 0xAF63_DF4C_8601_F1A5),
        (b"c", 0xE60C_2C52, 0xAF63_DE4C_8601_EFF2),
        (b"foobar", 0xBF9C_F968, 0x8594_4171_F739_67E8),
    ];

    #[test]
    fn matches_reference_vectors_32() {
        for &(input, want32, _) in VECTORS {
            assert_eq!(fnv1a_32(input), want32, "{input:?}");
        }
    }

    #[test]
    fn matches_reference_vectors_64() {
        for &(input, _, want64) in VECTORS {
            assert_eq!(fnv1a_64(input), want64, "{input:?}");
        }
    }

    #[test]
    fn one_byte_difference_changes_both_widths() {
        assert_ne!(fnv1a_32(b"app/key1"), fnv1a_32(b"app/key2"));
        assert_ne!(fnv1a_64(b"app/key1"), fnv1a_64(b"app/key2"));
    }
}
