//! Aggregate store statistics (the shape of the paper's Table I).

use std::fmt;

/// Aggregate access statistics for one TTKV.
///
/// One value of this type corresponds to one row of the paper's Table I
/// ("Summary of trace statistics"): reads, writes, distinct keys and the
/// approximate size of the TTKV.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TtkvStats {
    /// Distinct keys ever observed.
    pub keys: u64,
    /// Total read accesses.
    pub reads: u64,
    /// Total writes.
    pub writes: u64,
    /// Total deletions.
    pub deletes: u64,
    /// Approximate store size in bytes.
    pub approx_bytes: u64,
}

impl TtkvStats {
    /// Total mutations (writes + deletions).
    pub fn modifications(&self) -> u64 {
        self.writes + self.deletes
    }

    /// Formats a count the way Table I does: `22.80M`, `311.9K`, `480`.
    pub fn humanize(count: u64) -> String {
        match count {
            c if c >= 1_000_000 => format!("{:.2}M", c as f64 / 1e6),
            c if c >= 1_000 => format!("{:.2}K", c as f64 / 1e3),
            c => c.to_string(),
        }
    }

    /// Formats a byte size the way Table I does: `85MB`, `0.1MB`.
    pub fn humanize_bytes(bytes: u64) -> String {
        let mb = bytes as f64 / 1e6;
        if mb >= 1.0 {
            format!("{mb:.0}MB")
        } else {
            format!("{mb:.1}MB")
        }
    }
}

impl fmt::Display for TtkvStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} reads, {} writes, {} keys, {}",
            Self::humanize(self.reads),
            Self::humanize(self.writes),
            self.keys,
            Self::humanize_bytes(self.approx_bytes),
        )
    }
}

/// What one [`crate::Ttkv::prune_before`] sweep reclaimed.
///
/// Sweeps are periodic in a long-running deployment, so the type is a
/// monoid: per-record stats fold into per-store stats, per-store stats
/// fold into per-shard and per-run totals (see `ocasta-fleet`'s retention
/// sweeper).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PruneStats {
    /// Historical versions collapsed into (or dropped behind) the horizon.
    pub pruned_versions: u64,
    /// Keys whose entire history was reclaimed and that were dead
    /// (tombstoned) at the horizon. Their records remain — counters plus
    /// the collapsed tombstone baseline — so repair's modification-count
    /// sort stays stable and stragglers cannot resurrect them, but they no
    /// longer appear in [`crate::Ttkv::modified_keys`].
    pub dead_keys: u64,
    /// Approximate bytes reclaimed (pre-prune minus post-prune footprint).
    pub reclaimed_bytes: u64,
}

impl PruneStats {
    /// Folds another sweep's stats into this one.
    pub fn absorb(&mut self, other: PruneStats) {
        self.pruned_versions += other.pruned_versions;
        self.dead_keys += other.dead_keys;
        self.reclaimed_bytes += other.reclaimed_bytes;
    }

    /// `true` if the sweep reclaimed nothing.
    pub fn is_noop(&self) -> bool {
        self.pruned_versions == 0 && self.reclaimed_bytes == 0
    }
}

impl fmt::Display for PruneStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} versions pruned ({} keys died), {} reclaimed",
            TtkvStats::humanize(self.pruned_versions),
            self.dead_keys,
            TtkvStats::humanize_bytes(self.reclaimed_bytes),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prune_stats_fold_and_render() {
        let mut total = PruneStats::default();
        assert!(total.is_noop());
        total.absorb(PruneStats {
            pruned_versions: 1_500,
            dead_keys: 2,
            reclaimed_bytes: 64_000,
        });
        total.absorb(PruneStats {
            pruned_versions: 500,
            dead_keys: 1,
            reclaimed_bytes: 36_000,
        });
        assert_eq!(total.pruned_versions, 2_000);
        assert_eq!(total.dead_keys, 3);
        assert!(!total.is_noop());
        let text = total.to_string();
        assert!(text.contains("2.00K versions"), "{text}");
        assert!(text.contains("0.1MB"), "{text}");
    }

    #[test]
    fn humanize_bands() {
        assert_eq!(TtkvStats::humanize(999), "999");
        assert_eq!(TtkvStats::humanize(3_340), "3.34K");
        assert_eq!(TtkvStats::humanize(22_800_000), "22.80M");
    }

    #[test]
    fn humanize_bytes_bands() {
        assert_eq!(TtkvStats::humanize_bytes(85_000_000), "85MB");
        assert_eq!(TtkvStats::humanize_bytes(100_000), "0.1MB");
    }

    #[test]
    fn display_mentions_every_field_class() {
        let s = TtkvStats {
            keys: 4,
            reads: 1_000,
            writes: 10,
            deletes: 2,
            approx_bytes: 2_000_000,
        };
        let text = s.to_string();
        assert!(text.contains("reads"));
        assert!(text.contains("writes"));
        assert!(text.contains("keys"));
        assert!(text.contains("MB"));
        assert_eq!(s.modifications(), 12);
    }
}
