//! Simulated time for trace timestamps.
//!
//! Ocasta's deployed trace infrastructure recorded configuration-store
//! accesses with one-second precision, which the paper identifies as a source
//! of oversized clusters (§VI-A). This module keeps timestamps at millisecond
//! precision internally and provides explicit quantisation so both regimes
//! can be studied.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Milliseconds since the start of a trace (the *trace epoch*).
///
/// `Timestamp` is a simulated clock value, not wall-clock time: traces define
/// their own epoch and every component in this workspace (TTKV, clustering,
/// repair search) only ever compares or subtracts timestamps from the same
/// trace.
///
/// # Examples
///
/// ```
/// use ocasta_ttkv::{Timestamp, TimeDelta};
///
/// let t = Timestamp::from_secs(10) + TimeDelta::from_millis(250);
/// assert_eq!(t.as_millis(), 10_250);
/// assert_eq!(t.quantize_secs().as_millis(), 10_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Timestamp(u64);

impl Timestamp {
    /// The trace epoch (time zero).
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Creates a timestamp from milliseconds since the trace epoch.
    pub const fn from_millis(millis: u64) -> Self {
        Timestamp(millis)
    }

    /// Creates a timestamp from whole seconds since the trace epoch.
    ///
    /// Saturates at the representable maximum instead of wrapping: a trace
    /// cannot outlive the clock, and CLI inputs are validated before they
    /// get here, so saturation only shields against absurd programmatic
    /// values.
    pub const fn from_secs(secs: u64) -> Self {
        Timestamp(secs.saturating_mul(1000))
    }

    /// Creates a timestamp from whole days since the trace epoch
    /// (saturating, like [`Timestamp::from_secs`]).
    pub const fn from_days(days: u64) -> Self {
        Timestamp(days.saturating_mul(86_400_000))
    }

    /// Milliseconds since the trace epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since the trace epoch (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Fractional days since the trace epoch.
    pub fn as_days(self) -> f64 {
        self.0 as f64 / 86_400_000.0
    }

    /// Rounds the timestamp down to whole-second precision, mirroring the
    /// paper's trace-collection infrastructure.
    pub const fn quantize_secs(self) -> Self {
        Timestamp(self.0 / 1000 * 1000)
    }

    /// Saturating difference between two timestamps.
    pub const fn delta_since(self, earlier: Timestamp) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(earlier.0))
    }

    /// The timestamp `delta` earlier than `self`, saturating at the epoch.
    pub const fn saturating_sub(self, delta: TimeDelta) -> Timestamp {
        Timestamp(self.0.saturating_sub(delta.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0 % 1000;
        let s = self.0 / 1000;
        let (d, s) = (s / 86_400, s % 86_400);
        let (h, s) = (s / 3600, s % 3600);
        let (m, s) = (s / 60, s % 60);
        if ms == 0 {
            write!(f, "{d}d{h:02}:{m:02}:{s:02}")
        } else {
            write!(f, "{d}d{h:02}:{m:02}:{s:02}.{ms:03}")
        }
    }
}

impl Add<TimeDelta> for Timestamp {
    type Output = Timestamp;

    fn add(self, rhs: TimeDelta) -> Timestamp {
        Timestamp(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<TimeDelta> for Timestamp {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = TimeDelta;

    fn sub(self, rhs: Timestamp) -> TimeDelta {
        self.delta_since(rhs)
    }
}

/// A span of simulated time, in milliseconds.
///
/// Used for sliding-window sizes, search bounds and the repair-time cost
/// model.
///
/// # Examples
///
/// ```
/// use ocasta_ttkv::TimeDelta;
///
/// assert_eq!(TimeDelta::from_secs(1).as_millis(), 1000);
/// assert!(TimeDelta::from_days(1) > TimeDelta::from_secs(600));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimeDelta(u64);

impl TimeDelta {
    /// A zero-length span (window size 0 ⇒ identical timestamps only).
    pub const ZERO: TimeDelta = TimeDelta(0);

    /// Creates a span from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        TimeDelta(millis)
    }

    /// Creates a span from whole seconds (saturating, like
    /// [`Timestamp::from_secs`]).
    pub const fn from_secs(secs: u64) -> Self {
        TimeDelta(secs.saturating_mul(1000))
    }

    /// Creates a span from whole minutes (saturating).
    pub const fn from_mins(mins: u64) -> Self {
        TimeDelta(mins.saturating_mul(60_000))
    }

    /// Creates a span from whole days (saturating).
    pub const fn from_days(days: u64) -> Self {
        TimeDelta(days.saturating_mul(86_400_000))
    }

    /// The span in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Sum of two spans.
    pub const fn saturating_add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.saturating_add(rhs.0))
    }

    /// Scales the span by an integer factor (saturating).
    pub const fn scale(self, factor: u64) -> TimeDelta {
        TimeDelta(self.0.saturating_mul(factor))
    }

    /// Formats as `mm:ss` (rounding to the nearest second), the shape used by
    /// the paper's Table IV.
    pub fn as_mmss(self) -> String {
        let secs = (self.0 + 500) / 1000;
        format!("{}:{:02}", secs / 60, secs % 60)
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;

    fn add(self, rhs: TimeDelta) -> TimeDelta {
        self.saturating_add(rhs)
    }
}

impl AddAssign for TimeDelta {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1000) {
            write!(f, "{}s", self.0 / 1000)
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

/// Timestamp precision used when interpreting a trace.
///
/// The paper's deployed loggers recorded at [`TimePrecision::Seconds`];
/// [`TimePrecision::Milliseconds`] models the finer-grained infrastructure
/// the authors suggest would eliminate most oversized clusters (§VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TimePrecision {
    /// Quantise timestamps to whole seconds (paper default).
    #[default]
    Seconds,
    /// Keep full millisecond precision.
    Milliseconds,
}

impl TimePrecision {
    /// Applies this precision to a timestamp.
    pub fn apply(self, t: Timestamp) -> Timestamp {
        match self {
            TimePrecision::Seconds => t.quantize_secs(),
            TimePrecision::Milliseconds => t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_constructors_agree() {
        assert_eq!(Timestamp::from_secs(2), Timestamp::from_millis(2000));
        assert_eq!(Timestamp::from_days(1), Timestamp::from_secs(86_400));
    }

    #[test]
    fn quantize_drops_subsecond_part() {
        let t = Timestamp::from_millis(1999);
        assert_eq!(t.quantize_secs(), Timestamp::from_secs(1));
        assert_eq!(t.quantize_secs().quantize_secs(), t.quantize_secs());
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = Timestamp::from_secs(100);
        let d = TimeDelta::from_millis(1500);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).saturating_sub(d), t);
    }

    #[test]
    fn delta_since_saturates() {
        let early = Timestamp::from_secs(1);
        let late = Timestamp::from_secs(5);
        assert_eq!(early.delta_since(late), TimeDelta::ZERO);
        assert_eq!(late.delta_since(early), TimeDelta::from_secs(4));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Timestamp::from_secs(90_061).to_string(), "1d01:01:01");
        assert_eq!(Timestamp::from_millis(1250).to_string(), "0d00:00:01.250");
        assert_eq!(TimeDelta::from_secs(30).to_string(), "30s");
        assert_eq!(TimeDelta::from_millis(1250).to_string(), "1250ms");
    }

    #[test]
    fn mmss_rounds_to_nearest_second() {
        assert_eq!(TimeDelta::from_millis(29_499).as_mmss(), "0:29");
        assert_eq!(TimeDelta::from_millis(29_500).as_mmss(), "0:30");
        assert_eq!(TimeDelta::from_secs(3661).as_mmss(), "61:01");
    }

    #[test]
    fn absurd_inputs_saturate_instead_of_wrapping() {
        // Regression: these used to use unchecked multiplication, so an
        // absurd day count panicked in debug builds and silently wrapped
        // in release builds.
        let max = Timestamp::from_millis(u64::MAX);
        assert_eq!(Timestamp::from_days(u64::MAX), max);
        assert_eq!(Timestamp::from_secs(u64::MAX), max);
        assert_eq!(TimeDelta::from_days(u64::MAX).as_millis(), u64::MAX);
        assert_eq!(TimeDelta::from_mins(u64::MAX).as_millis(), u64::MAX);
        assert_eq!(
            TimeDelta::from_secs(2).scale(u64::MAX).as_millis(),
            u64::MAX
        );
        assert_eq!(max + TimeDelta::from_days(u64::MAX), max);
        let mut t = max;
        t += TimeDelta::from_secs(1);
        assert_eq!(t, max);
    }

    #[test]
    fn precision_modes() {
        let t = Timestamp::from_millis(1234);
        assert_eq!(TimePrecision::Seconds.apply(t), Timestamp::from_secs(1));
        assert_eq!(TimePrecision::Milliseconds.apply(t), t);
    }
}
