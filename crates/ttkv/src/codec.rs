//! Token codec for [`Value`]s: a compact, lossless, whitespace-free text
//! encoding shared by the TTKV text (v1) persistence format and the trace
//! file format. The default on-disk store format is the binary v2 segment
//! (`persist_v2.rs`), which carries values in the binary tag space instead;
//! this text codec remains the import/export and trace-file encoding.
//!
//! Encoding: `n` (null), `b0`/`b1` (bool), `i<dec>` (int), `f<hex bits>`
//! (float, bit-exact), `s<escaped>` (string; backslash-escapes whitespace),
//! `l<count> <tokens…>` (list). Every token is free of spaces, so token
//! streams split on single spaces.

use crate::value::Value;

/// Escapes a string so it contains no whitespace or backslashes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\s"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

/// Reverses [`escape`].
///
/// # Errors
///
/// Returns a description of the first malformed escape sequence.
pub fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('s') => out.push(' '),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some(other) => return Err(format!("unknown escape \\{other}")),
            None => return Err("dangling backslash".to_owned()),
        }
    }
    Ok(out)
}

/// Appends the token encoding of `value` to `out`.
pub fn encode_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push('n'),
        Value::Bool(b) => out.push_str(if *b { "b1" } else { "b0" }),
        Value::Int(i) => {
            out.push('i');
            out.push_str(&i.to_string());
        }
        Value::Float(f) => {
            out.push('f');
            out.push_str(&format!("{:016x}", f.to_bits()));
        }
        Value::Str(s) => {
            out.push('s');
            out.push_str(&escape(s));
        }
        Value::List(items) => {
            out.push('l');
            out.push_str(&items.len().to_string());
            for item in items {
                out.push(' ');
                encode_value(item, out);
            }
        }
    }
}

/// Encodes `value` as a standalone token string.
pub fn value_to_token(value: &Value) -> String {
    let mut out = String::new();
    encode_value(value, &mut out);
    out
}

/// Decodes one value from a space-split token stream.
///
/// # Errors
///
/// Returns a description of the problem on malformed or truncated input.
pub fn decode_value<'a, I>(tokens: &mut I) -> Result<Value, String>
where
    I: Iterator<Item = &'a str>,
{
    let token = tokens.next().ok_or("missing value token")?;
    if token.is_empty() {
        return Err("empty value token".to_owned());
    }
    let (tag, rest) = token.split_at(1);
    match tag {
        "n" if rest.is_empty() => Ok(Value::Null),
        "b" => match rest {
            "0" => Ok(Value::Bool(false)),
            "1" => Ok(Value::Bool(true)),
            _ => Err(format!("bad bool payload {rest:?}")),
        },
        "i" => rest
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| format!("bad int payload {rest:?}: {e}")),
        "f" => u64::from_str_radix(rest, 16)
            .map(|bits| Value::Float(f64::from_bits(bits)))
            .map_err(|e| format!("bad float payload {rest:?}: {e}")),
        "s" => unescape(rest).map(Value::Str),
        "l" => {
            let count: usize = rest
                .parse()
                .map_err(|e| format!("bad list length {rest:?}: {e}"))?;
            let mut items = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                items.push(decode_value(tokens)?);
            }
            Ok(Value::List(items))
        }
        _ => Err(format!("unknown value tag {token:?}")),
    }
}

/// Decodes a standalone token string produced by [`value_to_token`].
///
/// # Errors
///
/// Returns a description of the problem on malformed input or trailing
/// tokens.
pub fn value_from_token(token: &str) -> Result<Value, String> {
    let mut tokens = token.split(' ');
    let value = decode_value(&mut tokens)?;
    if tokens.next().is_some() {
        return Err("trailing tokens after value".to_owned());
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_tokens_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Float(f64::NAN),
            Value::Float(-0.0),
            Value::Str("hello world\n\\t".to_owned()),
            Value::Str(String::new()),
        ] {
            let token = value_to_token(&v);
            assert!(
                !token.contains(' ') || matches!(v, Value::List(_)),
                "{token}"
            );
            assert_eq!(value_from_token(&token).unwrap(), v);
        }
    }

    #[test]
    fn nested_lists_roundtrip() {
        let v = Value::List(vec![
            Value::Int(1),
            Value::List(vec![Value::Str("a b".into()), Value::Null]),
            Value::Bool(false),
        ]);
        assert_eq!(value_from_token(&value_to_token(&v)).unwrap(), v);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(value_from_token("x9").is_err());
        assert!(value_from_token("").is_err());
        assert!(value_from_token("i1 i2").is_err());
        assert!(value_from_token("l2 i1").is_err());
        assert!(value_from_token("bX").is_err());
        assert!(value_from_token("szz\\q").is_err());
    }
}
