//! Bulk construction of [`Ttkv`] stores.
//!
//! [`Ttkv::write`] keeps every key's history sorted on every insertion — ideal
//! for live recording but wasteful when a large, possibly out-of-order
//! batch is ingested at once (WAL replay, shard ingestion, trace merges):
//! each out-of-order arrival pays a `Vec::insert` shift. [`TtkvBuilder`]
//! instead accumulates mutations unordered and sorts once at
//! [`TtkvBuilder::build`] time, so every per-key insertion is an append.
//!
//! The builder produces *exactly* the store that sequential
//! [`Ttkv::write`]/[`Ttkv::delete`] calls in the same arrival order would
//! produce: the sort is stable on timestamps, and ties therefore preserve
//! arrival order — the same rule `KeyRecord::record_mutation` applies.

use std::collections::BTreeMap;

use crate::record::Version;
use crate::store::Ttkv;
use crate::time::Timestamp;
use crate::value::Value;
use crate::Key;

/// Accumulates accesses and builds a [`Ttkv`] in one sorted pass.
///
/// # Examples
///
/// ```
/// use ocasta_ttkv::{Timestamp, Ttkv, TtkvBuilder, Value};
///
/// let mut builder = TtkvBuilder::new();
/// builder.write(Timestamp::from_secs(9), "app/theme", Value::from("light"));
/// builder.write(Timestamp::from_secs(1), "app/theme", Value::from("dark"));
/// builder.add_reads("app/theme", 40);
///
/// let store = builder.build();
/// assert_eq!(store.value_at("app/theme", Timestamp::from_secs(5)),
///            Some(&Value::from("dark")));
/// assert_eq!(store.stats().reads, 40);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TtkvBuilder {
    mutations: Vec<(Key, Version)>,
    reads: BTreeMap<Key, u64>,
}

impl TtkvBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TtkvBuilder::default()
    }

    /// Creates a builder with space for `mutations` mutations.
    pub fn with_capacity(mutations: usize) -> Self {
        TtkvBuilder {
            mutations: Vec::with_capacity(mutations),
            reads: BTreeMap::new(),
        }
    }

    /// Buffers a write of `value` to `key` at time `t`.
    pub fn write(&mut self, t: Timestamp, key: impl Into<Key>, value: Value) {
        self.mutations.push((key.into(), Version::write(t, value)));
    }

    /// Buffers a deletion of `key` at time `t`.
    pub fn delete(&mut self, t: Timestamp, key: impl Into<Key>) {
        self.mutations.push((key.into(), Version::tombstone(t)));
    }

    /// Buffers `count` read accesses to `key`.
    pub fn add_reads(&mut self, key: impl Into<Key>, count: u64) {
        *self.reads.entry(key.into()).or_insert(0) += count;
    }

    /// Number of buffered mutations.
    pub fn len(&self) -> usize {
        self.mutations.len()
    }

    /// `true` if nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.mutations.is_empty() && self.reads.is_empty()
    }

    /// Moves everything buffered in `other` into `self` (`other`'s arrivals
    /// order after `self`'s on timestamp ties).
    pub fn append(&mut self, other: TtkvBuilder) {
        self.mutations.extend(other.mutations);
        for (key, count) in other.reads {
            *self.reads.entry(key).or_insert(0) += count;
        }
    }

    /// Builds the store: one stable timestamp sort, then in-order insertion.
    pub fn build(self) -> Ttkv {
        let mut store = Ttkv::new();
        self.build_into(&mut store);
        store
    }

    /// Builds the store the buffered state describes **without consuming
    /// the builder** — the read-only-view primitive for live shards.
    ///
    /// A builder that keeps accepting writes (a fleet shard) can be read at
    /// any moment by snapshotting: the result equals [`TtkvBuilder::build`]
    /// on a clone taken now, and the builder's buffered state is untouched.
    /// `ocasta-fleet`'s `ShardedTtkv::snapshot_store` splits the same
    /// operation into clone-under-the-shard-lock + build-outside, so the
    /// O(n log n) sort never runs inside a shard's critical section.
    ///
    /// # Examples
    ///
    /// ```
    /// use ocasta_ttkv::{Timestamp, TtkvBuilder, Value};
    ///
    /// let mut builder = TtkvBuilder::new();
    /// builder.write(Timestamp::from_secs(1), "app/k", Value::from(1));
    /// let view = builder.build_snapshot();
    /// builder.write(Timestamp::from_secs(2), "app/k", Value::from(2));
    /// assert_eq!(view.stats().writes, 1, "the view is pinned");
    /// assert_eq!(builder.build().stats().writes, 2);
    /// ```
    pub fn build_snapshot(&self) -> Ttkv {
        self.clone().build()
    }

    /// Applies the buffered accesses to an existing store.
    ///
    /// Equivalent to replaying the buffered accesses through
    /// [`Ttkv::write`]/[`Ttkv::delete`]/[`Ttkv::add_reads`] in timestamp
    /// order, but with the sort amortised over the whole batch.
    pub fn build_into(self, store: &mut Ttkv) {
        for (key, count) in self.reads {
            store.add_reads(key, count);
        }
        let mut mutations = self.mutations;
        // Stable: ties keep arrival order, matching sequential ingestion.
        mutations.sort_by_key(|(_, version)| version.timestamp);
        for (key, version) in mutations {
            store.apply_version(key, version);
        }
    }
}

impl Extend<(Timestamp, Key, Value)> for TtkvBuilder {
    fn extend<I: IntoIterator<Item = (Timestamp, Key, Value)>>(&mut self, iter: I) {
        for (t, key, value) in iter {
            self.write(t, key, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn builder_matches_sequential_ingestion() {
        // Deliberately out of order, with a timestamp tie on one key.
        let ops: Vec<(u64, &str, i64)> = vec![
            (9, "a/x", 1),
            (3, "a/y", 2),
            (9, "a/x", 3),
            (1, "a/x", 4),
            (3, "b/z", 5),
        ];
        let mut sequential = Ttkv::new();
        let mut builder = TtkvBuilder::new();
        for &(t, key, v) in &ops {
            sequential.write(ts(t), key, Value::from(v));
            builder.write(ts(t), key, Value::from(v));
        }
        sequential.delete(ts(5), "a/y");
        builder.delete(ts(5), "a/y");
        sequential.add_reads("a/x", 7);
        builder.add_reads("a/x", 7);
        assert_eq!(builder.build(), sequential);
    }

    #[test]
    fn append_concatenates_arrival_order() {
        let mut first = TtkvBuilder::new();
        first.write(ts(1), "k", Value::from("first"));
        let mut second = TtkvBuilder::new();
        second.write(ts(1), "k", Value::from("second"));
        second.add_reads("k", 2);
        first.append(second);
        assert_eq!(first.len(), 2);
        let store = first.build();
        // Tie at t=1: the later arrival (from `second`) wins.
        assert_eq!(store.current("k"), Some(&Value::from("second")));
        assert_eq!(store.stats().reads, 2);
    }

    #[test]
    fn build_into_layers_onto_existing_store() {
        let mut store = Ttkv::new();
        store.write(ts(1), "k", Value::from(1));
        let mut builder = TtkvBuilder::new();
        builder.write(ts(2), "k", Value::from(2));
        builder.build_into(&mut store);
        assert_eq!(store.record("k").unwrap().writes, 2);
        assert_eq!(store.current("k"), Some(&Value::from(2)));
    }

    #[test]
    fn empty_builder_builds_empty_store() {
        assert!(TtkvBuilder::new().is_empty());
        assert!(TtkvBuilder::new().build().is_empty());
    }
}
