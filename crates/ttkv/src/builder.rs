//! Bulk construction of [`Ttkv`] stores.
//!
//! [`Ttkv::write`] keeps every key's history sorted on every insertion — ideal
//! for live recording but wasteful when a large, possibly out-of-order
//! batch is ingested at once (WAL replay, shard ingestion, trace merges):
//! each out-of-order arrival pays a `Vec::insert` shift. [`TtkvBuilder`]
//! instead accumulates mutations unordered and sorts once at
//! [`TtkvBuilder::build`] time, so every per-key insertion is an append.
//!
//! The builder produces *exactly* the store that sequential
//! [`Ttkv::write`]/[`Ttkv::delete`] calls in the same arrival order would
//! produce: the sort is stable on timestamps, and ties therefore preserve
//! arrival order — the same rule `KeyRecord::record_mutation` applies.

use std::collections::BTreeMap;

use crate::record::Version;
use crate::store::Ttkv;
use crate::time::Timestamp;
use crate::value::Value;
use crate::Key;

/// Accumulates accesses and builds a [`Ttkv`] in one sorted pass.
///
/// # Examples
///
/// ```
/// use ocasta_ttkv::{Timestamp, Ttkv, TtkvBuilder, Value};
///
/// let mut builder = TtkvBuilder::new();
/// builder.write(Timestamp::from_secs(9), "app/theme", Value::from("light"));
/// builder.write(Timestamp::from_secs(1), "app/theme", Value::from("dark"));
/// builder.add_reads("app/theme", 40);
///
/// let store = builder.build();
/// assert_eq!(store.value_at("app/theme", Timestamp::from_secs(5)),
///            Some(&Value::from("dark")));
/// assert_eq!(store.stats().reads, 40);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TtkvBuilder {
    /// A pre-built store the buffered tail layers onto. This is what lets a
    /// live fleet shard be pruned in place: fold the tail into the base,
    /// prune the base, and keep appending — see
    /// [`TtkvBuilder::from_store`].
    base: Ttkv,
    mutations: Vec<(Key, Version)>,
    reads: BTreeMap<Key, u64>,
    /// Running maximum over the base store and the buffered tail, so
    /// [`TtkvBuilder::last_time`] is O(1) — it is polled under the fleet
    /// shard stripe locks by the retention sweeper.
    max_time: Option<Timestamp>,
}

impl TtkvBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TtkvBuilder::default()
    }

    /// Creates a builder with space for `mutations` mutations.
    pub fn with_capacity(mutations: usize) -> Self {
        TtkvBuilder {
            base: Ttkv::new(),
            mutations: Vec::with_capacity(mutations),
            reads: BTreeMap::new(),
            max_time: None,
        }
    }

    /// Creates a builder whose output layers future accesses onto an
    /// already-built store.
    ///
    /// `builder.build()` then equals `store` extended by the buffered
    /// accesses in arrival order — exactly as if the store's own history
    /// had been buffered first. The fleet tier uses this to prune a live
    /// shard atomically: take the builder out of the stripe lock slot,
    /// [`TtkvBuilder::build`] it, [`Ttkv::prune_before`] the result, and
    /// put `TtkvBuilder::from_store(pruned)` back — all under the lock.
    pub fn from_store(store: Ttkv) -> Self {
        TtkvBuilder {
            max_time: store.last_mutation_time(),
            base: store,
            mutations: Vec::new(),
            reads: BTreeMap::new(),
        }
    }

    /// Buffers a write of `value` to `key` at time `t`.
    pub fn write(&mut self, t: Timestamp, key: impl Into<Key>, value: Value) {
        self.max_time = self.max_time.max(Some(t));
        self.mutations.push((key.into(), Version::write(t, value)));
    }

    /// Buffers a deletion of `key` at time `t`.
    pub fn delete(&mut self, t: Timestamp, key: impl Into<Key>) {
        self.max_time = self.max_time.max(Some(t));
        self.mutations.push((key.into(), Version::tombstone(t)));
    }

    /// The latest timestamp across the base store and the buffered tail —
    /// what a retention sweep measures "now" against. O(1): the maximum is
    /// maintained on every buffered mutation, because this is polled under
    /// the fleet shard stripe locks.
    pub fn last_time(&self) -> Option<Timestamp> {
        self.max_time
    }

    /// Buffers `count` read accesses to `key`.
    pub fn add_reads(&mut self, key: impl Into<Key>, count: u64) {
        *self.reads.entry(key.into()).or_insert(0) += count;
    }

    /// Number of buffered tail mutations (the base store's history is
    /// already built and not counted).
    pub fn len(&self) -> usize {
        self.mutations.len()
    }

    /// `true` if nothing has been buffered and the base store is empty.
    pub fn is_empty(&self) -> bool {
        self.mutations.is_empty() && self.reads.is_empty() && self.base.is_empty()
    }

    /// Moves everything buffered in `other` into `self` (`other`'s arrivals
    /// order after `self`'s on timestamp ties). Base stores merge by
    /// absorption.
    pub fn append(&mut self, other: TtkvBuilder) {
        self.max_time = self.max_time.max(other.max_time);
        self.base.absorb(other.base);
        self.mutations.extend(other.mutations);
        for (key, count) in other.reads {
            *self.reads.entry(key).or_insert(0) += count;
        }
    }

    /// Builds the store: one stable timestamp sort of the tail, applied in
    /// order onto the base store.
    pub fn build(self) -> Ttkv {
        let TtkvBuilder {
            base,
            mutations,
            reads,
            max_time: _,
        } = self;
        let mut store = base;
        TtkvBuilder::apply_tail(&mut store, mutations, reads);
        store
    }

    /// Builds the store the buffered state describes **without consuming
    /// the builder** — the read-only-view primitive for live shards.
    ///
    /// A builder that keeps accepting writes (a fleet shard) can be read at
    /// any moment by snapshotting: the result equals [`TtkvBuilder::build`]
    /// on a clone taken now, and the builder's buffered state is untouched.
    /// `ocasta-fleet`'s `ShardedTtkv::snapshot_store` splits the same
    /// operation into clone-under-the-shard-lock + build-outside, so the
    /// O(n log n) sort never runs inside a shard's critical section.
    ///
    /// # Examples
    ///
    /// ```
    /// use ocasta_ttkv::{Timestamp, TtkvBuilder, Value};
    ///
    /// let mut builder = TtkvBuilder::new();
    /// builder.write(Timestamp::from_secs(1), "app/k", Value::from(1));
    /// let view = builder.build_snapshot();
    /// builder.write(Timestamp::from_secs(2), "app/k", Value::from(2));
    /// assert_eq!(view.stats().writes, 1, "the view is pinned");
    /// assert_eq!(builder.build().stats().writes, 2);
    /// ```
    pub fn build_snapshot(&self) -> Ttkv {
        self.clone().build()
    }

    /// Applies the base store and the buffered accesses to an existing
    /// store.
    ///
    /// Equivalent to replaying the buffered accesses through
    /// [`Ttkv::write`]/[`Ttkv::delete`]/[`Ttkv::add_reads`] in timestamp
    /// order, but with the sort amortised over the whole batch.
    pub fn build_into(self, store: &mut Ttkv) {
        let TtkvBuilder {
            base,
            mutations,
            reads,
            max_time: _,
        } = self;
        store.absorb(base);
        TtkvBuilder::apply_tail(store, mutations, reads);
    }

    /// The shared tail pass: reads, then one stable timestamp sort (ties
    /// keep arrival order, matching sequential ingestion), then in-order
    /// insertion.
    fn apply_tail(store: &mut Ttkv, mutations: Vec<(Key, Version)>, reads: BTreeMap<Key, u64>) {
        for (key, count) in reads {
            store.add_reads(key, count);
        }
        let mut mutations = mutations;
        mutations.sort_by_key(|(_, version)| version.timestamp);
        for (key, version) in mutations {
            store.apply_version(key, version);
        }
    }
}

impl Extend<(Timestamp, Key, Value)> for TtkvBuilder {
    fn extend<I: IntoIterator<Item = (Timestamp, Key, Value)>>(&mut self, iter: I) {
        for (t, key, value) in iter {
            self.write(t, key, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn builder_matches_sequential_ingestion() {
        // Deliberately out of order, with a timestamp tie on one key.
        let ops: Vec<(u64, &str, i64)> = vec![
            (9, "a/x", 1),
            (3, "a/y", 2),
            (9, "a/x", 3),
            (1, "a/x", 4),
            (3, "b/z", 5),
        ];
        let mut sequential = Ttkv::new();
        let mut builder = TtkvBuilder::new();
        for &(t, key, v) in &ops {
            sequential.write(ts(t), key, Value::from(v));
            builder.write(ts(t), key, Value::from(v));
        }
        sequential.delete(ts(5), "a/y");
        builder.delete(ts(5), "a/y");
        sequential.add_reads("a/x", 7);
        builder.add_reads("a/x", 7);
        assert_eq!(builder.build(), sequential);
    }

    #[test]
    fn append_concatenates_arrival_order() {
        let mut first = TtkvBuilder::new();
        first.write(ts(1), "k", Value::from("first"));
        let mut second = TtkvBuilder::new();
        second.write(ts(1), "k", Value::from("second"));
        second.add_reads("k", 2);
        first.append(second);
        assert_eq!(first.len(), 2);
        let store = first.build();
        // Tie at t=1: the later arrival (from `second`) wins.
        assert_eq!(store.current("k"), Some(&Value::from("second")));
        assert_eq!(store.stats().reads, 2);
    }

    #[test]
    fn build_into_layers_onto_existing_store() {
        let mut store = Ttkv::new();
        store.write(ts(1), "k", Value::from(1));
        let mut builder = TtkvBuilder::new();
        builder.write(ts(2), "k", Value::from(2));
        builder.build_into(&mut store);
        assert_eq!(store.record("k").unwrap().writes, 2);
        assert_eq!(store.current("k"), Some(&Value::from(2)));
    }

    #[test]
    fn empty_builder_builds_empty_store() {
        assert!(TtkvBuilder::new().is_empty());
        assert!(TtkvBuilder::new().build().is_empty());
    }

    #[test]
    fn from_store_layers_the_tail_onto_the_base() {
        // Reference: everything buffered through one builder.
        let mut whole = TtkvBuilder::new();
        whole.write(ts(1), "k", Value::from(1));
        whole.write(ts(5), "k", Value::from(5));
        whole.add_reads("k", 3);

        // Same accesses split into a pre-built base plus a live tail.
        let mut head = TtkvBuilder::new();
        head.write(ts(1), "k", Value::from(1));
        let mut resumed = TtkvBuilder::from_store(head.build());
        assert!(!resumed.is_empty(), "base store counts");
        resumed.write(ts(5), "k", Value::from(5));
        resumed.add_reads("k", 3);
        assert_eq!(resumed.len(), 1, "len counts the tail only");
        assert_eq!(resumed.last_time(), Some(ts(5)));
        assert_eq!(resumed.build(), whole.build());
    }

    #[test]
    fn from_store_keeps_prune_state_through_rebuilds() {
        let mut store = Ttkv::new();
        store.write(ts(1), "k", Value::from("old"));
        store.write(ts(9), "k", Value::from("new"));
        store.prune_before(ts(5));
        let mut builder = TtkvBuilder::from_store(store);
        assert_eq!(builder.last_time(), Some(ts(9)));
        builder.write(ts(12), "k", Value::from("newer"));
        let rebuilt = builder.build();
        assert_eq!(rebuilt.value_at("k", ts(6)), Some(&Value::from("old")));
        assert_eq!(rebuilt.current("k"), Some(&Value::from("newer")));
        assert_eq!(rebuilt.stats().writes, 3, "lifetime counters carried");
    }
}
