//! Bulk construction of [`Ttkv`] stores.
//!
//! [`Ttkv::write`] keeps every key's history sorted on every insertion — ideal
//! for live recording but wasteful when a large, possibly out-of-order
//! batch is ingested at once (WAL replay, shard ingestion, trace merges):
//! each out-of-order arrival pays a `Vec::insert` shift. [`TtkvBuilder`]
//! instead accumulates mutations unordered and sorts once at
//! [`TtkvBuilder::build`] time, so every per-key insertion is an append.
//!
//! The builder produces *exactly* the store that sequential
//! [`Ttkv::write`]/[`Ttkv::delete`] calls in the same arrival order would
//! produce: the sort is stable on timestamps, and ties therefore preserve
//! arrival order — the same rule `KeyRecord::record_mutation` applies.

use std::collections::{BTreeMap, BTreeSet};

use crate::record::Version;
use crate::stats::PruneStats;
use crate::store::Ttkv;
use crate::time::Timestamp;
use crate::value::Value;
use crate::Key;

/// Accumulates accesses and builds a [`Ttkv`] in one sorted pass.
///
/// # Examples
///
/// ```
/// use ocasta_ttkv::{Timestamp, Ttkv, TtkvBuilder, Value};
///
/// let mut builder = TtkvBuilder::new();
/// builder.write(Timestamp::from_secs(9), "app/theme", Value::from("light"));
/// builder.write(Timestamp::from_secs(1), "app/theme", Value::from("dark"));
/// builder.add_reads("app/theme", 40);
///
/// let store = builder.build();
/// assert_eq!(store.value_at("app/theme", Timestamp::from_secs(5)),
///            Some(&Value::from("dark")));
/// assert_eq!(store.stats().reads, 40);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TtkvBuilder {
    /// A pre-built store the buffered tail layers onto. This is what lets a
    /// live fleet shard be pruned in place: fold the tail into the base,
    /// prune the base, and keep appending — see
    /// [`TtkvBuilder::from_store`].
    base: Ttkv,
    mutations: Vec<(Key, Version)>,
    reads: BTreeMap<Key, u64>,
    /// Running maximum over the base store and the buffered tail, so
    /// [`TtkvBuilder::last_time`] is O(1) — it is polled under the fleet
    /// shard stripe locks by the retention sweeper.
    max_time: Option<Timestamp>,
    /// Conservative earliest-history index over the **base** store: every
    /// base record with a non-empty history has at least one entry at or
    /// below its earliest surviving mutation timestamp. Entries may be
    /// stale (a record's earliest moved and the old entry remains until
    /// the horizon passes it; [`TtkvBuilder::append`] unions both sides'
    /// entries verbatim); [`TtkvBuilder::prune_before`] re-checks each
    /// popped record, so staleness costs one lookup, never correctness —
    /// and the set representation makes re-registering an unchanged
    /// record a no-op, so a hot key swept every interval holds exactly
    /// one entry, not one per sweep. This is what lets a sweep find every
    /// record it can reclaim from *without scanning the live store* —
    /// the O(reclaimed) half of the incremental-prune contract.
    prune_index: BTreeSet<(Timestamp, Key)>,
}

impl TtkvBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TtkvBuilder::default()
    }

    /// Creates a builder with space for `mutations` mutations.
    pub fn with_capacity(mutations: usize) -> Self {
        TtkvBuilder {
            base: Ttkv::new(),
            mutations: Vec::with_capacity(mutations),
            reads: BTreeMap::new(),
            max_time: None,
            prune_index: BTreeSet::new(),
        }
    }

    /// Creates a builder whose output layers future accesses onto an
    /// already-built store.
    ///
    /// `builder.build()` then equals `store` extended by the buffered
    /// accesses in arrival order — exactly as if the store's own history
    /// had been buffered first. The fleet tier used this to prune a live
    /// shard by rebuilding it; [`TtkvBuilder::prune_before`] now prunes in
    /// place, and `from_store` is the setup path that seeds the earliest-
    /// history index with one O(live) scan so every later sweep can be
    /// O(reclaimed).
    pub fn from_store(store: Ttkv) -> Self {
        let mut prune_index: BTreeSet<(Timestamp, Key)> = BTreeSet::new();
        for (key, record) in store.iter() {
            if let Some(first) = record.history().first() {
                prune_index.insert((first.timestamp, key.clone()));
            }
        }
        TtkvBuilder {
            max_time: store.last_mutation_time(),
            base: store,
            mutations: Vec::new(),
            reads: BTreeMap::new(),
            prune_index,
        }
    }

    /// Buffers a write of `value` to `key` at time `t`.
    pub fn write(&mut self, t: Timestamp, key: impl Into<Key>, value: Value) {
        self.max_time = self.max_time.max(Some(t));
        self.mutations.push((key.into(), Version::write(t, value)));
    }

    /// Buffers a deletion of `key` at time `t`.
    pub fn delete(&mut self, t: Timestamp, key: impl Into<Key>) {
        self.max_time = self.max_time.max(Some(t));
        self.mutations.push((key.into(), Version::tombstone(t)));
    }

    /// The latest timestamp across the base store and the buffered tail —
    /// what a retention sweep measures "now" against. O(1): the maximum is
    /// maintained on every buffered mutation, because this is polled under
    /// the fleet shard stripe locks.
    pub fn last_time(&self) -> Option<Timestamp> {
        self.max_time
    }

    /// Buffers `count` read accesses to `key`.
    pub fn add_reads(&mut self, key: impl Into<Key>, count: u64) {
        *self.reads.entry(key.into()).or_insert(0) += count;
    }

    /// Number of buffered tail mutations (the base store's history is
    /// already built and not counted).
    pub fn len(&self) -> usize {
        self.mutations.len()
    }

    /// `true` if nothing has been buffered and the base store is empty.
    pub fn is_empty(&self) -> bool {
        self.mutations.is_empty() && self.reads.is_empty() && self.base.is_empty()
    }

    /// Moves everything buffered in `other` into `self` (`other`'s arrivals
    /// order after `self`'s on timestamp ties). Base stores merge by
    /// absorption.
    pub fn append(&mut self, other: TtkvBuilder) {
        self.max_time = self.max_time.max(other.max_time);
        self.base.absorb(other.base);
        self.mutations.extend(other.mutations);
        for (key, count) in other.reads {
            *self.reads.entry(key).or_insert(0) += count;
        }
        // Union of the two conservative indexes stays conservative: any
        // history in the merged base came from one side, and that side's
        // entry sits at or below its earliest timestamp.
        self.prune_index.extend(other.prune_index);
    }

    /// Prunes the builder **in place** to `horizon`, so that a later
    /// [`TtkvBuilder::build`] equals `build().prune_before(horizon)` on
    /// the pre-prune builder — without ever rebuilding the store.
    ///
    /// Cost is O(tail since the last prune + records touched + versions
    /// reclaimed), not O(live state): the buffered tail (everything that
    /// arrived since the previous sweep) is folded into the base with one
    /// delta-sized sort, and then only the records the earliest-history
    /// index proves have pre-horizon versions are pruned, each via
    /// [`crate::KeyRecord::prune_in_place`]. This is the primitive behind
    /// `ocasta-fleet`'s `ShardedTtkv::prune_before`, which holds each
    /// stripe lock for exactly this long (`DESIGN.md §5.10`).
    ///
    /// Folding the tail preserves build equivalence exactly: `build()`
    /// applies reads first (they are timestamp-free counters and commute),
    /// then one stable timestamp sort of the whole tail — and a stable
    /// sort of "everything so far" followed later by a stable sort of
    /// "everything after" concatenates to the same order, because ties
    /// never cross a fold boundary (both sides of a tie are in the same
    /// fold). `PruneStats` equal the rebuild path's too: records the index
    /// skips would have returned zero stats.
    pub fn prune_before(&mut self, horizon: Timestamp) -> PruneStats {
        // Fold the whole buffered tail into the base (the delta since the
        // last fold), leaving the tail empty for the next inter-sweep
        // window.
        let mutations = std::mem::take(&mut self.mutations);
        let reads = std::mem::take(&mut self.reads);
        let mut touched: BTreeSet<Key> = mutations.iter().map(|(k, _)| k.clone()).collect();
        TtkvBuilder::apply_tail(&mut self.base, mutations, reads);

        // Every record with a version strictly before the horizon has an
        // index entry strictly before it (conservative invariant): the
        // split boundary (horizon, "") sits below every same-timestamp
        // key, so exactly the entries with timestamp < horizon expire.
        let mut expired = self.prune_index.split_off(&(horizon, Key::new("")));
        std::mem::swap(&mut self.prune_index, &mut expired);
        touched.extend(expired.into_iter().map(|(_, key)| key));

        let mut stats = PruneStats::default();
        for key in touched {
            let Some(record) = self.base.record_mut(key.as_str()) else {
                continue;
            };
            stats.absorb(record.prune_in_place(horizon));
            if let Some(first) = record.history().first() {
                self.prune_index.insert((first.timestamp, key));
            }
        }
        stats
    }

    /// Collects dead counter-only shells from the builder, so that a later
    /// [`TtkvBuilder::build`] equals `build().gc_dead_shells()` on the
    /// pre-GC builder — see [`Ttkv::gc_dead_shells`]. Returns how many
    /// keys were collected.
    ///
    /// The buffered tail is folded into the base first: a tail mutation can
    /// resurrect a would-be shell (the rewritten key keeps its counters),
    /// and folding makes that visible before the retain pass. Stale
    /// `prune_index` entries for collected keys are tolerated by
    /// construction — [`TtkvBuilder::prune_before`] re-checks every record
    /// it pops, and a missing record is skipped.
    pub fn gc_dead_shells(&mut self) -> u64 {
        let mutations = std::mem::take(&mut self.mutations);
        let reads = std::mem::take(&mut self.reads);
        TtkvBuilder::apply_tail(&mut self.base, mutations, reads);
        self.base.gc_dead_shells()
    }

    /// Builds the store: one stable timestamp sort of the tail, applied in
    /// order onto the base store.
    pub fn build(self) -> Ttkv {
        let TtkvBuilder {
            base,
            mutations,
            reads,
            max_time: _,
            prune_index: _,
        } = self;
        let mut store = base;
        TtkvBuilder::apply_tail(&mut store, mutations, reads);
        store
    }

    /// Builds the store the buffered state describes **without consuming
    /// the builder** — the read-only-view primitive for live shards.
    ///
    /// A builder that keeps accepting writes (a fleet shard) can be read at
    /// any moment by snapshotting: the result equals [`TtkvBuilder::build`]
    /// on a clone taken now, and the builder's buffered state is untouched.
    /// `ocasta-fleet`'s epoch pins use the same split for a shard's
    /// mutable tail — copy-under-the-shard-lock + build-outside — so the
    /// O(n log n) sort never runs inside a shard's critical section.
    ///
    /// # Examples
    ///
    /// ```
    /// use ocasta_ttkv::{Timestamp, TtkvBuilder, Value};
    ///
    /// let mut builder = TtkvBuilder::new();
    /// builder.write(Timestamp::from_secs(1), "app/k", Value::from(1));
    /// let view = builder.build_snapshot();
    /// builder.write(Timestamp::from_secs(2), "app/k", Value::from(2));
    /// assert_eq!(view.stats().writes, 1, "the view is pinned");
    /// assert_eq!(builder.build().stats().writes, 2);
    /// ```
    pub fn build_snapshot(&self) -> Ttkv {
        self.clone().build()
    }

    /// Applies the base store and the buffered accesses to an existing
    /// store.
    ///
    /// Equivalent to replaying the buffered accesses through
    /// [`Ttkv::write`]/[`Ttkv::delete`]/[`Ttkv::add_reads`] in timestamp
    /// order, but with the sort amortised over the whole batch.
    pub fn build_into(self, store: &mut Ttkv) {
        let TtkvBuilder {
            base,
            mutations,
            reads,
            max_time: _,
            prune_index: _,
        } = self;
        store.absorb(base);
        TtkvBuilder::apply_tail(store, mutations, reads);
    }

    /// The shared tail pass: reads, then one stable timestamp sort (ties
    /// keep arrival order, matching sequential ingestion), then in-order
    /// insertion.
    fn apply_tail(store: &mut Ttkv, mutations: Vec<(Key, Version)>, reads: BTreeMap<Key, u64>) {
        for (key, count) in reads {
            store.add_reads(key, count);
        }
        let mut mutations = mutations;
        mutations.sort_by_key(|(_, version)| version.timestamp);
        for (key, version) in mutations {
            store.apply_version(key, version);
        }
    }
}

impl Extend<(Timestamp, Key, Value)> for TtkvBuilder {
    fn extend<I: IntoIterator<Item = (Timestamp, Key, Value)>>(&mut self, iter: I) {
        for (t, key, value) in iter {
            self.write(t, key, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn builder_matches_sequential_ingestion() {
        // Deliberately out of order, with a timestamp tie on one key.
        let ops: Vec<(u64, &str, i64)> = vec![
            (9, "a/x", 1),
            (3, "a/y", 2),
            (9, "a/x", 3),
            (1, "a/x", 4),
            (3, "b/z", 5),
        ];
        let mut sequential = Ttkv::new();
        let mut builder = TtkvBuilder::new();
        for &(t, key, v) in &ops {
            sequential.write(ts(t), key, Value::from(v));
            builder.write(ts(t), key, Value::from(v));
        }
        sequential.delete(ts(5), "a/y");
        builder.delete(ts(5), "a/y");
        sequential.add_reads("a/x", 7);
        builder.add_reads("a/x", 7);
        assert_eq!(builder.build(), sequential);
    }

    #[test]
    fn append_concatenates_arrival_order() {
        let mut first = TtkvBuilder::new();
        first.write(ts(1), "k", Value::from("first"));
        let mut second = TtkvBuilder::new();
        second.write(ts(1), "k", Value::from("second"));
        second.add_reads("k", 2);
        first.append(second);
        assert_eq!(first.len(), 2);
        let store = first.build();
        // Tie at t=1: the later arrival (from `second`) wins.
        assert_eq!(store.current("k"), Some(&Value::from("second")));
        assert_eq!(store.stats().reads, 2);
    }

    #[test]
    fn build_into_layers_onto_existing_store() {
        let mut store = Ttkv::new();
        store.write(ts(1), "k", Value::from(1));
        let mut builder = TtkvBuilder::new();
        builder.write(ts(2), "k", Value::from(2));
        builder.build_into(&mut store);
        assert_eq!(store.record("k").unwrap().writes, 2);
        assert_eq!(store.current("k"), Some(&Value::from(2)));
    }

    #[test]
    fn empty_builder_builds_empty_store() {
        assert!(TtkvBuilder::new().is_empty());
        assert!(TtkvBuilder::new().build().is_empty());
    }

    #[test]
    fn from_store_layers_the_tail_onto_the_base() {
        // Reference: everything buffered through one builder.
        let mut whole = TtkvBuilder::new();
        whole.write(ts(1), "k", Value::from(1));
        whole.write(ts(5), "k", Value::from(5));
        whole.add_reads("k", 3);

        // Same accesses split into a pre-built base plus a live tail.
        let mut head = TtkvBuilder::new();
        head.write(ts(1), "k", Value::from(1));
        let mut resumed = TtkvBuilder::from_store(head.build());
        assert!(!resumed.is_empty(), "base store counts");
        resumed.write(ts(5), "k", Value::from(5));
        resumed.add_reads("k", 3);
        assert_eq!(resumed.len(), 1, "len counts the tail only");
        assert_eq!(resumed.last_time(), Some(ts(5)));
        assert_eq!(resumed.build(), whole.build());
    }

    /// The old rebuild-based reclamation path, kept as the reference the
    /// incremental path must equal: build the whole store, prune it, wrap
    /// it back up.
    fn rebuild_prune(builder: TtkvBuilder, horizon: Timestamp) -> (TtkvBuilder, PruneStats) {
        let mut store = builder.build();
        let stats = store.prune_before(horizon);
        (TtkvBuilder::from_store(store), stats)
    }

    #[test]
    fn incremental_prune_equals_rebuild_prune() {
        // Base + out-of-order tail, pruned mid-stream, appended to, pruned
        // again: the in-place path must match the rebuild path in both the
        // final store and every sweep's stats.
        let mut base = Ttkv::new();
        base.write(ts(1), "k/a", Value::from(1));
        base.write(ts(4), "k/a", Value::from(4));
        base.write(ts(2), "k/b", Value::from(2));
        base.delete(ts(6), "k/b");
        let mut incremental = TtkvBuilder::from_store(base.clone());
        let mut rebuild = TtkvBuilder::from_store(base);
        for b in [&mut incremental, &mut rebuild] {
            b.write(ts(9), "k/a", Value::from(9));
            b.write(ts(3), "k/c", Value::from(3)); // straggler below h1
            b.add_reads("k/b", 5);
        }

        let stats1 = incremental.prune_before(ts(5));
        let (mut rebuild, rebuild_stats1) = rebuild_prune(rebuild, ts(5));
        assert_eq!(stats1, rebuild_stats1);

        for b in [&mut incremental, &mut rebuild] {
            b.write(ts(7), "k/b", Value::from(7));
            b.write(ts(0), "k/a", Value::from(0)); // straggler below both
        }
        let stats2 = incremental.prune_before(ts(8));
        let (rebuild, rebuild_stats2) = rebuild_prune(rebuild, ts(8));
        assert_eq!(stats2, rebuild_stats2);

        assert_eq!(incremental.last_time(), rebuild.last_time());
        assert_eq!(incremental.build(), rebuild.build());
    }

    #[test]
    fn incremental_prune_then_build_equals_build_then_prune() {
        let mut buffered = TtkvBuilder::new();
        buffered.write(ts(1), "k", Value::from(1));
        buffered.write(ts(5), "k", Value::from(5));
        buffered.delete(ts(2), "gone");
        buffered.add_reads("ro", 3);
        let mut direct = buffered.clone().build();
        let direct_stats = direct.prune_before(ts(4));
        let stats = buffered.prune_before(ts(4));
        assert_eq!(stats, direct_stats);
        assert_eq!(buffered.build(), direct);
    }

    #[test]
    fn prune_at_a_baseline_timestamp_is_exact() {
        // A second sweep landing exactly on the collapsed baseline's own
        // timestamp must neither drop the baseline nor double-count it.
        let mut builder = TtkvBuilder::new();
        builder.write(ts(2), "k", Value::from("old"));
        builder.write(ts(7), "k", Value::from("new"));
        builder.prune_before(ts(5)); // baseline now at ts(2)
        let reference = builder.clone().build();
        let stats = builder.prune_before(ts(2));
        assert!(stats.is_noop(), "nothing strictly before the baseline");
        assert_eq!(builder.clone().build(), reference);
        // One tick past the baseline is still a no-op on state: the
        // baseline is already the collapsed pre-horizon version.
        builder.prune_before(ts(3));
        assert_eq!(builder.build(), reference);
    }

    #[test]
    fn repeated_incremental_prunes_stay_cheap_and_exact() {
        // Staged sweeps through the in-place path equal one direct prune
        // of the full history at the final horizon — the prune/absorb
        // commutation, exercised entirely through the builder.
        let mut staged = TtkvBuilder::new();
        let mut all = TtkvBuilder::new();
        for round in 0u64..6 {
            for i in 0..10u64 {
                let t = ts(round * 10 + i);
                let key = format!("k/{}", i % 3);
                staged.write(t, key.clone(), Value::from(i as i64));
                all.write(t, key, Value::from(i as i64));
            }
            staged.prune_before(ts(round * 10));
        }
        staged.prune_before(ts(50));
        let mut direct = all.build();
        direct.prune_before(ts(50));
        assert_eq!(staged.build(), direct);
    }

    #[test]
    fn index_does_not_grow_with_sweep_count() {
        // Regression: a hot key re-registered identically on every sweep
        // used to push a duplicate index entry per sweep; the set
        // representation makes re-registration a no-op.
        let mut builder = TtkvBuilder::new();
        for round in 0u64..50 {
            builder.write(ts(round + 100), "hot", Value::from(round as i64));
            builder.write(ts(round + 100), "hot2", Value::from(round as i64));
            builder.prune_before(ts(round));
        }
        // Two live keys, each with at most its current entry plus stale
        // ones the advancing horizon keeps consuming — never O(sweeps).
        assert!(
            builder.prune_index.len() <= 4,
            "index accumulated {} entries",
            builder.prune_index.len()
        );
        let mut direct = builder.clone().build();
        let incremental = builder.build();
        direct.prune_before(ts(49));
        // (Equal already: the last sweep pruned at 49.)
        assert_eq!(incremental, direct);
    }

    #[test]
    fn from_store_keeps_prune_state_through_rebuilds() {
        let mut store = Ttkv::new();
        store.write(ts(1), "k", Value::from("old"));
        store.write(ts(9), "k", Value::from("new"));
        store.prune_before(ts(5));
        let mut builder = TtkvBuilder::from_store(store);
        assert_eq!(builder.last_time(), Some(ts(9)));
        builder.write(ts(12), "k", Value::from("newer"));
        let rebuilt = builder.build();
        assert_eq!(rebuilt.value_at("k", ts(6)), Some(&Value::from("old")));
        assert_eq!(rebuilt.current("k"), Some(&Value::from("newer")));
        assert_eq!(rebuilt.stats().writes, 3, "lifetime counters carried");
    }
}
