//! Error types for TTKV persistence.

use std::fmt;
use std::io;

/// Error returned by TTKV persistence operations.
#[derive(Debug)]
pub enum TtkvError {
    /// The underlying reader or writer failed.
    Io(io::Error),
    /// The persisted text (v1) representation was malformed.
    Parse {
        /// 1-based line number where parsing failed.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The persisted binary (v2) representation was malformed.
    Corrupt {
        /// Byte offset into the segment where decoding failed.
        offset: usize,
        /// Description of the problem.
        message: String,
    },
}

impl TtkvError {
    pub(crate) fn parse(line: usize, message: impl Into<String>) -> Self {
        TtkvError::Parse {
            line,
            message: message.into(),
        }
    }

    pub(crate) fn corrupt(offset: usize, message: impl Into<String>) -> Self {
        TtkvError::Corrupt {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for TtkvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TtkvError::Io(e) => write!(f, "i/o error: {e}"),
            TtkvError::Parse { line, message } => {
                write!(f, "malformed ttkv data at line {line}: {message}")
            }
            TtkvError::Corrupt { offset, message } => {
                write!(f, "corrupt ttkv segment at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for TtkvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TtkvError::Io(e) => Some(e),
            TtkvError::Parse { .. } | TtkvError::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for TtkvError {
    fn from(e: io::Error) -> Self {
        TtkvError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_is_informative() {
        let e = TtkvError::parse(3, "bad token");
        assert_eq!(e.to_string(), "malformed ttkv data at line 3: bad token");
        let c = TtkvError::corrupt(17, "checksum mismatch");
        assert_eq!(
            c.to_string(),
            "corrupt ttkv segment at byte 17: checksum mismatch"
        );
        let io_err = TtkvError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(io_err.to_string().contains("gone"));
        assert!(io_err.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TtkvError>();
    }
}
