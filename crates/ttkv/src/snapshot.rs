//! Flat configuration snapshots.

use std::collections::BTreeMap;

use crate::value::Value;
use crate::Key;

/// A flat, point-in-time view of an application's live configuration.
///
/// This is what the repair tool's sandbox operates on: a copy of the live
/// key → value map that cluster rollbacks are applied to before running a
/// trial, so that trial executions "leave no persistent changes" (§III-B).
///
/// # Examples
///
/// ```
/// use ocasta_ttkv::{ConfigState, Key, Value};
///
/// let mut state = ConfigState::new();
/// state.set(Key::new("mail/mark_seen"), Value::from(true));
/// let mut sandbox = state.clone();
/// sandbox.remove("mail/mark_seen");
/// assert!(state.get("mail/mark_seen").is_some());   // original untouched
/// assert!(sandbox.get("mail/mark_seen").is_none());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConfigState {
    values: BTreeMap<Key, Value>,
}

impl ConfigState {
    /// Creates an empty configuration.
    pub fn new() -> Self {
        ConfigState::default()
    }

    /// Number of live settings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if no setting is live.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value of `key`, if live.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.values.get(key)
    }

    /// The value of `key` as a bool, if live and boolean.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(Value::as_bool)
    }

    /// The value of `key` as an integer, if live and integral.
    pub fn get_int(&self, key: &str) -> Option<i64> {
        self.get(key).and_then(Value::as_int)
    }

    /// The value of `key` as a string, if live and textual.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Value::as_str)
    }

    /// Sets `key` to `value`, returning the previous value if any.
    pub fn set(&mut self, key: Key, value: Value) -> Option<Value> {
        self.values.insert(key, value)
    }

    /// Removes `key`, returning its value if it was live.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.values.remove(key)
    }

    /// `true` if `key` is live.
    pub fn contains(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Value)> {
        self.values.iter()
    }

    /// Iterates over live keys in key order.
    pub fn keys(&self) -> impl Iterator<Item = &Key> {
        self.values.keys()
    }

    /// Live keys underneath a hierarchical prefix.
    pub fn keys_under<'a>(&'a self, prefix: &'a Key) -> impl Iterator<Item = &'a Key> + 'a {
        self.values.keys().filter(move |k| k.starts_with(prefix))
    }

    /// Applies `other`'s entries on top of this state (used to apply a
    /// cluster-version rollback patch).
    pub fn apply(&mut self, other: &ConfigState) {
        for (k, v) in other.iter() {
            self.values.insert(k.clone(), v.clone());
        }
    }

    /// The set of keys on which `self` and `other` disagree (present in one
    /// but not the other, or present in both with different values).
    pub fn diff_keys(&self, other: &ConfigState) -> Vec<Key> {
        let mut out = Vec::new();
        for (k, v) in self.iter() {
            if other.get(k.as_str()) != Some(v) {
                out.push(k.clone());
            }
        }
        for k in other.keys() {
            if !self.contains(k.as_str()) {
                out.push(k.clone());
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

impl Extend<(Key, Value)> for ConfigState {
    fn extend<I: IntoIterator<Item = (Key, Value)>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

impl FromIterator<(Key, Value)> for ConfigState {
    fn from_iter<I: IntoIterator<Item = (Key, Value)>>(iter: I) -> Self {
        ConfigState {
            values: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a ConfigState {
    type Item = (&'a Key, &'a Value);
    type IntoIter = std::collections::btree_map::Iter<'a, Key, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.values.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_getters() {
        let mut s = ConfigState::new();
        s.set(Key::new("b"), Value::from(true));
        s.set(Key::new("i"), Value::from(7));
        s.set(Key::new("s"), Value::from("x"));
        assert_eq!(s.get_bool("b"), Some(true));
        assert_eq!(s.get_int("i"), Some(7));
        assert_eq!(s.get_str("s"), Some("x"));
        assert_eq!(s.get_bool("i"), None);
        assert_eq!(s.get("missing"), None);
    }

    #[test]
    fn set_returns_previous() {
        let mut s = ConfigState::new();
        assert_eq!(s.set(Key::new("k"), Value::from(1)), None);
        assert_eq!(s.set(Key::new("k"), Value::from(2)), Some(Value::from(1)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn apply_overlays_patch() {
        let mut base: ConfigState = vec![
            (Key::new("a"), Value::from(1)),
            (Key::new("b"), Value::from(2)),
        ]
        .into_iter()
        .collect();
        let patch: ConfigState = vec![(Key::new("b"), Value::from(20))].into_iter().collect();
        base.apply(&patch);
        assert_eq!(base.get_int("a"), Some(1));
        assert_eq!(base.get_int("b"), Some(20));
    }

    #[test]
    fn diff_keys_is_symmetric_in_membership() {
        let a: ConfigState = vec![
            (Key::new("only_a"), Value::from(1)),
            (Key::new("both_same"), Value::from(2)),
            (Key::new("both_diff"), Value::from(3)),
        ]
        .into_iter()
        .collect();
        let b: ConfigState = vec![
            (Key::new("only_b"), Value::from(9)),
            (Key::new("both_same"), Value::from(2)),
            (Key::new("both_diff"), Value::from(30)),
        ]
        .into_iter()
        .collect();
        let d = a.diff_keys(&b);
        let names: Vec<_> = d.iter().map(|k| k.as_str().to_owned()).collect();
        assert_eq!(names, vec!["both_diff", "only_a", "only_b"]);
        assert_eq!(a.diff_keys(&a), Vec::<Key>::new());
    }
}
