//! The time-travel key-value store.

use std::collections::BTreeMap;

use crate::record::{KeyRecord, Version};
use crate::snapshot::ConfigState;
use crate::stats::{PruneStats, TtkvStats};
use crate::time::Timestamp;
use crate::value::Value;
use crate::Key;

/// Time-travel key-value store (TTKV).
///
/// The TTKV records every access an application makes to its configuration
/// store: reads are counted, writes and deletions are kept as a full
/// timestamped history per key. On top of that history it answers the two
/// queries Ocasta needs:
///
/// * **clustering input** — the mutation timeline of every key
///   ([`Ttkv::iter`], [`KeyRecord::mutation_times`]);
/// * **rollback input** — point-in-time reconstruction of values
///   ([`Ttkv::value_at`], [`Ttkv::snapshot_at`]).
///
/// The paper implements the TTKV on Redis; this is a from-scratch native
/// equivalent with the same record shape (see `DESIGN.md` §5.1).
///
/// # Examples
///
/// ```
/// use ocasta_ttkv::{Ttkv, Timestamp, Value};
///
/// let mut store = Ttkv::new();
/// store.write(Timestamp::from_secs(1), "app/theme", Value::from("dark"));
/// store.write(Timestamp::from_secs(9), "app/theme", Value::from("light"));
///
/// assert_eq!(
///     store.value_at("app/theme", Timestamp::from_secs(5)),
///     Some(&Value::from("dark")),
/// );
/// assert_eq!(store.current("app/theme"), Some(&Value::from("light")));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ttkv {
    records: BTreeMap<Key, KeyRecord>,
    reads: u64,
    writes: u64,
    deletes: u64,
}

impl Ttkv {
    /// Creates an empty store.
    pub fn new() -> Self {
        Ttkv::default()
    }

    /// Number of distinct keys ever observed (Table I's `# Keys` column).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if no key has ever been observed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records a read access to `key`.
    pub fn read(&mut self, key: impl Into<Key>) {
        self.add_reads(key, 1);
    }

    /// Records `count` read accesses to `key` at once (traces aggregate
    /// reads into per-key counters; the Windows traces contain tens of
    /// millions of reads).
    pub fn add_reads(&mut self, key: impl Into<Key>, count: u64) {
        self.reads += count;
        self.records.entry(key.into()).or_default().add_reads(count);
    }

    /// Records a write of `value` to `key` at time `t`.
    pub fn write(&mut self, t: Timestamp, key: impl Into<Key>, value: Value) {
        self.writes += 1;
        self.records
            .entry(key.into())
            .or_default()
            .record_mutation(Version::write(t, value));
    }

    /// Records a deletion of `key` at time `t`.
    ///
    /// Deletions are kept in the history as tombstones so that a rollback can
    /// *recreate* a deleted setting — the Microsoft Word `Item N` example in
    /// the paper's Figure 1a depends on exactly this.
    pub fn delete(&mut self, t: Timestamp, key: impl Into<Key>) {
        self.deletes += 1;
        self.records
            .entry(key.into())
            .or_default()
            .record_mutation(Version::tombstone(t));
    }

    /// The full record of one key, if it has ever been observed.
    pub fn record(&self, key: &str) -> Option<&KeyRecord> {
        self.records.get(key)
    }

    /// Mutable access to one key's record (the incremental-prune path:
    /// [`crate::TtkvBuilder::prune_before`] prunes exactly the records its
    /// index says can reclaim something, nothing else).
    pub(crate) fn record_mut(&mut self, key: &str) -> Option<&mut KeyRecord> {
        self.records.get_mut(key)
    }

    /// The live value of `key` as of time `t`.
    pub fn value_at(&self, key: &str, t: Timestamp) -> Option<&Value> {
        self.records.get(key).and_then(|r| r.value_at(t))
    }

    /// The current live value of `key`.
    pub fn current(&self, key: &str) -> Option<&Value> {
        self.records.get(key).and_then(KeyRecord::current)
    }

    /// Iterates over `(key, record)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &KeyRecord)> {
        self.records.iter()
    }

    /// Iterates over all key names in key order.
    pub fn keys(&self) -> impl Iterator<Item = &Key> {
        self.records.keys()
    }

    /// Keys that have been modified at least once *within the retained
    /// history* — the only keys eligible for clustering and repair ("any
    /// key that has not been modified from its initial value cannot cause a
    /// configuration error", §III-A).
    ///
    /// A key whose entire history was reclaimed by [`Ttkv::prune_before`]
    /// is excluded even though its lifetime counters survive: it has no
    /// mutation a clustering could correlate and no version a rollback
    /// could try. The invariant `modified_keys ⊆ keys with non-empty
    /// history` is regression-tested.
    pub fn modified_keys(&self) -> impl Iterator<Item = &Key> {
        self.records
            .iter()
            .filter(|(_, r)| r.modifications() > 0 && !r.history().is_empty())
            .map(|(k, _)| k)
    }

    /// Keys under a hierarchical prefix (an application's subtree).
    pub fn keys_under<'a>(&'a self, prefix: &'a Key) -> impl Iterator<Item = &'a Key> + 'a {
        self.records.keys().filter(move |k| k.starts_with(prefix))
    }

    /// The latest recorded-state timestamp across all keys (the trace's
    /// end). On a pruned store whose entire history collapsed, this falls
    /// back to the newest baseline's (original) timestamp — so
    /// [`Ttkv::snapshot_latest`] keeps serving the retained state.
    pub fn last_mutation_time(&self) -> Option<Timestamp> {
        self.records.values().filter_map(KeyRecord::last_time).max()
    }

    /// The earliest surviving mutation timestamp across all keys.
    pub fn first_mutation_time(&self) -> Option<Timestamp> {
        self.records
            .values()
            .filter_map(|r| r.history().first().map(|v| v.timestamp))
            .min()
    }

    /// Materialises the live configuration as of time `t` as a flat
    /// key → value map. Tombstoned and never-written keys are absent.
    pub fn snapshot_at(&self, t: Timestamp) -> ConfigState {
        let mut state = ConfigState::new();
        for (key, record) in &self.records {
            if let Some(value) = record.value_at(t) {
                state.set(key.clone(), value.clone());
            }
        }
        state
    }

    /// Materialises the current live configuration.
    pub fn snapshot_latest(&self) -> ConfigState {
        match self.last_mutation_time() {
            Some(t) => self.snapshot_at(t),
            None => ConfigState::new(),
        }
    }

    /// Aggregate access statistics (Table I's row shape).
    pub fn stats(&self) -> TtkvStats {
        TtkvStats {
            keys: self.records.len() as u64,
            reads: self.reads,
            writes: self.writes,
            deletes: self.deletes,
            approx_bytes: self.approx_bytes(),
        }
    }

    /// Approximate in-memory footprint of the whole store in bytes (Table I's
    /// `Size` column).
    pub fn approx_bytes(&self) -> u64 {
        self.records
            .iter()
            .map(|(k, r)| (k.as_str().len() + r.approx_bytes()) as u64)
            .sum()
    }

    /// Compacts history older than `horizon`: for every key, versions
    /// strictly before the horizon are collapsed into the record's
    /// *baseline* — the newest pre-horizon live value, kept with its
    /// original timestamp — or dropped entirely if the key was dead then.
    /// Every `value_at`/`snapshot_at` query at or after the horizon
    /// answers exactly as before the prune (property-tested); queries
    /// below the horizon are out of contract (in practice they stay
    /// correct down to each key's baseline timestamp). Prunes compose and
    /// commute with out-of-order appends: any sequence of sweeps
    /// interleaved with ingestion equals one direct prune at the final
    /// horizon (property-tested), which is what keeps concurrently swept
    /// ingestion deterministic.
    ///
    /// Read/write/delete counters are kept — they feed the repair tool's
    /// sort and Table I — but a key with no surviving mutation leaves
    /// [`Ttkv::modified_keys`]: it has nothing to cluster or roll back.
    ///
    /// This is the retention knob a long-running deployment needs: Table
    /// I's TTKVs grow to tens of megabytes over two months; pruning bounds
    /// that while preserving everything the repair window can use. The
    /// fleet tier drives it continuously (`ocasta-fleet`'s
    /// `RetentionPolicy`), clamped to live repair-session pins (see
    /// `DESIGN.md §5.9`).
    pub fn prune_before(&mut self, horizon: Timestamp) -> PruneStats {
        let mut stats = PruneStats::default();
        for record in self.records.values_mut() {
            stats.absorb(record.prune_in_place(horizon));
        }
        stats
    }

    /// Collects *dead shells*: records whose mutations were all reclaimed
    /// by pruning and whose baseline (if any) is a tombstone — see
    /// [`KeyRecord::is_dead_shell`]. Returns how many keys were removed.
    ///
    /// A shell answers `None`/absent to every query and is excluded from
    /// [`Ttkv::modified_keys`] already; only its lifetime counters remain.
    /// Those counters *are* dropped from the store aggregates — a GC'd key
    /// then rewritten behaves exactly like a fresh key (property-tested) —
    /// which is what keeps the persist/replay round-trip exact: the load
    /// path recomputes aggregates from the records actually present.
    ///
    /// When to call this is a policy decision that belongs to the caller:
    /// while ingestion can still deliver a straggler rewrite of a pruned
    /// key, the shell's counters are that key's only memory, so the fleet
    /// sweeper GCs **only on its final sweep**, never mid-run.
    pub fn gc_dead_shells(&mut self) -> u64 {
        let mut collected = 0u64;
        let (mut reads, mut writes, mut deletes) = (0u64, 0u64, 0u64);
        self.records.retain(|_, record| {
            if record.is_dead_shell() {
                collected += 1;
                reads += record.reads;
                writes += record.writes;
                deletes += record.deletes;
                false
            } else {
                true
            }
        });
        self.reads -= reads;
        self.writes -= writes;
        self.deletes -= deletes;
        collected
    }

    /// Demotes every record's prune baseline back into its mutation
    /// history as an ordinary version, without touching any counter.
    ///
    /// This is the layered-WAL fold primitive (`DESIGN.md §5.10`): when
    /// snapshot layers are folded oldest-to-newest, a newer layer's
    /// baseline must win timestamp ties against older layers' history —
    /// the opposite of the tie rule a baseline obeys *inside* its own
    /// store — so the fold first turns baselines back into versions (each
    /// inserted before its own layer's same-timestamp mutations, which it
    /// genuinely predates) and lets one final [`Ttkv::prune_before`] at
    /// the newest layer's horizon re-collapse them with every tie ranked
    /// by true arrival order. The demoted store *does* expose the demoted
    /// versions through [`KeyRecord::mutation_times`]; callers must
    /// re-prune before handing the store to clustering or repair, exactly
    /// as the WAL reader does.
    pub fn demote_baselines(&mut self) {
        for record in self.records.values_mut() {
            record.demote_baseline();
        }
    }

    /// Inserts a fully-built record under `key`, folding its counters into
    /// the store aggregates (persistence load path). Merges if the key
    /// already exists.
    pub(crate) fn insert_record(&mut self, key: Key, record: KeyRecord) {
        self.reads += record.reads;
        self.writes += record.writes;
        self.deletes += record.deletes;
        match self.records.entry(key) {
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(record);
            }
            std::collections::btree_map::Entry::Occupied(mut slot) => {
                slot.get_mut().absorb(record);
            }
        }
    }

    /// Applies one pre-built version (write or tombstone) to `key`,
    /// updating the aggregate counters. Shared by the public mutators and
    /// the bulk [`crate::TtkvBuilder`] path.
    pub(crate) fn apply_version(&mut self, key: Key, version: Version) {
        if version.is_tombstone() {
            self.deletes += 1;
        } else {
            self.writes += 1;
        }
        self.records
            .entry(key)
            .or_default()
            .record_mutation(version);
    }

    /// Merges another store's records into this one (used to aggregate the
    /// same user's traces from several lab machines, §V). Equivalent to
    /// [`Ttkv::absorb`] on a clone — same tie rule, and prune baselines are
    /// carried across.
    pub fn merge(&mut self, other: &Ttkv) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.deletes += other.deletes;
        for (key, record) in &other.records {
            self.records
                .entry(key.clone())
                .or_default()
                .absorb(record.clone());
        }
    }
    /// Merges another store into this one **by value**, moving records
    /// instead of cloning them.
    ///
    /// Behaves exactly like [`Ttkv::merge`] but is the fast path for
    /// shard-merge: when the two stores' key sets are disjoint (as they are
    /// for hash-sharded stores, see `ocasta-fleet`) every record moves in
    /// O(log n) with no history traversal at all.
    pub fn absorb(&mut self, other: Ttkv) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.deletes += other.deletes;
        for (key, record) in other.records {
            match self.records.entry(key) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(record);
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    slot.get_mut().absorb(record);
                }
            }
        }
    }

    /// Assembles one consistent store from a set of shards (or any other
    /// partition of the key space), consuming them.
    ///
    /// The usual caller is `ocasta-fleet`, which ingests a machine fleet's
    /// events into hash-striped shards concurrently and then hands the
    /// merged view to clustering and repair.
    pub fn from_shards(shards: impl IntoIterator<Item = Ttkv>) -> Ttkv {
        let mut merged = Ttkv::new();
        for shard in shards {
            merged.absorb(shard);
        }
        merged
    }

    /// Folds an **oldest→newest** chain of (possibly pruned) layers over
    /// one key space into a single store, exactly equal to ingesting every
    /// layer's accesses in arrival order and pruning once at `horizon`.
    ///
    /// This is the layered-fold recipe `DESIGN.md §5.10` proved for the
    /// WAL's base + delta chain, lifted to a reusable primitive (the
    /// fleet's sealed shard segments fold through it too, `§5.13`): each
    /// layer's baselines are demoted back into its history first — a newer
    /// layer's baseline must win timestamp ties against older layers'
    /// history, the opposite of the in-store tie rule — the layers absorb
    /// oldest-first (so [`Ttkv::absorb`]'s self-first tie rule reproduces
    /// true arrival order), and one final [`Ttkv::prune_before`] at
    /// `horizon` re-collapses every demoted version with ties ranked
    /// correctly. A `None` (or epoch) horizon skips the re-prune, which is
    /// only sound when no layer carries a baseline — unpruned layers, as
    /// the callers' invariants guarantee.
    pub fn fold_layers(layers: impl IntoIterator<Item = Ttkv>, horizon: Option<Timestamp>) -> Ttkv {
        let mut store = Ttkv::new();
        for mut layer in layers {
            layer.demote_baselines();
            store.absorb(layer);
        }
        if let Some(horizon) = horizon {
            if horizon > Timestamp::EPOCH {
                store.prune_before(horizon);
            }
        }
        store
    }
}

impl Extend<(Timestamp, Key, Value)> for Ttkv {
    fn extend<I: IntoIterator<Item = (Timestamp, Key, Value)>>(&mut self, iter: I) {
        for (t, key, value) in iter {
            self.write(t, key, value);
        }
    }
}

impl FromIterator<(Timestamp, Key, Value)> for Ttkv {
    fn from_iter<I: IntoIterator<Item = (Timestamp, Key, Value)>>(iter: I) -> Self {
        let mut store = Ttkv::new();
        store.extend(iter);
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn write_then_query_roundtrip() {
        let mut store = Ttkv::new();
        store.write(ts(1), "a", Value::from(1));
        store.write(ts(2), "b", Value::from(2));
        assert_eq!(store.len(), 2);
        assert_eq!(store.current("a"), Some(&Value::from(1)));
        assert_eq!(store.value_at("b", ts(1)), None);
    }

    #[test]
    fn deleted_keys_are_absent_from_snapshots_but_recoverable() {
        let mut store = Ttkv::new();
        store.write(ts(1), "mru/item1", Value::from("report.doc"));
        store.delete(ts(5), "mru/item1");
        let snap_before = store.snapshot_at(ts(4));
        let snap_after = store.snapshot_at(ts(6));
        assert_eq!(
            snap_before.get("mru/item1"),
            Some(&Value::from("report.doc"))
        );
        assert_eq!(snap_after.get("mru/item1"), None);
        // Rollback semantics: the historical value survives deletion.
        assert_eq!(
            store.value_at("mru/item1", ts(2)),
            Some(&Value::from("report.doc"))
        );
    }

    #[test]
    fn modified_keys_excludes_read_only_keys() {
        let mut store = Ttkv::new();
        store.read("ro");
        store.write(ts(1), "rw", Value::from(1));
        let modified: Vec<_> = store
            .modified_keys()
            .map(|k| k.as_str().to_owned())
            .collect();
        assert_eq!(modified, vec!["rw"]);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn stats_count_accesses() {
        let mut store = Ttkv::new();
        store.read("a");
        store.read("a");
        store.write(ts(1), "a", Value::from(1));
        store.delete(ts(2), "a");
        let stats = store.stats();
        assert_eq!(stats.reads, 2);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.deletes, 1);
        assert_eq!(stats.keys, 1);
        assert!(stats.approx_bytes > 0);
    }

    #[test]
    fn merge_combines_histories() {
        let mut lab1 = Ttkv::new();
        lab1.write(ts(10), "u/pref", Value::from("a"));
        let mut lab2 = Ttkv::new();
        lab2.write(ts(5), "u/pref", Value::from("b"));
        lab2.read("u/pref");
        lab1.merge(&lab2);
        assert_eq!(lab1.record("u/pref").unwrap().writes, 2);
        assert_eq!(lab1.record("u/pref").unwrap().reads, 1);
        // lab2's earlier write sorts before lab1's.
        assert_eq!(lab1.value_at("u/pref", ts(7)), Some(&Value::from("b")));
        assert_eq!(lab1.current("u/pref"), Some(&Value::from("a")));
    }

    #[test]
    fn trace_bounds() {
        let mut store = Ttkv::new();
        assert_eq!(store.first_mutation_time(), None);
        store.write(ts(3), "a", Value::from(1));
        store.write(ts(9), "b", Value::from(2));
        assert_eq!(store.first_mutation_time(), Some(ts(3)));
        assert_eq!(store.last_mutation_time(), Some(ts(9)));
    }

    #[test]
    fn keys_under_filters_subtree() {
        let mut store = Ttkv::new();
        store.write(ts(1), "word/mru/a", Value::from(1));
        store.write(ts(1), "word/view", Value::from(2));
        store.write(ts(1), "excel/mru/a", Value::from(3));
        let prefix = Key::new("word");
        assert_eq!(store.keys_under(&prefix).count(), 2);
    }

    #[test]
    fn absorb_agrees_with_merge() {
        let mut a = Ttkv::new();
        a.write(ts(10), "u/pref", Value::from("a"));
        a.write(ts(10), "u/tied", Value::from("first"));
        a.read("u/pref");
        let mut b = Ttkv::new();
        b.write(ts(5), "u/pref", Value::from("b"));
        b.write(ts(10), "u/tied", Value::from("second"));
        b.write(ts(3), "only/b", Value::from(1));
        b.read("only/b");

        let mut merged = a.clone();
        merged.merge(&b);
        let mut absorbed = a.clone();
        absorbed.absorb(b.clone());
        assert_eq!(merged, absorbed);
        // Tie at ts(10) on u/tied: the absorbed store's version wins,
        // exactly as sequential ingestion order would dictate.
        assert_eq!(absorbed.current("u/tied"), Some(&Value::from("second")));
    }

    #[test]
    fn from_shards_reassembles_partitions() {
        let mut whole = Ttkv::new();
        let mut shards = vec![Ttkv::new(), Ttkv::new(), Ttkv::new()];
        for i in 0..30u64 {
            let key = Key::new(format!("app/k{i}"));
            whole.write(ts(i), key.clone(), Value::from(i as i64));
            shards[(i % 3) as usize].write(ts(i), key, Value::from(i as i64));
        }
        whole.add_reads("app/k0", 4);
        shards[0].add_reads("app/k0", 4);
        assert_eq!(Ttkv::from_shards(shards), whole);
    }

    #[test]
    fn prune_reports_stats_and_keeps_post_horizon_queries() {
        let mut store = Ttkv::new();
        for i in 0..10u64 {
            store.write(ts(i), "app/hot", Value::from(i as i64));
        }
        store.write(ts(1), "app/cold", Value::from("old"));
        let before_bytes = store.approx_bytes();
        let stats = store.prune_before(ts(5));
        // app/hot: 5 pre-horizon versions collapsed; app/cold: 1.
        assert_eq!(stats.pruned_versions, 6);
        assert_eq!(stats.dead_keys, 0);
        assert!(stats.reclaimed_bytes > 0);
        assert!(store.approx_bytes() < before_bytes);
        assert_eq!(store.value_at("app/hot", ts(5)), Some(&Value::from(5)));
        assert_eq!(store.value_at("app/cold", ts(7)), Some(&Value::from("old")));
        // Lifetime counters are untouched.
        assert_eq!(store.stats().writes, 11);
    }

    #[test]
    fn modified_keys_is_a_subset_of_keys_with_history() {
        // Regression: a fully-pruned key that ended in a tombstone used to
        // keep reporting itself as cluster/repair-eligible through its
        // retained counters, despite having no mutation left to search.
        let mut store = Ttkv::new();
        store.write(ts(1), "app/dead", Value::from("x"));
        store.delete(ts(2), "app/dead");
        store.write(ts(3), "app/live", Value::from(1));
        store.write(ts(9), "app/live", Value::from(2));
        store.prune_before(ts(6));
        let modified: Vec<_> = store.modified_keys().map(|k| k.as_str()).collect();
        assert_eq!(modified, vec!["app/live"]);
        for key in store.modified_keys() {
            let record = store.record(key.as_str()).unwrap();
            assert!(!record.history().is_empty(), "{key}");
        }
        // The dead key's counters survive for Table I / the repair sort.
        let dead = store.record("app/dead").unwrap();
        assert_eq!(dead.modifications(), 2);
        assert!(dead.history().is_empty());
    }

    #[test]
    fn gc_collects_dead_shells_and_bounds_the_key_universe_under_churn() {
        // Regression (dead-shell leak): before `gc_dead_shells`, every
        // churned key — written, deleted, fully pruned — left a counter-
        // only shell in the record map forever, so the key universe grew
        // without bound under churn even though the store answered None
        // for every one of them.
        let mut store = Ttkv::new();
        for i in 0..100u64 {
            let key = Key::new(format!("churn/{i}"));
            store.write(ts(i * 2), key.clone(), Value::from(i as i64));
            store.read(key.clone());
            store.delete(ts(i * 2 + 1), key);
        }
        store.write(ts(1_000), "app/live", Value::from(1));
        store.read("app/readonly");
        store.prune_before(ts(500));
        // The shells linger until an explicit GC...
        assert_eq!(store.len(), 102);
        assert_eq!(store.modified_keys().count(), 1);
        let collected = store.gc_dead_shells();
        assert_eq!(collected, 100);
        assert_eq!(store.len(), 2, "live + read-only keys survive");
        assert!(store.record("app/live").is_some());
        assert!(
            store.record("app/readonly").is_some(),
            "read-only records are not shells: their read counters are live data"
        );
        assert_eq!(store.modified_keys().count(), 1, "semantics preserved");
        // Aggregates follow the collected records, so the persist load
        // path (which recomputes them) round-trips exactly.
        assert_eq!(store.stats().writes, 1);
        assert_eq!(store.stats().deletes, 0);
        assert_eq!(store.stats().reads, 1);
        // Idempotent: nothing left to collect.
        assert_eq!(store.gc_dead_shells(), 0);
    }

    #[test]
    fn fully_pruned_store_still_serves_snapshots() {
        let mut store = Ttkv::new();
        store.write(ts(1), "a", Value::from(1));
        store.write(ts(2), "b", Value::from(2));
        store.delete(ts(3), "b");
        store.prune_before(ts(10));
        // Baselines keep their true times (b's collapsed tombstone at
        // ts(3) is the newest recorded state).
        assert_eq!(store.last_mutation_time(), Some(ts(3)));
        let snap = store.snapshot_latest();
        assert_eq!(snap.get("a"), Some(&Value::from(1)));
        assert_eq!(snap.get("b"), None);
        assert_eq!(store.modified_keys().count(), 0);
    }

    #[test]
    fn merge_carries_prune_baselines() {
        let mut pruned = Ttkv::new();
        pruned.write(ts(1), "u/pref", Value::from("old"));
        pruned.prune_before(ts(5));
        let mut other = Ttkv::new();
        other.write(ts(9), "u/pref", Value::from("new"));
        other.merge(&pruned);
        assert_eq!(other.value_at("u/pref", ts(6)), Some(&Value::from("old")));
        assert_eq!(other.current("u/pref"), Some(&Value::from("new")));
    }

    #[test]
    fn fold_layers_equals_sequential_ingestion_with_one_prune() {
        // Three layers cut from one access sequence, the middle two pruned
        // the way a sweep would leave them — including a cross-layer
        // timestamp tie, where the newer layer's collapsed baseline must
        // beat the older layer's history.
        let mut layer0 = Ttkv::new();
        layer0.write(ts(10), "app/k", Value::from(1));
        layer0.write(ts(20), "app/k", Value::from(2));
        layer0.prune_before(ts(25));
        let mut layer1 = Ttkv::new();
        layer1.write(ts(20), "app/k", Value::from(3)); // ties layer0's 20s
        layer1.write(ts(40), "app/k", Value::from(4));
        layer1.write(ts(15), "app/doomed", Value::from(9));
        layer1.delete(ts(22), "app/doomed");
        layer1.prune_before(ts(25));
        let mut layer2 = Ttkv::new();
        layer2.write(ts(50), "app/k", Value::from(5));
        layer2.add_reads(Key::new("app/k"), 7);

        let folded = Ttkv::fold_layers([layer0, layer1, layer2], Some(ts(25)));

        let mut direct = Ttkv::new();
        direct.write(ts(10), "app/k", Value::from(1));
        direct.write(ts(20), "app/k", Value::from(2));
        direct.write(ts(20), "app/k", Value::from(3));
        direct.write(ts(40), "app/k", Value::from(4));
        direct.write(ts(15), "app/doomed", Value::from(9));
        direct.delete(ts(22), "app/doomed");
        direct.write(ts(50), "app/k", Value::from(5));
        direct.add_reads(Key::new("app/k"), 7);
        direct.prune_before(ts(25));
        assert_eq!(folded, direct);
        // The tie went to the later arrival: the baseline carries value 3.
        assert_eq!(folded.value_at("app/k", ts(21)), Some(&Value::from(3)));
    }

    #[test]
    fn fold_layers_without_horizon_is_plain_ordered_absorb() {
        let mut a = Ttkv::new();
        a.write(ts(1), "k", Value::from(1));
        let mut b = Ttkv::new();
        b.write(ts(1), "k", Value::from(2)); // tie: b arrived later
        let folded = Ttkv::fold_layers([a, b], None);
        assert_eq!(folded.current("k"), Some(&Value::from(2)));
        assert_eq!(folded.stats().writes, 2);
    }

    #[test]
    fn store_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        // The fleet ingestion engine shares these across threads.
        assert_send_sync::<Ttkv>();
        assert_send_sync::<Key>();
        assert_send_sync::<Value>();
        assert_send_sync::<KeyRecord>();
        assert_send_sync::<crate::TtkvBuilder>();
        assert_send_sync::<ConfigState>();
    }

    #[test]
    fn from_iterator_builds_store() {
        let store: Ttkv = vec![
            (ts(1), Key::new("a"), Value::from(1)),
            (ts(2), Key::new("b"), Value::from(2)),
        ]
        .into_iter()
        .collect();
        assert_eq!(store.len(), 2);
        assert_eq!(store.stats().writes, 2);
    }
}
