//! Configuration setting keys.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// The name of one configuration setting.
///
/// Keys are hierarchical slash-separated paths, matching how the loggers
/// flatten every supported store (registry paths, GConf paths, file key
/// paths) into names, e.g. `Software/Microsoft/Word/MRU/Max Display`.
///
/// `Key` is a cheaply cloneable shared string: the TTKV, the clustering
/// engine and the repair tool all hold many references to the same key name.
///
/// # Examples
///
/// ```
/// use ocasta_ttkv::Key;
///
/// let key = Key::new("word/MRU/Max Display");
/// assert_eq!(key.leaf(), "Max Display");
/// assert_eq!(key.parent().unwrap().as_str(), "word/MRU");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(Arc<str>);

impl Key {
    /// Creates a key from a path string.
    pub fn new(path: impl AsRef<str>) -> Self {
        Key(Arc::from(path.as_ref()))
    }

    /// The full path of the key.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The final path component (the setting's own name).
    pub fn leaf(&self) -> &str {
        self.0.rsplit('/').next().unwrap_or(&self.0)
    }

    /// The key one level up the hierarchy, if any.
    ///
    /// Hierarchical name structure is what systems like Glean exploit; Ocasta
    /// does not need it for clustering but exposes it for analysis.
    pub fn parent(&self) -> Option<Key> {
        self.0.rfind('/').map(|idx| Key::new(&self.0[..idx]))
    }

    /// Appends a path component, producing a child key.
    pub fn child(&self, component: &str) -> Key {
        Key::new(format!("{}/{}", self.0, component))
    }

    /// `true` if `self` is `other` or lies underneath it in the hierarchy.
    pub fn starts_with(&self, other: &Key) -> bool {
        self.0.as_ref() == other.0.as_ref()
            || (self.0.len() > other.0.len()
                && self.0.starts_with(other.0.as_ref())
                && self.0.as_bytes()[other.0.len()] == b'/')
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key::new(s)
    }
}

impl From<String> for Key {
    fn from(s: String) -> Self {
        Key(Arc::from(s))
    }
}

impl AsRef<str> for Key {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for Key {
    fn borrow(&self) -> &str {
        &self.0
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Key {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.0)
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for Key {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        String::deserialize(deserializer).map(Key::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn leaf_and_parent() {
        let k = Key::new("a/b/c");
        assert_eq!(k.leaf(), "c");
        assert_eq!(k.parent(), Some(Key::new("a/b")));
        assert_eq!(Key::new("solo").parent(), None);
        assert_eq!(Key::new("solo").leaf(), "solo");
    }

    #[test]
    fn child_composes_with_parent() {
        let k = Key::new("a/b");
        assert_eq!(k.child("c"), Key::new("a/b/c"));
        assert_eq!(k.child("c").parent(), Some(k));
    }

    #[test]
    fn starts_with_respects_component_boundaries() {
        let root = Key::new("app/menu");
        assert!(Key::new("app/menu/items").starts_with(&root));
        assert!(Key::new("app/menu").starts_with(&root));
        assert!(!Key::new("app/menubar").starts_with(&root));
        assert!(!Key::new("app").starts_with(&root));
    }

    #[test]
    fn borrow_enables_str_lookup() {
        let mut map: BTreeMap<Key, i32> = BTreeMap::new();
        map.insert(Key::new("x/y"), 1);
        assert_eq!(map.get("x/y"), Some(&1));
    }

    #[test]
    fn clone_is_shallow() {
        let k = Key::new("some/long/path");
        let k2 = k.clone();
        assert_eq!(k.as_str().as_ptr(), k2.as_str().as_ptr());
    }
}
