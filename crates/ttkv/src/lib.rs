//! # ocasta-ttkv — time-travel key-value store
//!
//! The storage substrate of the [Ocasta](https://arxiv.org/abs/1711.04030)
//! reproduction: a versioned key-value store that records every access an
//! application makes to its configuration store and can answer point-in-time
//! queries over the recorded history.
//!
//! The paper implements this component on Redis; this crate is a from-scratch
//! native equivalent with the same record shape — per key, the number of
//! reads/writes/deletions plus a timestamped list of historical values in
//! which deletions appear as tombstones.
//!
//! ## Quick start
//!
//! ```
//! use ocasta_ttkv::{Timestamp, Ttkv, Value};
//!
//! let mut store = Ttkv::new();
//! store.write(Timestamp::from_secs(0), "mail/mark_seen", Value::from(true));
//! store.write(Timestamp::from_secs(0), "mail/mark_seen_timeout", Value::from(1500));
//! store.write(Timestamp::from_secs(60), "mail/mark_seen", Value::from(false));
//!
//! // Clustering input: who was modified, when.
//! let modified: Vec<_> = store.modified_keys().collect();
//! assert_eq!(modified.len(), 2);
//!
//! // Rollback input: what was the configuration at minute zero?
//! let snapshot = store.snapshot_at(Timestamp::from_secs(30));
//! assert_eq!(snapshot.get_bool("mail/mark_seen"), Some(true));
//! ```
//!
//! ## Feature flags
//!
//! * `serde` — derive `Serialize`/`Deserialize` on the public data types.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod hash;

mod builder;
mod error;
mod key;
mod persist;
mod persist_v2;
mod record;
mod retention;
mod snapshot;
mod stats;
mod store;
mod time;
mod value;

pub use builder::TtkvBuilder;
pub use error::TtkvError;
pub use key::Key;
pub use persist_v2::BINARY_MAGIC;
pub use record::{KeyRecord, Version};
pub use retention::{HorizonGuard, HorizonPin};
pub use snapshot::ConfigState;
pub use stats::{PruneStats, TtkvStats};
pub use store::Ttkv;
pub use time::{TimeDelta, TimePrecision, Timestamp};
pub use value::Value;
