//! The retention pin registry: what keeps pruning and pinned readers safe.
//!
//! A long-running deployment prunes its stores continuously
//! ([`crate::Ttkv::prune_before`]) while repair sessions and streaming
//! catalogs pin point-in-time views that still need old history. The
//! [`HorizonGuard`] serialises the two: readers register the oldest
//! timestamp they still need **before** snapshotting, and every retention
//! sweep clamps its target horizon to the oldest live pin — so a pinned
//! search can never have history yanked out from under it.
//!
//! Both operations run under one mutex, which gives a total order and the
//! two-way guarantee (`DESIGN.md §5.9`):
//!
//! * pin first → the sweep observes it and prunes no deeper;
//! * sweep first → the pin is clamped **up** to the pruned-to floor, so
//!   the reader learns at registration time that older history is gone
//!   and can bound its queries accordingly.

use std::fmt;
use std::sync::Mutex;

use crate::time::Timestamp;

/// Shared registry of retention pins and the pruned-to floor.
///
/// # Examples
///
/// ```
/// use ocasta_ttkv::{HorizonGuard, Timestamp};
///
/// let guard = HorizonGuard::new();
/// let pin = guard.pin(Timestamp::from_secs(100));
/// // A sweep aiming past the pin is clamped to it.
/// assert_eq!(guard.clamp(Timestamp::from_secs(500)), Timestamp::from_secs(100));
/// drop(pin);
/// // With no pins the sweep proceeds, raising the floor...
/// assert_eq!(guard.clamp(Timestamp::from_secs(500)), Timestamp::from_secs(500));
/// // ...and a late pin below the floor is clamped up to it.
/// let late = guard.pin(Timestamp::from_secs(100));
/// assert_eq!(late.timestamp(), Timestamp::from_secs(500));
/// ```
#[derive(Debug, Default)]
pub struct HorizonGuard {
    state: Mutex<GuardState>,
}

#[derive(Debug, Default)]
struct GuardState {
    /// Live pins as `(id, oldest timestamp still needed)`.
    pins: Vec<(u64, Timestamp)>,
    next_id: u64,
    /// High-water mark of granted horizons: history strictly before this
    /// may already be pruned away.
    floor: Timestamp,
}

impl HorizonGuard {
    /// Creates a registry with no pins and an epoch floor.
    pub fn new() -> Self {
        HorizonGuard::default()
    }

    /// Registers a pin for history from `oldest_needed` onward, held until
    /// the returned [`HorizonPin`] drops.
    ///
    /// If a sweep already pruned past `oldest_needed`, the pin is clamped
    /// up to the floor: check [`HorizonPin::timestamp`] — history before it
    /// is not guaranteed to exist anywhere.
    pub fn pin(&self, oldest_needed: Timestamp) -> HorizonPin<'_> {
        let mut state = self.state.lock().expect("horizon guard poisoned");
        let effective = oldest_needed.max(state.floor);
        let id = state.next_id;
        state.next_id += 1;
        state.pins.push((id, effective));
        HorizonPin {
            guard: self,
            id,
            at: effective,
        }
    }

    /// Grants a prune horizon for a sweep that wants to prune up to
    /// `target`: the result is `target` clamped to the oldest live pin, and
    /// the floor rises to it. The caller must prune no deeper than the
    /// returned timestamp.
    pub fn clamp(&self, target: Timestamp) -> Timestamp {
        let mut state = self.state.lock().expect("horizon guard poisoned");
        let oldest_pin = state.pins.iter().map(|(_, at)| *at).min();
        let granted = oldest_pin.map_or(target, |pin| target.min(pin));
        // Sweeps can only move forward: a pin registered after an earlier,
        // deeper sweep must not let the horizon retreat.
        let granted = granted.max(state.floor);
        state.floor = granted;
        granted
    }

    /// The pruned-to high-water mark: history strictly before this may be
    /// gone.
    pub fn floor(&self) -> Timestamp {
        self.state.lock().expect("horizon guard poisoned").floor
    }

    /// The oldest live pin, if any reader is currently registered.
    pub fn oldest_pin(&self) -> Option<Timestamp> {
        self.state
            .lock()
            .expect("horizon guard poisoned")
            .pins
            .iter()
            .map(|(_, at)| *at)
            .min()
    }

    /// Number of live pins.
    pub fn live_pins(&self) -> usize {
        self.state
            .lock()
            .expect("horizon guard poisoned")
            .pins
            .len()
    }

    fn release(&self, id: u64) {
        let mut state = self.state.lock().expect("horizon guard poisoned");
        state.pins.retain(|(pin_id, _)| *pin_id != id);
    }

    /// Moves pin `id` forward to `to` (never backward — a pin that
    /// retreated could claim history a sweep already reclaimed). Returns
    /// the pin's effective timestamp after the move.
    fn advance_pin(&self, id: u64, to: Timestamp) -> Timestamp {
        let mut state = self.state.lock().expect("horizon guard poisoned");
        for (pin_id, at) in &mut state.pins {
            if *pin_id == id {
                *at = (*at).max(to);
                return *at;
            }
        }
        to
    }
}

/// A live retention pin; releases on drop.
#[must_use = "dropping the pin immediately releases the history it protects"]
pub struct HorizonPin<'g> {
    guard: &'g HorizonGuard,
    id: u64,
    at: Timestamp,
}

impl HorizonPin<'_> {
    /// The effective pin: history from here onward is protected from
    /// pruning while the pin lives. May be later than requested if a sweep
    /// already pruned deeper — bound your queries to it.
    pub fn timestamp(&self) -> Timestamp {
        self.at
    }

    /// Advances the pin to `to`, releasing history before it for pruning
    /// while the pin stays live. A no-op if `to` is not ahead of the
    /// current pin — a pin never retreats (it could not reclaim protection
    /// a sweep may already have consumed).
    ///
    /// This is what lets a long-lived reader stop starving retention: a
    /// rollback search that has discarded its oldest candidates no longer
    /// needs the history below the surviving plan, and advancing the pin
    /// lets the sweeper follow it instead of stalling at the session's
    /// starting window for the session's whole life (`DESIGN.md §5.9`).
    pub fn advance(&mut self, to: Timestamp) {
        if to > self.at {
            self.at = self.guard.advance_pin(self.id, to);
        }
    }
}

impl fmt::Debug for HorizonPin<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HorizonPin")
            .field("id", &self.id)
            .field("at", &self.at)
            .finish()
    }
}

impl Drop for HorizonPin<'_> {
    fn drop(&mut self) {
        self.guard.release(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn sweep_is_clamped_to_the_oldest_live_pin() {
        let guard = HorizonGuard::new();
        let old = guard.pin(ts(10));
        let young = guard.pin(ts(50));
        assert_eq!(guard.live_pins(), 2);
        assert_eq!(guard.oldest_pin(), Some(ts(10)));
        assert_eq!(guard.clamp(ts(100)), ts(10));
        drop(old);
        assert_eq!(guard.clamp(ts(100)), ts(50));
        drop(young);
        assert_eq!(guard.clamp(ts(100)), ts(100));
        assert_eq!(guard.floor(), ts(100));
    }

    #[test]
    fn late_pin_is_clamped_up_to_the_floor() {
        let guard = HorizonGuard::new();
        assert_eq!(guard.clamp(ts(40)), ts(40));
        let pin = guard.pin(ts(5));
        assert_eq!(pin.timestamp(), ts(40), "history before 40 is gone");
        // And the late pin still protects from here on.
        assert_eq!(guard.clamp(ts(90)), ts(40));
    }

    #[test]
    fn horizon_never_retreats() {
        let guard = HorizonGuard::new();
        assert_eq!(guard.clamp(ts(60)), ts(60));
        let _pin = guard.pin(ts(60));
        // A sweep with a smaller target cannot roll the floor back.
        assert_eq!(guard.clamp(ts(20)), ts(60));
    }

    #[test]
    fn advancing_a_pin_unblocks_retention_without_releasing_it() {
        let guard = HorizonGuard::new();
        let mut pin = guard.pin(ts(10));
        assert_eq!(guard.clamp(ts(100)), ts(10));
        pin.advance(ts(60));
        assert_eq!(pin.timestamp(), ts(60));
        // The sweep can now reach the advanced pin, no further.
        assert_eq!(guard.clamp(ts(100)), ts(60));
        // A pin never retreats: an older target is a no-op.
        pin.advance(ts(20));
        assert_eq!(pin.timestamp(), ts(60));
        assert_eq!(guard.clamp(ts(100)), ts(60));
        drop(pin);
        assert_eq!(guard.clamp(ts(100)), ts(100));
    }

    #[test]
    fn concurrent_pins_and_sweeps_keep_the_invariant() {
        let guard = HorizonGuard::new();
        std::thread::scope(|scope| {
            for reader in 0..4u64 {
                let guard = &guard;
                scope.spawn(move || {
                    for round in 0..50u64 {
                        let wanted = ts(reader * 100 + round);
                        let pin = guard.pin(wanted);
                        // The guard may clamp up, never down.
                        assert!(pin.timestamp() >= wanted);
                        // While the pin lives, no sweep passes it.
                        assert!(guard.clamp(ts(1_000_000)) <= pin.timestamp());
                    }
                });
            }
        });
        assert_eq!(guard.live_pins(), 0);
    }
}
