//! Property-based tests for the TTKV.

use proptest::prelude::*;

use ocasta_ttkv::{Key, Timestamp, Ttkv, TtkvBuilder, Value};

/// Strategy for scalar values.
fn scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[ -~]{0,16}".prop_map(Value::from),
    ]
}

/// Strategy for arbitrary values (scalars plus shallow lists).
fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        4 => scalar(),
        1 => prop::collection::vec(scalar(), 0..4).prop_map(Value::List),
    ]
}

/// One mutation op against a small key space.
#[derive(Debug, Clone)]
enum Op {
    Write(u8, u64, Value),
    Delete(u8, u64),
    Read(u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 0u64..100_000, value()).prop_map(|(k, t, v)| Op::Write(k % 8, t, v)),
        (any::<u8>(), 0u64..100_000).prop_map(|(k, t)| Op::Delete(k % 8, t)),
        any::<u8>().prop_map(|k| Op::Read(k % 8)),
    ]
}

fn key_name(k: u8) -> String {
    format!("app/key{k}")
}

/// Applies `ops`, skipping every op that touches a key in `skip`.
fn apply_filtered(ops: &[Op], skip: &[String]) -> Ttkv {
    let kept: Vec<Op> = ops
        .iter()
        .filter(|o| {
            let k = match o {
                Op::Write(k, ..) | Op::Delete(k, _) | Op::Read(k) => *k,
            };
            !skip.iter().any(|s| s == &key_name(k))
        })
        .cloned()
        .collect();
    apply(&kept)
}

fn apply(ops: &[Op]) -> Ttkv {
    let mut store = Ttkv::new();
    for o in ops {
        match o {
            Op::Write(k, t, v) => store.write(
                Timestamp::from_millis(*t),
                Key::new(key_name(*k)),
                v.clone(),
            ),
            Op::Delete(k, t) => store.delete(Timestamp::from_millis(*t), Key::new(key_name(*k))),
            Op::Read(k) => store.read(Key::new(key_name(*k))),
        }
    }
    store
}

proptest! {
    /// Persistence round-trips bit-exactly for arbitrary op sequences.
    #[test]
    fn persist_roundtrip(ops in prop::collection::vec(op(), 0..60)) {
        let store = apply(&ops);
        let text = store.save_to_string();
        let loaded = Ttkv::load_from_str(&text).unwrap();
        prop_assert_eq!(store, loaded);
    }

    /// Text v1 and binary v2 persistence agree on arbitrary pruned stores:
    /// random histories (both value precisions, tombstones, dead keys) pruned
    /// at a random horizon load back identically through either format, and
    /// the v1 → v2 migration is exact.
    #[test]
    fn text_and_binary_persist_agree(
        ops in prop::collection::vec(op(), 0..60),
        horizon in 0u64..120_000,
    ) {
        let mut store = apply(&ops);
        // Pruning manufactures live and dead baselines plus lifetime
        // counters that exceed the surviving history.
        store.prune_before(Timestamp::from_millis(horizon));

        let mut v2 = Vec::new();
        store.save(&mut v2).unwrap();
        let from_v2 = Ttkv::load(v2.as_slice()).unwrap();
        prop_assert_eq!(&from_v2, &store);

        let from_v1 = Ttkv::load_from_str(&store.save_to_string()).unwrap();
        prop_assert_eq!(&from_v1, &store);

        // v1 → v2 → store equals the v1 load exactly.
        let mut migrated = Vec::new();
        from_v1.save(&mut migrated).unwrap();
        prop_assert_eq!(Ttkv::load(migrated.as_slice()).unwrap(), store);
    }

    /// `value_at` at a key's own mutation timestamps replays the sequential
    /// history: at the time of a write (and before the next mutation), the
    /// visible value is that write's value.
    #[test]
    fn value_at_matches_sequential_replay(ops in prop::collection::vec(op(), 1..60)) {
        let store = apply(&ops);
        for (key, record) in store.iter() {
            let history = record.history();
            for (i, version) in history.iter().enumerate() {
                // Find the last version sharing this timestamp (ties resolve
                // to insertion order; the last write at time t wins).
                let t = version.timestamp;
                let winner = history.iter().rev().find(|v| v.timestamp == t).unwrap();
                if history[i].timestamp == t {
                    prop_assert_eq!(
                        store.value_at(key.as_str(), t),
                        winner.value.as_ref(),
                        "key {} at {}", key, t
                    );
                }
            }
        }
    }

    /// Snapshots agree pointwise with `value_at`.
    #[test]
    fn snapshot_agrees_with_value_at(
        ops in prop::collection::vec(op(), 1..60),
        probe in 0u64..100_000,
    ) {
        let store = apply(&ops);
        let t = Timestamp::from_millis(probe);
        let snapshot = store.snapshot_at(t);
        for key in store.keys() {
            prop_assert_eq!(snapshot.get(key.as_str()), store.value_at(key.as_str(), t));
        }
    }

    /// History timestamps are always non-decreasing, even for out-of-order
    /// ingestion.
    #[test]
    fn history_is_sorted(ops in prop::collection::vec(op(), 0..60)) {
        let store = apply(&ops);
        for (_, record) in store.iter() {
            let times: Vec<_> = record.mutation_times().collect();
            let mut sorted = times.clone();
            sorted.sort();
            prop_assert_eq!(times, sorted);
        }
    }

    /// Pruning preserves every query at or after the horizon — including
    /// the horizon itself (tombstone-at-horizon and version-exactly-at-
    /// horizon edges fall out of the random op timestamps hitting the
    /// probed horizon).
    #[test]
    fn prune_preserves_post_horizon_queries(
        ops in prop::collection::vec(op(), 1..60),
        horizon in 0u64..100_000,
        probes in prop::collection::vec(0u64..100_000, 1..10),
    ) {
        let original = apply(&ops);
        let mut pruned = original.clone();
        let h = Timestamp::from_millis(horizon);
        let stats = pruned.prune_before(h);
        // The horizon itself is always probed: it is the hardest edge.
        for &probe in probes.iter().chain([&horizon]) {
            let t = Timestamp::from_millis(probe.max(horizon));
            for key in original.keys() {
                prop_assert_eq!(
                    original.value_at(key.as_str(), t),
                    pruned.value_at(key.as_str(), t),
                    "key {} at {} (horizon {})", key, t, h
                );
            }
            prop_assert_eq!(original.snapshot_at(t), pruned.snapshot_at(t));
        }
        // Counters are untouched.
        prop_assert_eq!(original.stats().writes, pruned.stats().writes);
        prop_assert_eq!(original.stats().reads, pruned.stats().reads);
        prop_assert_eq!(original.stats().deletes, pruned.stats().deletes);
        // The reclaimed bytes are exactly the footprint difference.
        prop_assert_eq!(
            pruned.approx_bytes() + stats.reclaimed_bytes,
            original.approx_bytes()
        );
        // Pruning never grows the store.
        prop_assert!(pruned.approx_bytes() <= original.approx_bytes());
    }

    /// Pruning never synthesises mutations (the phantom-baseline
    /// regression), and every key `modified_keys` reports still has real
    /// history to search.
    #[test]
    fn prune_invents_no_mutations_and_keeps_modified_keys_searchable(
        ops in prop::collection::vec(op(), 1..60),
        horizon in 0u64..100_000,
    ) {
        let original = apply(&ops);
        let mut pruned = original.clone();
        pruned.prune_before(Timestamp::from_millis(horizon));
        for (key, record) in pruned.iter() {
            let original_times: Vec<_> = original
                .record(key.as_str())
                .expect("prune drops no keys")
                .mutation_times()
                .collect();
            for t in record.mutation_times() {
                prop_assert!(
                    original_times.contains(&t),
                    "phantom mutation at {} on {}", t, key
                );
            }
        }
        for key in pruned.modified_keys() {
            let record = pruned.record(key.as_str()).expect("listed keys exist");
            prop_assert!(!record.history().is_empty(), "{} has no history", key);
        }
    }

    /// Pruning commutes with absorbing new (post-horizon) data: prune-then-
    /// absorb equals absorb-then-prune — the invariant that makes the fleet
    /// retention sweep safe to run concurrently with ingestion, where every
    /// shard keeps accepting fresh batches after each sweep.
    #[test]
    fn prune_commutes_with_absorbing_fresh_data(
        old_ops in prop::collection::vec(op(), 0..40),
        new_ops in prop::collection::vec(op(), 0..40),
        horizon in 0u64..100_000,
    ) {
        let h = Timestamp::from_millis(horizon);
        // Shift the fresh batch's mutations to or beyond the horizon — the
        // retention sweeper only ever prunes behind the ingest frontier.
        let shifted: Vec<Op> = new_ops
            .iter()
            .map(|o| match o {
                Op::Write(k, t, v) => {
                    Op::Write(*k, horizon.saturating_add(*t), v.clone())
                }
                Op::Delete(k, t) => Op::Delete(*k, horizon.saturating_add(*t)),
                Op::Read(k) => Op::Read(*k),
            })
            .collect();
        let base = apply(&old_ops);
        let fresh = apply(&shifted);

        let mut prune_then_absorb = base.clone();
        prune_then_absorb.prune_before(h);
        prune_then_absorb.absorb(fresh.clone());

        let mut absorb_then_prune = base;
        absorb_then_prune.absorb(fresh);
        absorb_then_prune.prune_before(h);

        prop_assert_eq!(prune_then_absorb, absorb_then_prune);
    }

    /// Staged sweeps equal one direct prune: prune at `h1`, absorb
    /// **arbitrary** late data (stragglers may predate `h1` — a lagging
    /// fleet machine), prune again at `h2 ≥ h1`, and the result is
    /// identical to pruning the combined history once at `h2`. This is the
    /// property that makes concurrently swept ingestion deterministic:
    /// however sweeps interleave with appends, the final re-prune lands on
    /// the same store.
    #[test]
    fn staged_sweeps_equal_one_direct_prune(
        old_ops in prop::collection::vec(op(), 0..40),
        new_ops in prop::collection::vec(op(), 0..40),
        h1 in 0u64..100_000,
        h2 in 0u64..100_000,
    ) {
        let (h1, h2) = (h1.min(h2), h1.max(h2));
        let (h1, h2) = (Timestamp::from_millis(h1), Timestamp::from_millis(h2));
        let base = apply(&old_ops);
        let fresh = apply(&new_ops);

        let mut staged = base.clone();
        staged.prune_before(h1);
        staged.absorb(fresh.clone());
        staged.prune_before(h2);

        let mut direct = base;
        direct.absorb(fresh);
        direct.prune_before(h2);

        prop_assert_eq!(staged, direct);
    }

    /// The incremental (in-place) builder prune equals the rebuild prune
    /// equals one direct prune of the full history — values, mutation
    /// times, counters (all via store equality) *and* per-sweep
    /// `PruneStats` — under random histories and staged horizons with
    /// appends (including stragglers below every horizon) between sweeps.
    /// This is the equivalence the fleet's O(reclaimed) sweep rests on.
    #[test]
    fn incremental_prune_equals_rebuild_equals_direct(
        seg1 in prop::collection::vec(op(), 0..30),
        seg2 in prop::collection::vec(op(), 0..30),
        seg3 in prop::collection::vec(op(), 0..30),
        h1 in 0u64..100_000,
        h2 in 0u64..100_000,
    ) {
        let (h1, h2) = (
            Timestamp::from_millis(h1.min(h2)),
            Timestamp::from_millis(h1.max(h2)),
        );
        let buffer = |builder: &mut TtkvBuilder, ops: &[Op]| {
            for o in ops {
                match o {
                    Op::Write(k, t, v) => builder.write(
                        Timestamp::from_millis(*t),
                        Key::new(key_name(*k)),
                        v.clone(),
                    ),
                    Op::Delete(k, t) => {
                        builder.delete(Timestamp::from_millis(*t), Key::new(key_name(*k)))
                    }
                    Op::Read(k) => builder.add_reads(Key::new(key_name(*k)), 1),
                }
            }
        };
        // The rebuild reference: build the whole store, prune it, wrap it
        // back up — what `ShardedTtkv::prune_before` used to do per sweep.
        let rebuild_prune = |builder: TtkvBuilder, h: Timestamp| {
            let mut store = builder.build();
            let stats = store.prune_before(h);
            (TtkvBuilder::from_store(store), stats)
        };

        let mut incremental = TtkvBuilder::from_store(apply(&seg1));
        let mut rebuild = TtkvBuilder::from_store(apply(&seg1));
        buffer(&mut incremental, &seg2);
        buffer(&mut rebuild, &seg2);
        let stats1 = incremental.prune_before(h1);
        let (mut rebuild, rebuild_stats1) = rebuild_prune(rebuild, h1);
        prop_assert_eq!(stats1, rebuild_stats1);

        buffer(&mut incremental, &seg3);
        buffer(&mut rebuild, &seg3);
        let stats2 = incremental.prune_before(h2);
        let (rebuild, rebuild_stats2) = rebuild_prune(rebuild, h2);
        prop_assert_eq!(stats2, rebuild_stats2);

        let incremental = incremental.build();
        prop_assert_eq!(&incremental, &rebuild.build());

        // ...and both equal one direct prune of the full history at the
        // final horizon (h2 ≥ h1, so the staged property applies).
        let mut direct = apply(&seg1);
        let mut tail = TtkvBuilder::new();
        buffer(&mut tail, &seg2);
        buffer(&mut tail, &seg3);
        tail.build_into(&mut direct);
        direct.prune_before(h2);
        prop_assert_eq!(incremental, direct);
    }

    /// The per-record last-mutation watermark is prune-invariant — the
    /// rank-stability contract `ocasta-repair`'s cluster sort relies on.
    #[test]
    fn last_mutation_watermark_is_prune_invariant(
        ops in prop::collection::vec(op(), 1..60),
        horizons in prop::collection::vec(0u64..100_000, 1..4),
    ) {
        let original = apply(&ops);
        let mut pruned = original.clone();
        let mut sorted = horizons;
        sorted.sort_unstable();
        for h in sorted {
            pruned.prune_before(Timestamp::from_millis(h));
            for (key, record) in original.iter() {
                prop_assert_eq!(
                    pruned
                        .record(key.as_str())
                        .expect("prune drops no keys")
                        .last_mutation_watermark(),
                    record.last_mutation_watermark(),
                    "key {} at horizon {}", key, h
                );
            }
        }
    }

    /// Dead-shell GC is equivalent to the collected keys never having
    /// existed: prune + GC, then rewrite the keys — the store is
    /// indistinguishable, field for field, from one where those keys'
    /// pre-GC history was never ingested. This is the "GC'd-then-rewritten
    /// keys behave like fresh keys" contract (the dead-shell-leak fix).
    #[test]
    fn gcd_then_rewritten_keys_behave_like_fresh_keys(
        old_ops in prop::collection::vec(op(), 0..50),
        new_ops in prop::collection::vec(op(), 0..30),
        horizon in 0u64..100_000,
    ) {
        let h = Timestamp::from_millis(horizon);
        let mut gcd = apply(&old_ops);
        gcd.prune_before(h);
        let shells: Vec<String> = gcd
            .iter()
            .filter(|(_, r)| r.is_dead_shell())
            .map(|(k, _)| k.as_str().to_owned())
            .collect();
        let collected = gcd.gc_dead_shells();
        prop_assert_eq!(collected, shells.len() as u64);
        for key in &shells {
            prop_assert!(gcd.record(key).is_none(), "{} survived GC", key);
        }

        // The counterfactual: the shells' ops never happened at all.
        let mut fresh = apply_filtered(&old_ops, &shells);
        fresh.prune_before(h);
        prop_assert_eq!(fresh.gc_dead_shells(), 0, "no shells left to collect");
        prop_assert_eq!(&gcd, &fresh);

        // Rewriting the collected keys lands on the same store either way
        // (shift past the horizon: the sweeper only prunes behind the
        // frontier, and a straggler rewrite is exercised by the staged-
        // sweep properties above).
        let shifted: Vec<Op> = new_ops
            .iter()
            .map(|o| match o {
                Op::Write(k, t, v) => Op::Write(*k, horizon.saturating_add(*t), v.clone()),
                Op::Delete(k, t) => Op::Delete(*k, horizon.saturating_add(*t)),
                Op::Read(k) => Op::Read(*k),
            })
            .collect();
        let rewrites = apply(&shifted);
        gcd.absorb(rewrites.clone());
        fresh.absorb(rewrites);
        prop_assert_eq!(gcd, fresh);
    }

    /// GC keeps the store's aggregate counters consistent with its
    /// records: the persist round-trip (which *recomputes* aggregates from
    /// per-record counters on load) is still exact after a GC. This is the
    /// property that forces `gc_dead_shells` to decrement the aggregates —
    /// dropping records while keeping their counts would diverge here.
    #[test]
    fn gc_keeps_aggregates_and_persistence_consistent(
        ops in prop::collection::vec(op(), 0..50),
        horizon in 0u64..100_000,
    ) {
        let mut store = apply(&ops);
        store.prune_before(Timestamp::from_millis(horizon));
        store.gc_dead_shells();
        let loaded = Ttkv::load_from_str(&store.save_to_string()).unwrap();
        prop_assert_eq!(loaded, store);
    }

    /// Merging two stores preserves totals and merged histories stay sorted.
    #[test]
    fn merge_preserves_totals(
        a in prop::collection::vec(op(), 0..40),
        b in prop::collection::vec(op(), 0..40),
    ) {
        let sa = apply(&a);
        let sb = apply(&b);
        let (ta, tb) = (sa.stats(), sb.stats());
        let mut merged = sa.clone();
        merged.merge(&sb);
        let tm = merged.stats();
        prop_assert_eq!(tm.reads, ta.reads + tb.reads);
        prop_assert_eq!(tm.writes, ta.writes + tb.writes);
        prop_assert_eq!(tm.deletes, ta.deletes + tb.deletes);
        for (_, record) in merged.iter() {
            let times: Vec<_> = record.mutation_times().collect();
            let mut sorted = times.clone();
            sorted.sort();
            prop_assert_eq!(times, sorted);
        }
    }
}
