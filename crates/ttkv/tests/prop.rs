//! Property-based tests for the TTKV.

use proptest::prelude::*;

use ocasta_ttkv::{Key, Timestamp, Ttkv, Value};

/// Strategy for scalar values.
fn scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[ -~]{0,16}".prop_map(Value::from),
    ]
}

/// Strategy for arbitrary values (scalars plus shallow lists).
fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        4 => scalar(),
        1 => prop::collection::vec(scalar(), 0..4).prop_map(Value::List),
    ]
}

/// One mutation op against a small key space.
#[derive(Debug, Clone)]
enum Op {
    Write(u8, u64, Value),
    Delete(u8, u64),
    Read(u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 0u64..100_000, value()).prop_map(|(k, t, v)| Op::Write(k % 8, t, v)),
        (any::<u8>(), 0u64..100_000).prop_map(|(k, t)| Op::Delete(k % 8, t)),
        any::<u8>().prop_map(|k| Op::Read(k % 8)),
    ]
}

fn key_name(k: u8) -> String {
    format!("app/key{k}")
}

fn apply(ops: &[Op]) -> Ttkv {
    let mut store = Ttkv::new();
    for o in ops {
        match o {
            Op::Write(k, t, v) => store.write(
                Timestamp::from_millis(*t),
                Key::new(key_name(*k)),
                v.clone(),
            ),
            Op::Delete(k, t) => store.delete(Timestamp::from_millis(*t), Key::new(key_name(*k))),
            Op::Read(k) => store.read(Key::new(key_name(*k))),
        }
    }
    store
}

proptest! {
    /// Persistence round-trips bit-exactly for arbitrary op sequences.
    #[test]
    fn persist_roundtrip(ops in prop::collection::vec(op(), 0..60)) {
        let store = apply(&ops);
        let text = store.save_to_string();
        let loaded = Ttkv::load_from_str(&text).unwrap();
        prop_assert_eq!(store, loaded);
    }

    /// `value_at` at a key's own mutation timestamps replays the sequential
    /// history: at the time of a write (and before the next mutation), the
    /// visible value is that write's value.
    #[test]
    fn value_at_matches_sequential_replay(ops in prop::collection::vec(op(), 1..60)) {
        let store = apply(&ops);
        for (key, record) in store.iter() {
            let history = record.history();
            for (i, version) in history.iter().enumerate() {
                // Find the last version sharing this timestamp (ties resolve
                // to insertion order; the last write at time t wins).
                let t = version.timestamp;
                let winner = history.iter().rev().find(|v| v.timestamp == t).unwrap();
                if history[i].timestamp == t {
                    prop_assert_eq!(
                        store.value_at(key.as_str(), t),
                        winner.value.as_ref(),
                        "key {} at {}", key, t
                    );
                }
            }
        }
    }

    /// Snapshots agree pointwise with `value_at`.
    #[test]
    fn snapshot_agrees_with_value_at(
        ops in prop::collection::vec(op(), 1..60),
        probe in 0u64..100_000,
    ) {
        let store = apply(&ops);
        let t = Timestamp::from_millis(probe);
        let snapshot = store.snapshot_at(t);
        for key in store.keys() {
            prop_assert_eq!(snapshot.get(key.as_str()), store.value_at(key.as_str(), t));
        }
    }

    /// History timestamps are always non-decreasing, even for out-of-order
    /// ingestion.
    #[test]
    fn history_is_sorted(ops in prop::collection::vec(op(), 0..60)) {
        let store = apply(&ops);
        for (_, record) in store.iter() {
            let times: Vec<_> = record.mutation_times().collect();
            let mut sorted = times.clone();
            sorted.sort();
            prop_assert_eq!(times, sorted);
        }
    }

    /// Pruning preserves every query at or after the horizon.
    #[test]
    fn prune_preserves_post_horizon_queries(
        ops in prop::collection::vec(op(), 1..60),
        horizon in 0u64..100_000,
        probes in prop::collection::vec(0u64..100_000, 1..10),
    ) {
        let original = apply(&ops);
        let mut pruned = original.clone();
        let h = Timestamp::from_millis(horizon);
        pruned.prune_before(h);
        for &probe in &probes {
            let t = Timestamp::from_millis(probe.max(horizon));
            for key in original.keys() {
                prop_assert_eq!(
                    original.value_at(key.as_str(), t),
                    pruned.value_at(key.as_str(), t),
                    "key {} at {} (horizon {})", key, t, h
                );
            }
        }
        // Counters are untouched.
        prop_assert_eq!(original.stats().writes, pruned.stats().writes);
        prop_assert_eq!(original.stats().reads, pruned.stats().reads);
        // Pruning never grows the store.
        prop_assert!(pruned.approx_bytes() <= original.approx_bytes() + 16 * pruned.len() as u64);
    }

    /// Merging two stores preserves totals and merged histories stay sorted.
    #[test]
    fn merge_preserves_totals(
        a in prop::collection::vec(op(), 0..40),
        b in prop::collection::vec(op(), 0..40),
    ) {
        let sa = apply(&a);
        let sb = apply(&b);
        let (ta, tb) = (sa.stats(), sb.stats());
        let mut merged = sa.clone();
        merged.merge(&sb);
        let tm = merged.stats();
        prop_assert_eq!(tm.reads, ta.reads + tb.reads);
        prop_assert_eq!(tm.writes, ta.writes + tb.writes);
        prop_assert_eq!(tm.deletes, ta.deletes + tb.deletes);
        for (_, record) in merged.iter() {
            let times: Vec<_> = record.mutation_times().collect();
            let mut sorted = times.clone();
            sorted.sort();
            prop_assert_eq!(times, sorted);
        }
    }
}
