//! Fixtures pinning the `ocasta-ttkv binary v2` byte layout.
//!
//! The expected byte sequences here are built from the documented grammar
//! with explicit literals for the magic, section tags, varints, flags and
//! value encodings; only the section checksums are computed, via
//! [`ocasta_ttkv::hash::fnv1a_32`], which is itself pinned to the FNV
//! reference vectors. Any accidental change to the on-disk layout — tag
//! values, field order, varint scheme, checksum scope — fails these tests
//! loudly instead of silently orphaning every deployed segment.

use ocasta_ttkv::hash::fnv1a_32;
use ocasta_ttkv::{Timestamp, Ttkv, Value};

/// Frames one section exactly as the writer does: tag, little-endian length,
/// little-endian FNV-1a checksum of the payload, payload.
fn section(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = vec![tag];
    out.extend_from_slice(&u32::try_from(payload.len()).unwrap().to_le_bytes());
    out.extend_from_slice(&fnv1a_32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

const MAGIC: &[u8] = b"ocasta-ttkv binary v2\n";

#[test]
fn exported_magic_is_pinned() {
    assert_eq!(ocasta_ttkv::BINARY_MAGIC, MAGIC);
}

#[test]
fn empty_store_layout_is_pinned() {
    let mut bytes = Vec::new();
    Ttkv::new().save(&mut bytes).unwrap();

    let mut expected = MAGIC.to_vec();
    expected.extend_from_slice(&section(b'K', &[0x00])); // zero keys
    expected.extend_from_slice(&section(b'R', &[0x00])); // zero records
    expected.extend_from_slice(&section(b'E', &[])); // end marker
    assert_eq!(bytes, expected);
    // 22-byte magic + three 9-byte section headers + two 1-byte counts.
    assert_eq!(bytes.len(), 51);
}

#[test]
fn live_store_layout_is_pinned() {
    let mut store = Ttkv::new();
    store.read("app/flag");
    store.write(Timestamp::from_millis(1000), "app/flag", Value::from(true));
    store.write(
        Timestamp::from_millis(2000),
        "zz",
        Value::List(vec![
            Value::Null,
            Value::from(-3),
            Value::Float(1.5),
            Value::from("hi"),
        ]),
    );
    store.delete(Timestamp::from_millis(3000), "app/flag");

    let mut bytes = Vec::new();
    store.save(&mut bytes).unwrap();

    // 'K': intern table, keys in sorted order, ids are positions.
    let mut keys = vec![0x02]; // key count
    keys.push(0x08); // len("app/flag")
    keys.extend_from_slice(b"app/flag"); // id 0
    keys.push(0x02); // len("zz")
    keys.extend_from_slice(b"zz"); // id 1

    // 'R': records in the same order.
    let mut recs = vec![0x02]; // record count
                               // -- record 0: app/flag — reads=1 writes=1 deletes=1, no baseline,
                               //    history = [write@1000 true, tombstone@3000].
    recs.extend_from_slice(&[0x00, 0x01, 0x01, 0x01, 0x00]); // id r w d flags
    recs.push(0x02); // history length
    recs.push(0x00); // kind: write
    recs.extend_from_slice(&[0xE8, 0x07]); // varint 1000
    recs.push(0x02); // value: true
    recs.push(0x01); // kind: tombstone
    recs.extend_from_slice(&[0xB8, 0x17]); // varint 3000
                                           // -- record 1: zz — reads=0 writes=1 deletes=0, no baseline,
                                           //    history = [write@2000 [null, -3, 1.5, "hi"]].
    recs.extend_from_slice(&[0x01, 0x00, 0x01, 0x00, 0x00]); // id r w d flags
    recs.push(0x01); // history length
    recs.push(0x00); // kind: write
    recs.extend_from_slice(&[0xD0, 0x0F]); // varint 2000
    recs.extend_from_slice(&[0x06, 0x04]); // list of 4
    recs.push(0x00); // null
    recs.extend_from_slice(&[0x03, 0x05]); // int, zigzag(-3) = 5
    recs.push(0x04); // float tag
    recs.extend_from_slice(&1.5f64.to_bits().to_le_bytes());
    recs.extend_from_slice(&[0x05, 0x02]); // str, len 2
    recs.extend_from_slice(b"hi");

    let mut expected = MAGIC.to_vec();
    expected.extend_from_slice(&section(b'K', &keys));
    expected.extend_from_slice(&section(b'R', &recs));
    expected.extend_from_slice(&section(b'E', &[]));
    assert_eq!(bytes, expected);

    // And the pinned bytes decode back to the exact store.
    assert_eq!(Ttkv::load(expected.as_slice()).unwrap(), store);
}

#[test]
fn pruned_store_layout_is_pinned() {
    let mut store = Ttkv::new();
    store.write(Timestamp::from_millis(1000), "k1", Value::from(1));
    store.write(Timestamp::from_millis(2000), "k1", Value::from(2));
    store.write(Timestamp::from_millis(1000), "k2", Value::from(1));
    store.delete(Timestamp::from_millis(1500), "k2");
    store.prune_before(Timestamp::from_millis(2500));

    let mut bytes = Vec::new();
    store.save(&mut bytes).unwrap();

    let mut keys = vec![0x02];
    keys.push(0x02);
    keys.extend_from_slice(b"k1"); // id 0
    keys.push(0x02);
    keys.extend_from_slice(b"k2"); // id 1

    let mut recs = vec![0x02];
    // -- record 0: k1 — writes=2, live baseline write@2000 Int(2), flags
    //    bit0 (baseline present), empty history.
    recs.extend_from_slice(&[0x00, 0x00, 0x02, 0x00, 0x01]); // id r w d flags
    recs.extend_from_slice(&[0xD0, 0x0F]); // baseline varint 2000
    recs.extend_from_slice(&[0x03, 0x04]); // value: int, zigzag(2) = 4
    recs.push(0x00); // history length
                     // -- record 1: k2 — writes=1 deletes=1, dead baseline @1500, flags
                     //    bit0|bit1 (baseline present and a tombstone: no value follows).
    recs.extend_from_slice(&[0x01, 0x00, 0x01, 0x01, 0x03]); // id r w d flags
    recs.extend_from_slice(&[0xDC, 0x0B]); // baseline varint 1500
    recs.push(0x00); // history length

    let mut expected = MAGIC.to_vec();
    expected.extend_from_slice(&section(b'K', &keys));
    expected.extend_from_slice(&section(b'R', &recs));
    expected.extend_from_slice(&section(b'E', &[]));
    assert_eq!(bytes, expected);
    assert_eq!(Ttkv::load(expected.as_slice()).unwrap(), store);
}

#[test]
fn value_tag_space_is_pinned() {
    // One value of every tag, written through a single-key store; the
    // encoded tail of the record section pins the full value tag space.
    let values = Value::List(vec![
        Value::Null,
        Value::Bool(false),
        Value::Bool(true),
        Value::Int(0),
        Value::Float(0.0),
        Value::Str(String::new()),
        Value::List(vec![]),
    ]);
    let mut store = Ttkv::new();
    store.write(Timestamp::from_millis(0), "k", values);
    let mut bytes = Vec::new();
    store.save(&mut bytes).unwrap();

    let encoded_value: &[u8] = &[
        0x06, 0x07, // list of 7
        0x00, // null
        0x01, // false
        0x02, // true
        0x03, 0x00, // int, zigzag(0) = 0
        0x04, 0, 0, 0, 0, 0, 0, 0, 0, // float, 0.0 bits LE
        0x05, 0x00, // str, len 0
        0x06, 0x00, // list, len 0
    ];
    let windows: Vec<_> = bytes
        .windows(encoded_value.len())
        .filter(|w| *w == encoded_value)
        .collect();
    assert_eq!(windows.len(), 1, "value encoding appears exactly once");
    assert_eq!(Ttkv::load(bytes.as_slice()).unwrap(), store);
}
