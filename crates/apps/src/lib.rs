//! # ocasta-apps — the evaluated applications
//!
//! Models of the 11 desktop applications the
//! [Ocasta](https://arxiv.org/abs/1711.04030) paper evaluates (Table II) and
//! the 16 real-world configuration errors it repairs (Table III).
//!
//! An [`AppModel`] combines four things:
//!
//! * a configuration schema sized to the paper's per-application key counts;
//! * a [`ocasta_trace::WorkloadSpec`] describing how the application and its
//!   user touch those settings (related groups change together, noise keys
//!   churn, preference dialogs occasionally flush unrelated groups in one
//!   burst — the oversized-cluster source behind Table II's accuracy);
//! * ground-truth related-setting groups for accuracy scoring;
//! * a deterministic render of the visible UI, which the repair tool
//!   photographs.
//!
//! ```
//! use ocasta_apps::{all_models, scenarios};
//!
//! assert_eq!(all_models().len(), 11);
//! assert_eq!(scenarios().len(), 16);
//!
//! let word = ocasta_apps::model_by_name("word").unwrap();
//! let trace = word.generate_trace(42, 7);
//! assert!(trace.stats().writes > 100);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod builders;
pub mod catalog;
mod errors;
mod model;

pub use builders::AppBuilder;
pub use catalog::{all_models, model_by_name};
pub use errors::{scenarios, ErrorScenario, Injection};
pub use model::{AppModel, LoggerKind};
