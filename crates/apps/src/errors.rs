//! The 16 real-world configuration errors of Table III.
//!
//! Each scenario bundles the erroneous writes to inject into a recorded
//! trace, the user trial that makes the symptom visible, the oracle standing
//! in for the user's screenshot judgement, and the paper's published
//! metadata (trace, logger, cluster size, whether NoClust can fix it).

use ocasta_repair::{FixOracle, Trial};
use ocasta_ttkv::{Key, TimeDelta, Timestamp, Ttkv, Value};

use crate::catalog::{
    self, acrobat, chrome, eog, evolution, explorer, gedit, iexplorer, outlook, paint, wmp, word,
};
use crate::model::{AppModel, LoggerKind};

/// One erroneous mutation of a configuration setting.
#[derive(Debug, Clone, PartialEq)]
pub enum Injection {
    /// Overwrite the setting with a bad value.
    Set(Value),
    /// Delete the setting.
    Delete,
}

/// One Table III configuration error.
#[derive(Debug, Clone)]
pub struct ErrorScenario {
    /// Case number (1–16, Table III order).
    pub id: usize,
    /// The Table I trace the case was evaluated on.
    pub trace_name: &'static str,
    /// Deployment length of that trace, in days.
    pub trace_days: u64,
    /// Application model name (key prefix).
    pub app: &'static str,
    /// Logger used for the application.
    pub logger: LoggerKind,
    /// Table III description.
    pub description: &'static str,
    /// The erroneous mutations, applied in one burst.
    pub injections: Vec<(Key, Injection)>,
    /// Related settings the application flushes in the same burst with
    /// their *current* values (misconfigurations happen through preference
    /// dialogs, which rewrite the whole group — that is why related keys
    /// keep correlating even across the error).
    pub companions: Vec<Key>,
    /// Table IV's average cluster size for this case.
    pub paper_cluster_size: usize,
    /// Table IV: can the no-clustering baseline fix it?
    pub paper_noclust_fixes: bool,
    /// Whether the paper needed threshold/window tuning (errors #2, #4).
    pub needs_tuning: bool,
    /// Modeled wall-clock per trial (calibrated from Table IV's
    /// time-per-trial; real trials replay GUI scripts and screenshot).
    pub trial_cost: TimeDelta,
}

impl ErrorScenario {
    /// The application model this error lives in.
    pub fn model(&self) -> AppModel {
        catalog::model_by_name(self.app).expect("scenario app exists in the catalog")
    }

    /// The user trial: launch the app the way that exposes the symptom.
    pub fn trial(&self) -> Trial {
        let render = self.model().render;
        Trial::new(self.description, render)
    }

    /// The screenshot judgement for this error.
    pub fn oracle(&self) -> FixOracle {
        match self.id {
            1 => FixOracle::element_visible("navigation_panel"),
            2 => FixOracle::new(|shot| {
                shot.element_with_prefix("recent_documents:")
                    .and_then(|e| e.rsplit(':').next())
                    .and_then(|n| n.parse::<i64>().ok())
                    .is_some_and(|n| n >= 1)
            }),
            3 => FixOracle::element_absent("addon_popup"),
            4 => FixOracle::new(|shot| {
                shot.element_with_prefix("openwith_flv:")
                    .and_then(|e| e.rsplit(':').next())
                    .and_then(|n| n.parse::<i64>().ok())
                    .is_some_and(|n| n >= 1)
            }),
            5 => FixOracle::element_visible("captions"),
            6 => FixOracle::element_visible("text_toolbar"),
            7 => FixOracle::element_visible("image_window:normal"),
            8 => FixOracle::element_absent("offline_banner"),
            9 => FixOracle::element_visible("auto_mark_read"),
            10 => FixOracle::element_visible("reply_cursor:top"),
            11 => FixOracle::element_visible("print_menu_item"),
            12 => FixOracle::element_visible("save_dialog"),
            13 => FixOracle::element_visible("bookmark_bar"),
            14 => FixOracle::element_visible("home_button"),
            15 => FixOracle::element_visible("menu_bar"),
            16 => FixOracle::element_visible("find_box"),
            other => unreachable!("no oracle for scenario {other}"),
        }
    }

    /// Applies the erroneous writes to the store in one burst at `at`,
    /// rewriting companion settings with their pre-error values (the
    /// dialog-flush behaviour described on [`Self::companions`]).
    pub fn inject(&self, ttkv: &mut Ttkv, at: Timestamp) {
        let companion_values: Vec<(Key, Option<Value>)> = self
            .companions
            .iter()
            .map(|k| (k.clone(), ttkv.value_at(k.as_str(), at).cloned()))
            .collect();
        for (i, (key, injection)) in self.injections.iter().enumerate() {
            let t = at + TimeDelta::from_millis(i as u64 * 40);
            match injection {
                Injection::Set(value) => ttkv.write(t, key.clone(), value.clone()),
                Injection::Delete => ttkv.delete(t, key.clone()),
            }
        }
        let base = self.injections.len() as u64;
        for (i, (key, value)) in companion_values.into_iter().enumerate() {
            let t = at + TimeDelta::from_millis((base + i as u64) * 40);
            if let Some(value) = value {
                ttkv.write(t, key, value);
            }
        }
    }

    /// Writes one *spurious* change burst at `at` — the user's failed manual
    /// fix attempt (Figure 2b's x-axis). The user walks the preferences
    /// dialog (flushing the whole group) but ends up back in the erroneous
    /// state, leaving extra versions for the search to wade through.
    pub fn spurious_write(&self, ttkv: &mut Ttkv, at: Timestamp, _attempt: u64) {
        self.inject(ttkv, at);
    }

    /// The keys the injected error touches.
    pub fn offending_keys(&self) -> Vec<Key> {
        self.injections.iter().map(|(k, _)| k.clone()).collect()
    }

    /// Offending keys plus companions: the settings whose feature the error
    /// breaks. The workload stops touching them once the error is in place
    /// (a user does not keep adjusting a broken feature).
    pub fn quarantined_keys(&self) -> Vec<Key> {
        let mut keys = self.offending_keys();
        keys.extend(self.companions.iter().cloned());
        keys
    }
}

fn set(key: &str, value: impl Into<Value>) -> (Key, Injection) {
    (Key::new(key), Injection::Set(value.into()))
}

fn del(key: &str) -> (Key, Injection) {
    (Key::new(key), Injection::Delete)
}

/// All 16 error scenarios, in Table III order.
pub fn scenarios() -> Vec<ErrorScenario> {
    let ms = TimeDelta::from_millis;
    vec![
        ErrorScenario {
            id: 1,
            trace_name: "Windows 7",
            trace_days: 42,
            app: "outlook",
            logger: LoggerKind::Registry,
            description: "User is unable to use Navigation Panel.",
            injections: vec![set(outlook::NAVPANE_VISIBLE, false)],
            companions: vec![Key::new("outlook/navpane/width")],
            paper_cluster_size: 2,
            paper_noclust_fixes: true,
            needs_tuning: false,
            trial_cost: ms(2_000),
        },
        ErrorScenario {
            id: 2,
            trace_name: "Windows 7",
            trace_days: 42,
            app: "word",
            logger: LoggerKind::Registry,
            description: "User loses the list of recently accessed documents.",
            injections: {
                let mut v = vec![set(word::MRU_MAX, 0)];
                v.extend((1..=word::MRU_SLOTS).map(|i| del(&word::mru_item(i))));
                v
            },
            companions: vec![],
            paper_cluster_size: 8,
            paper_noclust_fixes: false,
            needs_tuning: true,
            trial_cost: ms(17_000),
        },
        ErrorScenario {
            id: 3,
            trace_name: "Windows 7",
            trace_days: 42,
            app: "ie",
            logger: LoggerKind::Registry,
            description: "Dialog to disable add-ons always pops up.",
            injections: vec![set(iexplorer::ADDON_PROMPT_DISABLED, false)],
            companions: vec![Key::new(iexplorer::ADDON_CHECK_INTERVAL)],
            paper_cluster_size: 2,
            paper_noclust_fixes: true,
            needs_tuning: false,
            trial_cost: ms(18_000),
        },
        ErrorScenario {
            id: 4,
            trace_name: "Windows Vista",
            trace_days: 53,
            app: "explorer",
            logger: LoggerKind::Registry,
            description:
                "\"Open with\" menu does not show installed applications that can open .flv file.",
            injections: vec![
                set(explorer::OPENWITH_LIST, ""),
                del(explorer::OPENWITH_VLC),
                del(explorer::OPENWITH_MPLAYER),
            ],
            companions: vec![],
            paper_cluster_size: 3,
            paper_noclust_fixes: false,
            needs_tuning: true,
            trial_cost: ms(5_500),
        },
        ErrorScenario {
            id: 5,
            trace_name: "Windows XP",
            trace_days: 25,
            app: "wmp",
            logger: LoggerKind::Registry,
            description: "Caption is not shown while playing video.",
            injections: vec![set(wmp::CAPTIONS_ENABLED, false)],
            companions: vec![
                Key::new("wmp/captions/style"),
                Key::new("wmp/captions/size"),
                Key::new("wmp/captions/lang"),
            ],
            paper_cluster_size: 4,
            paper_noclust_fixes: true,
            needs_tuning: false,
            trial_cost: ms(5_600),
        },
        ErrorScenario {
            id: 6,
            trace_name: "Windows XP",
            trace_days: 25,
            app: "paint",
            logger: LoggerKind::Registry,
            description: "Text tool bar does not pop up automatically when entering text.",
            injections: vec![
                set(paint::TEXTTOOL_AUTO, false),
                set(paint::TEXTTOOL_X, -4000),
                set(paint::TEXTTOOL_Y, -4000),
            ],
            companions: vec![
                Key::new("paint/texttool/font"),
                Key::new("paint/texttool/size"),
                Key::new("paint/texttool/bold"),
                Key::new("paint/texttool/italic"),
                Key::new("paint/texttool/smooth"),
            ],
            paper_cluster_size: 8,
            paper_noclust_fixes: false,
            needs_tuning: false,
            trial_cost: ms(23_000),
        },
        ErrorScenario {
            id: 7,
            trace_name: "Windows XP",
            trace_days: 25,
            app: "explorer",
            logger: LoggerKind::Registry,
            description: "Image files are always opened in a maximized window.",
            injections: vec![
                set(explorer::IMGVIEW_MODE, "maximized"),
                set(explorer::IMGVIEW_GEOMETRY, "0,0,full"),
            ],
            companions: vec![],
            paper_cluster_size: 2,
            paper_noclust_fixes: false,
            needs_tuning: false,
            trial_cost: ms(1_600),
        },
        ErrorScenario {
            id: 8,
            trace_name: "Linux-1",
            trace_days: 25,
            app: "evolution",
            logger: LoggerKind::GConf,
            description: "Evolution Mail starts in offline mode unexpectedly.",
            injections: vec![set(evolution::START_OFFLINE, true)],
            companions: vec![Key::new(evolution::OFFLINE_SYNC)],
            paper_cluster_size: 2,
            paper_noclust_fixes: true,
            needs_tuning: false,
            trial_cost: ms(15_000),
        },
        ErrorScenario {
            id: 9,
            trace_name: "Linux-1",
            trace_days: 25,
            app: "evolution",
            logger: LoggerKind::GConf,
            description: "Evolution Mail does not mark read mail automatically.",
            injections: vec![
                set(evolution::MARK_SEEN, false),
                set(evolution::MARK_SEEN_TIMEOUT, -1),
            ],
            companions: vec![],
            paper_cluster_size: 2,
            paper_noclust_fixes: false,
            needs_tuning: false,
            trial_cost: ms(45_000),
        },
        ErrorScenario {
            id: 10,
            trace_name: "Linux-1",
            trace_days: 25,
            app: "evolution",
            logger: LoggerKind::GConf,
            description: "Evolution Mail does not start a reply at the top of an e-mail.",
            injections: vec![set(evolution::REPLY_STYLE, "bottom")],
            companions: vec![Key::new(evolution::SIGNATURE_TOP)],
            paper_cluster_size: 2,
            paper_noclust_fixes: true,
            needs_tuning: false,
            trial_cost: ms(27_000),
        },
        ErrorScenario {
            id: 11,
            trace_name: "Linux-1",
            trace_days: 25,
            app: "eog",
            logger: LoggerKind::GConf,
            description: "User is unable to print image files.",
            injections: vec![set(eog::PRINT_ENABLED, false)],
            companions: vec![],
            paper_cluster_size: 1,
            paper_noclust_fixes: true,
            needs_tuning: false,
            trial_cost: ms(12_000),
        },
        ErrorScenario {
            id: 12,
            trace_name: "Linux-1",
            trace_days: 25,
            app: "gedit",
            logger: LoggerKind::GConf,
            description: "User is unable to save any document.",
            injections: vec![set(gedit::SAVE_SCHEME, "readonly")],
            companions: vec![],
            paper_cluster_size: 1,
            paper_noclust_fixes: true,
            needs_tuning: false,
            trial_cost: ms(10_000),
        },
        ErrorScenario {
            id: 13,
            trace_name: "Linux-2",
            trace_days: 84,
            app: "chrome",
            logger: LoggerKind::File,
            description: "Bookmark bar is missing.",
            injections: vec![set(chrome::BOOKMARK_BAR, false)],
            companions: vec![],
            paper_cluster_size: 1,
            paper_noclust_fixes: true,
            needs_tuning: false,
            trial_cost: ms(5_000),
        },
        ErrorScenario {
            id: 14,
            trace_name: "Linux-2",
            trace_days: 84,
            app: "chrome",
            logger: LoggerKind::File,
            description: "Home button is missing from the tool bar.",
            injections: vec![set(chrome::HOME_BUTTON, false)],
            companions: vec![],
            paper_cluster_size: 1,
            paper_noclust_fixes: true,
            needs_tuning: false,
            trial_cost: ms(4_300),
        },
        ErrorScenario {
            id: 15,
            trace_name: "Linux-3",
            trace_days: 46,
            app: "acrobat",
            logger: LoggerKind::File,
            description: "Menu bar disappears for certain PDF document.",
            injections: vec![set(acrobat::MENU_BAR, false)],
            companions: vec![],
            paper_cluster_size: 1,
            paper_noclust_fixes: true,
            needs_tuning: false,
            trial_cost: ms(3_800),
        },
        ErrorScenario {
            id: 16,
            trace_name: "Linux-4",
            trace_days: 64,
            app: "acrobat",
            logger: LoggerKind::File,
            description: "Find box is missing from the tool bar.",
            injections: vec![set(acrobat::FIND_BOX, false)],
            companions: vec![],
            paper_cluster_size: 1,
            paper_noclust_fixes: true,
            needs_tuning: false,
            trial_cost: ms(200),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocasta_ttkv::ConfigState;

    #[test]
    fn sixteen_scenarios_in_table3_order() {
        let all = scenarios();
        assert_eq!(all.len(), 16);
        for (i, s) in all.iter().enumerate() {
            assert_eq!(s.id, i + 1);
            assert!(!s.injections.is_empty());
        }
        // Table IV: exactly 5 cases defeat NoClust.
        assert_eq!(all.iter().filter(|s| !s.paper_noclust_fixes).count(), 5);
        // Errors #2 and #4 need tuning.
        let tuned: Vec<usize> = all
            .iter()
            .filter(|s| s.needs_tuning)
            .map(|s| s.id)
            .collect();
        assert_eq!(tuned, vec![2, 4]);
    }

    #[test]
    fn every_scenario_app_exists() {
        for s in scenarios() {
            let model = s.model();
            assert_eq!(model.name, s.app);
        }
    }

    #[test]
    fn injections_make_the_symptom_visible() {
        for s in scenarios() {
            // Render a healthy-default screen, then apply the injections as
            // direct config edits: the oracle must flip from fixed to broken.
            let model = s.model();
            let healthy = seed_healthy_config(&s);
            assert!(
                s.oracle().is_fixed(&(model.render)(&healthy)),
                "error #{}: healthy state should satisfy the oracle",
                s.id
            );
            let mut broken = healthy.clone();
            for (key, injection) in &s.injections {
                match injection {
                    Injection::Set(v) => {
                        broken.set(key.clone(), v.clone());
                    }
                    Injection::Delete => {
                        broken.remove(key.as_str());
                    }
                }
            }
            assert!(
                !s.oracle().is_fixed(&(model.render)(&broken)),
                "error #{}: injected state should violate the oracle",
                s.id
            );
        }
    }

    #[test]
    fn multi_key_errors_resist_single_key_repair() {
        for s in scenarios().iter().filter(|s| !s.paper_noclust_fixes) {
            let model = s.model();
            let healthy = seed_healthy_config(s);
            let mut broken = healthy.clone();
            for (key, injection) in &s.injections {
                match injection {
                    Injection::Set(v) => {
                        broken.set(key.clone(), v.clone());
                    }
                    Injection::Delete => {
                        broken.remove(key.as_str());
                    }
                }
            }
            // Restore each offending key alone: the symptom must persist.
            for (key, _) in &s.injections {
                let mut partial = broken.clone();
                match healthy.get(key.as_str()) {
                    Some(v) => {
                        partial.set(key.clone(), v.clone());
                    }
                    None => {
                        partial.remove(key.as_str());
                    }
                }
                assert!(
                    !s.oracle().is_fixed(&(model.render)(&partial)),
                    "error #{}: restoring {} alone should not fix it",
                    s.id,
                    key
                );
            }
        }
    }

    /// A healthy configuration for the scenario's app: defaults plus
    /// explicit healthy values for the keys the scenarios manipulate.
    fn seed_healthy_config(s: &ErrorScenario) -> ConfigState {
        let mut config = ConfigState::new();
        match s.id {
            2 => {
                config.set(Key::new(word::MRU_MAX), Value::from(4));
                for i in 1..=4 {
                    config.set(
                        Key::new(word::mru_item(i)),
                        Value::from(format!("d{i}.doc")),
                    );
                }
            }
            4 => {
                config.set(
                    Key::new(explorer::OPENWITH_LIST),
                    Value::from("app_vlc,app_mplayer"),
                );
                config.set(Key::new(explorer::OPENWITH_VLC), Value::from("vlc.exe"));
                config.set(
                    Key::new(explorer::OPENWITH_MPLAYER),
                    Value::from("mplayer.exe"),
                );
            }
            _ => {}
        }
        config
    }
}
